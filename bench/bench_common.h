// Shared helpers for the experiment harness (E1-E10, see DESIGN.md §5).
//
// The measured quantity everywhere is ROUNDS (the LOCAL model's complexity
// measure), surfaced through benchmark counters; wall-clock time is reported
// by google-benchmark as a by-product. Each binary regenerates one
// experiment row/series of EXPERIMENTS.md.
#pragma once

// Harness selection: google-benchmark when available, the vendored minimal
// fallback otherwise (CMake defines DELTACOL_USE_MINIBENCH when
// libbenchmark-dev is missing, so experiments always build).
#ifdef DELTACOL_USE_MINIBENCH
#include "minibench.h"
#else
#include <benchmark/benchmark.h>
#endif

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "core/api.h"
#include "graph/generators.h"
#include "util/csv.h"
#include "util/rng.h"

namespace deltacol::bench {

// When DELTACOL_CSV_DIR is set, every reported benchmark row is appended to
// <dir>/<benchmark-family>.csv (one file per family; header = sorted
// counter names) so experiment series can be plotted directly.
class CsvSink {
 public:
  static void emit(const std::string& family,
                   const std::map<std::string, double>& row) {
    const char* dir = std::getenv("DELTACOL_CSV_DIR");
    if (dir == nullptr || row.empty()) return;
    const std::string path = std::string(dir) + "/" + family + ".csv";
    std::ifstream probe(path);
    const bool fresh = !probe.good();
    probe.close();
    std::ofstream out(path, std::ios::app);
    if (!out.good()) return;
    if (fresh) {
      bool first = true;
      for (const auto& [k, v] : row) {
        out << (first ? "" : ",") << k;
        first = false;
      }
      out << '\n';
    }
    bool first = true;
    for (const auto& [k, v] : row) {
      out << (first ? "" : ",") << v;
      first = false;
    }
    out << '\n';
  }
};

// Deterministic workload construction: one graph per (family, n, d, seed).
inline Graph make_regular(int n, int d, std::uint64_t seed) {
  Rng rng(seed * 1000003ULL + static_cast<std::uint64_t>(n) * 31 +
          static_cast<std::uint64_t>(d));
  return random_regular(n, d, rng);
}

inline Graph make_tree(int n, int d, std::uint64_t seed) {
  Rng rng(seed * 7349ULL + static_cast<std::uint64_t>(n));
  return random_tree(n, d, rng);
}

inline double log2log2(double n) {
  return std::log2(std::max(2.0, std::log2(std::max(4.0, n))));
}

// Attach the standard counters every experiment reports.
inline void report(benchmark::State& state, const DeltaColoringResult& res) {
  state.counters["rounds"] = static_cast<double>(res.ledger.total());
  state.counters["retries"] = res.stats.retries_used;
  state.counters["repairs"] = res.stats.repairs;
}

// Dump the state's counters plus the range arguments as one CSV row (no-op
// unless DELTACOL_CSV_DIR is set). Call at the end of a benchmark body.
inline void csv_row(benchmark::State& state, const std::string& family) {
  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(state.range(0));
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit(family, row);
}

}  // namespace deltacol::bench
