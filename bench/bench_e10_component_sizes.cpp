// E10 — Lemma 24 (P2): the components left after shattering have size
// O(poly(Delta) log n).
//
// Series: max and count of leftover components vs n under fixed marking
// parameters. Reproduction claim: max component size grows like log n (flat
// max_comp_per_log), not like n (decaying max_comp_per_n).
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void E10_Components(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_regular(n, 4, 101);
  DeltaColoringOptions opt;
  opt.dcc_radius = 2;
  opt.selection_prob = 1.0 / 64.0;
  opt.backoff = 3;
  opt.seed = 13;
  DeltaColoringResult res;
  double max_comp = 0, comps = 0, leftover = 0;
  const int reps = 3;
  for (auto _ : state) {
    for (int rep = 0; rep < reps; ++rep) {
      res = delta_color(g, Algorithm::kRandomizedLarge, opt);
      ++opt.seed;
      max_comp += static_cast<double>(res.stats.max_leftover_component) / reps;
      comps += static_cast<double>(res.stats.leftover_components) / reps;
      leftover += static_cast<double>(res.stats.leftover_vertices) / reps;
    }
  }
  report(state, res);
  state.counters["max_component"] = max_comp;
  state.counters["num_components"] = comps;
  state.counters["leftover"] = leftover;
  state.counters["max_comp_per_log"] =
      max_comp / std::log2(static_cast<double>(n));
  state.counters["max_comp_per_n"] = max_comp / n;
  csv_row(state, "e10_component_sizes");
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E10_Components)
    ->Arg(2048)->Arg(8192)->Arg(32768)->Arg(131072)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
