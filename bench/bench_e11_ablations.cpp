// E11 — ablations over the design choices DESIGN.md calls out:
//   (a) list-coloring engine: deterministic class sweep vs randomized trial
//       coloring (the Theorem 18 vs Theorem 19 choice);
//   (b) marking constants: practical defaults vs the paper's asymptotic
//       constants (b = 6, p = Delta^-6);
//   (c) DCC-detection radius r: how much of the graph the B-layers absorb
//       vs how much the shattering machinery must handle.
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void E11_ListEngine(benchmark::State& state) {
  const bool randomized = state.range(0) != 0;
  const int d = static_cast<int>(state.range(1));
  const int n = 8192;
  const Graph g = make_regular(n, d, 111);
  DeltaColoringOptions opt;
  opt.seed = 21;
  opt.list_engine =
      randomized ? ListEngine::kRandomized : ListEngine::kDeterministic;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kRandomizedLarge, opt);
    ++opt.seed;
  }
  report(state, res);
  state.counters["randomized_engine"] = randomized ? 1 : 0;
  state.counters["delta"] = d;
}

void E11_PaperConstants(benchmark::State& state) {
  const bool paper = state.range(0) != 0;
  const int n = 8192;
  const Graph g = make_regular(n, 4, 112);
  DeltaColoringOptions opt;
  opt.seed = 22;
  opt.use_paper_constants = paper;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kRandomizedLarge, opt);
    ++opt.seed;
  }
  report(state, res);
  state.counters["paper_constants"] = paper ? 1 : 0;
  state.counters["tnodes"] = res.stats.num_tnodes;
  state.counters["leftover"] = res.stats.leftover_vertices;
}

void E11_DccRadius(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  const int n = 8192;
  const Graph g = make_regular(n, 4, 113);
  DeltaColoringOptions opt;
  opt.seed = 23;
  opt.dcc_radius = r;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kRandomizedLarge, opt);
    ++opt.seed;
  }
  report(state, res);
  state.counters["r"] = r;
  state.counters["dccs"] = res.stats.num_dccs_selected;
  state.counters["b0"] = res.stats.base_layer_size;
  state.counters["h_size"] = res.stats.h_vertices;
  state.counters["leftover"] = res.stats.leftover_vertices;
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E11_ListEngine)
    ->ArgsProduct({{0, 1}, {4, 8, 16}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(deltacol::bench::E11_PaperConstants)
    ->Arg(0)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(deltacol::bench::E11_DccRadius)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
