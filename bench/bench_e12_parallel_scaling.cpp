// E12 — parallel runtime scaling (see DESIGN.md "Runtime", EXPERIMENTS.md).
//
// Measures WALL-CLOCK speedup of the simulation itself vs num_threads on
// the largest generator graphs — the one experiment where time, not rounds,
// is the quantity of interest (rounds are thread-count invariant by the
// determinism guarantee, which this driver also re-asserts via the ledger
// counter: every row of one series must report identical rounds).
//
// Series: time vs threads ∈ {1, 2, 4, 8} at n = 100k (and a 200k point for
// kRandomizedLarge) for the two headline algorithms. The acceptance target
// is ≥ 2x at 8 threads over 1 thread on an n >= 100k graph on multi-core
// hardware; `speedup_vs_1t` reports it directly (the 1-thread baseline per
// (alg, n, d) series is cached across rows of that series).
#include <chrono>
#include <map>
#include <tuple>

#include "bench_common.h"

namespace deltacol::bench {
namespace {

// 1-thread wall-clock per (alg-id, n, d), filled by the threads=1 row of
// each series (benchmark rows of one series run in registration order).
std::map<std::tuple<int, int, int>, double>& baseline_seconds() {
  static std::map<std::tuple<int, int, int>, double> b;
  return b;
}

void run_scaling(benchmark::State& state, Algorithm alg, int alg_id) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  const Graph g = make_regular(n, d, 77);
  DeltaColoringOptions opt;
  opt.seed = 9;
  opt.num_threads = threads;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, alg, opt);
  }
  report(state, res);
  state.counters["threads"] = threads;

  // Wall-clock of the timed section, measured independently of the harness
  // so the speedup counter works under both harnesses.
  const auto t0 = std::chrono::steady_clock::now();
  res = delta_color(g, alg, opt);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(res);
  state.counters["seconds"] = secs;
  const auto key = std::make_tuple(alg_id, n, d);
  if (threads == 1) baseline_seconds()[key] = secs;
  const auto it = baseline_seconds().find(key);
  state.counters["speedup_vs_1t"] =
      (it != baseline_seconds().end() && secs > 0.0) ? it->second / secs : 0.0;
  csv_row(state, "e12_parallel_scaling");
}

void E12_RandomizedLarge(benchmark::State& state) {
  run_scaling(state, Algorithm::kRandomizedLarge, 0);
}

void E12_Deterministic(benchmark::State& state) {
  run_scaling(state, Algorithm::kDeterministic, 1);
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E12_RandomizedLarge)
    ->ArgsProduct({{100000, 200000}, {8}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E12_Deterministic)
    ->ArgsProduct({{100000}, {8}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
