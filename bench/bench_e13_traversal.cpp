// E13 — traversal engine throughput (graph/frontier_bfs.h; DESIGN.md §6).
//
// The one experiment that measures the simulator's BFS substrate itself,
// introduced with the frontier engine rewrite:
//
//  * repeated r-ball queries — the DCC-detection access pattern — through
//    the seed-style implementation (a fresh O(n) distance vector + O(n)
//    result scan per query) vs the epoch-stamped scratch (O(ball) per
//    query). `speedup_vs_seed` is the acceptance counter: >= 5x at n = 1M.
//  * full-graph layered BFS and labeled multi-source BFS, serial vs pooled
//    (threads ∈ {1, 2, 8}) — the build_layers / ruling-set coverage
//    pattern. `speedup_vs_1t` mirrors E12; rounds play no role here, the
//    engine is below the cost model.
//
// Emission: wall-clock per row (both harnesses), plus BENCH_*.json when
// DELTACOL_BENCH_JSON is set under the minibench harness (see
// bench/README.md for the schema) and CSV via DELTACOL_CSV_DIR.
#include <chrono>
#include <map>
#include <queue>
#include <tuple>
#include <utility>

#include "bench_common.h"
#include "graph/frontier_bfs.h"
#include "graph/traversal.h"
#include "runtime/thread_pool.h"

namespace deltacol::bench {
namespace {

constexpr int kDegree = 8;
constexpr int kBallQueries = 512;

// Graphs are expensive at n = 1M; build each (n, d) once per process.
const Graph& cached_regular(int n) {
  static std::map<int, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, make_regular(n, kDegree, 77)).first;
  }
  return it->second;
}

// Deterministic query centers spread over the vertex range.
inline int center(int i, int n) {
  return static_cast<int>((static_cast<std::int64_t>(i) * 99991) % n);
}

// The seed's ball(): queue BFS into a fresh n-sized distance vector, then
// an O(n) scan for reached vertices — kept verbatim as the baseline.
std::size_t seed_style_ball_size(const Graph& g, int v, int r) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(v)] = 0;
  q.push(v);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    if (dist[static_cast<std::size_t>(u)] >= r) continue;
    for (int w : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] == -1) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(w);
      }
    }
  }
  std::size_t count = 0;
  for (int u = 0; u < g.num_vertices(); ++u) {
    if (dist[static_cast<std::size_t>(u)] != -1) ++count;
  }
  return count;
}

// 1-run wall-clock baselines for the speedup counters, filled by the
// baseline row of each series (rows run in registration order).
std::map<std::tuple<int, int, int>, double>& baselines() {
  static std::map<std::tuple<int, int, int>, double> b;
  return b;
}

void e13_csv(benchmark::State& state, const std::string& family) {
  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(state.range(0));
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit(family, row);
}

// ---- repeated r-ball queries (series id 0) --------------------------------

void E13_BallSeedStyle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const Graph& g = cached_regular(n);
  std::size_t checksum = 0;
  std::int64_t queries = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBallQueries; ++i) {
      checksum += seed_style_ball_size(g, center(i, n), r);
      ++queries;
    }
  }
  benchmark::DoNotOptimize(checksum);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBallQueries; ++i) {
    checksum += seed_style_ball_size(g, center(i, n), r);
    ++queries;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  baselines()[std::make_tuple(0, n, r)] = secs;
  state.counters["queries_per_s"] = secs > 0.0 ? kBallQueries / secs : 0.0;
  state.counters["mean_ball"] =
      queries > 0 ? static_cast<double>(checksum) / static_cast<double>(queries)
                  : 0.0;
  e13_csv(state, "e13_ball_seed");
}

void E13_BallScratch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const Graph& g = cached_regular(n);
  BfsScratch scratch;
  FrontierBfs engine;
  std::size_t checksum = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBallQueries; ++i) {
      engine.run(g, scratch, center(i, n), r);
      checksum += scratch.order().size();
    }
  }
  benchmark::DoNotOptimize(checksum);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBallQueries; ++i) {
    engine.run(g, scratch, center(i, n), r);
    checksum += scratch.order().size();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  state.counters["queries_per_s"] = secs > 0.0 ? kBallQueries / secs : 0.0;
  const auto it = baselines().find(std::make_tuple(0, n, r));
  state.counters["speedup_vs_seed"] =
      (it != baselines().end() && secs > 0.0) ? it->second / secs : 0.0;
  e13_csv(state, "e13_ball_scratch");
}

// ---- full-graph layered / multi-source BFS, serial vs pooled --------------

void run_full_graph(benchmark::State& state, bool multi_source, int series) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Graph& g = cached_regular(n);
  ThreadPool pool(threads);
  BfsScratch scratch;
  FrontierBfs engine(threads > 1 ? &pool : nullptr);
  std::vector<int> seeds;
  if (multi_source) {
    for (int i = 0; i < n / 64; ++i) seeds.push_back(center(i, n));
  }
  auto sweep = [&] {
    if (multi_source) {
      engine.run_multi_labeled(g, scratch, seeds);
    } else {
      engine.run(g, scratch, 0);
    }
    return scratch.order().size() + static_cast<std::size_t>(scratch.num_levels());
  };
  std::size_t checksum = 0;
  for (auto _ : state) checksum += sweep();
  benchmark::DoNotOptimize(checksum);

  const auto t0 = std::chrono::steady_clock::now();
  checksum += sweep();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  state.counters["threads"] = threads;
  state.counters["levels"] = scratch.num_levels();
  state.counters["mverts_per_s"] =
      secs > 0.0 ? static_cast<double>(scratch.order().size()) / secs / 1e6
                 : 0.0;
  if (threads == 1) baselines()[std::make_tuple(series, n, 0)] = secs;
  const auto it = baselines().find(std::make_tuple(series, n, 0));
  state.counters["speedup_vs_1t"] =
      (it != baselines().end() && secs > 0.0) ? it->second / secs : 0.0;
  e13_csv(state, multi_source ? "e13_multi_source" : "e13_layers");
}

void E13_Layers(benchmark::State& state) { run_full_graph(state, false, 1); }
void E13_MultiSource(benchmark::State& state) {
  run_full_graph(state, true, 2);
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E13_BallSeedStyle)
    ->ArgsProduct({{100000, 1000000}, {2}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E13_BallScratch)
    ->ArgsProduct({{100000, 1000000}, {2}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E13_Layers)
    ->ArgsProduct({{100000, 1000000}, {1, 2, 8}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E13_MultiSource)
    ->ArgsProduct({{100000, 1000000}, {1, 2, 8}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);
