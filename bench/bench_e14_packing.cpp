// E14 — batch-parallel ruling-set packing (mis/packing.h; DESIGN.md §6).
//
// Measures the engine that removed the largest serial section of the E12
// Amdahl curve: the greedy distance-alpha packing behind the deterministic
// ruling-set engine (Lemma 20). Two series:
//
//  * E14_PackingReference — the literal serial greedy (the golden oracle),
//    whose wall-clock is the baseline for `speedup_vs_ref`.
//  * E14_PackingBatch — the round-based batch engine at threads ∈ {1, 2, 8}.
//    Every row re-checks bit-identity against the reference (`identical`
//    counter must be 1 on every row — the golden contract, cheap enough to
//    assert per run). `picks` reports the packing size; `speedup_vs_ref`
//    needs multi-core hardware to exceed ~1 (same caveat as E12/E13): at
//    1 thread the batch engine degenerates to one candidate per round,
//    reproducing the reference's work pattern, so ~1.0 is the expectation.
//
// Emission: wall-clock per row (both harnesses), BENCH_e14.json when
// DELTACOL_BENCH_JSON is set under the minibench harness (schema in
// bench/README.md), CSV via DELTACOL_CSV_DIR.
#include <chrono>
#include <map>

#include "bench_common.h"
#include "mis/packing.h"
#include "runtime/thread_pool.h"

namespace deltacol::bench {
namespace {

constexpr int kDegree = 8;
constexpr int kAlpha = 3;

const Graph& cached_regular(int n) {
  static std::map<int, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, make_regular(n, kDegree, 77)).first;
  }
  return it->second;
}

std::vector<int> all_vertices(const Graph& g) {
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    all[static_cast<std::size_t>(v)] = v;
  }
  return all;
}

void e14_csv(benchmark::State& state, const std::string& family) {
  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(state.range(0));
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit(family, row);
}

void E14_PackingReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph& g = cached_regular(n);
  const auto subset = all_vertices(g);
  std::size_t picks = 0;
  for (auto _ : state) {
    picks = greedy_alpha_packing_reference(g, subset, kAlpha).size();
  }
  benchmark::DoNotOptimize(picks);
  state.counters["picks"] = static_cast<double>(picks);
  e14_csv(state, "e14_packing_ref");
}

void E14_PackingBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Graph& g = cached_regular(n);
  const auto subset = all_vertices(g);
  ThreadPool pool(threads);
  ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  std::size_t checksum = 0;
  for (auto _ : state) {
    checksum += greedy_alpha_packing(g, subset, kAlpha, pool_ptr).size();
  }
  benchmark::DoNotOptimize(checksum);

  // Self-contained speedup row: the reference is rerun and timed here (it
  // is needed anyway for the identity check), so filtering or reordering
  // the series cannot silently zero the counter.
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = greedy_alpha_packing(g, subset, kAlpha, pool_ptr);
  const auto t1 = std::chrono::steady_clock::now();
  const auto ref = greedy_alpha_packing_reference(g, subset, kAlpha);
  const auto t2 = std::chrono::steady_clock::now();
  const double batch_secs = std::chrono::duration<double>(t1 - t0).count();
  const double ref_secs = std::chrono::duration<double>(t2 - t1).count();
  state.counters["threads"] = threads;
  state.counters["picks"] = static_cast<double>(batch.size());
  // The golden contract, re-asserted on every row.
  state.counters["identical"] = batch == ref ? 1.0 : 0.0;
  state.counters["speedup_vs_ref"] =
      batch_secs > 0.0 ? ref_secs / batch_secs : 0.0;
  e14_csv(state, "e14_packing_batch");
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E14_PackingReference)
    ->ArgsProduct({{100000, 400000}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E14_PackingBatch)
    ->ArgsProduct({{100000, 400000}, {1, 2, 8}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);
