// E15 — the shard layer (graph/partition.h + runtime/mailbox.h).
//
// Two claims, two series:
//
//  * E15_ShardInvariance — delta_color at shards ∈ {1, 2, 4, 8}: the round
//    total and the coloring are INVARIANT in the shard count (`identical`
//    must be 1 and `rounds` constant on every row — the golden contract the
//    determinism suite enforces per commit, re-asserted here on the bench
//    workload). Wall-clock differences between rows are placement effects
//    only; like E12/E13/E14, speedups need multi-core hardware.
//
//  * E15_MessageVolume — the CONGEST-style metric a distributed transport
//    would pay: Luby's MIS on the message-passing engine over a
//    ShardRuntime, reporting per-round per-shard message volume and the
//    cross-shard fraction. `msgs_total` is shard-invariant (the same
//    envelopes flow, only their slot routing changes); `cross_fraction`
//    grows with the shard count — the quantity to watch when sizing a real
//    transport. `mis_identical` re-asserts bit-identity to the unsharded
//    engine on every row.
//
// Emission: wall-clock per row (both harnesses), BENCH_e15.json when
// DELTACOL_BENCH_JSON is set under the minibench harness (schema in
// bench/README.md), CSV via DELTACOL_CSV_DIR.
#include <map>

#include "bench_common.h"
#include "graph/metrics.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "runtime/mailbox.h"
#include "runtime/thread_pool.h"

namespace deltacol::bench {
namespace {

constexpr int kDegree = 8;

const Graph& cached_regular(int n) {
  static std::map<int, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, make_regular(n, kDegree, 2025)).first;
  }
  return it->second;
}

void e15_csv(benchmark::State& state, const std::string& family) {
  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(state.range(0));
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit(family, row);
}

void E15_ShardInvariance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int num_shards = static_cast<int>(state.range(1));
  const Graph& g = cached_regular(n);

  DeltaColoringOptions base;
  base.seed = 7;
  base.num_threads = 1;
  base.num_shards = 1;
  const DeltaColoringResult oracle =
      delta_color(g, Algorithm::kRandomizedSmall, base);

  DeltaColoringOptions opt = base;
  opt.num_shards = num_shards;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kRandomizedSmall, opt);
  }
  state.counters["shards"] = num_shards;
  state.counters["rounds"] = static_cast<double>(res.ledger.total());
  // The golden contract, re-asserted on every row.
  state.counters["identical"] =
      (res.coloring == oracle.coloring &&
       res.ledger.total() == oracle.ledger.total())
          ? 1.0
          : 0.0;
  e15_csv(state, "e15_shard_invariance");
}

void E15_MessageVolume(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int num_shards = static_cast<int>(state.range(1));
  const Graph& g = cached_regular(n);

  // Unsharded oracle for the bit-identity counter.
  std::vector<bool> oracle_mis;
  {
    Rng rng(99);
    RoundLedger ledger;
    oracle_mis = luby_mis_message_passing(g, rng, ledger, "mis");
  }

  std::int64_t rounds = 0;
  std::int64_t msgs = 0;
  std::int64_t cross = 0;
  bool identical = true;
  for (auto _ : state) {
    ShardRuntime shards(g, num_shards, nullptr);
    Rng rng(99);
    RoundLedger ledger;
    const auto mis =
        luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &shards);
    identical = identical && mis == oracle_mis;
    rounds = shards.rounds_recorded();
    msgs = shards.total_messages();
    cross = shards.cross_shard_messages();
  }
  state.counters["shards"] = num_shards;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["msgs_total"] = static_cast<double>(msgs);
  state.counters["msgs_per_round"] =
      rounds > 0 ? static_cast<double>(msgs) / static_cast<double>(rounds)
                 : 0.0;
  state.counters["msgs_per_round_per_shard"] =
      rounds > 0 ? static_cast<double>(msgs) /
                       (static_cast<double>(rounds) * num_shards)
                 : 0.0;
  state.counters["cross_fraction"] =
      msgs > 0 ? static_cast<double>(cross) / static_cast<double>(msgs) : 0.0;
  // The static analogue of cross_fraction: the fraction of graph edges the
  // contiguous partition cuts (graph/metrics.h — E18 reports the same metric
  // for the locality partition).
  state.counters["cross_edge_fraction"] = cross_edge_fraction(
      g, VertexPartition::contiguous(g.num_vertices(), num_shards));
  state.counters["mis_identical"] = identical ? 1.0 : 0.0;
  e15_csv(state, "e15_message_volume");
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E15_ShardInvariance)
    ->ArgsProduct({{20000, 50000}, {1, 2, 4, 8}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E15_MessageVolume)
    ->ArgsProduct({{20000, 50000}, {1, 2, 4, 8}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);
