// E16 — CONGEST mode (runtime/message_size.h + the CongestLedger mode of
// local/round_ledger.h + congest/gossip.h).
//
// Three claims, three series:
//
//  * E16_RoundInflation — delta_color under bandwidth caps
//    B ∈ {16, 64, 256, inf}: `rounds` is monotone non-increasing in B and
//    `identical` must be 1 on every row (the coloring is B-invariant — the
//    cap is an accounting overlay, never an execution constraint). The
//    `inflation` column is rounds(B) / rounds(inf), the price of bandwidth
//    the paper's LOCAL analysis abstracts away.
//
//  * E16_CongestVolume — Luby's MIS on the message-passing engine over a
//    ShardRuntime: wire BYTES (MessageSize sizing) per round and per shard,
//    plus the cross-shard byte fraction — the serialization budget a
//    distributed transport would pay, refined from E15's envelope counts.
//
//  * E16_GossipRounds — broadcast + convergecast over the BFS gossip tree
//    vs B: charged rounds scale as height * ceil(payload / B) while the
//    aggregate value stays B-invariant (`agg_ok`).
//
// Emission: wall-clock per row, BENCH_e16.json when DELTACOL_BENCH_JSON is
// set under the minibench harness (schema in bench/README.md), CSV via
// DELTACOL_CSV_DIR.
#include <map>

#include "bench_common.h"
#include "congest/gossip.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "runtime/mailbox.h"
#include "runtime/thread_pool.h"

namespace deltacol::bench {

// Finite stand-in for B = infinity (LOCAL): wider than any message the
// pipelines send, so the congest path runs and still charges 1 per round.
// (Named at namespace scope so the BENCHMARK arg lists below can spell it.)
constexpr std::int64_t kInfB = 1'000'000'000;

namespace {

constexpr int kDegree = 8;

const Graph& cached_regular(int n) {
  static std::map<int, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, make_regular(n, kDegree, 2025)).first;
  }
  return it->second;
}

void e16_csv(benchmark::State& state, const std::string& family) {
  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(state.range(0));
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit(family, row);
}

void E16_RoundInflation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::int64_t B = state.range(1);
  const Graph& g = cached_regular(n);

  DeltaColoringOptions local_opt;
  local_opt.seed = 7;
  const DeltaColoringResult local =
      delta_color(g, Algorithm::kRandomizedSmall, local_opt);

  DeltaColoringOptions opt = local_opt;
  opt.congest_bits = B;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kRandomizedSmall, opt);
  }
  state.counters["congest_bits"] = static_cast<double>(B);
  state.counters["rounds"] = static_cast<double>(res.ledger.total());
  state.counters["rounds_local"] = static_cast<double>(local.ledger.total());
  state.counters["inflation"] =
      static_cast<double>(res.ledger.total()) /
      static_cast<double>(local.ledger.total());
  // The differential contract, re-asserted on every row: same coloring, and
  // at B = inf the charges recover LOCAL exactly.
  state.counters["identical"] =
      (res.coloring == local.coloring &&
       (B < kInfB || res.ledger.total() == local.ledger.total()))
          ? 1.0
          : 0.0;
  e16_csv(state, "e16_round_inflation");
}

void E16_CongestVolume(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int num_shards = static_cast<int>(state.range(1));
  const Graph& g = cached_regular(n);

  std::int64_t rounds = 0;
  std::int64_t bits = 0;
  std::int64_t cross_bits = 0;
  std::int64_t msgs = 0;
  for (auto _ : state) {
    ShardRuntime shards(g, num_shards, nullptr);
    Rng rng(99);
    RoundLedger ledger;
    luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &shards);
    rounds = shards.rounds_recorded();
    bits = shards.total_bits();
    cross_bits = shards.cross_shard_bits();
    msgs = shards.total_messages();
  }
  const double bytes = static_cast<double>(bits) / 8.0;
  state.counters["shards"] = num_shards;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["bytes_total"] = bytes;
  state.counters["bytes_per_round"] =
      rounds > 0 ? bytes / static_cast<double>(rounds) : 0.0;
  state.counters["bytes_per_round_per_shard"] =
      rounds > 0 ? bytes / (static_cast<double>(rounds) * num_shards) : 0.0;
  state.counters["cross_bytes_fraction"] =
      bits > 0 ? static_cast<double>(cross_bits) / static_cast<double>(bits)
               : 0.0;
  // Wire sizing sanity: every Luby envelope is kLubyMessageBits wide.
  state.counters["bits_per_msg"] =
      msgs > 0 ? static_cast<double>(bits) / static_cast<double>(msgs) : 0.0;
  e16_csv(state, "e16_congest_volume");
}

void E16_GossipRounds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::int64_t B = state.range(1);
  const Graph& g = cached_regular(n);
  constexpr std::int64_t kPayloadBits = 256;  // a digest-sized broadcast

  const GossipTree tree = build_gossip_tree(g, 0);
  const std::vector<std::int64_t> ones(static_cast<std::size_t>(n), 1);
  std::int64_t rounds = 0;
  bool agg_ok = true;
  for (auto _ : state) {
    RoundLedger ledger;
    ledger.set_congest_bits(B);
    const auto counts =
        gossip_convergecast(tree, ones, GossipOp::kSum, ledger, "gossip");
    gossip_broadcast(tree, counts[static_cast<std::size_t>(tree.root)],
                     kPayloadBits, ledger, "gossip");
    agg_ok = agg_ok &&
             counts[static_cast<std::size_t>(tree.root)] == tree.num_nodes;
    rounds = ledger.total();
  }
  state.counters["congest_bits"] = static_cast<double>(B);
  state.counters["tree_height"] = static_cast<double>(tree.height);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["rounds_per_level"] =
      tree.height > 0
          ? static_cast<double>(rounds) / static_cast<double>(2 * tree.height)
          : 0.0;
  state.counters["agg_ok"] = agg_ok ? 1.0 : 0.0;
  e16_csv(state, "e16_gossip_rounds");
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E16_RoundInflation)
    ->ArgsProduct({{20000, 50000},
                   {16, 64, 256, deltacol::bench::kInfB}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E16_CongestVolume)
    ->ArgsProduct({{20000, 50000}, {1, 2, 4, 8}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E16_GossipRounds)
    ->ArgsProduct({{20000, 50000},
                   {16, 64, 256, deltacol::bench::kInfB}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);
