// E17 — wire volume of the socket backend (net/wire_codec.h +
// net/socket_transport.h).
//
// One series, one claim: the physical bytes a 2-rank loopback cluster moves
// for Luby's MIS decompose exactly into the MessageSize-priced payload plus
// a fixed, enumerable framing overhead — nothing hidden, nothing lost.
//
//  * E17_WireVolume — two ranks over a socketpair, each running the
//    message-passing engine over its own SocketTransport. Counters:
//      - logical_bytes:  ShardRuntime total_bits / 8 (the CONGEST price);
//      - wire_bytes:     physical frame bytes both ranks sent (transport
//                        counters — length prefixes included);
//      - ratio:          wire / logical, the cost of addressing + framing.
//        Luby's 65-bit messages cost 9 payload bytes + 8 addressing bytes
//        on the wire vs 8.125 charged bytes, so the ratio sits a little
//        above 2 and falls as rows amortize their fixed 32-byte header;
//      - overhead_ok:    1 iff wire_bytes equals the closed-form
//                        prediction from the runtime's envelope counters
//                        (32 fixed bytes per frame + 17 per envelope) —
//        i.e. the framing overhead is EXACTLY the documented constants
//        (kFramePrefixBytes, exchange header, kWireSlotPrefixBytes,
//        kWireEnvelopeOverheadBytes), re-derived here from first
//        principles;
//      - identical:      1 iff both ranks' MIS, ledgers and byte counters
//        equal the in-process S=2 golden run (the differential contract,
//        re-asserted on every row).
//
// Emission: wall-clock per row, BENCH_e17.json when DELTACOL_BENCH_JSON is
// set under the minibench harness (schema in bench/README.md), CSV via
// DELTACOL_CSV_DIR.
#include <sys/socket.h>

#include <map>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "mis/luby_sync.h"
#include "net/frame.h"
#include "net/socket_transport.h"
#include "net/wire_codec.h"
#include "runtime/mailbox.h"

namespace deltacol::bench {
namespace {

constexpr int kDegree = 8;

const Graph& cached_regular(int n) {
  static std::map<int, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, make_regular(n, kDegree, 2025)).first;
  }
  return it->second;
}

struct RankResult {
  std::vector<bool> mis;
  std::int64_t ledger_total = 0;
  std::int64_t total_bits = 0;
  std::int64_t wire_sent = 0;
  std::int64_t sent_envelopes = 0;  // sum of this rank's outgoing slots
  std::int64_t rounds = 0;
};

void E17_WireVolume(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph& g = cached_regular(n);
  constexpr int kWorld = 2;

  // Golden: the same run on the in-process transport at S=2.
  std::vector<bool> golden_mis;
  std::int64_t golden_ledger = 0, golden_bits = 0;
  {
    ShardRuntime rt(g, kWorld, nullptr);
    Rng rng(99);
    RoundLedger ledger;
    golden_mis = luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &rt);
    golden_ledger = ledger.total();
    golden_bits = rt.total_bits();
  }

  std::vector<RankResult> ranks(kWorld);
  for (auto _ : state) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      state.counters["identical"] = 0;
      return;
    }
    std::vector<std::unique_ptr<ShardRuntime>> rts(kWorld);
    rts[0] = std::make_unique<ShardRuntime>(
        g, kWorld, nullptr,
        std::make_unique<SocketTransport>(0, kWorld,
                                          std::vector<int>{-1, sv[0]}));
    rts[1] = std::make_unique<ShardRuntime>(
        g, kWorld, nullptr,
        std::make_unique<SocketTransport>(1, kWorld,
                                          std::vector<int>{sv[1], -1}));
    std::vector<std::thread> threads;
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        ShardRuntime& rt = *rts[static_cast<std::size_t>(r)];
        Rng rng(99);
        RoundLedger ledger;
        RankResult& out = ranks[static_cast<std::size_t>(r)];
        out.mis = luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &rt);
        out.ledger_total = ledger.total();
        out.total_bits = rt.total_bits();
        out.rounds = rt.rounds_recorded();
        auto& st = static_cast<SocketTransport&>(rt.transport());
        out.wire_sent = st.wire_bytes_sent();
        out.sent_envelopes = 0;
        for (int d = 0; d < kWorld; ++d) {
          out.sent_envelopes += rt.slot_messages(r, d);
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  // Closed-form framing prediction per rank: every engine round ships one
  // frame to the (world-1) peer(s). Fixed bytes per frame: the 4-byte frame
  // length prefix + the 12-byte exchange header (sender, seq, slot count) +
  // per slot a 4-byte length and the 4-byte envelope-count prefix. Variable
  // bytes: 8 addressing + 9 Luby payload per envelope.
  constexpr std::int64_t kFixedPerFrame =
      kFramePrefixBytes + 12 + kWorld * (4 + kWireSlotPrefixBytes);
  constexpr std::int64_t kLubyPayloadBytes = 9;  // ceil(1/8) + ceil(64/8)
  constexpr std::int64_t kPerEnvelope =
      kWireEnvelopeOverheadBytes + kLubyPayloadBytes;

  bool identical = true;
  bool overhead_ok = true;
  std::int64_t wire_total = 0;
  for (const RankResult& rr : ranks) {
    identical = identical && rr.mis == golden_mis &&
                rr.ledger_total == golden_ledger &&
                rr.total_bits == golden_bits;
    const std::int64_t predicted =
        (kWorld - 1) *
        (rr.rounds * kFixedPerFrame + rr.sent_envelopes * kPerEnvelope);
    overhead_ok = overhead_ok && rr.wire_sent == predicted;
    wire_total += rr.wire_sent;
  }
  const double logical_bytes = static_cast<double>(golden_bits) / 8.0;

  state.counters["rounds"] = static_cast<double>(ranks[0].rounds);
  state.counters["logical_bytes"] = logical_bytes;
  state.counters["wire_bytes"] = static_cast<double>(wire_total);
  state.counters["ratio"] =
      logical_bytes > 0 ? static_cast<double>(wire_total) / logical_bytes : 0.0;
  state.counters["overhead_ok"] = overhead_ok ? 1.0 : 0.0;
  state.counters["identical"] = identical ? 1.0 : 0.0;

  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(state.range(0));
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit("e17_wire_volume", row);
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E17_WireVolume)
    ->ArgsProduct({{20000, 50000}})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);
