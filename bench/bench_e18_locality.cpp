// E18 — locality-aware partitioning (graph/renumber.h +
// PartitionStrategy::kCluster).
//
// The claim: on clustered topologies with wild vertex ids, the cluster
// partition cuts the cross-shard traffic the contiguous partition pays —
// while every observable (rounds, colorings, MIS) stays bit-identical,
// because partitioning is placement-only (DESIGN.md §6).
//
// Workloads: a 2-D grid, a triangle cactus, and a preferential-attachment
// power-law graph, each with ids SCRAMBLED by a fixed pseudo-random
// permutation. The scramble matters: these generators hand out ids in
// construction order, which is already layout-friendly, so an unscrambled
// grid would make the contiguous baseline look artificially good. Wild ids
// model real inputs (hashed ids, crawl order), where contiguous ranges are
// topologically meaningless and the cross-edge fraction sits near the
// pessimistic (S-1)/S bound that E15 measures on expanders.
//
//  * E18_CrossTraffic — shards ∈ {2, 4, 8} per workload:
//      - cross_frac_contig / cross_frac_cluster: static cut fraction of the
//        two strategies (graph/metrics.h cross_edge_fraction);
//      - cross_cut_pct: 100·(1 − cluster/contig) — the acceptance criterion
//        is ≥ 30 on the grid and cactus rows at every S;
//      - cross_mrps_contig / cross_mrps_cluster: cross-shard envelopes per
//        round per shard for Luby's MIS through the sharded mailbox engine
//        (total envelopes are partition-invariant — only their slot routing
//        changes — so the cross count is the quantity a transport pays);
//      - rounds: delta_color(small) round total (must match across
//        strategies);
//      - identical: 1 iff the MIS, the coloring and the ledger are
//        bit-identical between the two strategies AND the unsharded oracle.
//
//  * E18_WirePayload — 2 ranks over a socketpair per workload, one run per
//    strategy: wire_cross_contig / wire_cross_cluster are the encoded
//    payload bytes addressed to the peer rank
//    (SocketTransport::cross_payload_bytes — what an owner-routed exchange
//    puts on the wire; the replicated merge's physical bytes are
//    partition-invariant, see net/socket_transport.h), wire_cut_pct the
//    relative drop, identical the cross-strategy bit-identity.
//
// Emission: wall-clock per row, BENCH_e18.json when DELTACOL_BENCH_JSON is
// set under the minibench harness (schema in bench/README.md), CSV via
// DELTACOL_CSV_DIR.
#include <sys/socket.h>

#include <map>
#include <memory>
#include <numeric>
#include <thread>

#include "bench_common.h"
#include "graph/metrics.h"
#include "graph/renumber.h"
#include "mis/luby_sync.h"
#include "net/socket_transport.h"
#include "runtime/mailbox.h"

namespace deltacol::bench {
namespace {

// Workload table: clustered topologies whose construction-order ids are then
// destroyed by a fixed Fisher-Yates scramble.
constexpr const char* kWorkloadNames[] = {"grid-100x100", "cactus-6000",
                                          "powerlaw-2000-3"};

Graph build_workload(int which) {
  switch (which) {
    case 0:
      return grid_graph(100, 100, false);
    case 1:
      return triangle_cactus(6000);
    default: {
      Rng rng(2026);
      return preferential_attachment(2000, 3, rng);
    }
  }
}

const Graph& scrambled_workload(int which) {
  static std::map<int, Graph> cache;
  auto it = cache.find(which);
  if (it == cache.end()) {
    const Graph base = build_workload(which);
    const int n = base.num_vertices();
    auto to_new = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n));
    std::iota(to_new->begin(), to_new->end(), 0);
    Rng rng(0xE18u + static_cast<std::uint64_t>(which));
    rng.shuffle(*to_new);
    auto to_old = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      (*to_old)[static_cast<std::size_t>((*to_new)[static_cast<std::size_t>(v)])] = v;
    }
    Renumbering scramble;
    scramble.to_new = to_new;
    scramble.to_old = to_old;
    it = cache.emplace(which, relabeled_graph(base, scramble)).first;
  }
  return it->second;
}

struct LubyRun {
  std::vector<bool> mis;
  std::int64_t rounds = 0;
  std::int64_t msgs = 0;
  std::int64_t cross = 0;
};

LubyRun luby_over(const Graph& g, const VertexPartition& part) {
  ShardRuntime rt(g, part, nullptr);
  Rng rng(99);
  RoundLedger ledger;
  LubyRun out;
  out.mis = luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &rt);
  out.rounds = rt.rounds_recorded();
  out.msgs = rt.total_messages();
  out.cross = rt.cross_shard_messages();
  return out;
}

void e18_csv(benchmark::State& state, const std::string& family) {
  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(state.range(0));
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit(family, row);
}

void E18_CrossTraffic(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int num_shards = static_cast<int>(state.range(1));
  const Graph& g = scrambled_workload(which);

  const VertexPartition contig =
      VertexPartition::contiguous(g.num_vertices(), num_shards);
  const VertexPartition cluster =
      make_partition(g, num_shards, PartitionStrategy::kCluster, nullptr);

  const double frac_contig = cross_edge_fraction(g, contig);
  const double frac_cluster = cross_edge_fraction(g, cluster);

  // Unsharded oracle for the bit-identity counter.
  std::vector<bool> oracle_mis;
  {
    Rng rng(99);
    RoundLedger ledger;
    oracle_mis = luby_mis_message_passing(g, rng, ledger, "mis");
  }

  LubyRun lc, lk;
  DeltaColoringResult rc, rk;
  for (auto _ : state) {
    lc = luby_over(g, contig);
    lk = luby_over(g, cluster);
    DeltaColoringOptions opt;
    opt.seed = 7;
    opt.num_threads = 1;
    opt.num_shards = num_shards;
    opt.partition = PartitionStrategy::kContiguous;
    rc = delta_color(g, Algorithm::kRandomizedSmall, opt);
    opt.partition = PartitionStrategy::kCluster;
    rk = delta_color(g, Algorithm::kRandomizedSmall, opt);
  }

  const bool identical = lc.mis == oracle_mis && lk.mis == oracle_mis &&
                         lc.msgs == lk.msgs && lc.rounds == lk.rounds &&
                         rc.coloring == rk.coloring &&
                         rc.ledger.total() == rk.ledger.total();
  const auto per_round_shard = [&](std::int64_t msgs, std::int64_t rounds) {
    return rounds > 0 ? static_cast<double>(msgs) /
                            (static_cast<double>(rounds) * num_shards)
                      : 0.0;
  };
  state.counters["shards"] = num_shards;
  state.counters["cross_frac_contig"] = frac_contig;
  state.counters["cross_frac_cluster"] = frac_cluster;
  state.counters["cross_cut_pct"] =
      frac_contig > 0 ? 100.0 * (1.0 - frac_cluster / frac_contig) : 0.0;
  state.counters["cross_mrps_contig"] = per_round_shard(lc.cross, lc.rounds);
  state.counters["cross_mrps_cluster"] = per_round_shard(lk.cross, lk.rounds);
  state.counters["rounds"] = static_cast<double>(rc.ledger.total());
  state.counters["identical"] = identical ? 1.0 : 0.0;
  e18_csv(state, std::string("e18_cross_traffic_") + kWorkloadNames[which]);
}

void E18_WirePayload(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const Graph& g = scrambled_workload(which);
  constexpr int kWorld = 2;

  // One 2-rank socketpair run per strategy; returns (cross payload bytes,
  // mis) — both ranks' MIS must equal the unsharded oracle.
  std::vector<bool> oracle_mis;
  {
    Rng rng(99);
    RoundLedger ledger;
    oracle_mis = luby_mis_message_passing(g, rng, ledger, "mis");
  }
  const auto run_pair = [&](const VertexPartition& part, bool* ok) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      *ok = false;
      return static_cast<std::int64_t>(0);
    }
    std::vector<std::unique_ptr<ShardRuntime>> rts(kWorld);
    rts[0] = std::make_unique<ShardRuntime>(
        g, part, nullptr,
        std::make_unique<SocketTransport>(0, kWorld,
                                          std::vector<int>{-1, sv[0]}));
    rts[1] = std::make_unique<ShardRuntime>(
        g, part, nullptr,
        std::make_unique<SocketTransport>(1, kWorld,
                                          std::vector<int>{sv[1], -1}));
    std::int64_t cross_payload = 0;
    bool identical = true;
    std::vector<std::thread> threads;
    std::vector<std::vector<bool>> mis(kWorld);
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        ShardRuntime& rt = *rts[static_cast<std::size_t>(r)];
        Rng rng(99);
        RoundLedger ledger;
        mis[static_cast<std::size_t>(r)] =
            luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &rt);
      });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < kWorld; ++r) {
      identical = identical && mis[static_cast<std::size_t>(r)] == oracle_mis;
      cross_payload +=
          static_cast<SocketTransport&>(rts[static_cast<std::size_t>(r)]->transport())
              .cross_payload_bytes();
    }
    *ok = *ok && identical;
    return cross_payload;
  };

  const VertexPartition contig =
      VertexPartition::contiguous(g.num_vertices(), kWorld);
  const VertexPartition cluster =
      make_partition(g, kWorld, PartitionStrategy::kCluster, nullptr);
  bool ok = true;
  std::int64_t wire_contig = 0, wire_cluster = 0;
  for (auto _ : state) {
    wire_contig = run_pair(contig, &ok);
    wire_cluster = run_pair(cluster, &ok);
  }
  state.counters["wire_cross_contig"] = static_cast<double>(wire_contig);
  state.counters["wire_cross_cluster"] = static_cast<double>(wire_cluster);
  state.counters["wire_cut_pct"] =
      wire_contig > 0
          ? 100.0 * (1.0 - static_cast<double>(wire_cluster) /
                               static_cast<double>(wire_contig))
          : 0.0;
  state.counters["identical"] = ok ? 1.0 : 0.0;
  e18_csv(state, std::string("e18_wire_payload_") + kWorkloadNames[which]);
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E18_CrossTraffic)
    ->ArgsProduct({{0, 1, 2}, {2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E18_WirePayload)
    ->ArgsProduct({{0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
