// E19 — ExecutionMode::kFast vs kDeterministic (runtime/execution_mode.h).
//
// The claim: dropping the determinism discipline's ordering passes — the
// stable sender sorts, the two-phase frontier replay, the extra per-round
// barrier, the shard-fenced sweeps — buys wall-clock on large graphs while
// every run still produces a valid Delta-coloring with the same palette
// bound and a round total within the deterministic reference.
//
// Rows: (n, shards, threads) per headline algorithm, n ∈ {100k, 1M}. Each
// row runs BOTH modes on the same graph and seed and reports:
//   - seconds_det / seconds_fast: wall-clock of one delta_color call;
//   - speedup: seconds_det / seconds_fast;
//   - rounds_det / rounds_fast: ledger totals (fast must stay <= det);
//   - valid: 1 iff both colorings pass validate_delta_coloring AND the fast
//     ledger is within the deterministic total — the acceptance criterion,
//     asserted per row.
//
// CAVEAT on 1-core machines (and the threads = 1 rows everywhere): with a
// single worker the runtime takes its inline serial paths in both modes, so
// fast mode's claim there is only "no slower than deterministic minus the
// skipped sorts" — expect speedup ≈ 1. The relaxed-order wins need real
// parallelism; read the threads = 8 rows on multi-core hardware for the
// headline numbers. Regenerate with
// DELTACOL_BENCH_JSON=BENCH_e19.json ./build-mb/bench_e19_fast;
// BENCH_e19.json carries the landing run.
#include <chrono>

#include "bench_common.h"

namespace deltacol::bench {
namespace {

struct TimedRun {
  double seconds = 0.0;
  DeltaColoringResult res;
};

TimedRun timed_delta_color(const Graph& g, Algorithm alg,
                           const DeltaColoringOptions& opt) {
  TimedRun out;
  const auto t0 = std::chrono::steady_clock::now();
  out.res = delta_color(g, alg, opt);
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

void run_fast_vs_det(benchmark::State& state, Algorithm alg,
                     const std::string& family) {
  const int n = static_cast<int>(state.range(0));
  const int num_shards = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  const Graph g = make_regular(n, 8, 77);

  DeltaColoringOptions det_opt;
  det_opt.seed = 9;
  det_opt.num_threads = threads;
  det_opt.num_shards = num_shards;
  DeltaColoringOptions fast_opt = det_opt;
  fast_opt.mode = ExecutionMode::kFast;

  TimedRun det, fast;
  for (auto _ : state) {
    det = timed_delta_color(g, alg, det_opt);
    fast = timed_delta_color(g, alg, fast_opt);
  }

  bool valid = fast.res.ledger.total() <= det.res.ledger.total();
  try {
    validate_delta_coloring(g, det.res.coloring, det.res.delta);
    validate_delta_coloring(g, fast.res.coloring, fast.res.delta);
  } catch (const ContractViolation&) {
    valid = false;
  }

  state.counters["shards"] = num_shards;
  state.counters["threads"] = threads;
  state.counters["seconds_det"] = det.seconds;
  state.counters["seconds_fast"] = fast.seconds;
  state.counters["speedup"] =
      fast.seconds > 0.0 ? det.seconds / fast.seconds : 0.0;
  state.counters["rounds_det"] = static_cast<double>(det.res.ledger.total());
  state.counters["rounds_fast"] = static_cast<double>(fast.res.ledger.total());
  state.counters["valid"] = valid ? 1.0 : 0.0;
  csv_row(state, family);
}

void E19_RandomizedLarge(benchmark::State& state) {
  run_fast_vs_det(state, Algorithm::kRandomizedLarge, "e19_fast_large");
}

void E19_RandomizedSmall(benchmark::State& state) {
  run_fast_vs_det(state, Algorithm::kRandomizedSmall, "e19_fast_small");
}

}  // namespace
}  // namespace deltacol::bench

// (n, shards, threads): the serial sanity row, the pooled row, and the
// pooled+sharded row per size.
BENCHMARK(deltacol::bench::E19_RandomizedLarge)
    ->Args({100000, 1, 1})
    ->Args({100000, 1, 8})
    ->Args({100000, 8, 8})
    ->Args({1000000, 1, 8})
    ->Args({1000000, 8, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(deltacol::bench::E19_RandomizedSmall)
    ->Args({100000, 1, 8})
    ->Args({1000000, 1, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
