// E1 — Corollary 2: for constant Delta, the randomized small-Delta
// algorithm runs in O((log log n)^2) rounds.
//
// Series: rounds vs n for Delta in {4, 5}, compared against the
// (log log n)^2 and log^2 n reference curves (counters rounds,
// loglog2_sq, log2_sq). The reproduction claim is the SHAPE: rounds per
// (log log n)^2 stays near-flat while rounds per log^2 n decays.
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void E1_RandSmall(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Graph g = make_regular(n, d, 11);
  DeltaColoringOptions opt;
  opt.seed = 1234;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kRandomizedSmall, opt);
    ++opt.seed;
  }
  report(state, res);
  const double ll = log2log2(n);
  const double l2 = std::log2(static_cast<double>(n));
  state.counters["rounds_per_loglog_sq"] =
      static_cast<double>(res.ledger.total()) / (ll * ll);
  state.counters["rounds_per_log_sq"] =
      static_cast<double>(res.ledger.total()) / (l2 * l2);
  csv_row(state, "e1_rounds_vs_n");
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E1_RandSmall)
    ->ArgsProduct({{256, 1024, 4096, 16384, 65536}, {4, 5}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
