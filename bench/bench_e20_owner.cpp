// E20 — owner-compute distributed execution (ExchangePolicy::kOwnerRouted).
//
// The claim: routing each round's envelopes point-to-point to their owner
// rank — instead of all-gathering full mailbox rows and replaying every
// shard's merge on every rank — cuts the physical wire bytes to exactly the
// cross-shard payload PR 8's locality experiment predicted
// (SocketTransport::cross_payload_bytes, which under the replicated
// discipline is a prediction and under exchange_owned is the measured slot
// payload, asserted equal per frame), while every observable stays
// bit-identical (DESIGN.md §6, "Owner-compute").
//
// Workloads: the id-scrambled 2-D grid and triangle cactus from E18 (the
// scramble destroys construction-order locality, so the contiguous
// partition pays the pessimistic cut and the cluster partition shows the
// compounding win: locality cuts WHAT crosses, owner routing cuts WHAT
// SHIPS). Per (workload, S ∈ {2, 4, 8}, partition ∈ {contiguous, cluster})
// row, S real ranks run Luby's MIS concurrently over a full socketpair
// mesh, once per exchange policy:
//
//   - wire_repl / wire_owner: total physical bytes sent (frame payloads +
//     prefixes) across all ranks, per policy; wire_cut_pct the drop;
//   - payload_pred / payload_owner: cross_payload_bytes summed over ranks —
//     the replicated run's prediction and the owner run's realization;
//     prediction_ok = 1 iff they are equal (the acceptance criterion:
//     physical payload == predicted payload, framing accounted separately);
//   - wall_ms_repl / wall_ms_owner: slowest rank's wall-clock for the whole
//     Luby run (rank-local merge/receive + wire), per policy;
//   - identical: 1 iff every rank's MIS under BOTH policies equals the
//     unsharded oracle's.
//
// Emission: BENCH_e20.json when DELTACOL_BENCH_JSON is set under the
// minibench harness (schema in bench/README.md), CSV via DELTACOL_CSV_DIR.
#include <sys/socket.h>

#include <chrono>
#include <map>
#include <memory>
#include <numeric>
#include <thread>

#include "bench_common.h"
#include "graph/renumber.h"
#include "mis/luby_sync.h"
#include "net/socket_transport.h"
#include "runtime/mailbox.h"

namespace deltacol::bench {
namespace {

constexpr const char* kWorkloadNames[] = {"grid-100x100", "cactus-6000"};
constexpr const char* kStrategyNames[] = {"contig", "cluster"};

// Same id-scrambling discipline as E18: a fixed Fisher-Yates permutation
// destroys the generators' construction-order locality.
const Graph& scrambled_workload(int which) {
  static std::map<int, Graph> cache;
  auto it = cache.find(which);
  if (it == cache.end()) {
    const Graph base =
        which == 0 ? grid_graph(100, 100, false) : triangle_cactus(6000);
    const int n = base.num_vertices();
    auto to_new = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n));
    std::iota(to_new->begin(), to_new->end(), 0);
    Rng rng(0xE20u + static_cast<std::uint64_t>(which));
    rng.shuffle(*to_new);
    auto to_old = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      (*to_old)[static_cast<std::size_t>((*to_new)[static_cast<std::size_t>(v)])] = v;
    }
    Renumbering scramble;
    scramble.to_new = to_new;
    scramble.to_old = to_old;
    it = cache.emplace(which, relabeled_graph(base, scramble)).first;
  }
  return it->second;
}

struct MeshRun {
  double wall_ms_max = 0.0;       // slowest rank's Luby wall-clock
  std::int64_t wire_sent = 0;     // physical bytes sent, all ranks
  std::int64_t cross_payload = 0; // cross_payload_bytes, all ranks
  bool identical = true;          // every rank's MIS == oracle
};

// S ranks on S threads over a full socketpair mesh, one Luby run under the
// given exchange policy.
MeshRun run_mesh(const Graph& g, const VertexPartition& part, int world,
                 ExchangePolicy policy, const std::vector<bool>& oracle) {
  MeshRun out;
  std::vector<std::vector<int>> fds(
      static_cast<std::size_t>(world),
      std::vector<int>(static_cast<std::size_t>(world), -1));
  for (int a = 0; a < world; ++a) {
    for (int b = a + 1; b < world; ++b) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        out.identical = false;
        return out;
      }
      fds[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = sv[0];
      fds[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = sv[1];
    }
  }
  std::vector<std::unique_ptr<ShardRuntime>> rts(
      static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    rts[static_cast<std::size_t>(r)] = std::make_unique<ShardRuntime>(
        g, part, nullptr,
        std::make_unique<SocketTransport>(
            r, world, std::move(fds[static_cast<std::size_t>(r)])));
    rts[static_cast<std::size_t>(r)]->set_exchange_policy(policy);
  }
  std::vector<std::thread> threads;
  std::vector<std::vector<bool>> mis(static_cast<std::size_t>(world));
  std::vector<double> wall_ms(static_cast<std::size_t>(world), 0.0);
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      ShardRuntime& rt = *rts[static_cast<std::size_t>(r)];
      Rng rng(99);
      RoundLedger ledger;
      const auto t0 = std::chrono::steady_clock::now();
      mis[static_cast<std::size_t>(r)] =
          luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &rt);
      const auto t1 = std::chrono::steady_clock::now();
      wall_ms[static_cast<std::size_t>(r)] =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < world; ++r) {
    out.identical = out.identical && mis[static_cast<std::size_t>(r)] == oracle;
    out.wall_ms_max = std::max(out.wall_ms_max, wall_ms[static_cast<std::size_t>(r)]);
    const auto& st = static_cast<SocketTransport&>(
        rts[static_cast<std::size_t>(r)]->transport());
    out.wire_sent += st.wire_bytes_sent();
    out.cross_payload += st.cross_payload_bytes();
  }
  return out;
}

void E20_OwnerRouted(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int world = static_cast<int>(state.range(1));
  const int strategy = static_cast<int>(state.range(2));
  const Graph& g = scrambled_workload(which);
  const VertexPartition part =
      strategy == 0
          ? VertexPartition::contiguous(g.num_vertices(), world)
          : make_partition(g, world, PartitionStrategy::kCluster, nullptr);

  std::vector<bool> oracle;
  {
    Rng rng(99);
    RoundLedger ledger;
    oracle = luby_mis_message_passing(g, rng, ledger, "mis");
  }

  MeshRun repl, owner;
  for (auto _ : state) {
    repl = run_mesh(g, part, world, ExchangePolicy::kReplicated, oracle);
    owner = run_mesh(g, part, world, ExchangePolicy::kOwnerRouted, oracle);
  }

  state.counters["shards"] = world;
  state.counters["strategy"] = strategy;
  state.counters["wire_repl"] = static_cast<double>(repl.wire_sent);
  state.counters["wire_owner"] = static_cast<double>(owner.wire_sent);
  state.counters["wire_cut_pct"] =
      repl.wire_sent > 0
          ? 100.0 * (1.0 - static_cast<double>(owner.wire_sent) /
                               static_cast<double>(repl.wire_sent))
          : 0.0;
  state.counters["payload_pred"] = static_cast<double>(repl.cross_payload);
  state.counters["payload_owner"] = static_cast<double>(owner.cross_payload);
  state.counters["prediction_ok"] =
      repl.cross_payload == owner.cross_payload ? 1.0 : 0.0;
  state.counters["wall_ms_repl"] = repl.wall_ms_max;
  state.counters["wall_ms_owner"] = owner.wall_ms_max;
  state.counters["identical"] = repl.identical && owner.identical ? 1.0 : 0.0;

  std::map<std::string, double> row;
  row["arg0"] = static_cast<double>(which);
  for (const auto& [name, counter] : state.counters) {
    row[name] = static_cast<double>(counter);
  }
  CsvSink::emit(std::string("e20_owner_") + kWorkloadNames[which] + "_" +
                    kStrategyNames[strategy],
                row);
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E20_OwnerRouted)
    ->ArgsProduct({{0, 1}, {2, 4, 8}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
