// E2 — Theorem 3: for Delta >= 4 the randomized algorithm runs in
// O(log Delta) + 2^O(sqrt(log log n)) rounds.
//
// Series: rounds vs Delta at fixed n. With the deterministic list-coloring
// substitution (DESIGN.md) the per-layer cost is O(Delta^2) instead of
// O~(sqrt(Delta)); the counter rounds_per_delta_sq normalizes that away so
// the residual growth in Delta can be compared against the theorem's
// O(log Delta).
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void E2_RandLarge(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool randomized_lists = state.range(1) != 0;
  const int n = 4096;
  const Graph g = make_regular(n, d, 22);
  DeltaColoringOptions opt;
  opt.seed = 99;
  opt.list_engine = randomized_lists ? ListEngine::kRandomized
                                     : ListEngine::kDeterministic;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kRandomizedLarge, opt);
    ++opt.seed;
  }
  report(state, res);
  state.counters["delta"] = d;
  state.counters["randomized_lists"] = randomized_lists ? 1 : 0;
  state.counters["rounds_per_delta_sq"] =
      static_cast<double>(res.ledger.total()) / (d * d);
  state.counters["layer_rounds"] = static_cast<double>(
      res.ledger.phase_total("rand/7-c-coloring") +
      res.ledger.phase_total("rand/8-b-coloring"));
  csv_row(state, "e2_rounds_vs_delta");
}

}  // namespace
}  // namespace deltacol::bench

// Second axis: 0 = deterministic list engine (Delta^2 schedule reduction
// dominates), 1 = randomized list engine (the Theorem 19 substrate — rounds
// nearly flat in Delta, the theorem's regime).
BENCHMARK(deltacol::bench::E2_RandLarge)
    ->ArgsProduct({{4, 6, 8, 12, 16, 24}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
