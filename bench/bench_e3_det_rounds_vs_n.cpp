// E3 — Theorem 4: deterministic Delta-coloring in
// O(sqrt(Delta) log^{-3/2}(Delta) log^2 n) rounds.
//
// Series: rounds vs n at Delta = 4. With our ruling-set substitution the
// dominant log^2 n term comes from the distance-R ruling set (charged at the
// AGLP price: log n levels x R); rounds_per_log_sq should stay near-flat.
// The base-layer and layer-coloring phases are reported separately.
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void E3_Deterministic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Graph g = make_regular(n, d, 33);
  DeltaColoringOptions opt;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, Algorithm::kDeterministic, opt);
  }
  report(state, res);
  const double l2 = std::log2(static_cast<double>(n));
  state.counters["rounds_per_log_sq"] =
      static_cast<double>(res.ledger.total()) / (l2 * l2);
  state.counters["ruling_rounds"] =
      static_cast<double>(res.ledger.phase_total("det/ruling-set"));
  state.counters["layercoloring_rounds"] =
      static_cast<double>(res.ledger.phase_total("det/layer-coloring"));
  state.counters["num_layers"] = res.stats.num_b_layers;
  csv_row(state, "e3_det_rounds_vs_n");
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E3_Deterministic)
    ->ArgsProduct({{256, 1024, 4096, 16384, 65536}, {4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
