// E4 — the paper's headline: both new algorithms improve on the 25-year-old
// [PS92/PS95] bound (our ND baseline realizes its O(log^3 n / log Delta)
// structure; see DESIGN.md "Substitutions").
//
// Series: rounds for all five algorithms on the same graphs, n sweep.
// Expected shape: rand-small < rand-large ~ det < ND baseline, with the gap
// to the baseline widening in n. The greedy+Brooks baseline is round-cheap
// at small scale but its repair stage scales with the overflow class.
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void run_alg(benchmark::State& state, Algorithm alg) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_regular(n, 4, 44);
  DeltaColoringOptions opt;
  opt.seed = 5;
  DeltaColoringResult res;
  for (auto _ : state) {
    res = delta_color(g, alg, opt);
    ++opt.seed;
  }
  report(state, res);
}

void E4_RandSmall(benchmark::State& s) { run_alg(s, Algorithm::kRandomizedSmall); }
void E4_RandLarge(benchmark::State& s) { run_alg(s, Algorithm::kRandomizedLarge); }
void E4_Deterministic(benchmark::State& s) { run_alg(s, Algorithm::kDeterministic); }
void E4_BaselineND(benchmark::State& s) { run_alg(s, Algorithm::kBaselineND); }
void E4_BaselineGreedyBrooks(benchmark::State& s) {
  run_alg(s, Algorithm::kBaselineGreedyBrooks);
}

}  // namespace
}  // namespace deltacol::bench

#define E4_ARGS ->Arg(1024)->Arg(4096)->Arg(16384)->Iterations(1)->Unit(benchmark::kMillisecond)
BENCHMARK(deltacol::bench::E4_RandSmall) E4_ARGS;
BENCHMARK(deltacol::bench::E4_RandLarge) E4_ARGS;
BENCHMARK(deltacol::bench::E4_Deterministic) E4_ARGS;
BENCHMARK(deltacol::bench::E4_BaselineND) E4_ARGS;
BENCHMARK(deltacol::bench::E4_BaselineGreedyBrooks) E4_ARGS;
