// E5 — Lemma 23: after the marking process (Phases (4)-(5)), the probability
// that a node of the remainder graph H is NOT removed is at most
// Delta^-(4r+4) for suitable constants.
//
// The asymptotic constants (p = Delta^-6, expansion volumes ~ Delta^12) are
// out of reach at laptop scale (DESIGN.md / EXPERIMENTS.md discuss this);
// what is measurable is the LAW: the survival fraction among H-vertices
// falls as the selection probability and the happiness radius r grow.
// Counters: survival (|L| / |H|), tnodes, h_size.
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void E5_Survival(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  const double p = 1.0 / static_cast<double>(state.range(1));
  const int n = 2048, d = 4;
  const Graph g = make_regular(n, d, 55);
  DeltaColoringOptions opt;
  opt.dcc_radius = r;
  opt.selection_prob = p;
  opt.backoff = 3;
  opt.seed = 7;
  double survival = 0.0;
  DeltaColoringResult res;
  const int reps = 2;
  for (auto _ : state) {
    for (int rep = 0; rep < reps; ++rep) {
      res = delta_color(g, Algorithm::kRandomizedLarge, opt);
      ++opt.seed;
      if (res.stats.h_vertices > 0) {
        survival += static_cast<double>(res.stats.leftover_vertices) /
                    res.stats.h_vertices / reps;
      }
    }
  }
  report(state, res);
  state.counters["survival"] = survival;
  state.counters["h_size"] = res.stats.h_vertices;
  state.counters["tnodes"] = res.stats.num_tnodes;
  state.counters["p_inv"] = static_cast<double>(state.range(1));
  csv_row(state, "e5_shattering_probability");
}

}  // namespace
}  // namespace deltacol::bench

// Sweep 1/p at r = 1. Larger r is uninformative on random regular graphs:
// the DCC layers of Phase (1)-(3) already absorb the whole graph (H = 0) —
// itself a finding, reported by E11's radius ablation. The visible law at
// r = 1: the surviving-T-node count peaks near p ~ 1/|ball_b| (selection vs
// backoff tradeoff) and the survival fraction moves inversely to it.
BENCHMARK(deltacol::bench::E5_Survival)
    ->ArgsProduct({{1}, {8, 16, 32, 64, 128, 256, 1024, 4096}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
