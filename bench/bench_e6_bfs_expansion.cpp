// E6 — Lemmas 12/15: in DCC-free, (near-)regular r-balls, BFS trees expand:
// level r holds at least (Delta-1)^{r/2} vertices (Lemma 15), and at least
// (Delta-2)^{r/2} after the marking process removes marked vertices
// (Lemma 12).
//
// Series: measured min/mean level-r size over DCC-free regular centers vs
// the two proven lower bounds. Reproduction claim: measured_min >= bound for
// every row.
#include "bench_common.h"

#include "dcc/dcc.h"
#include "graph/traversal.h"

namespace deltacol::bench {
namespace {

void E6_Expansion(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const int n = 16384;
  const Graph g = make_regular(n, d, 66);
  double min_level = -1, sum_level = 0;
  int centers = 0;
  for (auto _ : state) {
    for (int v = 0; v < g.num_vertices() && centers < 200; v += 7) {
      if (ball_contains_dcc(g, v, r)) continue;
      const auto layers = bfs_layers(g, v, r);
      const double sz =
          static_cast<double>(layers[static_cast<std::size_t>(r)].size());
      if (min_level < 0 || sz < min_level) min_level = sz;
      sum_level += sz;
      ++centers;
    }
  }
  state.counters["centers"] = centers;
  state.counters["min_level_r"] = min_level;
  state.counters["mean_level_r"] = centers ? sum_level / centers : 0;
  state.counters["lemma15_bound"] = std::pow(d - 1, r / 2.0);
  state.counters["lemma12_bound"] = std::pow(d - 2, r / 2.0);
}

}  // namespace
}  // namespace deltacol::bench

// (5, 4) is omitted: 5-regular radius-4 balls virtually always contain a
// short even cycle at this n, so there is no DCC-free population to measure.
BENCHMARK(deltacol::bench::E6_Expansion)
    ->Args({3, 2})->Args({4, 2})->Args({5, 2})
    ->Args({3, 4})->Args({4, 4})->Args({3, 6})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
