// E7 — Theorem 5 (distributed Brooks): one uncolored node can always be
// fixed by recoloring inside its 2 log_{Delta-1} n neighborhood.
//
// Finding 1 (reported as tight_fraction / natural_radius): in colorings
// produced by actual algorithms, uncolored vertices almost always have a
// free color — the theorem's machinery is a worst-case device, and typical
// repair radius is 0.
// Finding 2 (the series): we adversarially recolor the neighborhood of the
// probe vertex to distinct colors where legally possible, manufacturing
// "tight" instances that force the token walk; the measured radius must
// stay below the theorem's bound.
#include "bench_common.h"

#include "brooks/distributed_brooks.h"
#include "coloring/brooks_seq.h"
#include "util/stats.h"

namespace deltacol::bench {
namespace {

// Try to give v's neighbors pairwise distinct colors by local recoloring
// (each move stays proper). Returns true if all neighbors end distinct.
bool tighten_neighborhood(const Graph& g, Coloring& c, int v, int delta,
                          Rng& rng) {
  const auto nb = g.neighbors(v);
  std::vector<Color> want(nb.size());
  std::vector<int> perm(static_cast<std::size_t>(delta));
  for (int i = 0; i < delta; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);
  for (std::size_t i = 0; i < nb.size(); ++i) {
    want[i] = perm[i % perm.size()];
  }
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const int u = nb[i];
    if (c[static_cast<std::size_t>(u)] == want[i]) continue;
    bool ok = true;
    for (int w : g.neighbors(u)) {
      if (w != v && c[static_cast<std::size_t>(w)] == want[i]) {
        ok = false;
        break;
      }
    }
    if (ok) c[static_cast<std::size_t>(u)] = want[i];
  }
  std::vector<bool> seen(static_cast<std::size_t>(delta), false);
  for (int u : nb) {
    const Color x = c[static_cast<std::size_t>(u)];
    if (x == kUncolored || seen[static_cast<std::size_t>(x)]) return false;
    seen[static_cast<std::size_t>(x)] = true;
  }
  return true;
}

void E7_BrooksRadius(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Graph g = make_regular(n, d, 77);
  const Coloring base = brooks_coloring_components(g, d);
  const int rho = brooks_search_radius(n, d);
  Rng rng(123);
  Summary radius;
  int dcc_cases = 0, deficient_cases = 0, tight_samples = 0, natural_tight = 0;
  for (auto _ : state) {
    for (int rep = 0; rep < 200; ++rep) {
      Coloring c = base;
      const int v = rng.next_int(0, n - 1);
      if (g.degree(v) < d) continue;
      c[static_cast<std::size_t>(v)] = kUncolored;
      if (!first_free_color(g, c, v, d).has_value()) ++natural_tight;
      if (!tighten_neighborhood(g, c, v, d, rng)) continue;
      ++tight_samples;
      const auto fix = brooks_fix(g, c, v, d, rho);
      validate_delta_coloring(g, c, d);
      radius.add(fix.radius_used);
      dcc_cases += fix.used_dcc;
      deficient_cases += fix.used_deficient_node;
    }
  }
  state.counters["bound_2log"] = 2.0 * std::log2(static_cast<double>(n)) /
                                 std::log2(static_cast<double>(d - 1));
  state.counters["tight_samples"] = tight_samples;
  state.counters["natural_tight"] = natural_tight;
  if (radius.count() > 0) {
    state.counters["mean_radius"] = radius.mean();
    state.counters["p99_radius"] = radius.percentile(99);
    state.counters["max_radius"] = radius.max();
  }
  state.counters["dcc_cases"] = dcc_cases;
  state.counters["deficient_cases"] = deficient_cases;
}

// Gallai trees have no DCC anywhere, so a forced token walk must travel to
// a deficient vertex — the regime where Theorem 5's radius is actually
// exercised rather than short-circuited by a nearby DCC.
void E7_BrooksRadiusGallai(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = triangle_cactus(n);
  const int d = g.max_degree();
  const Coloring base = brooks_coloring_components(g, d);
  const int rho = brooks_search_radius(g.num_vertices(), d);
  Rng rng(321);
  Summary radius;
  int tight_samples = 0, deficient_cases = 0;
  for (auto _ : state) {
    // Probe the three central vertices (farthest from the deficient
    // fringe) plus random interior vertices.
    for (int rep = 0; rep < 200; ++rep) {
      Coloring c = base;
      const int v =
          rep < 50 ? rep % 3 : rng.next_int(0, g.num_vertices() - 1);
      if (g.degree(v) < d) continue;
      c[static_cast<std::size_t>(v)] = kUncolored;
      if (!tighten_neighborhood(g, c, v, d, rng)) continue;
      ++tight_samples;
      const auto fix = brooks_fix(g, c, v, d, rho);
      validate_delta_coloring(g, c, d);
      radius.add(fix.radius_used);
      deficient_cases += fix.used_deficient_node;
    }
  }
  state.counters["bound_2log"] =
      2.0 * std::log2(static_cast<double>(g.num_vertices())) /
      std::log2(static_cast<double>(d - 1));
  state.counters["tight_samples"] = tight_samples;
  if (radius.count() > 0) {
    state.counters["mean_radius"] = radius.mean();
    state.counters["max_radius"] = radius.max();
  }
  state.counters["deficient_cases"] = deficient_cases;
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E7_BrooksRadius)
    ->ArgsProduct({{1024, 8192, 65536}, {4, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltacol::bench::E7_BrooksRadiusGallai)
    ->Arg(1024)->Arg(8192)->Arg(65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
