// E8 — Lemma 31 (small-Delta analysis): for Delta = O(1) and
// r = Theta(log log n), the marking process creates a T-node for every node
// of the remainder graph H w.h.p. — Phase (6) becomes empty.
//
// Series: fraction of H left unhappy vs the happiness radius r, for
// Delta in {3, 4}. Reproduction claim: the unhappy fraction decreases
// monotonically (up to noise) in r; the asymptotic "all happy" regime needs
// volumes ~Delta^12 log n (EXPERIMENTS.md discusses the gap).
#include "bench_common.h"

namespace deltacol::bench {
namespace {

void E8_TnodeCoverage(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const int n = 8192;
  const Graph g = make_regular(n, d, 88);
  DeltaColoringOptions opt;
  opt.dcc_radius = r;
  opt.small_variant_radius_cap = r;  // pin the small variant's radius to r
  opt.backoff = 3;
  opt.seed = 17;
  DeltaColoringResult res;
  double unhappy = 0;
  const int reps = 3;
  for (auto _ : state) {
    for (int rep = 0; rep < reps; ++rep) {
      res = delta_color(g, Algorithm::kRandomizedSmall, opt);
      ++opt.seed;
      if (res.stats.h_vertices > 0) {
        unhappy += static_cast<double>(res.stats.leftover_vertices) /
                   res.stats.h_vertices / reps;
      }
    }
  }
  report(state, res);
  state.counters["unhappy_fraction"] = unhappy;
  state.counters["h_size"] = res.stats.h_vertices;
  state.counters["tnodes"] = res.stats.num_tnodes;
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E8_TnodeCoverage)
    ->ArgsProduct({{3, 4}, {2, 3, 4, 5}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
