// E9 — substrate contracts (Theorem 18/19 stand-ins, Lemma 20, Linial):
// round counts of the building blocks in isolation.
//
// Series: Linial rounds vs n (expect log*-flat); deterministic and
// randomized (deg+1)-list coloring rounds vs n and Delta; ruling-set rounds
// for both engines; Luby MIS rounds vs n (expect ~log n).
#include "bench_common.h"

#include "coloring/linial.h"
#include "coloring/list_coloring.h"
#include "mis/mis.h"
#include "mis/ruling_set.h"

namespace deltacol::bench {
namespace {

void E9_Linial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_regular(n, 4, 91);
  int rounds = 0, colors = 0;
  for (auto _ : state) {
    RoundLedger ledger;
    const auto res = linial_coloring(g, ledger);
    rounds = res.rounds;
    colors = res.num_colors;
  }
  state.counters["rounds"] = rounds;
  state.counters["colors"] = colors;
}

ListAssignment full_lists(const Graph& g, int palette) {
  std::vector<Color> all;
  for (Color x = 0; x < palette; ++x) all.push_back(x);
  return ListAssignment(static_cast<std::size_t>(g.num_vertices()), all);
}

void E9_ListColoringDet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Graph g = make_regular(n, d, 92);
  RoundLedger tmp;
  const auto lin = linial_coloring(g, tmp);
  const auto lists = full_lists(g, d + 1);
  std::int64_t rounds = 0;
  for (auto _ : state) {
    Coloring c(static_cast<std::size_t>(n), kUncolored);
    RoundLedger ledger;
    det_list_coloring(g, lists, lin.coloring, lin.num_colors, c, ledger, "b");
    rounds = ledger.total();
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}

void E9_ListColoringRand(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Graph g = make_regular(n, d, 93);
  RoundLedger tmp;
  const auto lin = linial_coloring(g, tmp);
  const auto lists = full_lists(g, d + 1);
  std::int64_t rounds = 0;
  Rng rng(3);
  for (auto _ : state) {
    Coloring c(static_cast<std::size_t>(n), kUncolored);
    RoundLedger ledger;
    rand_list_coloring(g, lists, lin.coloring, lin.num_colors, rng, c, ledger,
                       "b");
    rounds = ledger.total();
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}

void E9_RulingSetDet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int alpha = static_cast<int>(state.range(1));
  const Graph g = make_regular(n, 4, 94);
  std::vector<int> all(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  std::int64_t rounds = 0;
  std::size_t size = 0;
  for (auto _ : state) {
    RoundLedger ledger;
    const auto m = ruling_set(g, all, alpha, RulingSetEngine::kDeterministic,
                              nullptr, ledger, "b");
    rounds = ledger.total();
    size = m.size();
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["set_size"] = static_cast<double>(size);
}

void E9_LubyMis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_regular(n, 4, 95);
  std::int64_t rounds = 0;
  Rng rng(9);
  for (auto _ : state) {
    RoundLedger ledger;
    const auto mis = luby_mis(g, rng, ledger, "b");
    benchmark::DoNotOptimize(mis);
    rounds = ledger.total();
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}

}  // namespace
}  // namespace deltacol::bench

BENCHMARK(deltacol::bench::E9_Linial)
    ->Arg(256)->Arg(4096)->Arg(65536)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(deltacol::bench::E9_ListColoringDet)
    ->ArgsProduct({{1024, 16384}, {4, 8, 16}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(deltacol::bench::E9_ListColoringRand)
    ->ArgsProduct({{1024, 16384}, {4, 8, 16}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(deltacol::bench::E9_RulingSetDet)
    ->ArgsProduct({{1024, 16384}, {2, 8, 32}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(deltacol::bench::E9_LubyMis)
    ->Arg(1024)->Arg(16384)->Arg(262144)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
