// Minimal header-only stand-in for the subset of google-benchmark the
// bench/ drivers use, so experiment binaries always build even when
// libbenchmark-dev is absent (CMake defines DELTACOL_USE_MINIBENCH and
// bench_common.h includes this instead of <benchmark/benchmark.h>).
//
// Covered API (exactly what bench_*.cpp touches — extend as drivers grow):
//   benchmark::State        — range(i), counters["name"], for (auto _ : state)
//   benchmark::DoNotOptimize
//   benchmark::kMillisecond (and the other TimeUnit tags)
//   BENCHMARK(fn)->Arg(a)->Args({...})->ArgsProduct({{...}, ...})
//                ->Iterations(n)->Unit(u)
//
// Reporting: one line per (benchmark, argument tuple) with mean wall-clock
// time per iteration and the user counters — the same information the
// drivers' CSV sink consumes. When the environment variable
// DELTACOL_BENCH_JSON names a file, every row is additionally written there
// as machine-readable JSON (schema documented in bench/README.md) so perf
// trajectories can be tracked across commits. Not implemented (not needed
// here): threading, fixtures, templated benchmarks, statistical
// repetitions, --benchmark_* flags (google-benchmark builds get JSON via
// its own --benchmark_out flag instead).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

// Prevents the optimizer from deleting a computed-but-unused value.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

class Counter {
 public:
  Counter(double v = 0.0) : value_(v) {}  // NOLINT: implicit by design
  Counter& operator=(double v) {
    value_ = v;
    return *this;
  }
  operator double() const { return value_; }  // NOLINT: implicit by design

 private:
  double value_ = 0.0;
};

class State {
 public:
  State(std::vector<std::int64_t> args, std::int64_t iterations)
      : args_(std::move(args)), remaining_(iterations) {}

  std::int64_t range(std::size_t i = 0) const { return args_.at(i); }

  std::map<std::string, Counter> counters;

  // Range-for iteration protocol: `for (auto _ : state)` runs the requested
  // iterations and accumulates wall-clock time around them.
  class Iterator {
   public:
    explicit Iterator(State* s) : state_(s) {}
    bool operator!=(const Iterator&) const {
      return state_ != nullptr && state_->keep_running();
    }
    Iterator& operator++() { return *this; }
    // Non-trivial destructor so `for (auto _ : state)` does not trip
    // -Wunused-variable under -Werror builds.
    struct IterationToken {
      ~IterationToken() {}
    };
    IterationToken operator*() const { return {}; }

   private:
    State* state_;
  };
  Iterator begin() { return Iterator(this); }
  Iterator end() { return Iterator(nullptr); }

  double elapsed_seconds() const { return elapsed_seconds_; }
  std::int64_t iterations_run() const { return iterations_run_; }

 private:
  bool keep_running() {
    const auto now = std::chrono::steady_clock::now();
    if (running_) {
      elapsed_seconds_ +=
          std::chrono::duration<double>(now - iter_start_).count();
      ++iterations_run_;
    }
    if (remaining_ <= 0) {
      running_ = false;
      return false;
    }
    --remaining_;
    running_ = true;
    iter_start_ = std::chrono::steady_clock::now();
    return true;
  }

  std::vector<std::int64_t> args_;
  std::int64_t remaining_ = 1;
  std::int64_t iterations_run_ = 0;
  bool running_ = false;
  double elapsed_seconds_ = 0.0;
  std::chrono::steady_clock::time_point iter_start_{};
};

namespace internal {

struct Registration {
  std::string name;
  void (*fn)(State&) = nullptr;
  std::vector<std::vector<std::int64_t>> arg_tuples;  // one run per tuple
  std::int64_t iterations = 1;
  TimeUnit unit = kNanosecond;
};

inline std::vector<Registration*>& registry() {
  static std::vector<Registration*> r;
  return r;
}

inline const char* unit_suffix(TimeUnit u) {
  switch (u) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "?";
}

inline double unit_scale(TimeUnit u) {
  switch (u) {
    case kNanosecond: return 1e9;
    case kMicrosecond: return 1e6;
    case kMillisecond: return 1e3;
    case kSecond: return 1.0;
  }
  return 1.0;
}

}  // namespace internal

// Chainable registration handle, mirroring google-benchmark's Benchmark*.
class Benchmark {
 public:
  Benchmark(const char* name, void (*fn)(State&)) {
    reg_ = new internal::Registration;
    reg_->name = name;
    reg_->fn = fn;
    internal::registry().push_back(reg_);
  }

  Benchmark* Arg(std::int64_t a) {
    reg_->arg_tuples.push_back({a});
    return this;
  }
  Benchmark* Args(const std::vector<std::int64_t>& tuple) {
    reg_->arg_tuples.push_back(tuple);
    return this;
  }
  Benchmark* ArgsProduct(
      const std::vector<std::vector<std::int64_t>>& factors) {
    std::vector<std::vector<std::int64_t>> tuples{{}};
    for (const auto& factor : factors) {
      std::vector<std::vector<std::int64_t>> next;
      for (const auto& prefix : tuples) {
        for (std::int64_t value : factor) {
          auto t = prefix;
          t.push_back(value);
          next.push_back(std::move(t));
        }
      }
      tuples = std::move(next);
    }
    for (auto& t : tuples) reg_->arg_tuples.push_back(std::move(t));
    return this;
  }
  Benchmark* Iterations(std::int64_t n) {
    reg_->iterations = n;
    return this;
  }
  Benchmark* Unit(TimeUnit u) {
    reg_->unit = u;
    return this;
  }

 private:
  internal::Registration* reg_;
};

inline int RunAllBenchmarks() {
  // Rows accumulated for the optional JSON sink (DELTACOL_BENCH_JSON).
  struct JsonRow {
    std::string name;
    std::vector<std::int64_t> args;
    std::int64_t iterations = 0;
    double seconds_per_iteration = 0.0;
    std::map<std::string, double> counters;
  };
  std::vector<JsonRow> json_rows;

  for (internal::Registration* reg : internal::registry()) {
    auto tuples = reg->arg_tuples;
    if (tuples.empty()) tuples.push_back({});
    for (const auto& tuple : tuples) {
      State state(tuple, reg->iterations);
      reg->fn(state);
      std::string label = reg->name;
      for (std::int64_t a : tuple) {
        label += '/';
        label += std::to_string(a);
      }
      const double per_iter =
          state.iterations_run() > 0
              ? state.elapsed_seconds() / static_cast<double>(state.iterations_run())
              : 0.0;
      std::printf("%-56s %12.3f %s", label.c_str(),
                  per_iter * internal::unit_scale(reg->unit),
                  internal::unit_suffix(reg->unit));
      for (const auto& [name, counter] : state.counters) {
        std::printf("  %s=%g", name.c_str(), static_cast<double>(counter));
      }
      std::printf("\n");

      JsonRow row;
      row.name = reg->name;
      row.args = tuple;
      row.iterations = state.iterations_run();
      row.seconds_per_iteration = per_iter;
      for (const auto& [name, counter] : state.counters) {
        row.counters[name] = static_cast<double>(counter);
      }
      json_rows.push_back(std::move(row));
    }
  }

  if (const char* json_path = std::getenv("DELTACOL_BENCH_JSON")) {
    // Benchmark names are C identifiers and counter names are plain ASCII,
    // so no string escaping is needed (documented in bench/README.md).
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f, "{\n  \"harness\": \"minibench\",\n  \"benchmarks\": [");
      for (std::size_t i = 0; i < json_rows.size(); ++i) {
        const JsonRow& row = json_rows[i];
        std::fprintf(f, "%s\n    {\"name\": \"%s\", \"args\": [",
                     i == 0 ? "" : ",", row.name.c_str());
        for (std::size_t a = 0; a < row.args.size(); ++a) {
          std::fprintf(f, "%s%lld", a == 0 ? "" : ", ",
                       static_cast<long long>(row.args[a]));
        }
        std::fprintf(f, "], \"iterations\": %lld,",
                     static_cast<long long>(row.iterations));
        std::fprintf(f, " \"seconds_per_iteration\": %.9g, \"counters\": {",
                     row.seconds_per_iteration);
        bool first = true;
        for (const auto& [name, value] : row.counters) {
          std::fprintf(f, "%s\"%s\": %.9g", first ? "" : ", ", name.c_str(),
                       value);
          first = false;
        }
        std::fprintf(f, "}}");
      }
      std::fprintf(f, "\n  ]\n}\n");
      std::fclose(f);
    } else {
      std::fprintf(stderr, "minibench: cannot open DELTACOL_BENCH_JSON=%s\n",
                   json_path);
    }
  }
  return 0;
}

}  // namespace benchmark

#define DELTACOL_MB_CONCAT2(a, b) a##b
#define DELTACOL_MB_CONCAT(a, b) DELTACOL_MB_CONCAT2(a, b)
#define BENCHMARK(fn)                                             \
  static ::benchmark::Benchmark* DELTACOL_MB_CONCAT(              \
      deltacol_minibench_reg_, __LINE__) =                        \
      (new ::benchmark::Benchmark(#fn, fn))

// google-benchmark's benchmark_main library provides main(); under the
// fallback each bench binary is a single TU including this header, so the
// definition lives here.
int main() { return ::benchmark::RunAllBenchmarks(); }
