// Online repair with the distributed Brooks' theorem (Theorem 5).
//
// A running network holds a valid Delta-coloring; nodes occasionally reset
// (reboot, lease expiry) and lose their color. Instead of recoloring the
// world, each reset is repaired locally: the token-walk procedure recolors
// only an O(log n)-radius patch. This demo runs a stream of resets and
// reports the repair radius distribution against the paper's
// 2 log_{Delta-1} n bound.
//
//   ./brooks_repair [n] [delta] [resets] [seed]
#include <cstdlib>
#include <iostream>

#include "brooks/distributed_brooks.h"
#include "core/api.h"
#include "graph/generators.h"
#include "util/stats.h"

using namespace deltacol;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 20000;
  const int delta = argc > 2 ? std::atoi(argv[2]) : 4;
  const int resets = argc > 3 ? std::atoi(argv[3]) : 500;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 5;

  Rng rng(seed);
  const Graph g = random_regular(n, delta, rng);

  DeltaColoringOptions opt;
  opt.seed = seed;
  auto res = delta_color(g, Algorithm::kRandomizedSmall, opt);
  std::cout << "initial Delta-coloring: " << res.ledger.total()
            << " rounds, Delta = " << res.delta << "\n";

  Coloring& c = res.coloring;
  const int rho = brooks_search_radius(n, delta);
  Summary radius;
  Summary tight_radius;
  int dcc_repairs = 0;
  for (int i = 0; i < resets; ++i) {
    const int v = rng.next_int(0, n - 1);
    c[static_cast<std::size_t>(v)] = kUncolored;  // node reset
    const bool tight = !first_free_color(g, c, v, delta).has_value();
    const auto fix = brooks_fix(g, c, v, delta, rho);
    radius.add(fix.radius_used);
    if (tight) tight_radius.add(fix.radius_used);
    dcc_repairs += fix.used_dcc ? 1 : 0;
    validate_delta_coloring(g, c, delta);
  }
  std::cout << resets << " resets repaired locally\n"
            << "  repair radius (all resets): " << radius.str() << "\n";
  if (tight_radius.count() > 0) {
    std::cout << "  repair radius (tight resets, no free color): "
              << tight_radius.str() << "\n";
  } else {
    std::cout << "  (no reset vertex was tight: every repair was in place)\n";
  }
  std::cout << "  theorem bound (2 log_{Delta-1} n): " << rho << "\n"
            << "  repairs through a degree-choosable component: "
            << dcc_repairs << "\n";
  return 0;
}
