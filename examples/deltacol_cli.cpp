// deltacol_cli — color a graph from disk.
//
//   ./deltacol_cli <edge-list-file> [--alg small|large|det|ps|naive]
//                  [--seed S] [--threads T] [--shards S] [--paper-constants]
//                  [--dot out.dot]
//
// Reads an edge list ("n m" header, one "u v" pair per line, 0-based),
// runs the chosen Delta-coloring algorithm, prints the coloring summary and
// the per-phase round ledger, and optionally writes a colored DOT file.
// Exit code 0 iff a valid Delta-coloring was produced.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/api.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "net/socket_transport.h"

using namespace deltacol;

namespace {

void usage(std::ostream& out) {
  out << "usage: deltacol_cli <edge-list> [--alg small|large|det|ps|naive]"
         " [--seed S] [--threads T] [--shards S] [--congest-bits B]"
         " [--partition contiguous|cluster] [--mode deterministic|fast]"
         " [--exchange replicated|owner] [--paper-constants] [--dot out.dot]\n"
         "       [--transport inproc|tcp] [--rank R --world W"
         " (--endpoints host:port,... | --port-base P)]\n"
         "  --threads T   worker threads for the parallel runtime (0 = all\n"
         "                hardware threads; results are identical for any T)\n"
         "  --shards S    shards for the partitioned execution layer (<= 1 =\n"
         "                unsharded; results are identical for any S)\n"
         "  --partition contiguous|cluster\n"
         "                shard ownership map: contiguous id ranges (default)\n"
         "                or locality clusters (graph/renumber.h). Placement\n"
         "                only: the coloring and ledger are identical for\n"
         "                either choice, only cross-shard traffic changes\n"
         "  --congest-bits B\n"
         "                charge rounds under a CONGEST(B) bandwidth cap (B\n"
         "                bits per edge per round; <= 0 = LOCAL model).\n"
         "                Accounting only: the coloring is identical for\n"
         "                any B, only the reported round totals change\n"
         "  --mode deterministic|fast\n"
         "                execution mode (runtime/execution_mode.h).\n"
         "                deterministic (default): bit-identical results\n"
         "                for every (threads, shards) shape. fast: relaxed\n"
         "                merge/claim ordering — still a valid\n"
         "                Delta-coloring, but only the validity contract is\n"
         "                guaranteed across shapes\n"
         "  --exchange replicated|owner\n"
         "                distributed exchange policy carried in the options\n"
         "                (runtime/execution_mode.h). delta_color's pipeline\n"
         "                uses shards for placement only — no transport is\n"
         "                built — so this is configuration parity with\n"
         "                deltacol_mpi_like, where the flag selects the\n"
         "                owner-routed wire discipline\n"
         "  --transport tcp\n"
         "                join a multi-process cluster as one rank (flags or\n"
         "                DELTACOL_RANK/DELTACOL_WORLD/DELTACOL_ENDPOINTS\n"
         "                env; see deltacol_mpi_like). The pipeline runs\n"
         "                replicated with --shards = world, fenced by\n"
         "                cluster barriers, so every rank prints the same\n"
         "                coloring and ledger\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string path = argv[1];
  if (path == "--help" || path == "-h") {
    usage(std::cout);
    return 0;
  }
  Algorithm alg = Algorithm::kRandomizedSmall;
  DeltaColoringOptions opt;
  std::string dot_path;
  std::string transport_kind = "inproc";
  std::string endpoints_spec;
  int net_rank = -1, net_world = -1, port_base = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--alg" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "small") alg = Algorithm::kRandomizedSmall;
      else if (v == "large") alg = Algorithm::kRandomizedLarge;
      else if (v == "det") alg = Algorithm::kDeterministic;
      else if (v == "ps") alg = Algorithm::kBaselineND;
      else if (v == "naive") alg = Algorithm::kBaselineGreedyBrooks;
      else {
        usage(std::cerr);
        return 2;
      }
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--threads" && i + 1 < argc) {
      opt.num_threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (a == "--shards" && i + 1 < argc) {
      opt.num_shards = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (a == "--congest-bits" && i + 1 < argc) {
      opt.congest_bits = std::strtoll(argv[++i], nullptr, 10);
    } else if (a == "--partition" && i + 1 < argc) {
      if (!parse_partition_strategy(argv[++i], &opt.partition)) {
        usage(std::cerr);
        return 2;
      }
    } else if (a == "--mode" && i + 1 < argc) {
      if (!parse_execution_mode(argv[++i], &opt.mode)) {
        usage(std::cerr);
        return 2;
      }
    } else if (a == "--exchange" && i + 1 < argc) {
      if (!parse_exchange_policy(argv[++i], &opt.exchange)) {
        usage(std::cerr);
        return 2;
      }
    } else if (a == "--perturb-salt" && i + 1 < argc) {
      opt.perturb_salt = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--paper-constants") {
      opt.use_paper_constants = true;
    } else if (a == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (a == "--transport" && i + 1 < argc) {
      transport_kind = argv[++i];
    } else if (a == "--rank" && i + 1 < argc) {
      net_rank = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (a == "--world" && i + 1 < argc) {
      net_world = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (a == "--endpoints" && i + 1 < argc) {
      endpoints_spec = argv[++i];
    } else if (a == "--port-base" && i + 1 < argc) {
      port_base = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      usage(std::cerr);
      return 2;
    }
  }

  try {
    // --transport tcp: join the cluster before doing any work, run the
    // deterministic pipeline replicated (shards = world), and fence the run
    // with barriers so every rank starts and finishes together. Each rank
    // prints the identical summary — the multi-process analogue of the
    // --shards flag.
    std::unique_ptr<SocketTransport> cluster;
    if (transport_kind == "tcp") {
      NetConfig cfg;
      if (auto env = NetConfig::from_env(); env && net_rank < 0) {
        cfg = *env;
      } else {
        cfg.rank = net_rank;
        cfg.world = net_world;
        if (!endpoints_spec.empty()) {
          cfg.endpoints = NetConfig::parse_endpoints(endpoints_spec);
        } else {
          DC_REQUIRE(port_base > 0,
                     "--transport tcp needs --endpoints or --port-base");
          cfg.endpoints = NetConfig::localhost_endpoints(cfg.world, port_base);
        }
        cfg.validate();
      }
      cluster = std::make_unique<SocketTransport>(cfg);
      if (opt.num_shards <= 1) opt.num_shards = cluster->world();
      cluster->barrier();
    } else if (transport_kind != "inproc") {
      usage(std::cerr);
      return 2;
    }

    const Graph g = load_edge_list(path);
    std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
              << " Delta=" << g.max_degree() << " degeneracy="
              << degeneracy(g).degeneracy << "\n";
    const DeltaColoringResult res = delta_color(g, alg, opt);
    validate_delta_coloring(g, res.coloring, res.delta);
    std::cout << "algorithm: " << algorithm_name(alg) << "\n"
              << "colors: " << num_colors_used(res.coloring) << " / "
              << res.delta << "\n"
              << res.ledger.report();
    if (!dot_path.empty()) {
      std::ofstream out(dot_path);
      write_dot(out, g, res.coloring);
      std::cout << "wrote " << dot_path << "\n";
    }
    if (cluster) cluster->barrier();
    return 0;
  } catch (const ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
