// deltacol_mpi_like — one rank of a multi-process deltacol run.
//
//   ./deltacol_mpi_like --gen regular-500-6 --transport tcp
//       --rank 0 --world 2 --port-base 47300 [--alg all] [--seed S]
//       [--congest-bits B] [--out FILE]          (one command line)
//
// The mpirun-style launcher: every rank is one OS process owning one shard.
// Rank/world/endpoints come from the flags or from the DELTACOL_RANK /
// DELTACOL_WORLD / DELTACOL_ENDPOINTS (or DELTACOL_PORT_BASE) environment,
// so `for r in 0 1; do DELTACOL_RANK=$r ./deltacol_mpi_like ... & done` works.
//
// What each rank does:
//   1. builds (or streams from --load) only its own CSR slice, derives its
//      halo, and fetches the halo adjacency from the owning ranks over the
//      wire (net/rank_loader.h) — verified against the full graph;
//   2. runs Luby's MIS on the message-passing engine over the socket
//      transport: sends are genuinely partitioned (run_shards executes only
//      the local rank's body) and every round's mailbox row crosses TCP;
//   3. runs the requested Delta-coloring algorithms replicated (every rank
//      executes the same deterministic pipeline with num_shards = world).
//
// Output discipline: every line NOT starting with "# " is canonical — a
// pure function of (workload, world, algs, seed, B) — and must be
// byte-identical across all ranks AND equal to the in-process reference
// (--transport inproc). scripts/run_local_cluster.sh spawns the ranks,
// strips the "# " rank-local lines, and diffs. Lines starting with "# "
// carry rank-local facts (wire byte counters, rank id) that legitimately
// differ per rank.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "graph/renumber.h"
#include "net/rank_loader.h"
#include "net/socket_transport.h"
#include "runtime/mailbox.h"
#include "mis/luby_sync.h"
#include "util/check.h"
#include "util/rng.h"

using namespace deltacol;

namespace {

void usage(std::ostream& out) {
  out << "usage: deltacol_mpi_like (--gen ZOO-NAME | --load EDGE-LIST)\n"
         "         [--transport tcp|inproc] [--rank R --world W]\n"
         "         [--endpoints host:port,...] [--port-base P]\n"
         "         [--alg all|small|large|det|ps|naive] [--seed S]\n"
         "         [--congest-bits B] [--partition contiguous|cluster]\n"
         "         [--mode deterministic|fast]\n"
         "         [--exchange replicated|owner] [--out FILE]\n"
         "  tcp     one process per rank; rank/world/endpoints from flags or\n"
         "          DELTACOL_RANK/DELTACOL_WORLD/DELTACOL_ENDPOINTS env\n"
         "  inproc  single-process reference producing the canonical output\n"
         "          the tcp ranks must match byte-for-byte (--world shards)\n"
         "  --partition contiguous|cluster\n"
         "          shard ownership map (graph/renumber.h). Placement only:\n"
         "          all canonical lines except the slice/cross-edge stats are\n"
         "          identical for either choice; cluster cuts the cross-rank\n"
         "          payload reported on the \"# rank=\" lines\n"
         "  --mode deterministic|fast\n"
         "          execution mode. CAUTION under tcp: the pipeline runs\n"
         "          replicated per rank, so fast mode keeps the cross-rank\n"
         "          output diff clean only with the (default) single thread\n"
         "          per rank, where fast coincides with deterministic\n"
         "  --exchange replicated|owner\n"
         "          how the Luby message-passing step moves envelopes\n"
         "          between ranks (runtime/execution_mode.h). replicated\n"
         "          all-gathers full mailbox rows; owner ships only\n"
         "          cross-shard slots point-to-point and merges rank-locally\n"
         "          over owned state. Canonical output is bit-identical\n"
         "          either way (DESIGN.md section 6, owner-compute); only the\n"
         "          \"# rank=\" wire counters change\n";
}

std::uint64_t fnv1a(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_ints(const std::vector<int>& xs) {
  return fnv1a(xs.data(), xs.size() * sizeof(int));
}

std::uint64_t hash_bools(const std::vector<bool>& bs) {
  std::vector<int> xs(bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) xs[i] = bs[i] ? 1 : 0;
  return hash_ints(xs);
}

std::string hex(std::uint64_t h) {
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string gen_name, load_path, endpoints_spec, alg_spec = "all", out_path;
  std::string transport_kind = "tcp";
  int rank = -1, world = -1, port_base = -1;
  std::uint64_t seed = 1;
  std::int64_t congest_bits = 0;
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  ExecutionMode mode = ExecutionMode::kDeterministic;
  ExchangePolicy exchange = ExchangePolicy::kReplicated;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> std::string {
      DC_REQUIRE(i + 1 < argc, std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      return 0;
    } else if (a == "--gen") {
      gen_name = next("--gen");
    } else if (a == "--load") {
      load_path = next("--load");
    } else if (a == "--transport") {
      transport_kind = next("--transport");
    } else if (a == "--rank") {
      rank = std::stoi(next("--rank"));
    } else if (a == "--world") {
      world = std::stoi(next("--world"));
    } else if (a == "--endpoints") {
      endpoints_spec = next("--endpoints");
    } else if (a == "--port-base") {
      port_base = std::stoi(next("--port-base"));
    } else if (a == "--alg") {
      alg_spec = next("--alg");
    } else if (a == "--seed") {
      seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    } else if (a == "--congest-bits") {
      congest_bits = std::strtoll(next("--congest-bits").c_str(), nullptr, 10);
    } else if (a == "--partition") {
      DC_REQUIRE(parse_partition_strategy(next("--partition"), &strategy),
                 "--partition must be contiguous or cluster");
    } else if (a == "--mode") {
      DC_REQUIRE(parse_execution_mode(next("--mode").c_str(), &mode),
                 "--mode must be deterministic or fast");
    } else if (a == "--exchange") {
      DC_REQUIRE(parse_exchange_policy(next("--exchange").c_str(), &exchange),
                 "--exchange must be replicated or owner");
    } else if (a == "--out") {
      out_path = next("--out");
    } else {
      usage(std::cerr);
      return 2;
    }
  }

  try {
    DC_REQUIRE(gen_name.empty() != load_path.empty(),
               "give exactly one of --gen or --load");
    DC_REQUIRE(transport_kind == "tcp" || transport_kind == "inproc",
               "--transport must be tcp or inproc");
    const bool tcp = transport_kind == "tcp";

    // Resolve the cluster shape.
    NetConfig cfg;
    if (tcp) {
      if (auto env = NetConfig::from_env(); env && rank < 0) {
        cfg = *env;
      } else {
        cfg.rank = rank;
        cfg.world = world;
        if (!endpoints_spec.empty()) {
          cfg.endpoints = NetConfig::parse_endpoints(endpoints_spec);
        } else {
          DC_REQUIRE(port_base > 0, "tcp needs --endpoints or --port-base");
          cfg.endpoints = NetConfig::localhost_endpoints(cfg.world, port_base);
        }
        cfg.validate();
      }
    } else {
      cfg.rank = 0;
      cfg.world = world > 0 ? world : 2;
    }
    const int S = cfg.world;

    std::ofstream out_file;
    if (!out_path.empty()) {
      out_file.open(out_path);
      DC_REQUIRE(out_file.good(), "cannot open --out file: " + out_path);
    }
    std::ostream& out = out_path.empty() ? std::cout : out_file;

    // The full graph: replicated pipeline phases need it. (The slice path
    // below additionally proves a rank can load *only* its own rows.)
    const Graph g = !gen_name.empty() ? generator_zoo_graph(gen_name)
                                      : load_edge_list(load_path);
    const std::string workload = !gen_name.empty() ? gen_name : load_path;
    out << "workload=" << workload << " n=" << g.num_vertices()
        << " m=" << g.num_edges() << " delta=" << g.max_degree()
        << " world=" << S << " seed=" << seed << " congest-bits="
        << congest_bits << " partition=" << partition_strategy_name(strategy)
        << " exchange=" << exchange_policy_name(exchange) << "\n";

    // --- 1. per-rank slice + halo -----------------------------------------
    // The canonical table covers every rank (a pure function of the
    // partition, computable locally); the wire verification covers the
    // local rank. Slices live in the partition's layout space (identical to
    // original ids for the contiguous strategy).
    const VertexPartition part = make_partition(g, S, strategy, nullptr);
    for (int r = 0; r < S; ++r) {
      const CsrSlice s = !load_path.empty()
                             ? load_edge_list_slice(load_path, part, r)
                             : slice_of(g, part, r);
      const GraphView view(g, part, r);
      DC_ENSURE(s.lo == view.owned_begin() && s.hi == view.owned_end(),
                "slice bounds disagree with GraphView");
      const std::vector<int> halo = halo_of(s);
      DC_ENSURE(static_cast<int>(halo.size()) ==
                    static_cast<int>(view.halo().size()),
                "slice halo disagrees with GraphView halo");
      std::int64_t entries = s.offsets.back();
      out << "shard=" << r << " owned=[" << s.lo << "," << s.hi
          << ") adj-entries=" << entries << " internal-edges="
          << view.internal_edges() << " halo=" << halo.size() << "\n";
    }
    {
      std::ostringstream frac;
      frac.setf(std::ios::fixed);
      frac.precision(4);
      frac << cross_edge_fraction(g, part);
      out << "cross-edge-fraction=" << frac.str() << "\n";
    }

    std::unique_ptr<ShardRuntime> runtime;
    if (tcp) {
      runtime = std::make_unique<ShardRuntime>(
          g, part, nullptr, std::make_unique<SocketTransport>(cfg));
    } else {
      runtime = std::make_unique<ShardRuntime>(g, part, nullptr);
    }
    // The exchange policy applies to the message-passing step (3): under
    // --transport inproc the in-process backend round-trips cross-shard
    // slots through the codec under the owner policy, so the reference
    // covers both wire disciplines hermetically.
    runtime->set_exchange_policy(exchange);

    // --- 2. halo adjacency over the wire ----------------------------------
    if (tcp) {
      const CsrSlice mine =
          !load_path.empty() ? load_edge_list_slice(load_path, part, cfg.rank)
                             : slice_of(g, part, cfg.rank);
      const auto fetched =
          exchange_halo_adjacency(runtime->transport(), mine);
      for (const HaloNeighborhood& hn : fetched) {
        // Slices speak layout positions; translate back to original ids to
        // compare against the full graph.
        const int v = part.vertex_at(hn.vertex);
        std::vector<int> expect;
        expect.reserve(g.neighbors(v).size());
        for (int u : g.neighbors(v)) expect.push_back(part.position_of(u));
        std::sort(expect.begin(), expect.end());
        DC_ENSURE(std::equal(expect.begin(), expect.end(),
                             hn.neighbors.begin(), hn.neighbors.end()),
                  "wire-fetched halo adjacency disagrees with the graph");
      }
      out << "halo-exchange: verified\n";
    } else {
      // Reference mode: verify all ranks' halo adjacency centrally so the
      // canonical line means the same thing.
      for (int r = 0; r < S; ++r) {
        const GraphView view(g, part, r);
        for (int hv : view.halo()) {
          DC_ENSURE(!view.owns(hv), "halo vertex owned by its own shard");
        }
      }
      out << "halo-exchange: verified\n";
    }

    // --- 3. Luby's MIS with every round's mailbox row over the wire -------
    {
      Rng rng(seed);
      RoundLedger ledger;
      if (congest_bits > 0) ledger.set_congest_bits(congest_bits);
      const std::vector<bool> mis =
          luby_mis_message_passing(g, rng, ledger, "luby", nullptr,
                                   runtime.get());
      std::int64_t mis_size = 0;
      for (bool b : mis) mis_size += b ? 1 : 0;
      out << "luby: mis=" << mis_size << " hash=" << hex(hash_bools(mis))
          << " rounds=" << ledger.total() << " total-bits="
          << runtime->total_bits() << " cross-bits="
          << runtime->cross_shard_bits() << " engine-rounds="
          << runtime->rounds_recorded() << "\n";
      if (tcp) {
        auto& st = static_cast<SocketTransport&>(runtime->transport());
        out << "# rank=" << cfg.rank << " exchange="
            << exchange_policy_name(exchange) << " wire-bytes-sent="
            << st.wire_bytes_sent() << " wire-bytes-received="
            << st.wire_bytes_received() << " frames=" << st.frames_sent()
            << " cross-payload-bytes=" << st.cross_payload_bytes() << "\n";
      }
    }

    // --- 4. the Delta-coloring pipeline, replicated ------------------------
    std::vector<std::pair<std::string, Algorithm>> algs;
    auto add = [&](const std::string& name, Algorithm a) {
      if (alg_spec == "all" || alg_spec == name) algs.emplace_back(name, a);
    };
    add("det", Algorithm::kDeterministic);
    add("large", Algorithm::kRandomizedLarge);
    add("small", Algorithm::kRandomizedSmall);
    add("ps", Algorithm::kBaselineND);
    add("naive", Algorithm::kBaselineGreedyBrooks);
    DC_REQUIRE(!algs.empty(), "unknown --alg value: " + alg_spec);

    for (const auto& [name, alg] : algs) {
      DeltaColoringOptions opt;
      opt.seed = seed;
      opt.num_shards = S;
      opt.congest_bits = congest_bits;
      opt.partition = strategy;
      opt.mode = mode;
      opt.exchange = exchange;  // placement-only here; carried for parity
      const DeltaColoringResult res = delta_color(g, alg, opt);
      validate_delta_coloring(g, res.coloring, res.delta);
      std::vector<int> colors(res.coloring.begin(), res.coloring.end());
      out << "alg=" << name << " colors=" << num_colors_used(res.coloring)
          << "/" << res.delta << " hash=" << hex(hash_ints(colors))
          << " rounds=" << res.ledger.total() << "\n";
      for (const auto& pt : res.ledger.breakdown()) {
        out << "  ledger " << name << " " << pt.phase << " " << pt.rounds
            << "\n";
      }
    }

    if (tcp) {
      static_cast<SocketTransport&>(runtime->transport()).barrier();
    }
    out << "done\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
