// Frequency assignment in a radio mesh network.
//
// Transmitters on a grid-with-holes interfere with their neighbors; a
// proper vertex coloring is a frequency plan, and every color is a leased
// channel. Delta-coloring (instead of the trivial Delta+1) saves exactly
// one channel — the paper's classic motivation. The network is a torus-like
// mesh with random dead nodes, so it is neither complete nor an odd cycle
// and Brooks' theorem applies.
//
//   ./frequency_assignment [rows] [cols] [seed]
#include <cstdlib>
#include <iostream>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/ops.h"

using namespace deltacol;

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 40;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // Torus mesh with ~5% dead transmitters removed.
  const Graph full = grid_graph(rows, cols, true);
  Rng rng(seed);
  std::vector<int> dead;
  for (int v = 0; v < full.num_vertices(); ++v) {
    if (rng.next_bool(0.05)) dead.push_back(v);
  }
  const Subgraph mesh = remove_vertices(full, dead);
  const Graph& g = mesh.graph;
  std::cout << "radio mesh: " << g.num_vertices() << " transmitters, "
            << g.num_edges() << " interference links, max degree "
            << g.max_degree() << "\n";

  DeltaColoringOptions opt;
  opt.seed = seed;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  validate_delta_coloring(g, res.coloring, res.delta);

  std::vector<int> channel_load(static_cast<std::size_t>(res.delta), 0);
  for (Color c : res.coloring) ++channel_load[static_cast<std::size_t>(c)];
  std::cout << "frequency plan with " << res.delta << " channels (greedy would "
            << "lease " << res.delta + 1 << "):\n";
  for (int c = 0; c < res.delta; ++c) {
    std::cout << "  channel " << c << ": "
              << channel_load[static_cast<std::size_t>(c)] << " transmitters\n";
  }
  std::cout << "distributed rounds to converge: " << res.ledger.total() << "\n";
  return 0;
}
