// Quickstart: Delta-color a graph with every algorithm in the library and
// compare round counts.
//
//   ./quickstart [n] [delta] [seed]
//
// Builds a random Delta-regular graph, runs the paper's algorithms
// (Theorems 1, 3, 4) and the two baselines, validates each coloring, and
// prints the per-phase round ledger of the randomized algorithm.
#include <cstdlib>
#include <iostream>

#include "core/api.h"
#include "graph/generators.h"

using namespace deltacol;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 4096;
  const int delta = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  Rng rng(seed);
  const Graph g = random_regular(n, delta, rng);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n\n";

  for (Algorithm alg :
       {Algorithm::kRandomizedSmall, Algorithm::kRandomizedLarge,
        Algorithm::kDeterministic, Algorithm::kBaselineND,
        Algorithm::kBaselineGreedyBrooks}) {
    if (alg == Algorithm::kRandomizedLarge && delta < 4) continue;
    DeltaColoringOptions opt;
    opt.seed = seed;
    const DeltaColoringResult res = delta_color(g, alg, opt);
    validate_delta_coloring(g, res.coloring, res.delta);  // throws if invalid
    std::cout << algorithm_name(alg) << "\n  rounds: " << res.ledger.total()
              << "  (colors used: " << num_colors_used(res.coloring) << "/"
              << res.delta << ")\n";
  }

  std::cout << "\nper-phase ledger of the randomized small-Delta run:\n";
  DeltaColoringOptions opt;
  opt.seed = seed;
  const auto res = delta_color(g, Algorithm::kRandomizedSmall, opt);
  std::cout << res.ledger.report();
  std::cout << "T-nodes: " << res.stats.num_tnodes
            << ", DCCs selected: " << res.stats.num_dccs_selected
            << ", leftover vertices: " << res.stats.leftover_vertices << "\n";
  return 0;
}
