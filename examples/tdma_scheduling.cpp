// TDMA slot assignment for wireless links.
//
// Links that share an endpoint cannot transmit in the same slot: slots are
// a proper coloring of the LINE GRAPH of the network. For a network with
// max degree d, the line graph has max degree Delta_L = 2d - 2, and
// Delta_L-coloring it packs the schedule into one slot less than greedy.
// Line graphs of d >= 3 networks are nice graphs, so the paper's algorithms
// apply directly.
//
//   ./tdma_scheduling [n] [d] [seed]
#include <cstdlib>
#include <iostream>

#include "core/api.h"
#include "graph/generators.h"

using namespace deltacol;

namespace {

// The line graph: one vertex per edge of g, adjacent when edges share an
// endpoint.
Graph line_graph(const Graph& g, std::vector<Edge>& edge_of_vertex) {
  edge_of_vertex = g.edge_list();
  std::vector<int> idx(edge_of_vertex.size());
  // Bucket edge indices by endpoint.
  std::vector<std::vector<int>> at(static_cast<std::size_t>(g.num_vertices()));
  for (int e = 0; e < static_cast<int>(edge_of_vertex.size()); ++e) {
    at[static_cast<std::size_t>(edge_of_vertex[static_cast<std::size_t>(e)].first)]
        .push_back(e);
    at[static_cast<std::size_t>(edge_of_vertex[static_cast<std::size_t>(e)].second)]
        .push_back(e);
  }
  std::vector<Edge> ledges;
  for (const auto& bucket : at) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      for (std::size_t j = i + 1; j < bucket.size(); ++j) {
        ledges.emplace_back(bucket[i], bucket[j]);
      }
    }
  }
  return Graph::from_edges(static_cast<int>(edge_of_vertex.size()), ledges);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 600;
  const int d = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  Rng rng(seed);
  const Graph net = random_regular(n, d, rng);
  std::vector<Edge> links;
  const Graph lg = line_graph(net, links);
  std::cout << "network: " << net.num_vertices() << " stations, "
            << links.size() << " links; conflict graph max degree "
            << lg.max_degree() << "\n";

  DeltaColoringOptions opt;
  opt.seed = seed;
  const auto res = delta_color(lg, Algorithm::kRandomizedLarge, opt);
  validate_delta_coloring(lg, res.coloring, res.delta);

  // Verify the schedule as a schedule: no station transmits twice per slot.
  const int slots = num_colors_used(res.coloring);
  std::vector<std::vector<int>> station_slot(
      static_cast<std::size_t>(net.num_vertices()),
      std::vector<int>(static_cast<std::size_t>(slots), 0));
  for (int e = 0; e < static_cast<int>(links.size()); ++e) {
    const auto [a, b] = links[static_cast<std::size_t>(e)];
    const int s = res.coloring[static_cast<std::size_t>(e)];
    if (++station_slot[static_cast<std::size_t>(a)][static_cast<std::size_t>(s)] > 1 ||
        ++station_slot[static_cast<std::size_t>(b)][static_cast<std::size_t>(s)] > 1) {
      std::cerr << "schedule conflict at station!\n";
      return 1;
    }
  }
  std::cout << "TDMA frame: " << slots << " slots (trivial greedy frame: "
            << lg.max_degree() + 1 << ")\n"
            << "distributed rounds: " << res.ledger.total() << "\n";
  return 0;
}
