#!/bin/sh
# Line-coverage run: configure an instrumented tree (DELTACOL_COVERAGE=ON),
# build, run the full ctest suite, and summarize line coverage per source
# directory. The summary is written to <build_dir>/coverage_summary.txt (CI
# uploads it as an artifact) and echoed to stdout.
#
# Usage: scripts/coverage.sh [build_dir]   (default: build-cov)
#
# Summarizers, best available first:
#   * gcovr  — per-file table + totals (apt install gcovr);
#   * gcov   — raw fallback: aggregates "Lines executed" per object file with
#              awk, no extra dependencies beyond the compiler itself.
set -eu

BUILD_DIR="${1:-build-cov}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
SUMMARY="$BUILD_DIR/coverage_summary.txt"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DDELTACOL_COVERAGE=ON \
  -DDELTACOL_BUILD_BENCH=OFF \
  -DDELTACOL_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc 2>/dev/null || echo 2)"

if command -v gcovr >/dev/null 2>&1; then
  # Restrict to the library sources; tests measuring themselves is noise.
  gcovr --root "$SRC_DIR" --filter "$SRC_DIR/src/" \
    --print-summary --txt "$SUMMARY" "$BUILD_DIR"
  cat "$SUMMARY"
else
  echo "gcovr not found; falling back to raw gcov aggregation" >&2
  # Whole build tree, like the gcovr path: test TUs drive the coverage of
  # header-only code (e.g. the template engines in frontier_bfs.h), and the
  # src/-prefix filter below drops gtest/system-header noise.
  find "$BUILD_DIR" -name '*.gcda' | while read -r gcda; do
    # -n: report only, no .gcov files; object-dir keyed so src paths resolve.
    gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null
  done | awk -v src="$SRC_DIR/src/" '
    /^File /          { file = $2; gsub(/\x27/, "", file) }
    /^Lines executed/ {
      # Library sources only; headers are measured once per including TU,
      # so aggregate line counts per file across TUs.
      if (index(file, src) != 1) next
      split($0, a, ":"); split(a[2], b, "% of ");
      cov[file] += b[1] / 100.0 * b[2]; tot[file] += b[2];
    }
    END {
      for (f in tot) {
        covered += cov[f]; total += tot[f]
        short = f; sub(src, "", short)
        printf "%7.2f%% of %5d lines  %s\n",
               100.0 * cov[f] / tot[f], tot[f], short
      }
      if (total > 0)
        printf "%7.2f%% of %5d lines  TOTAL\n",
               100.0 * covered / total, total
    }' | sort -k4 | tee "$SUMMARY"
fi
echo "coverage summary: $SUMMARY"
