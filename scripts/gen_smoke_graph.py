#!/usr/bin/env python3
"""Writes smoke.edges: the deterministic d-regular-ish smoke graph the CI
sanitizer jobs feed to deltacol_cli (random matching sweeps, seed 4)."""
import random

random.seed(4)
n, d = 600, 6
edges = set()
for _ in range(d):
    perm = list(range(n))
    random.shuffle(perm)
    for i in range(0, n - 1, 2):
        a, b = perm[i], perm[i + 1]
        if a != b:
            edges.add((min(a, b), max(a, b)))
with open("smoke.edges", "w") as f:
    f.write(f"{n} {len(edges)}\n")
    for a, b in sorted(edges):
        f.write(f"{a} {b}\n")
