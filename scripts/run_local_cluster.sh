#!/usr/bin/env bash
# Differential multi-process check: spawn a 2-rank localhost TCP cluster per
# generator-zoo workload (LOCAL and CONGEST(B=64)) and require every rank's
# canonical output to be byte-identical to the in-process reference.
#
#   scripts/run_local_cluster.sh [BUILD_DIR] [WORLD] [--partition contiguous|cluster]
#
# BUILD_DIR defaults to ./build, WORLD to 2, and --partition picks the shard
# ownership map (graph/renumber.h); the canonical output is checked the same
# way for either strategy, since partitioning is placement-only. Canonical
# output is every line of deltacol_mpi_like not starting with "# " (rank-local
# wire counters are "# "-prefixed and excluded; see the launcher's file
# comment). After each matching run the rank-local wire summary is echoed so a
# cluster-vs-contiguous pair of invocations shows the cross-payload drop.
# Exit 0 iff every rank of every workload matches its reference.
set -u

BUILD_DIR=build
WORLD=2
PARTITION=contiguous
positional=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --partition)
      [[ $# -ge 2 ]] || { echo "error: --partition needs a value" >&2; exit 2; }
      PARTITION="$2"
      shift 2
      ;;
    *)
      positional=$((positional + 1))
      case "$positional" in
        1) BUILD_DIR="$1" ;;
        2) WORLD="$1" ;;
        *) echo "error: unexpected argument '$1'" >&2; exit 2 ;;
      esac
      shift
      ;;
  esac
done
case "$PARTITION" in contiguous|cluster) ;; *)
  echo "error: --partition must be contiguous or cluster" >&2; exit 2 ;;
esac

BIN="$BUILD_DIR/deltacol_mpi_like"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

WORKLOADS=(regular-500-6 gallai-400-4 sparse-400-6 3-components triangle-cactus)
CONGEST=(0 64)
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

failures=0
run=0
for gen in "${WORKLOADS[@]}"; do
  for bits in "${CONGEST[@]}"; do
    run=$((run + 1))
    # Fresh port range per run; retry once on collision with another process.
    for attempt in 1 2 3; do
      port_base=$((20000 + (RANDOM % 40000)))
      ref="$TMP/$gen-$bits-ref.txt"
      if ! "$BIN" --gen "$gen" --transport inproc --world "$WORLD" \
           --congest-bits "$bits" --partition "$PARTITION" --out "$ref"; then
        echo "FAIL $gen B=$bits: in-process reference failed" >&2
        failures=$((failures + 1))
        break
      fi
      pids=()
      for ((r = 0; r < WORLD; ++r)); do
        "$BIN" --gen "$gen" --transport tcp --rank "$r" --world "$WORLD" \
          --port-base "$port_base" --congest-bits "$bits" \
          --partition "$PARTITION" \
          --out "$TMP/$gen-$bits-rank$r.txt" 2> "$TMP/$gen-$bits-rank$r.err" &
        pids+=($!)
      done
      rc=0
      for pid in "${pids[@]}"; do
        wait "$pid" || rc=1
      done
      if [[ $rc -ne 0 && $attempt -lt 3 ]]; then
        # Most likely a port collision with an unrelated process — retry on
        # a fresh range.
        continue
      fi
      if [[ $rc -ne 0 ]]; then
        echo "FAIL $gen B=$bits: a rank exited nonzero" >&2
        cat "$TMP/$gen-$bits-rank"*.err >&2
        failures=$((failures + 1))
        break
      fi
      ok=1
      for ((r = 0; r < WORLD; ++r)); do
        if ! diff <(grep -v '^# ' "$TMP/$gen-$bits-rank$r.txt") "$ref" \
             > "$TMP/$gen-$bits-rank$r.diff"; then
          echo "FAIL $gen B=$bits rank $r: output differs from reference:" >&2
          cat "$TMP/$gen-$bits-rank$r.diff" >&2
          ok=0
        fi
      done
      if [[ $ok -eq 1 ]]; then
        echo "OK   $gen B=$bits partition=$PARTITION:" \
             "$WORLD ranks byte-identical to in-process"
        # Rank-local wire summary (legitimately differs per rank).
        grep -h '^# ' "$TMP/$gen-$bits-rank"*.txt | sed "s/^# /  wire $gen B=$bits /"
      else
        failures=$((failures + 1))
      fi
      break
    done
  done
done

echo "---"
echo "$((run - failures))/$run workload runs byte-identical (partition=$PARTITION)"
[[ $failures -eq 0 ]]
