#!/usr/bin/env bash
# Differential multi-process check: spawn a 2-rank localhost TCP cluster per
# generator-zoo workload (LOCAL and CONGEST(B=64)) and require every rank's
# canonical output to be byte-identical to the in-process reference.
#
#   scripts/run_local_cluster.sh [BUILD_DIR] [WORLD] \
#       [--partition contiguous|cluster] [--exchange replicated|owner]
#
# BUILD_DIR defaults to ./build, WORLD to 2, --partition picks the shard
# ownership map (graph/renumber.h) and --exchange the wire discipline
# (runtime/execution_mode.h): replicated all-gathers full mailbox rows,
# owner ships only cross-shard slots point-to-point and merges rank-locally.
# Canonical output is checked the same way for any combination, since both
# knobs are placement/transport-only. Canonical output is every line of
# deltacol_mpi_like not starting with "# " (rank-local wire counters are
# "# "-prefixed and excluded; see the launcher's file comment).
#
# Under --exchange owner each workload additionally runs the replicated
# cluster so the script can print the REALIZED per-rank wire-byte reduction
# (owner vs replicated physical bytes on the same workload/partition) — the
# owner-compute win measured on real sockets, not predicted.
# Exit 0 iff every rank of every workload matches its reference.
set -u

BUILD_DIR=build
WORLD=2
PARTITION=contiguous
EXCHANGE=replicated
positional=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --partition)
      [[ $# -ge 2 ]] || { echo "error: --partition needs a value" >&2; exit 2; }
      PARTITION="$2"
      shift 2
      ;;
    --exchange)
      [[ $# -ge 2 ]] || { echo "error: --exchange needs a value" >&2; exit 2; }
      EXCHANGE="$2"
      shift 2
      ;;
    *)
      positional=$((positional + 1))
      case "$positional" in
        1) BUILD_DIR="$1" ;;
        2) WORLD="$1" ;;
        *) echo "error: unexpected argument '$1'" >&2; exit 2 ;;
      esac
      shift
      ;;
  esac
done
case "$PARTITION" in contiguous|cluster) ;; *)
  echo "error: --partition must be contiguous or cluster" >&2; exit 2 ;;
esac
case "$EXCHANGE" in replicated|owner) ;; *)
  echo "error: --exchange must be replicated or owner" >&2; exit 2 ;;
esac

BIN="$BUILD_DIR/deltacol_mpi_like"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

WORKLOADS=(regular-500-6 gallai-400-4 sparse-400-6 3-components triangle-cactus)
CONGEST=(0 64)
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# run_cluster GEN BITS EXCHANGE TAG — in-process reference + WORLD tcp ranks,
# diffing each rank's canonical lines against the reference. Writes per-rank
# outputs to $TMP/$TAG-rank$r.txt. Returns 0 iff all ranks byte-identical.
run_cluster() {
  local gen="$1" bits="$2" exchange="$3" tag="$4"
  local attempt port_base ref rc ok r
  for attempt in 1 2 3; do
    port_base=$((20000 + (RANDOM % 40000)))
    ref="$TMP/$tag-ref.txt"
    if ! "$BIN" --gen "$gen" --transport inproc --world "$WORLD" \
         --congest-bits "$bits" --partition "$PARTITION" \
         --exchange "$exchange" --out "$ref"; then
      echo "FAIL $gen B=$bits exchange=$exchange: in-process reference failed" >&2
      return 1
    fi
    local pids=()
    for ((r = 0; r < WORLD; ++r)); do
      "$BIN" --gen "$gen" --transport tcp --rank "$r" --world "$WORLD" \
        --port-base "$port_base" --congest-bits "$bits" \
        --partition "$PARTITION" --exchange "$exchange" \
        --out "$TMP/$tag-rank$r.txt" 2> "$TMP/$tag-rank$r.err" &
      pids+=($!)
    done
    rc=0
    for pid in "${pids[@]}"; do
      wait "$pid" || rc=1
    done
    if [[ $rc -ne 0 && $attempt -lt 3 ]]; then
      # Most likely a port collision with an unrelated process — retry on
      # a fresh range.
      continue
    fi
    if [[ $rc -ne 0 ]]; then
      echo "FAIL $gen B=$bits exchange=$exchange: a rank exited nonzero" >&2
      cat "$TMP/$tag-rank"*.err >&2
      return 1
    fi
    ok=1
    for ((r = 0; r < WORLD; ++r)); do
      if ! diff <(grep -v '^# ' "$TMP/$tag-rank$r.txt") "$ref" \
           > "$TMP/$tag-rank$r.diff"; then
        echo "FAIL $gen B=$bits exchange=$exchange rank $r:" \
             "output differs from reference:" >&2
        cat "$TMP/$tag-rank$r.diff" >&2
        ok=0
      fi
    done
    [[ $ok -eq 1 ]] && return 0
    return 1
  done
  return 1
}

failures=0
run=0
for gen in "${WORKLOADS[@]}"; do
  for bits in "${CONGEST[@]}"; do
    run=$((run + 1))
    tag="$gen-$bits-$EXCHANGE"
    if ! run_cluster "$gen" "$bits" "$EXCHANGE" "$tag"; then
      failures=$((failures + 1))
      continue
    fi
    echo "OK   $gen B=$bits partition=$PARTITION exchange=$EXCHANGE:" \
         "$WORLD ranks byte-identical to in-process"
    # Rank-local wire summary (legitimately differs per rank).
    grep -h '^# ' "$TMP/$tag-rank"*.txt | sed "s/^# /  wire $gen B=$bits /"
    if [[ "$EXCHANGE" == owner ]]; then
      # Realized reduction: same workload over the replicated all-gather,
      # then per-rank physical bytes side by side.
      base_tag="$gen-$bits-replicated-base"
      if ! run_cluster "$gen" "$bits" replicated "$base_tag"; then
        failures=$((failures + 1))
        continue
      fi
      for ((r = 0; r < WORLD; ++r)); do
        paste -d' ' \
          <(grep '^# ' "$TMP/$base_tag-rank$r.txt") \
          <(grep '^# ' "$TMP/$tag-rank$r.txt") | awk -v gen="$gen" -v bits="$bits" '{
            rep = 0; own = 0;
            for (i = 1; i <= NF; ++i) {
              if ($i ~ /^wire-bytes-sent=/) {
                split($i, kv, "=");
                if (rep == 0) rep = kv[2]; else own = kv[2];
              }
              if ($i ~ /^rank=/) { split($i, kv, "="); r = kv[2]; }
            }
            pct = rep > 0 ? 100.0 * (rep - own) / rep : 0;
            printf "  reduction %s B=%s rank=%s replicated=%dB owner=%dB (-%.1f%%)\n",
                   gen, bits, r, rep, own, pct;
          }'
      done
    fi
  done
done

echo "---"
echo "$((run - failures))/$run workload runs byte-identical" \
     "(partition=$PARTITION exchange=$EXCHANGE)"
[[ $failures -eq 0 ]]
