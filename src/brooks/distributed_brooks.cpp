#include "brooks/distributed_brooks.h"

#include <algorithm>
#include <cmath>

#include "coloring/brooks_seq.h"
#include "coloring/degree_choosable.h"
#include "dcc/dcc.h"
#include "graph/components.h"
#include "graph/frontier_bfs.h"
#include "graph/ops.h"
#include "graph/traversal.h"
#include "util/check.h"
#include "util/math_util.h"

namespace deltacol {

int brooks_search_radius(int n, int delta) {
  DC_REQUIRE(delta >= 3, "Brooks machinery needs delta >= 3");
  const double r = 2.0 * log_base(static_cast<double>(delta - 1),
                                  static_cast<double>(std::max(2, n)));
  return static_cast<int>(std::ceil(r)) + 2;
}

namespace {

// Walk the token from `path[0]` along the path; stops early if a free color
// appears. Returns the final token position.
int walk_token(const Graph& g, Coloring& c, const std::vector<int>& path,
               int delta) {
  int token = path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (first_free_color(g, c, token, delta).has_value()) break;
    const int next = path[i];
    // No free color => all delta neighbor colors distinct; stealing next's
    // color keeps the coloring proper once next is uncolored.
    c[static_cast<std::size_t>(token)] = c[static_cast<std::size_t>(next)];
    c[static_cast<std::size_t>(next)] = kUncolored;
    token = next;
  }
  return token;
}

// Shortest path from src to the nearest vertex satisfying `good`, within
// radius max_r; empty if none.
std::vector<int> path_to_nearest(const Graph& g, int src, int max_r,
                                 const std::vector<char>& good) {
  const int n = g.num_vertices();
  std::vector<int> parent(static_cast<std::size_t>(n), -2);
  std::vector<int> dist(static_cast<std::size_t>(n), kUnreachable);
  std::vector<int> queue;
  queue.push_back(src);
  dist[static_cast<std::size_t>(src)] = 0;
  parent[static_cast<std::size_t>(src)] = -1;
  int found = good[static_cast<std::size_t>(src)] ? src : -1;
  for (std::size_t head = 0; head < queue.size() && found == -1; ++head) {
    const int u = queue[head];
    if (dist[static_cast<std::size_t>(u)] >= max_r) break;
    for (int w : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] != kUnreachable) continue;
      dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
      parent[static_cast<std::size_t>(w)] = u;
      if (good[static_cast<std::size_t>(w)]) {
        found = w;
        break;
      }
      queue.push_back(w);
    }
  }
  if (found == -1) return {};
  std::vector<int> path;
  for (int x = found; x != -1; x = parent[static_cast<std::size_t>(x)]) {
    path.push_back(x);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

BrooksFixResult brooks_fix(const Graph& g, Coloring& c, int v0, int delta,
                           int max_radius, BfsScratch* scratch) {
  DC_REQUIRE(delta >= 3, "brooks_fix requires delta >= 3");
  DC_REQUIRE(c[static_cast<std::size_t>(v0)] == kUncolored,
             "v0 must be the uncolored node");
  BrooksFixResult res;

  // Fast path: free color at v0 itself — no ball query, no copy.
  if (const auto x = first_free_color(g, c, v0, delta)) {
    c[static_cast<std::size_t>(v0)] = *x;
    return res;
  }

  const Coloring before = c;
  // Epoch-stamped handle for the two whole-graph queries below; a
  // caller-held scratch amortizes the O(n) state over a loop of fixes.
  BfsScratch local_scratch;
  BfsScratch& bs = scratch != nullptr ? *scratch : local_scratch;
  FrontierBfs bfs_engine;  // serial: the walk stays serial (DESIGN.md §6)

  auto measure_radius = [&]() {
    bfs_engine.run(g, bs, v0);
    int radius = 0;
    for (int u = 0; u < g.num_vertices(); ++u) {
      if (c[static_cast<std::size_t>(u)] != before[static_cast<std::size_t>(u)] &&
          bs.visited(u)) {
        radius = std::max(radius, bs.dist(u));
      }
    }
    return radius;
  };

  // Gather the search ball once; all structure decisions are local to it.
  // induced_subgraph sorts its input, so passing the scratch's visit order
  // directly yields the same subgraph the classic sorted ball() produced.
  bfs_engine.run(g, bs, v0, max_radius);
  const auto ball_sub = induced_subgraph(g, bs.order());
  const Graph& B = ball_sub.graph;
  const int v0_local = ball_sub.from_parent[static_cast<std::size_t>(v0)];

  // Candidate targets inside the ball: vertices of global degree < delta, or
  // vertices lying in a DCC block of the ball.
  const int bn = B.num_vertices();
  std::vector<char> deficient(static_cast<std::size_t>(bn), 0);
  for (int i = 0; i < bn; ++i) {
    const int p = ball_sub.to_parent[static_cast<std::size_t>(i)];
    if (g.degree(p) < delta) deficient[static_cast<std::size_t>(i)] = 1;
  }
  const auto blocks = dcc_blocks(B);
  std::vector<char> in_dcc(static_cast<std::size_t>(bn), 0);
  std::vector<int> dcc_of(static_cast<std::size_t>(bn), -1);
  for (int bi = 0; bi < static_cast<int>(blocks.size()); ++bi) {
    for (int x : blocks[static_cast<std::size_t>(bi)]) {
      in_dcc[static_cast<std::size_t>(x)] = 1;
      dcc_of[static_cast<std::size_t>(x)] = bi;
    }
  }

  std::vector<char> good(static_cast<std::size_t>(bn), 0);
  for (int i = 0; i < bn; ++i) {
    good[static_cast<std::size_t>(i)] =
        (deficient[static_cast<std::size_t>(i)] ||
         in_dcc[static_cast<std::size_t>(i)])
            ? 1
            : 0;
  }

  const auto local_path = path_to_nearest(B, v0_local, max_radius, good);
  if (local_path.empty()) {
    // Lemma 16 says this is unreachable once max_radius >= 2 log_{D-1} n on
    // nice graphs; emergency fallback for callers with a too-small radius:
    // recolor v0's whole connected component from scratch.
    const auto cc = connected_components(g);
    std::vector<int> comp_vertices;
    for (int u = 0; u < g.num_vertices(); ++u) {
      if (cc.component[static_cast<std::size_t>(u)] ==
          cc.component[static_cast<std::size_t>(v0)]) {
        comp_vertices.push_back(u);
      }
    }
    const auto comp = induced_subgraph(g, comp_vertices);
    const Coloring fresh = brooks_coloring_components(comp.graph, delta);
    for (int i = 0; i < comp.graph.num_vertices(); ++i) {
      c[comp.to_parent[static_cast<std::size_t>(i)]] = fresh[i];
    }
    res.used_component_recolor = true;
    res.radius_used = measure_radius();
    return res;
  }

  // Map the path to parent ids and walk the token along it.
  std::vector<int> path;
  path.reserve(local_path.size());
  for (int x : local_path) {
    path.push_back(ball_sub.to_parent[static_cast<std::size_t>(x)]);
  }
  const int token = walk_token(g, c, path, delta);
  if (const auto x = first_free_color(g, c, token, delta)) {
    // Early free color, or the deficient-node case.
    c[static_cast<std::size_t>(token)] = *x;
    res.used_deficient_node =
        deficient[static_cast<std::size_t>(
            ball_sub.from_parent[static_cast<std::size_t>(token)])] != 0;
  } else {
    // DCC case: the token reached the component's nearest vertex without
    // finding slack. Uncolor the block and recolor it from lists.
    const int token_local =
        ball_sub.from_parent[static_cast<std::size_t>(token)];
    DC_ENSURE(in_dcc[static_cast<std::size_t>(token_local)] != 0,
              "token ended neither at slack nor at a DCC");
    const auto& block = blocks[static_cast<std::size_t>(
        dcc_of[static_cast<std::size_t>(token_local)])];
    std::vector<int> block_parent;
    block_parent.reserve(block.size());
    for (int v : block) {
      block_parent.push_back(ball_sub.to_parent[static_cast<std::size_t>(v)]);
    }
    for (int p : block_parent) c[static_cast<std::size_t>(p)] = kUncolored;
    const auto comp = induced_subgraph(g, block_parent);
    ListAssignment lists(static_cast<std::size_t>(comp.graph.num_vertices()));
    for (int i = 0; i < comp.graph.num_vertices(); ++i) {
      const int p = comp.to_parent[static_cast<std::size_t>(i)];
      for (Color col : free_colors(g, c, p, delta)) {
        lists[static_cast<std::size_t>(i)].push_back(col);
      }
    }
    const auto colored = degree_choosable_coloring(comp.graph, lists);
    DC_ENSURE(colored.has_value(),
              "DCC recoloring failed: block was not degree-choosable?");
    for (int i = 0; i < comp.graph.num_vertices(); ++i) {
      c[comp.to_parent[static_cast<std::size_t>(i)]] = (*colored)[i];
    }
    res.used_dcc = true;
  }

  res.radius_used = measure_radius();
  return res;
}

}  // namespace deltacol
