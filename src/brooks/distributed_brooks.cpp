#include "brooks/distributed_brooks.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "coloring/brooks_seq.h"
#include "coloring/degree_choosable.h"
#include "dcc/dcc.h"
#include "graph/components.h"
#include "graph/frontier_bfs.h"
#include "graph/ops.h"
#include "graph/partition.h"
#include "graph/traversal.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/math_util.h"

namespace deltacol {

int brooks_search_radius(int n, int delta) {
  DC_REQUIRE(delta >= 3, "Brooks machinery needs delta >= 3");
  const double r = 2.0 * log_base(static_cast<double>(delta - 1),
                                  static_cast<double>(std::max(2, n)));
  return static_cast<int>(std::ceil(r)) + 2;
}

namespace {

// Walk the token from `path[0]` along the path; stops early if a free color
// appears. Returns the final token position.
int walk_token(const Graph& g, Coloring& c, const std::vector<int>& path,
               int delta) {
  int token = path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (first_free_color(g, c, token, delta).has_value()) break;
    const int next = path[i];
    // No free color => all delta neighbor colors distinct; stealing next's
    // color keeps the coloring proper once next is uncolored.
    c[static_cast<std::size_t>(token)] = c[static_cast<std::size_t>(next)];
    c[static_cast<std::size_t>(next)] = kUncolored;
    token = next;
  }
  return token;
}

// Shortest path from src to the nearest vertex satisfying `good`, within
// radius max_r; empty if none.
std::vector<int> path_to_nearest(const Graph& g, int src, int max_r,
                                 const std::vector<char>& good) {
  const int n = g.num_vertices();
  std::vector<int> parent(static_cast<std::size_t>(n), -2);
  std::vector<int> dist(static_cast<std::size_t>(n), kUnreachable);
  std::vector<int> queue;
  queue.push_back(src);
  dist[static_cast<std::size_t>(src)] = 0;
  parent[static_cast<std::size_t>(src)] = -1;
  int found = good[static_cast<std::size_t>(src)] ? src : -1;
  for (std::size_t head = 0; head < queue.size() && found == -1; ++head) {
    const int u = queue[head];
    if (dist[static_cast<std::size_t>(u)] >= max_r) break;
    for (int w : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] != kUnreachable) continue;
      dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
      parent[static_cast<std::size_t>(w)] = u;
      if (good[static_cast<std::size_t>(w)]) {
        found = w;
        break;
      }
      queue.push_back(w);
    }
  }
  if (found == -1) return {};
  std::vector<int> path;
  for (int x = found; x != -1; x = parent[static_cast<std::size_t>(x)]) {
    path.push_back(x);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

BrooksFixResult brooks_fix(const Graph& g, Coloring& c, int v0, int delta,
                           int max_radius, BfsScratch* scratch,
                           bool defer_emergency) {
  DC_REQUIRE(delta >= 3, "brooks_fix requires delta >= 3");
  DC_REQUIRE(c[static_cast<std::size_t>(v0)] == kUncolored,
             "v0 must be the uncolored node");
  BrooksFixResult res;

  // Fast path: free color at v0 itself — no ball query, no copy.
  if (const auto x = first_free_color(g, c, v0, delta)) {
    c[static_cast<std::size_t>(v0)] = *x;
    return res;
  }

  // Epoch-stamped handle for the whole-graph queries below; a caller-held
  // scratch amortizes the O(n) state over a loop of fixes.
  BfsScratch local_scratch;
  BfsScratch& bs = scratch != nullptr ? *scratch : local_scratch;
  FrontierBfs bfs_engine;  // serial: the walk stays serial (DESIGN.md §6)

  // Gather the search ball once; all structure decisions are local to it.
  // induced_subgraph sorts its input, so passing the scratch's visit order
  // directly yields the same subgraph the classic sorted ball() produced.
  bfs_engine.run(g, bs, v0, max_radius);
  // Snapshot the ball (ids, distances, colors) before any mutation. On the
  // non-emergency paths every write lands inside the ball, so the radius is
  // measured against this snapshot alone — no whole-graph color copy and no
  // re-traversal, which is what lets fixes with disjoint balls run
  // concurrently (schedule_disjoint_brooks_fixes) without ever reading
  // another walk's writes.
  std::vector<int> ball_nodes(bs.order().begin(), bs.order().end());
  std::vector<int> ball_dist;
  std::vector<Color> ball_before;
  ball_dist.reserve(ball_nodes.size());
  ball_before.reserve(ball_nodes.size());
  for (int u : ball_nodes) {
    ball_dist.push_back(bs.dist(u));
    ball_before.push_back(c[static_cast<std::size_t>(u)]);
  }
  const auto ball_sub = induced_subgraph(g, ball_nodes);
  const Graph& B = ball_sub.graph;
  const int v0_local = ball_sub.from_parent[static_cast<std::size_t>(v0)];

  // Candidate targets inside the ball: vertices of global degree < delta, or
  // vertices lying in a DCC block of the ball.
  const int bn = B.num_vertices();
  std::vector<char> deficient(static_cast<std::size_t>(bn), 0);
  for (int i = 0; i < bn; ++i) {
    const int p = ball_sub.to_parent[static_cast<std::size_t>(i)];
    if (g.degree(p) < delta) deficient[static_cast<std::size_t>(i)] = 1;
  }
  const auto blocks = dcc_blocks(B);
  std::vector<char> in_dcc(static_cast<std::size_t>(bn), 0);
  std::vector<int> dcc_of(static_cast<std::size_t>(bn), -1);
  for (int bi = 0; bi < static_cast<int>(blocks.size()); ++bi) {
    for (int x : blocks[static_cast<std::size_t>(bi)]) {
      in_dcc[static_cast<std::size_t>(x)] = 1;
      dcc_of[static_cast<std::size_t>(x)] = bi;
    }
  }

  std::vector<char> good(static_cast<std::size_t>(bn), 0);
  for (int i = 0; i < bn; ++i) {
    good[static_cast<std::size_t>(i)] =
        (deficient[static_cast<std::size_t>(i)] ||
         in_dcc[static_cast<std::size_t>(i)])
            ? 1
            : 0;
  }

  const auto local_path = path_to_nearest(B, v0_local, max_radius, good);
  if (local_path.empty()) {
    // Lemma 16 says this is unreachable once max_radius >= 2 log_{D-1} n on
    // nice graphs; emergency fallback for callers with a too-small radius:
    // recolor v0's whole connected component from scratch. Nothing has been
    // mutated yet, so a deferring caller can bail out here and run the
    // recolor serially after its barrier.
    if (defer_emergency) {
      res.deferred_emergency = true;
      return res;
    }
    const auto cc = connected_components(g);
    std::vector<int> comp_vertices;
    for (int u = 0; u < g.num_vertices(); ++u) {
      if (cc.component[static_cast<std::size_t>(u)] ==
          cc.component[static_cast<std::size_t>(v0)]) {
        comp_vertices.push_back(u);
      }
    }
    const auto comp = induced_subgraph(g, comp_vertices);
    std::vector<Color> comp_before;
    comp_before.reserve(comp_vertices.size());
    for (int u : comp_vertices) {
      comp_before.push_back(c[static_cast<std::size_t>(u)]);
    }
    const Coloring fresh = brooks_coloring_components(comp.graph, delta);
    for (int i = 0; i < comp.graph.num_vertices(); ++i) {
      c[comp.to_parent[static_cast<std::size_t>(i)]] = fresh[i];
    }
    res.used_component_recolor = true;
    // The recolor escapes the ball: measure the radius over the whole
    // component with a fresh unbounded BFS.
    bfs_engine.run(g, bs, v0);
    int radius = 0;
    for (std::size_t i = 0; i < comp_vertices.size(); ++i) {
      const int u = comp_vertices[i];
      if (c[static_cast<std::size_t>(u)] != comp_before[i] && bs.visited(u)) {
        radius = std::max(radius, bs.dist(u));
      }
    }
    res.radius_used = radius;
    return res;
  }

  // Map the path to parent ids and walk the token along it.
  std::vector<int> path;
  path.reserve(local_path.size());
  for (int x : local_path) {
    path.push_back(ball_sub.to_parent[static_cast<std::size_t>(x)]);
  }
  const int token = walk_token(g, c, path, delta);
  if (const auto x = first_free_color(g, c, token, delta)) {
    // Early free color, or the deficient-node case.
    c[static_cast<std::size_t>(token)] = *x;
    res.used_deficient_node =
        deficient[static_cast<std::size_t>(
            ball_sub.from_parent[static_cast<std::size_t>(token)])] != 0;
  } else {
    // DCC case: the token reached the component's nearest vertex without
    // finding slack. Uncolor the block and recolor it from lists.
    const int token_local =
        ball_sub.from_parent[static_cast<std::size_t>(token)];
    DC_ENSURE(in_dcc[static_cast<std::size_t>(token_local)] != 0,
              "token ended neither at slack nor at a DCC");
    const auto& block = blocks[static_cast<std::size_t>(
        dcc_of[static_cast<std::size_t>(token_local)])];
    std::vector<int> block_parent;
    block_parent.reserve(block.size());
    for (int v : block) {
      block_parent.push_back(ball_sub.to_parent[static_cast<std::size_t>(v)]);
    }
    for (int p : block_parent) c[static_cast<std::size_t>(p)] = kUncolored;
    const auto comp = induced_subgraph(g, block_parent);
    ListAssignment lists(static_cast<std::size_t>(comp.graph.num_vertices()));
    for (int i = 0; i < comp.graph.num_vertices(); ++i) {
      const int p = comp.to_parent[static_cast<std::size_t>(i)];
      for (Color col : free_colors(g, c, p, delta)) {
        lists[static_cast<std::size_t>(i)].push_back(col);
      }
    }
    const auto colored = degree_choosable_coloring(comp.graph, lists);
    DC_ENSURE(colored.has_value(),
              "DCC recoloring failed: block was not degree-choosable?");
    for (int i = 0; i < comp.graph.num_vertices(); ++i) {
      c[comp.to_parent[static_cast<std::size_t>(i)]] = (*colored)[i];
    }
    res.used_dcc = true;
  }

  // Radius over the ball snapshot: on this path every change is inside the
  // ball, whose distances the gathering query already produced.
  int radius = 0;
  for (std::size_t i = 0; i < ball_nodes.size(); ++i) {
    if (c[static_cast<std::size_t>(ball_nodes[i])] != ball_before[i]) {
      radius = std::max(radius, ball_dist[i]);
    }
  }
  res.radius_used = radius;
  return res;
}

namespace {

#ifndef NDEBUG
// Debug guard for the scheduled fixes: what the concurrency argument
// actually uses is that one fix's WRITE ball (radius max_radius) never
// meets another fix's READ ball (radius max_radius + 1) — equivalent to
// pairwise base distance >= 2*max_radius + 2, the ruling-set guarantee.
// Two passes over an owner table, O(sum of ball sizes).
void assert_disjoint_brooks_balls(const Graph& g, const std::vector<int>& bases,
                                  int max_radius) {
  std::vector<int> write_owner(static_cast<std::size_t>(g.num_vertices()), -1);
  BfsScratch scratch;
  FrontierBfs bfs;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    bfs.run(g, scratch, bases[i], max_radius);
    for (int u : scratch.order()) {
      DC_ENSURE(write_owner[static_cast<std::size_t>(u)] < 0,
                "scheduled Brooks fixes: recoloring balls overlap (bases "
                "closer than 2*max_radius + 2)");
      write_owner[static_cast<std::size_t>(u)] = static_cast<int>(i);
    }
  }
  for (std::size_t i = 0; i < bases.size(); ++i) {
    bfs.run(g, scratch, bases[i], max_radius + 1);
    for (int u : scratch.order()) {
      const int w = write_owner[static_cast<std::size_t>(u)];
      DC_ENSURE(w < 0 || w == static_cast<int>(i),
                "scheduled Brooks fixes: a fix's read ball meets another "
                "fix's write ball (bases closer than 2*max_radius + 2)");
    }
  }
}
#endif

}  // namespace

ScheduledBrooksFixes schedule_disjoint_brooks_fixes(
    const Graph& g, Coloring& c, const std::vector<int>& bases, int delta,
    int max_radius, ThreadPool* pool, int num_shards,
    const VertexPartition* part, ExecutionMode mode) {
  const int k = static_cast<int>(bases.size());
  ScheduledBrooksFixes out;
  out.results.resize(static_cast<std::size_t>(k));
  out.executed.assign(static_cast<std::size_t>(k), 0);
  if (k == 0) return out;
#ifndef NDEBUG
  assert_disjoint_brooks_balls(g, bases, max_radius);
#endif

  // Pass 1 — concurrent walks, emergencies deferred. Each unit of work owns
  // one BfsScratch (the O(n) visitation state), so the fan-out is capped at
  // one chunk per executor; with shards attached the bases group by the
  // home shard of their vertex — under the caller's partition when given,
  // else the contiguous one (the placement a distributed runtime would
  // use). Any grouping yields bit-identical results: the fixes commute
  // (disjoint read/write sets).
  const auto run_indices = [&](const int* idx, int count) {
    BfsScratch scratch;
    for (int j = 0; j < count; ++j) {
      const int i = idx[j];
      out.results[static_cast<std::size_t>(i)] =
          brooks_fix(g, c, bases[static_cast<std::size_t>(i)], delta,
                     max_radius, &scratch, /*defer_emergency=*/true);
    }
  };
  if (mode == ExecutionMode::kFast && pool != nullptr &&
      pool->num_threads() > 1) {
    // Fast mode (see header): executors claim fixes first-come; each chunk
    // still owns one scratch. The fixes commute, so the claim order is not
    // observable.
    std::atomic<int> next{0};
    pool->parallel_chunks(std::min(pool->num_threads(), k), [&](int) {
      BfsScratch scratch;
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= k) break;
        out.results[static_cast<std::size_t>(i)] =
            brooks_fix(g, c, bases[static_cast<std::size_t>(i)], delta,
                       max_radius, &scratch, /*defer_emergency=*/true);
      }
    });
  } else if (num_shards > 1) {
    const VertexPartition owner_map =
        part != nullptr && part->num_shards() == num_shards &&
                part->num_vertices() == g.num_vertices()
            ? *part
            : VertexPartition::contiguous(g.num_vertices(), num_shards);
    std::vector<std::vector<int>> by_shard(
        static_cast<std::size_t>(num_shards));
    for (int i = 0; i < k; ++i) {
      by_shard[static_cast<std::size_t>(
                   owner_map.shard_of(bases[static_cast<std::size_t>(i)]))]
          .push_back(i);
    }
    const auto shard_body = [&](int s) {
      const auto& group = by_shard[static_cast<std::size_t>(s)];
      run_indices(group.data(), static_cast<int>(group.size()));
    };
    if (pool != nullptr) {
      pool->parallel_chunks(num_shards, shard_body);
    } else {
      for (int s = 0; s < num_shards; ++s) shard_body(s);
    }
  } else {
    std::vector<int> all(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) all[static_cast<std::size_t>(i)] = i;
    pooled_ranges(
        pool, 0, k,
        [&](int /*chunk*/, int lo, int hi) {
          run_indices(all.data() + lo, hi - lo);
        },
        pool != nullptr ? pool->num_threads() : 1);
  }

  // Pass 2 — serial, ascending index: complete the deferred Lemma-27
  // emergencies with the component recolor enabled. A recolor touches the
  // whole component and may color later deferred bases; those are skipped.
  BfsScratch serial_scratch;
  for (int i = 0; i < k; ++i) {
    auto& r = out.results[static_cast<std::size_t>(i)];
    if (r.deferred_emergency) {
      const int v = bases[static_cast<std::size_t>(i)];
      if (c[static_cast<std::size_t>(v)] != kUncolored) continue;  // skipped
      r = brooks_fix(g, c, v, delta, max_radius, &serial_scratch,
                     /*defer_emergency=*/false);
    }
    out.executed[static_cast<std::size_t>(i)] = 1;
    ++out.num_executed;
    if (r.used_component_recolor) ++out.num_emergencies;
    out.max_radius_used = std::max(out.max_radius_used, r.radius_used);
  }
  return out;
}

}  // namespace deltacol
