// The distributed Brooks' theorem (Theorem 5, [PS95], reproved in the paper's
// Section 2.3).
//
// Given a Delta-coloring that is complete except for one node v, the coloring
// can be completed by recoloring only inside the (2 log_{Delta-1} n)-
// neighborhood of v. The constructive procedure (proof of Theorem 5):
//
//   * keep a token at the uncolored node; while the token node has no free
//     color, color it with a chosen neighbor's color and move the token
//     there (the coloring stays proper because a node with no free color
//     sees all Delta colors exactly once);
//   * walk the token toward either a node of degree < Delta (which always
//     has a free color) or a degree-choosable component (Lemma 16 guarantees
//     one of the two exists within radius 2 log_{Delta-1} n);
//   * in the DCC case, uncolor the whole component and recolor it from its
//     lists (possible by Theorem 8).
#pragma once

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace deltacol {

class BfsScratch;  // graph/frontier_bfs.h

struct BrooksFixResult {
  // Max distance from the initially uncolored node of any vertex whose color
  // was changed (the "recoloring radius" measured in experiment E7).
  int radius_used = 0;
  // Which terminal case fired.
  bool used_dcc = false;
  bool used_deficient_node = false;
  // Emergency path: the search radius did not suffice (should not happen
  // when max_radius >= 2 log_{Delta-1} n + 1 on nice graphs) and the whole
  // component was recolored from scratch.
  bool used_component_recolor = false;
};

// Completes the coloring at v0. Preconditions: c proper, complete except
// exactly at v0; delta >= max degree; delta >= 3; v0's component is not a
// clique on delta+1 vertices. Post: c proper and complete, only vertices
// within radius_used of v0 changed.
//
// The walk itself is serial by design (its emergency component-recolor path
// may touch the whole component, see DESIGN.md §6), but the two whole-graph
// ball queries — gathering the search ball and measuring the recoloring
// radius — run through `scratch` when the caller passes one, so a loop of
// fixes pays the O(n) visitation state once instead of per call. nullptr
// falls back to a call-local scratch; results are identical either way.
BrooksFixResult brooks_fix(const Graph& g, Coloring& c, int v0, int delta,
                           int max_radius, BfsScratch* scratch = nullptr);

// The paper's bound 2 log_{Delta-1} n, rounded up, plus slack for the DCC
// diameter; a safe default max_radius for brooks_fix.
int brooks_search_radius(int n, int delta);

}  // namespace deltacol
