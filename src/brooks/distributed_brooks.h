// The distributed Brooks' theorem (Theorem 5, [PS95], reproved in the paper's
// Section 2.3).
//
// Given a Delta-coloring that is complete except for one node v, the coloring
// can be completed by recoloring only inside the (2 log_{Delta-1} n)-
// neighborhood of v. The constructive procedure (proof of Theorem 5):
//
//   * keep a token at the uncolored node; while the token node has no free
//     color, color it with a chosen neighbor's color and move the token
//     there (the coloring stays proper because a node with no free color
//     sees all Delta colors exactly once);
//   * walk the token toward either a node of degree < Delta (which always
//     has a free color) or a degree-choosable component (Lemma 16 guarantees
//     one of the two exists within radius 2 log_{Delta-1} n);
//   * in the DCC case, uncolor the whole component and recolor it from its
//     lists (possible by Theorem 8).
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/execution_mode.h"

namespace deltacol {

class BfsScratch;   // graph/frontier_bfs.h
class ThreadPool;   // runtime/thread_pool.h; nullptr = serial

struct BrooksFixResult {
  // Max distance from the initially uncolored node of any vertex whose color
  // was changed (the "recoloring radius" measured in experiment E7).
  int radius_used = 0;
  // Which terminal case fired.
  bool used_dcc = false;
  bool used_deficient_node = false;
  // Emergency path: the search radius did not suffice (should not happen
  // when max_radius >= 2 log_{Delta-1} n + 1 on nice graphs) and the whole
  // component was recolored from scratch.
  bool used_component_recolor = false;
  // Set only under defer_emergency: the emergency case was detected and
  // NOTHING was mutated — the caller must finish this fix serially (the
  // component recolor escapes the search ball, so it cannot run while
  // other walks are in flight).
  bool deferred_emergency = false;
};

// Completes the coloring at v0. Preconditions: c proper, complete except
// exactly at v0; delta >= max degree; delta >= 3; v0's component is not a
// clique on delta+1 vertices. Post: c proper and complete, only vertices
// within radius_used of v0 changed.
//
// The walk runs serially here, but it reads colors only within distance
// max_radius + 1 of v0 and writes only within max_radius, so fixes of base
// vertices at pairwise distance >= 2*max_radius + 2 commute and may run
// concurrently — that is what schedule_disjoint_brooks_fixes does. The only
// escape from that locality is the emergency component recolor; passing
// defer_emergency = true makes the emergency case return (untouched
// coloring, deferred_emergency set) instead, so a concurrent caller can
// complete it after its barrier.
//
// The whole-graph ball query runs through `scratch` when the caller passes
// one, so a loop of fixes pays the O(n) visitation state once instead of
// per call. nullptr falls back to a call-local scratch; results are
// identical either way.
BrooksFixResult brooks_fix(const Graph& g, Coloring& c, int v0, int delta,
                           int max_radius, BfsScratch* scratch = nullptr,
                           bool defer_emergency = false);

// Outcome of a scheduled batch of Brooks fixes (index-aligned with the
// input bases).
struct ScheduledBrooksFixes {
  std::vector<BrooksFixResult> results;
  // 0 for a base that was skipped because an earlier emergency recolor in
  // the serial pass had already colored it (only possible after a Lemma-27
  // fallback; such bases get no fix and a default-constructed result).
  std::vector<char> executed;
  int num_executed = 0;
  int num_emergencies = 0;  // results[i].used_component_recolor count
  int max_radius_used = 0;
};

// Schedules the token-walk fixes of `bases` on the pool. REQUIRES pairwise
// distance >= 2*max_radius + 2 between bases (ruling-set construction gives
// exactly this; debug builds assert the resulting radius-max_radius ball
// disjointness) and every base uncolored on entry. Two passes:
//
//  1. Parallel pass: contiguous base ranges fan out as chunks (one
//     BfsScratch each; shard-major grouping by each base's home shard when
//     num_shards > 1 — under `part` when the caller passes its partition,
//     else the contiguous one); every fix runs with emergencies deferred,
//     so concurrent walks touch disjoint balls only.
//  2. Serial pass, ascending index: deferred Lemma-27 emergencies complete
//     with the component recolor enabled (a recolor may color later
//     deferred bases — those are skipped, see `executed`).
//
// Results are bit-identical for every (threads, shards, partition)
// combination: the parallel-pass fixes commute (disjoint read/write sets)
// and the serial pass is index-ordered.
//
// `mode` (runtime/execution_mode.h) kFast drops the shard grouping AND the
// static contiguous ranges of pass 1: executors claim fixes first-come
// through an atomic cursor (walk costs vary wildly, so static ranges leave
// executors idle behind a heavy chunk). Valid because the fixes commute —
// the claim order is not observable in the coloring; pass 2 stays serial
// and index-ordered either way.
ScheduledBrooksFixes schedule_disjoint_brooks_fixes(
    const Graph& g, Coloring& c, const std::vector<int>& bases, int delta,
    int max_radius, ThreadPool* pool, int num_shards = 1,
    const VertexPartition* part = nullptr,
    ExecutionMode mode = ExecutionMode::kDeterministic);

// The paper's bound 2 log_{Delta-1} n, rounded up, plus slack for the DCC
// diameter; a safe default max_radius for brooks_fix.
int brooks_search_radius(int n, int delta);

}  // namespace deltacol
