#include "coloring/brooks_seq.h"

#include <algorithm>

#include "coloring/greedy.h"
#include "graph/components.h"
#include "graph/ops.h"
#include "graph/structure.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace deltacol {

namespace {

// Greedy in decreasing-BFS-distance order from root. Every non-root vertex
// has its BFS parent uncolored when processed, so Delta colors suffice for
// it; the root must be handled by the caller's setup (degree < Delta, or two
// same-colored neighbors).
void color_toward_root(const Graph& g, int root, int delta, Coloring& c) {
  greedy_color_in_order(g, decreasing_bfs_order(g, root), delta, c);
}

// Case: some vertex has degree < Delta (graph connected).
Coloring color_with_deficient_root(const Graph& g, int root, int delta) {
  Coloring c(static_cast<std::size_t>(g.num_vertices()), kUncolored);
  color_toward_root(g, root, delta, c);
  return c;
}

// Case: Delta-regular and 2-connected, not complete, Delta >= 3. Find
// w, u1, u2 with u1, u2 non-adjacent neighbors of w and G - {u1, u2}
// connected; color u1 = u2, then greedily toward w.
Coloring color_regular_biconnected(const Graph& g, int delta) {
  const int n = g.num_vertices();
  for (int w = 0; w < n; ++w) {
    const auto nb = g.neighbors(w);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        const int u1 = nb[i], u2 = nb[j];
        if (g.has_edge(u1, u2)) continue;
        const std::vector<int> removed{u1, u2};
        const auto rest = remove_vertices(g, removed);
        if (!is_connected(rest.graph)) continue;
        Coloring c(static_cast<std::size_t>(n), kUncolored);
        c[u1] = 0;
        c[u2] = 0;
        // Order by decreasing distance from w measured in G - {u1, u2}:
        // every vertex then has an uncolored neighbor (its BFS parent in the
        // reduced graph) at coloring time; u1/u2 are pre-colored.
        const int w_local = rest.from_parent[static_cast<std::size_t>(w)];
        std::vector<int> order;
        for (int x : decreasing_bfs_order(rest.graph, w_local)) {
          order.push_back(rest.to_parent[static_cast<std::size_t>(x)]);
        }
        greedy_color_in_order(g, order, delta, c);
        return c;
      }
    }
  }
  DC_ENSURE(false,
            "no Brooks triple found: graph is not a Delta-regular 2-connected "
            "non-clique with Delta >= 3");
  return {};
}

Coloring brooks_connected(const Graph& g);

// Case: Delta-regular with a cut vertex. Each "v + component" piece sees v
// with degree < Delta; color pieces independently and rename so v agrees.
Coloring color_regular_with_cut_vertex(const Graph& g, int cut, int delta) {
  Coloring result(static_cast<std::size_t>(g.num_vertices()), kUncolored);
  const std::vector<int> removed{cut};
  const auto rest = remove_vertices(g, removed);
  const auto comps = connected_components(rest.graph).vertex_sets();
  for (const auto& comp : comps) {
    std::vector<int> piece_vertices{cut};
    for (int v : comp) piece_vertices.push_back(rest.to_parent[static_cast<std::size_t>(v)]);
    const auto piece = induced_subgraph(g, piece_vertices);
    const int cut_local = piece.from_parent[static_cast<std::size_t>(cut)];
    // In the piece, the cut vertex lost at least one neighbor, so its degree
    // is < delta: use it as the deficient root with the global palette.
    Coloring pc = color_with_deficient_root(piece.graph, cut_local, delta);
    // Rename colors inside the piece so the cut vertex gets color 0.
    const Color pivot = pc[cut_local];
    for (auto& x : pc) {
      if (x == pivot) x = 0;
      else if (x == 0) x = pivot;
    }
    for (int v = 0; v < piece.graph.num_vertices(); ++v) {
      result[piece.to_parent[static_cast<std::size_t>(v)]] = pc[v];
    }
  }
  return result;
}

Coloring brooks_connected(const Graph& g) {
  const int delta = g.max_degree();
  DC_REQUIRE(delta >= 3, "Brooks coloring here requires max degree >= 3");
  DC_REQUIRE(!is_clique(g), "cliques are not Delta-colorable");
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) < delta) return color_with_deficient_root(g, v, delta);
  }
  // Delta-regular. Split on 2-connectivity.
  const auto blocks = block_decomposition(g);
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (blocks.is_articulation[v]) {
      return color_regular_with_cut_vertex(g, v, delta);
    }
  }
  return color_regular_biconnected(g, delta);
}

}  // namespace

Coloring brooks_coloring(const Graph& g) {
  DC_REQUIRE(is_connected(g), "brooks_coloring expects a connected graph");
  Coloring c = brooks_connected(g);
  validate_delta_coloring(g, c, g.max_degree());
  return c;
}

Coloring brooks_coloring_components(const Graph& g, int delta) {
  DC_REQUIRE(delta >= g.max_degree(), "palette smaller than max degree");
  Coloring result(static_cast<std::size_t>(g.num_vertices()), kUncolored);
  for (const auto& comp : connected_components(g).vertex_sets()) {
    const auto sub = induced_subgraph(g, comp);
    Coloring sc;
    if (is_clique(sub.graph)) {
      DC_REQUIRE(sub.graph.num_vertices() <= delta,
                 "component is a clique larger than the palette");
      sc.resize(static_cast<std::size_t>(sub.graph.num_vertices()));
      for (int v = 0; v < sub.graph.num_vertices(); ++v) sc[v] = v;
    } else if (is_cycle(sub.graph) || is_path(sub.graph)) {
      DC_REQUIRE(delta >= 3 || !is_odd_cycle(sub.graph),
                 "odd cycle needs at least 3 colors");
      // Walk the path/cycle alternating 0/1; an odd cycle's last vertex
      // takes color 2.
      const int cn = sub.graph.num_vertices();
      sc.assign(static_cast<std::size_t>(cn), kUncolored);
      int start = 0;
      for (int v = 0; v < cn; ++v) {
        if (sub.graph.degree(v) == 1) start = v;  // path endpoint if any
      }
      int prev = -1, cur = start;
      for (int step = 0; step < cn; ++step) {
        sc[cur] = step % 2;
        int nxt = -1;
        for (int u : sub.graph.neighbors(cur)) {
          if (u != prev && sc[u] == kUncolored) nxt = u;
        }
        prev = cur;
        if (nxt == -1) break;
        cur = nxt;
      }
      // Odd cycle: the final vertex neighbors both color classes.
      if (is_odd_cycle(sub.graph)) sc[prev] = 2;
    } else if (sub.graph.max_degree() < delta) {
      // The global palette exceeds the local max degree: greedy toward any
      // root suffices.
      sc.assign(static_cast<std::size_t>(sub.graph.num_vertices()), kUncolored);
      greedy_color_in_order(sub.graph, decreasing_bfs_order(sub.graph, 0),
                            delta, sc);
    } else {
      sc = brooks_connected(sub.graph);
    }
    for (int v = 0; v < sub.graph.num_vertices(); ++v) {
      result[sub.to_parent[static_cast<std::size_t>(v)]] = sc[v];
    }
  }
  validate_delta_coloring(g, result, delta);
  return result;
}

}  // namespace deltacol
