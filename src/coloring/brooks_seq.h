// Sequential constructive Brooks' theorem.
//
// Lovász-style proof turned into an algorithm: any connected graph that is
// neither a clique nor an odd cycle has a Delta-coloring, found in polynomial
// time. Used as (a) the ground-truth oracle in tests, and (b) the terminal
// repair step when a distributed phase is asked to finish a component
// sequentially (charged honestly via the ledger by callers).
#pragma once

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace deltacol {

// Delta-colors a connected nice graph (max degree >= 3, not a clique;
// cycles/paths are rejected — 2-colorable graphs are outside Brooks scope
// here). Colors used: {0..Delta-1} where Delta = g.max_degree().
Coloring brooks_coloring(const Graph& g);

// As above but for any graph whose every connected component is Delta-
// colorable with the *global* Delta (components that are cliques of size
// <= Delta or cycles with Delta >= 3 are fine; a Delta+1 clique or an odd
// cycle when Delta = 2 throws).
Coloring brooks_coloring_components(const Graph& g, int delta);

}  // namespace deltacol
