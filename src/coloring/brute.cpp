#include "coloring/brute.h"

#include <algorithm>

#include "util/check.h"

namespace deltacol {

namespace {

struct Searcher {
  const Graph& g;
  const ListAssignment& lists;
  Coloring colors;
  std::int64_t budget;

  bool feasible(int v, Color x) const {
    for (int u : g.neighbors(v)) {
      if (colors[u] == x) return false;
    }
    return true;
  }

  int remaining_values(int v) const {
    int k = 0;
    for (Color x : lists[static_cast<std::size_t>(v)]) {
      if (feasible(v, x)) ++k;
    }
    return k;
  }

  // MRV: the uncolored vertex with fewest feasible colors.
  int pick_vertex() const {
    int best = -1;
    int best_rv = -1;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (colors[v] != kUncolored) continue;
      const int rv = remaining_values(v);
      if (best == -1 || rv < best_rv) {
        best = v;
        best_rv = rv;
        if (rv == 0) break;  // dead end; fail fast
      }
    }
    return best;
  }

  bool solve() {
    DC_ENSURE(budget-- > 0, "brute force node budget exhausted");
    const int v = pick_vertex();
    if (v == -1) return true;  // everything colored
    for (Color x : lists[static_cast<std::size_t>(v)]) {
      if (!feasible(v, x)) continue;
      colors[v] = x;
      if (solve()) return true;
      colors[v] = kUncolored;
    }
    return false;
  }
};

}  // namespace

std::optional<Coloring> brute_force_list_coloring(const Graph& g,
                                                  const ListAssignment& lists,
                                                  const Coloring& partial,
                                                  std::int64_t max_nodes) {
  DC_REQUIRE(static_cast<int>(lists.size()) == g.num_vertices(),
             "list assignment size mismatch");
  DC_REQUIRE(static_cast<int>(partial.size()) == g.num_vertices(),
             "partial coloring size mismatch");
  Searcher s{g, lists, partial, max_nodes};
  if (s.solve()) return s.colors;
  return std::nullopt;
}

std::optional<Coloring> brute_force_list_coloring(const Graph& g,
                                                  const ListAssignment& lists,
                                                  std::int64_t max_nodes) {
  const Coloring empty(static_cast<std::size_t>(g.num_vertices()), kUncolored);
  return brute_force_list_coloring(g, lists, empty, max_nodes);
}

bool is_k_colorable(const Graph& g, int k) {
  std::vector<Color> palette;
  for (Color x = 0; x < k; ++x) palette.push_back(x);
  const ListAssignment lists(static_cast<std::size_t>(g.num_vertices()), palette);
  return brute_force_list_coloring(g, lists).has_value();
}

}  // namespace deltacol
