// Exact backtracking list coloring.
//
// The paper brute-forces small components (Phase (9) and Section 4.3 step
// (5)); this is that brute force, with MRV (minimum remaining values)
// ordering and forward checking so that blocks of a few dozen vertices are
// instantaneous. Guarded by a node budget so a misuse on a large instance
// fails loudly instead of hanging.
#pragma once

#include <cstdint>
#include <optional>

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace deltacol {

// Finds a proper coloring where every vertex gets a color from its list, or
// nullopt if none exists. Pre-colored vertices in `partial` are fixed (their
// color need not be in their list). `max_nodes` bounds backtracking search
// nodes; exceeding it is a contract violation (raise it for bigger brutes).
std::optional<Coloring> brute_force_list_coloring(
    const Graph& g, const ListAssignment& lists,
    const Coloring& partial, std::int64_t max_nodes = 20'000'000);

std::optional<Coloring> brute_force_list_coloring(
    const Graph& g, const ListAssignment& lists,
    std::int64_t max_nodes = 20'000'000);

// Is the graph colorable from {0..k-1}? (Exact; for test oracles.)
bool is_k_colorable(const Graph& g, int k);

}  // namespace deltacol
