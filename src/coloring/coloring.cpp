#include "coloring/coloring.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace deltacol {

bool is_proper_partial(const Graph& g, const Coloring& c) {
  if (static_cast<int>(c.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (c[v] == kUncolored) continue;
    for (int u : g.neighbors(v)) {
      if (u > v && c[u] == c[v]) return false;
    }
  }
  return true;
}

bool is_proper_complete(const Graph& g, const Coloring& c) {
  if (!is_proper_partial(g, c)) return false;
  return count_uncolored(c) == 0;
}

bool is_proper_with_palette(const Graph& g, const Coloring& c, int num_colors) {
  if (!is_proper_complete(g, c)) return false;
  for (Color x : c) {
    if (x < 0 || x >= num_colors) return false;
  }
  return true;
}

bool respects_lists(const Coloring& c, const ListAssignment& lists) {
  if (c.size() != lists.size()) return false;
  for (std::size_t v = 0; v < c.size(); ++v) {
    if (c[v] == kUncolored) return false;
    if (!std::binary_search(lists[v].begin(), lists[v].end(), c[v])) return false;
  }
  return true;
}

int count_uncolored(const Coloring& c) {
  int k = 0;
  for (Color x : c) {
    if (x == kUncolored) ++k;
  }
  return k;
}

int num_colors_used(const Coloring& c) {
  Color mx = kUncolored;
  for (Color x : c) mx = std::max(mx, x);
  return mx + 1;
}

void validate_delta_coloring(const Graph& g, const Coloring& c, int delta) {
  DC_REQUIRE(static_cast<int>(c.size()) == g.num_vertices(),
             "coloring size mismatch");
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (c[v] == kUncolored) {
      std::ostringstream os;
      os << "vertex " << v << " is uncolored";
      throw ContractViolation(os.str());
    }
    if (c[v] < 0 || c[v] >= delta) {
      std::ostringstream os;
      os << "vertex " << v << " has color " << c[v] << " outside palette of "
         << delta;
      throw ContractViolation(os.str());
    }
    for (int u : g.neighbors(v)) {
      if (u > v && c[u] == c[v]) {
        std::ostringstream os;
        os << "edge (" << v << ", " << u << ") is monochromatic with color "
           << c[v];
        throw ContractViolation(os.str());
      }
    }
  }
}

std::vector<Color> free_colors(const Graph& g, const Coloring& c, int v,
                               int palette_size) {
  std::vector<bool> used(static_cast<std::size_t>(palette_size), false);
  for (int u : g.neighbors(v)) {
    if (c[u] != kUncolored && c[u] < palette_size) {
      used[static_cast<std::size_t>(c[u])] = true;
    }
  }
  std::vector<Color> out;
  for (int x = 0; x < palette_size; ++x) {
    if (!used[static_cast<std::size_t>(x)]) out.push_back(x);
  }
  return out;
}

std::optional<Color> first_free_color(const Graph& g, const Coloring& c, int v,
                                      int palette_size) {
  const auto fc = free_colors(g, c, v, palette_size);
  if (fc.empty()) return std::nullopt;
  return fc.front();
}

}  // namespace deltacol
