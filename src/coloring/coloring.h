// Vertex colorings and list assignments: the shared vocabulary of every
// algorithm in this library.
//
// Colors are integers >= 0; kUncolored marks an uncolored vertex. A
// Delta-coloring uses colors {0, ..., Delta-1} (the paper writes {1..Delta}).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace deltacol {

using Color = int;
inline constexpr Color kUncolored = -1;

// coloring[v] is the color of vertex v, or kUncolored.
using Coloring = std::vector<Color>;

// lists[v] is the set of colors vertex v may use (sorted, unique).
using ListAssignment = std::vector<std::vector<Color>>;

// No two adjacent *colored* vertices share a color (uncolored ok).
bool is_proper_partial(const Graph& g, const Coloring& c);

// Proper and every vertex colored.
bool is_proper_complete(const Graph& g, const Coloring& c);

// Proper, complete, and every color is in {0, ..., num_colors-1}.
bool is_proper_with_palette(const Graph& g, const Coloring& c, int num_colors);

// Complete proper coloring where every vertex's color is in its list.
bool respects_lists(const Coloring& c, const ListAssignment& lists);

int count_uncolored(const Coloring& c);
int num_colors_used(const Coloring& c);  // max color + 1 over colored vertices

// Throwing validator with a diagnostic message; used by tests and by the
// public API's final check.
void validate_delta_coloring(const Graph& g, const Coloring& c, int delta);

// Colors {0..palette_size-1} not used by any colored neighbor of v.
std::vector<Color> free_colors(const Graph& g, const Coloring& c, int v,
                               int palette_size);

// Convenience: the smallest free color, or nullopt.
std::optional<Color> first_free_color(const Graph& g, const Coloring& c, int v,
                                      int palette_size);

}  // namespace deltacol
