#include "coloring/defective.h"

#include <algorithm>

#include "util/check.h"

namespace deltacol {

int coloring_defect(const Graph& g, const Coloring& c) {
  DC_REQUIRE(static_cast<int>(c.size()) == g.num_vertices(),
             "coloring size mismatch");
  int defect = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (c[static_cast<std::size_t>(v)] == kUncolored) continue;
    int same = 0;
    for (int u : g.neighbors(v)) {
      if (c[static_cast<std::size_t>(u)] == c[static_cast<std::size_t>(v)]) ++same;
    }
    defect = std::max(defect, same);
  }
  return defect;
}

Coloring defective_coloring(const Graph& g, int k, const Coloring& schedule,
                            int schedule_colors, RoundLedger& ledger,
                            std::string_view phase) {
  DC_REQUIRE(k >= 1, "need at least one class");
  DC_REQUIRE(is_proper_with_palette(g, schedule, schedule_colors),
             "schedule must be a proper coloring");
  const int n = g.num_vertices();
  const int target_defect = g.max_degree() / k;
  Coloring c(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    c[static_cast<std::size_t>(v)] = v % k;
  }
  // Best-response sweeps. Each move strictly decreases the count of
  // monochromatic edges, which is at most m, so the process terminates; in
  // practice a handful of sweeps suffice.
  for (;;) {
    bool any_bad = false;
    for (int s = 0; s < schedule_colors; ++s) {
      for (int v = 0; v < n; ++v) {
        if (schedule[static_cast<std::size_t>(v)] != s) continue;
        std::vector<int> load(static_cast<std::size_t>(k), 0);
        for (int u : g.neighbors(v)) {
          ++load[static_cast<std::size_t>(c[static_cast<std::size_t>(u)])];
        }
        const int mine = c[static_cast<std::size_t>(v)];
        if (load[static_cast<std::size_t>(mine)] <= target_defect) continue;
        int best = mine;
        for (int x = 0; x < k; ++x) {
          if (load[static_cast<std::size_t>(x)] <
              load[static_cast<std::size_t>(best)]) {
            best = x;
          }
        }
        if (best != mine) {
          c[static_cast<std::size_t>(v)] = best;
          any_bad = true;
        }
      }
      ledger.charge(1, phase);
    }
    if (!any_bad) break;
  }
  DC_ENSURE(coloring_defect(g, c) <= target_defect,
            "defective coloring did not reach floor(Delta/k)");
  return c;
}

}  // namespace deltacol
