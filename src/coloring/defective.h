// Defective coloring: a d-defective k-coloring allows each vertex up to d
// same-colored neighbors. Defective colorings are the inner engine of the
// fast deterministic (deg+1)-list coloring algorithms the paper invokes
// ([FHK16], [BEG17]): color classes with small defect induce low-degree
// subgraphs that can be finished cheaply in parallel.
//
// We provide the classic Lovász-style local refinement: starting from any
// proper coloring with m colors, vertices repeatedly move to the class
// where they have the fewest neighbors; with k classes the stable defect is
// at most floor(Delta / k). Exposed both as a substrate in its own right
// (with tests) and as an alternative engine for deg+1-list instances via
// defect-then-finish.
#pragma once

#include <string_view>

#include "coloring/coloring.h"
#include "graph/graph.h"
#include "local/round_ledger.h"

namespace deltacol {

// Maximum number of same-colored neighbors over all vertices.
int coloring_defect(const Graph& g, const Coloring& c);

// Computes a floor(Delta/k)-defective k-coloring by parallel best-response
// moves scheduled by a proper `schedule` coloring (vertices of one schedule
// class move simultaneously; they are non-adjacent, so each move strictly
// decreases the global number of monochromatic edges and the process
// stabilizes). Rounds charged: one per schedule class per sweep.
Coloring defective_coloring(const Graph& g, int k, const Coloring& schedule,
                            int schedule_colors, RoundLedger& ledger,
                            std::string_view phase);

}  // namespace deltacol
