#include "coloring/degree_choosable.h"

#include <algorithm>

#include "coloring/brute.h"
#include "coloring/greedy.h"
#include "graph/components.h"
#include "graph/ops.h"
#include "util/check.h"

namespace deltacol {

namespace {

// Greedy from the lists in the given order; returns nullopt when a vertex
// has no feasible list color.
std::optional<Coloring> list_greedy(const Graph& g,
                                    const ListAssignment& lists,
                                    const std::vector<int>& order,
                                    Coloring c) {
  for (int v : order) {
    if (c[v] != kUncolored) continue;
    Color chosen = kUncolored;
    for (Color x : lists[static_cast<std::size_t>(v)]) {
      bool ok = true;
      for (int u : g.neighbors(v)) {
        if (c[u] == x) {
          ok = false;
          break;
        }
      }
      if (ok) {
        chosen = x;
        break;
      }
    }
    if (chosen == kUncolored) return std::nullopt;
    c[v] = chosen;
  }
  return c;
}

std::optional<Color> common_color(const std::vector<Color>& a,
                                  const std::vector<Color>& b) {
  for (Color x : a) {
    if (std::binary_search(b.begin(), b.end(), x)) return x;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Coloring> degree_choosable_coloring(const Graph& g,
                                                  const ListAssignment& lists) {
  const int n = g.num_vertices();
  DC_REQUIRE(static_cast<int>(lists.size()) == n, "list size mismatch");
  DC_REQUIRE(is_connected(g), "degree_choosable_coloring expects connectivity");
  for (int v = 0; v < n; ++v) {
    DC_REQUIRE(static_cast<int>(lists[static_cast<std::size_t>(v)].size()) >=
                   g.degree(v),
               "lists must have size >= degree");
  }
  const Coloring empty(static_cast<std::size_t>(n), kUncolored);

  // (1) Slack vertex: color everything toward it; the slack absorbs the one
  // missing "uncolored neighbor" guarantee at the root.
  for (int v = 0; v < n; ++v) {
    if (static_cast<int>(lists[static_cast<std::size_t>(v)].size()) >
        g.degree(v)) {
      auto c = list_greedy(g, lists, decreasing_bfs_order(g, v), empty);
      if (c) return c;
    }
  }

  // (2) Brooks trick on tight lists.
  for (int w = 0; w < n; ++w) {
    const auto nb = g.neighbors(w);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        const int u1 = nb[i], u2 = nb[j];
        if (g.has_edge(u1, u2)) continue;
        const auto shared = common_color(lists[static_cast<std::size_t>(u1)],
                                         lists[static_cast<std::size_t>(u2)]);
        if (!shared) continue;
        const std::vector<int> removed{u1, u2};
        const auto rest = remove_vertices(g, removed);
        if (!is_connected(rest.graph)) continue;
        Coloring c = empty;
        c[u1] = *shared;
        c[u2] = *shared;
        const int w_local = rest.from_parent[static_cast<std::size_t>(w)];
        std::vector<int> order;
        for (int x : decreasing_bfs_order(rest.graph, w_local)) {
          order.push_back(rest.to_parent[static_cast<std::size_t>(x)]);
        }
        auto done = list_greedy(g, lists, order, std::move(c));
        if (done) return done;
      }
    }
  }

  // (3) Exact search (small blocks only — Gallai trees with tight lists
  // correctly return nullopt here).
  return brute_force_list_coloring(g, lists);
}

}  // namespace deltacol
