// Constructive coloring of degree-choosable graphs (Theorem 8, [ERT79]).
//
// Given a connected graph and lists with |L(v)| >= deg(v), a proper coloring
// from the lists exists whenever the graph is NOT a Gallai tree — i.e. it is
// (or contains) a degree-choosable component. This is the engine behind
// recoloring DCCs in the distributed Brooks' theorem (Theorem 5) and behind
// coloring the base layer B0 in the paper's Phase (9).
//
// Strategy: (1) if some vertex has slack (|L(v)| > deg(v)) color greedily
// toward it; (2) otherwise apply the Brooks trick — find w with two
// non-adjacent neighbors u1, u2 sharing a list color whose removal keeps the
// graph connected, pre-color them equal, and color greedily toward w;
// (3) fall back to exact backtracking (instances are small blocks).
#pragma once

#include <optional>

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace deltacol {

// Attempts to color the connected graph g from the lists. Returns nullopt
// only if no list coloring exists (e.g. a Gallai tree with tight identical
// lists). For degree-choosable g with |L(v)| >= deg(v), always succeeds.
std::optional<Coloring> degree_choosable_coloring(const Graph& g,
                                                  const ListAssignment& lists);

}  // namespace deltacol
