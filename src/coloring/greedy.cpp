#include "coloring/greedy.h"

#include <algorithm>

#include "graph/traversal.h"
#include "util/check.h"

namespace deltacol {

void greedy_color_in_order(const Graph& g, const std::vector<int>& order,
                           int palette_size, Coloring& c) {
  DC_REQUIRE(static_cast<int>(c.size()) == g.num_vertices(),
             "coloring size mismatch");
  for (int v : order) {
    if (c[v] != kUncolored) continue;
    const auto color = first_free_color(g, c, v, palette_size);
    DC_ENSURE(color.has_value(), "greedy ran out of colors");
    c[v] = *color;
  }
}

Coloring greedy_coloring(const Graph& g) {
  Coloring c(static_cast<std::size_t>(g.num_vertices()), kUncolored);
  std::vector<int> order(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) order[static_cast<std::size_t>(v)] = v;
  greedy_color_in_order(g, order, g.max_degree() + 1, c);
  return c;
}

std::vector<int> decreasing_bfs_order(const Graph& g, int root) {
  const auto dist = bfs_distances(g, root);
  std::vector<int> order;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != kUnreachable) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (dist[a] != dist[b]) return dist[a] > dist[b];
    return a < b;
  });
  return order;
}

}  // namespace deltacol
