// Sequential greedy coloring — the (Delta+1)-coloring "triviality" the paper
// contrasts against, plus ordering helpers used by the constructive Brooks
// and degree-choosable colorers.
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace deltacol {

// Colors the vertices in the given order, each with its smallest free color
// from {0..palette_size-1}. Pre-colored vertices (c[v] != kUncolored on
// entry) are respected and skipped. Throws if some vertex has no free color.
void greedy_color_in_order(const Graph& g, const std::vector<int>& order,
                           int palette_size, Coloring& c);

// (Delta+1)-coloring by greedy in vertex id order.
Coloring greedy_coloring(const Graph& g);

// Vertices in order of decreasing BFS distance from root (farthest first,
// root last). Within a distance layer, increasing id. Only vertices reachable
// from root are included.
std::vector<int> decreasing_bfs_order(const Graph& g, int root);

}  // namespace deltacol
