#include "coloring/linial.h"

#include <algorithm>
#include <cmath>

#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/math_util.h"

namespace deltacol {

namespace {

// Evaluate the base-q digit polynomial of `color` at point x, over GF(q).
// p(x) = sum_i digit_i * x^i mod q.
int eval_poly(std::uint64_t color, std::uint64_t q, int degree_bound,
              std::uint64_t x) {
  // Horner from the highest digit.
  std::uint64_t digits[64];
  for (int i = 0; i < degree_bound; ++i) {
    digits[i] = color % q;
    color /= q;
  }
  std::uint64_t acc = 0;
  for (int i = degree_bound - 1; i >= 0; --i) {
    acc = (acc * x + digits[i]) % q;
  }
  return static_cast<int>(acc);
}

// Choose (q, d) for reducing m colors: d digits over GF(q) must encode m
// colors (q^d >= m) and q > Delta*(d-1) must leave a free evaluation point.
// Returns the pair minimizing the new palette q^2.
struct Params {
  std::uint64_t q;
  int d;
};
Params choose_params(std::uint64_t m, int delta) {
  Params best{0, 0};
  std::uint64_t best_new_m = ~0ULL;
  for (int d = 2; d <= 40; ++d) {
    // Smallest q satisfying both constraints.
    const auto root = static_cast<std::uint64_t>(
        std::ceil(std::pow(static_cast<double>(m), 1.0 / d)));
    std::uint64_t q = next_prime(std::max<std::uint64_t>(
        root, static_cast<std::uint64_t>(delta) * (d - 1) + 1));
    while (ipow(q, static_cast<unsigned>(d)) < m) q = next_prime(q + 1);
    const std::uint64_t new_m = q * q;
    if (new_m < best_new_m) {
      best_new_m = new_m;
      best = {q, d};
    }
  }
  DC_ENSURE(best.q > 0, "no Linial parameters found");
  return best;
}

}  // namespace

LinialResult linial_coloring(const Graph& g, RoundLedger& ledger,
                             ThreadPool* pool) {
  const int n = g.num_vertices();
  const int delta = std::max(1, g.max_degree());
  LinialResult res;
  res.coloring.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) res.coloring[static_cast<std::size_t>(v)] = v;
  std::uint64_t m = std::max<std::uint64_t>(2, static_cast<std::uint64_t>(n));

  for (;;) {
    const Params p = choose_params(m, delta);
    const std::uint64_t new_m = p.q * p.q;
    if (new_m >= m) break;  // reached the O(Delta^2) fixpoint
    // One synchronous round: nodes exchange current colors, then each picks
    // an evaluation point avoiding all neighbors' polynomials. Each node
    // reads the previous coloring and writes next[v]: a parallel-for.
    Coloring next(static_cast<std::size_t>(n), kUncolored);
    pooled_for(pool, 0, n, [&](int v) {
      const std::uint64_t cv =
          static_cast<std::uint64_t>(res.coloring[static_cast<std::size_t>(v)]);
      int chosen_x = -1;
      for (std::uint64_t x = 0; x < p.q && chosen_x < 0; ++x) {
        bool ok = true;
        const int pv = eval_poly(cv, p.q, p.d, x);
        for (int u : g.neighbors(v)) {
          const std::uint64_t cu = static_cast<std::uint64_t>(
              res.coloring[static_cast<std::size_t>(u)]);
          if (cu == cv) continue;  // cannot happen in a proper coloring
          if (eval_poly(cu, p.q, p.d, x) == pv) {
            ok = false;
            break;
          }
        }
        if (ok) chosen_x = static_cast<int>(x);
      }
      DC_ENSURE(chosen_x >= 0,
                "Linial step found no valid evaluation point (q too small?)");
      next[static_cast<std::size_t>(v)] = static_cast<int>(
          static_cast<std::uint64_t>(chosen_x) * p.q +
          static_cast<std::uint64_t>(
              eval_poly(cv, p.q, p.d, static_cast<std::uint64_t>(chosen_x))));
    });
    res.coloring = std::move(next);
    m = new_m;
    ++res.rounds;
    ledger.charge(1, "linial");
  }
  res.num_colors = static_cast<int>(m);
  DC_ENSURE(is_proper_with_palette(g, res.coloring, res.num_colors),
            "Linial produced an improper coloring");
  return res;
}

LinialResult reduce_to_delta_plus_one(const Graph& g, const Coloring& start,
                                      int start_colors, RoundLedger& ledger,
                                      ThreadPool* pool) {
  DC_REQUIRE(is_proper_with_palette(g, start, start_colors),
             "reduction input must be a proper coloring");
  const int target = g.max_degree() + 1;
  LinialResult res;
  res.coloring = start;
  res.num_colors = std::max(target, start_colors);
  // Bucket the to-be-recolored classes once: members leave their class for a
  // color < target and never re-enter, so the buckets stay valid across
  // rounds (and the sweep is O(n + m) total instead of O(n) per class).
  std::vector<std::vector<int>> members;
  if (start_colors > target) {
    members.resize(static_cast<std::size_t>(start_colors - target));
    for (int v = 0; v < g.num_vertices(); ++v) {
      const int c = res.coloring[static_cast<std::size_t>(v)];
      if (c >= target) {
        members[static_cast<std::size_t>(c - target)].push_back(v);
      }
    }
  }
  for (int c = start_colors - 1; c >= target; --c) {
    // Color class c is an independent set: all its members recolor
    // simultaneously to their smallest free color below c. No neighbor of a
    // class-c member is in class c, so the reads are stable under the
    // parallel-for.
    const auto& cls = members[static_cast<std::size_t>(c - target)];
    pooled_for(pool, 0, static_cast<int>(cls.size()), [&](int i) {
      const int v = cls[static_cast<std::size_t>(i)];
      const auto x = first_free_color(g, res.coloring, v, target);
      DC_ENSURE(x.has_value(), "no free color among Delta+1");
      res.coloring[static_cast<std::size_t>(v)] = *x;
    });
    ++res.rounds;
    ledger.charge(1, "color-reduction");
  }
  res.num_colors = target;
  DC_ENSURE(is_proper_with_palette(g, res.coloring, res.num_colors),
            "color reduction broke the coloring");
  return res;
}

LinialResult delta_plus_one_schedule(const Graph& g, RoundLedger& ledger,
                                     ThreadPool* pool) {
  const LinialResult lin = linial_coloring(g, ledger, pool);
  LinialResult red =
      reduce_to_delta_plus_one(g, lin.coloring, lin.num_colors, ledger, pool);
  red.rounds += lin.rounds;
  return red;
}

}  // namespace deltacol
