// Linial's O(Delta^2) coloring in O(log* n) rounds [Lin92].
//
// Both the deterministic Theorem 4 algorithm and the randomized algorithms
// start by computing an O(Delta^2) coloring used purely for symmetry breaking
// (scheduling list-coloring choices); the paper stresses these colors "do in
// no way coincide with the desired Delta-coloring".
//
// Implementation: the classic polynomial / cover-free-family color reduction.
// A proper m-coloring is reinterpreted per vertex as a polynomial of degree
// < d over GF(q) (its base-q digits). With q > Delta*(d-1), every vertex can
// pick an evaluation point x where it differs from all neighbors, giving a
// proper q^2-coloring (pair (x, p(x))) in ONE communication round. Iterating
// reaches O(Delta^2) colors in O(log* m) rounds.
#pragma once

#include "coloring/coloring.h"
#include "graph/graph.h"
#include "local/round_ledger.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

struct LinialResult {
  Coloring coloring;
  int num_colors = 0;  // palette size actually guaranteed (q^2 of last step)
  int rounds = 0;      // communication rounds consumed (also charged to ledger)
};

// Computes a proper coloring with O(Delta^2) colors. IDs are the vertex
// indices (the LOCAL model's unique identifiers).
LinialResult linial_coloring(const Graph& g, RoundLedger& ledger,
                             ThreadPool* pool = nullptr);

// Standard one-color-per-round reduction: from a proper m-coloring to a
// proper (Delta+1)-coloring in m - (Delta+1) rounds (each round the highest
// color class recolors greedily — an independent set, so no conflicts).
// Computing this once makes every later schedule sweep cost Delta+1 rounds
// instead of O(Delta^2).
LinialResult reduce_to_delta_plus_one(const Graph& g, const Coloring& start,
                                      int start_colors, RoundLedger& ledger,
                                      ThreadPool* pool = nullptr);

// Convenience: Linial + reduction.
LinialResult delta_plus_one_schedule(const Graph& g, RoundLedger& ledger,
                                     ThreadPool* pool = nullptr);

}  // namespace deltacol
