#include "coloring/list_coloring.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace deltacol {

bool lists_have_deg_plus_one(const Graph& g, const ListAssignment& lists) {
  if (static_cast<int>(lists.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (static_cast<int>(lists[static_cast<std::size_t>(v)].size()) <
        g.degree(v) + 1) {
      return false;
    }
  }
  return true;
}

namespace {

// First color in v's list not used by a colored neighbor; kUncolored if none.
Color first_feasible(const Graph& g, const ListAssignment& lists,
                     const Coloring& c, int v) {
  for (Color x : lists[static_cast<std::size_t>(v)]) {
    bool ok = true;
    for (int u : g.neighbors(v)) {
      if (c[u] == x) {
        ok = false;
        break;
      }
    }
    if (ok) return x;
  }
  return kUncolored;
}

}  // namespace

void det_list_coloring(const Graph& g, const ListAssignment& lists,
                       const Coloring& schedule, int num_schedule_colors,
                       Coloring& out, RoundLedger& ledger,
                       std::string_view phase) {
  DC_REQUIRE(static_cast<int>(out.size()) == g.num_vertices(),
             "output coloring size mismatch");
  DC_REQUIRE(is_proper_with_palette(g, schedule, num_schedule_colors),
             "schedule must be a proper coloring");
  // Bucket the vertices by schedule class once; the round loop then touches
  // each vertex exactly once (still charging one round per class — empty
  // classes cost a round on a real network too, since nobody knows they are
  // empty).
  std::vector<std::vector<int>> buckets(
      static_cast<std::size_t>(num_schedule_colors));
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (out[static_cast<std::size_t>(v)] == kUncolored) {
      buckets[static_cast<std::size_t>(schedule[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
  }
  for (int s = 0; s < num_schedule_colors; ++s) {
    // All vertices of schedule class s choose simultaneously; the class is
    // an independent set, so their choices cannot conflict.
    for (int v : buckets[static_cast<std::size_t>(s)]) {
      const Color x = first_feasible(g, lists, out, v);
      DC_ENSURE(x != kUncolored,
                "det_list_coloring: vertex ran out of list colors (instance "
                "violated the deg+1 precondition)");
      out[static_cast<std::size_t>(v)] = x;
    }
    ledger.charge(1, phase);
  }
}

void rand_list_coloring(const Graph& g, const ListAssignment& lists,
                        const Coloring& schedule, int num_schedule_colors,
                        Rng& rng, Coloring& out, RoundLedger& ledger,
                        std::string_view phase) {
  DC_REQUIRE(static_cast<int>(out.size()) == g.num_vertices(),
             "output coloring size mismatch");
  const int n = g.num_vertices();
  std::vector<int> active;
  for (int v = 0; v < n; ++v) {
    if (out[static_cast<std::size_t>(v)] == kUncolored) active.push_back(v);
  }
  const int max_rounds =
      4 * ceil_log2(static_cast<std::uint64_t>(std::max(2, n))) + 16;
  std::vector<Color> proposal(static_cast<std::size_t>(n), kUncolored);
  for (int round = 0; round < max_rounds && !active.empty(); ++round) {
    // Propose.
    for (int v : active) {
      std::vector<Color> feasible;
      for (Color x : lists[static_cast<std::size_t>(v)]) {
        bool ok = true;
        for (int u : g.neighbors(v)) {
          if (out[static_cast<std::size_t>(u)] == x) {
            ok = false;
            break;
          }
        }
        if (ok) feasible.push_back(x);
      }
      DC_ENSURE(!feasible.empty(),
                "rand_list_coloring: empty feasible set (instance violated "
                "the deg+1 precondition)");
      proposal[static_cast<std::size_t>(v)] =
          feasible[static_cast<std::size_t>(rng.next_below(feasible.size()))];
    }
    // Resolve: keep the proposal iff no competing neighbor chose it too.
    std::vector<int> still_active;
    for (int v : active) {
      const Color mine = proposal[static_cast<std::size_t>(v)];
      bool clash = false;
      for (int u : g.neighbors(v)) {
        if (out[static_cast<std::size_t>(u)] == kUncolored &&
            proposal[static_cast<std::size_t>(u)] == mine) {
          clash = true;
          break;
        }
      }
      if (clash) still_active.push_back(v);
    }
    for (int v : active) {
      const bool kept =
          std::find(still_active.begin(), still_active.end(), v) ==
          still_active.end();
      if (kept) out[static_cast<std::size_t>(v)] = proposal[static_cast<std::size_t>(v)];
      proposal[static_cast<std::size_t>(v)] = kUncolored;
    }
    active = std::move(still_active);
    ledger.charge(1, phase);
  }
  if (!active.empty()) {
    // The w.h.p. bound did not materialize at this size/seed; finish
    // deterministically so the caller always gets a complete coloring.
    det_list_coloring(g, lists, schedule, num_schedule_colors, out, ledger,
                      phase);
  }
}

}  // namespace deltacol
