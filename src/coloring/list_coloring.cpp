#include "coloring/list_coloring.h"

#include <algorithm>

#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/math_util.h"

namespace deltacol {

bool lists_have_deg_plus_one(const Graph& g, const ListAssignment& lists) {
  if (static_cast<int>(lists.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (static_cast<int>(lists[static_cast<std::size_t>(v)].size()) <
        g.degree(v) + 1) {
      return false;
    }
  }
  return true;
}

namespace {

// First color in v's list not used by a colored neighbor; kUncolored if none.
Color first_feasible(const Graph& g, const ListAssignment& lists,
                     const Coloring& c, int v) {
  for (Color x : lists[static_cast<std::size_t>(v)]) {
    bool ok = true;
    for (int u : g.neighbors(v)) {
      if (c[u] == x) {
        ok = false;
        break;
      }
    }
    if (ok) return x;
  }
  return kUncolored;
}

}  // namespace

void det_list_coloring(const Graph& g, const ListAssignment& lists,
                       const Coloring& schedule, int num_schedule_colors,
                       Coloring& out, RoundLedger& ledger,
                       std::string_view phase, ThreadPool* pool) {
  DC_REQUIRE(static_cast<int>(out.size()) == g.num_vertices(),
             "output coloring size mismatch");
  DC_REQUIRE(is_proper_with_palette(g, schedule, num_schedule_colors),
             "schedule must be a proper coloring");
  // Bucket the vertices by schedule class once; the round loop then touches
  // each vertex exactly once (still charging one round per class — empty
  // classes cost a round on a real network too, since nobody knows they are
  // empty).
  std::vector<std::vector<int>> buckets(
      static_cast<std::size_t>(num_schedule_colors));
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (out[static_cast<std::size_t>(v)] == kUncolored) {
      buckets[static_cast<std::size_t>(schedule[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
  }
  for (int s = 0; s < num_schedule_colors; ++s) {
    // All vertices of schedule class s choose simultaneously; the class is
    // an independent set, so their choices cannot conflict — and no member
    // reads a slot another member writes, so the class sweep is a
    // parallel-for.
    const auto& bucket = buckets[static_cast<std::size_t>(s)];
    pooled_for(pool, 0, static_cast<int>(bucket.size()), [&](int i) {
      const int v = bucket[static_cast<std::size_t>(i)];
      const Color x = first_feasible(g, lists, out, v);
      DC_ENSURE(x != kUncolored,
                "det_list_coloring: vertex ran out of list colors (instance "
                "violated the deg+1 precondition)");
      out[static_cast<std::size_t>(v)] = x;
    });
    ledger.charge(1, phase);
  }
}

void rand_list_coloring(const Graph& g, const ListAssignment& lists,
                        const Coloring& schedule, int num_schedule_colors,
                        Rng& rng, Coloring& out, RoundLedger& ledger,
                        std::string_view phase, ThreadPool* pool) {
  DC_REQUIRE(static_cast<int>(out.size()) == g.num_vertices(),
             "output coloring size mismatch");
  const int n = g.num_vertices();
  std::vector<int> active;
  for (int v = 0; v < n; ++v) {
    if (out[static_cast<std::size_t>(v)] == kUncolored) active.push_back(v);
  }
  const int max_rounds =
      4 * ceil_log2(static_cast<std::uint64_t>(std::max(2, n))) + 16;
  std::vector<Color> proposal(static_cast<std::size_t>(n), kUncolored);
  std::vector<std::vector<Color>> feasible(active.size());
  std::vector<char> clash(active.size());
  for (int round = 0; round < max_rounds && !active.empty(); ++round) {
    const int num_active = static_cast<int>(active.size());
    feasible.resize(active.size());
    clash.resize(active.size());
    // Feasible sets: the expensive part, and a pure function of `out` —
    // computed in parallel.
    pooled_for(pool, 0, num_active, [&](int i) {
      const int v = active[static_cast<std::size_t>(i)];
      auto& feas = feasible[static_cast<std::size_t>(i)];
      feas.clear();
      for (Color x : lists[static_cast<std::size_t>(v)]) {
        bool ok = true;
        for (int u : g.neighbors(v)) {
          if (out[static_cast<std::size_t>(u)] == x) {
            ok = false;
            break;
          }
        }
        if (ok) feas.push_back(x);
      }
      DC_ENSURE(!feas.empty(),
                "rand_list_coloring: empty feasible set (instance violated "
                "the deg+1 precondition)");
    });
    // Draws stay serial, in active order: the shared Rng stream (and hence
    // the run) is identical for every thread count.
    for (int i = 0; i < num_active; ++i) {
      const auto& feas = feasible[static_cast<std::size_t>(i)];
      proposal[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])] =
          feas[static_cast<std::size_t>(rng.next_below(feas.size()))];
    }
    // Resolve: keep the proposal iff no competing neighbor chose it too.
    // Proposals are frozen, so the clash test is again a parallel-for.
    pooled_for(pool, 0, num_active, [&](int i) {
      const int v = active[static_cast<std::size_t>(i)];
      const Color mine = proposal[static_cast<std::size_t>(v)];
      bool c = false;
      for (int u : g.neighbors(v)) {
        if (out[static_cast<std::size_t>(u)] == kUncolored &&
            proposal[static_cast<std::size_t>(u)] == mine) {
          c = true;
          break;
        }
      }
      clash[static_cast<std::size_t>(i)] = c ? 1 : 0;
    });
    std::vector<int> still_active;
    for (int i = 0; i < num_active; ++i) {
      const int v = active[static_cast<std::size_t>(i)];
      if (clash[static_cast<std::size_t>(i)]) {
        still_active.push_back(v);
      } else {
        out[static_cast<std::size_t>(v)] =
            proposal[static_cast<std::size_t>(v)];
      }
      proposal[static_cast<std::size_t>(v)] = kUncolored;
    }
    active = std::move(still_active);
    ledger.charge(1, phase);
  }
  if (!active.empty()) {
    // The w.h.p. bound did not materialize at this size/seed; finish
    // deterministically so the caller always gets a complete coloring.
    det_list_coloring(g, lists, schedule, num_schedule_colors, out, ledger,
                      phase, pool);
  }
}

}  // namespace deltacol
