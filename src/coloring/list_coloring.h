// Distributed (deg+1)-list coloring — the workhorse subroutine of the
// paper's layering technique (Theorems 18 and 19 are invoked every time a
// layer B_i / C_i / D_i is colored).
//
// Two engines with the same contract (see DESIGN.md "Substitutions"):
//  * det_list_coloring  — deterministic; iterates the color classes of a
//    symmetry-breaking schedule coloring (e.g. Linial's O(Delta^2) colors).
//    Rounds: one per schedule class. Stands in for [FHK16]+[BEG17].
//  * rand_list_coloring — randomized trial coloring (each uncolored vertex
//    proposes a random feasible list color, keeps it if no neighbor proposed
//    the same). O(log n) rounds w.h.p. Stands in for [Gha16].
//
// Both require, for every vertex, |L(v)| >= (number of neighbors that are
// uncolored on entry) + ... precisely: they succeed whenever at every point
// each uncolored v has more list colors than colored-or-competing neighbors,
// which the (deg+1) precondition guarantees.
#pragma once

#include <string_view>

#include "coloring/coloring.h"
#include "graph/graph.h"
#include "local/round_ledger.h"
#include "util/rng.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

// Checks |L(v)| >= deg_g(v) + 1 for all v (the instance precondition).
bool lists_have_deg_plus_one(const Graph& g, const ListAssignment& lists);

// Colors every vertex with out[v] == kUncolored; already-colored entries are
// fixed and respected. `schedule` must be a proper coloring of g with colors
// in [0, num_schedule_colors).
void det_list_coloring(const Graph& g, const ListAssignment& lists,
                       const Coloring& schedule, int num_schedule_colors,
                       Coloring& out, RoundLedger& ledger,
                       std::string_view phase, ThreadPool* pool = nullptr);

// Randomized variant. Falls back to the deterministic engine after
// ~4 log2(n) + 16 unsuccessful rounds (the w.h.p. bound failed; the fallback
// cost is charged to the same phase, so reported rounds stay honest).
void rand_list_coloring(const Graph& g, const ListAssignment& lists,
                        const Coloring& schedule, int num_schedule_colors,
                        Rng& rng, Coloring& out, RoundLedger& ledger,
                        std::string_view phase, ThreadPool* pool = nullptr);

}  // namespace deltacol
