#include "congest/gossip.h"

#include <algorithm>

#include "graph/frontier_bfs.h"
#include "util/check.h"

namespace deltacol {

GossipTree build_gossip_tree(const Graph& g, int root, ThreadPool* pool) {
  const int n = g.num_vertices();
  DC_REQUIRE(0 <= root && root < n, "gossip root out of range");

  BfsScratch scratch;
  FrontierBfs bfs(pool);
  bfs.run(g, scratch, root);

  GossipTree tree;
  tree.root = root;
  tree.parent.assign(static_cast<std::size_t>(n), -1);
  tree.depth.assign(static_cast<std::size_t>(n), -1);
  tree.children.resize(static_cast<std::size_t>(n));
  tree.height = scratch.num_levels() - 1;
  tree.num_nodes = static_cast<int>(scratch.order().size());

  for (int v : scratch.order()) {
    tree.depth[static_cast<std::size_t>(v)] = scratch.dist(v);
  }
  // Claim-order replay: sweep the visit order; the first frontier vertex u
  // whose neighbor scan reaches a next-level vertex w is exactly the vertex
  // that claimed w in the engine (serial and pooled engines share this
  // order), so parent assignment reproduces the engine's BFS tree.
  std::vector<char> claimed(static_cast<std::size_t>(n), 0);
  claimed[static_cast<std::size_t>(root)] = 1;
  for (int u : scratch.order()) {
    const int du = scratch.dist(u);
    for (int w : g.neighbors(u)) {
      if (!scratch.visited(w) || claimed[static_cast<std::size_t>(w)]) continue;
      if (scratch.dist(w) != du + 1) continue;
      claimed[static_cast<std::size_t>(w)] = 1;
      tree.parent[static_cast<std::size_t>(w)] = u;
      tree.children[static_cast<std::size_t>(u)].push_back(w);
    }
  }
  // Child lists fill in claim order; sort ascending for the convergecast
  // fold contract (a stable, engine-independent order).
  for (auto& c : tree.children) std::sort(c.begin(), c.end());
  return tree;
}

std::vector<std::int64_t> gossip_broadcast(const GossipTree& tree,
                                           std::int64_t value,
                                           std::int64_t payload_bits,
                                           RoundLedger& ledger,
                                           std::string_view phase,
                                           std::int64_t fill) {
  DC_REQUIRE(payload_bits >= 1, "broadcast payload must be at least one bit");
  const std::size_t n = tree.parent.size();
  std::vector<std::int64_t> out(n, fill);
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.depth[v] >= 0) out[v] = value;
  }
  // One message round per tree level below the root; every edge of the
  // level carries the full payload, so the heaviest edge load is
  // payload_bits and CONGEST(B) charges ceil(payload_bits / B) per level.
  if (tree.height >= 1) {
    ledger.charge_message_round(payload_bits, phase, tree.height);
  }
  return out;
}

namespace {

std::int64_t fold(GossipOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case GossipOp::kSum: return a + b;
    case GossipOp::kMin: return std::min(a, b);
    case GossipOp::kMax: return std::max(a, b);
  }
  return a;
}

}  // namespace

std::vector<std::int64_t> gossip_convergecast(
    const GossipTree& tree, const std::vector<std::int64_t>& values,
    GossipOp op, RoundLedger& ledger, std::string_view phase) {
  const std::size_t n = tree.parent.size();
  DC_REQUIRE(values.size() == n, "one value per vertex");
  std::vector<std::int64_t> agg = values;
  // Deepest level first: children are finalized before their parent folds
  // them in (ascending child order — fixed in build_gossip_tree).
  std::vector<int> by_depth;
  by_depth.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.depth[v] >= 0) by_depth.push_back(static_cast<int>(v));
  }
  std::sort(by_depth.begin(), by_depth.end(), [&](int a, int b) {
    const int da = tree.depth[static_cast<std::size_t>(a)];
    const int db = tree.depth[static_cast<std::size_t>(b)];
    return da != db ? da > db : a < b;
  });
  for (int v : by_depth) {
    for (int c : tree.children[static_cast<std::size_t>(v)]) {
      agg[static_cast<std::size_t>(v)] =
          fold(op, agg[static_cast<std::size_t>(v)],
               agg[static_cast<std::size_t>(c)]);
    }
  }
  // One 64-bit aggregate per tree edge per level, deepest level first.
  if (tree.height >= 1) {
    ledger.charge_message_round(64, phase, tree.height);
  }
  return agg;
}

}  // namespace deltacol
