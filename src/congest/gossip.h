/// \file
/// Deterministic gossip primitives over a BFS spanning tree — the classic
/// CONGEST building blocks (broadcast down, convergecast up) expressed on
/// this library's traversal + accounting substrate.
///
/// A `GossipTree` is the BFS tree of the root's connected component,
/// extracted from a FrontierBfs run by replaying the engine's claim order
/// (graph/frontier_bfs.h): the parent of w is the frontier vertex that first
/// scanned w, so the tree is bit-identical for every thread count — the same
/// determinism contract as everything else in the runtime.
///
/// Both primitives move one payload per tree edge per level, so a
/// height-h tree costs h message rounds, each charged through the ledger's
/// CONGEST mode (local/round_ledger.h): ceil(payload_bits / B) per level
/// under CONGEST(B), exactly 1 per level in LOCAL. Execution is again an
/// accounting overlay — the computed values are identical for every B.
///
/// These are the primitives a distributed deployment uses for global
/// coordination (leader election of parameters, termination detection,
/// aggregate statistics); tests/test_congest.cpp pins their values and
/// charges.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "local/round_ledger.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

/// BFS spanning tree of the root's connected component. Vertices outside the
/// component have parent(v) = -1, depth(v) = -1 and appear in no child list.
struct GossipTree {
  int root = 0;
  /// parent[v]: BFS-tree parent (-1 for the root and for unreached vertices).
  std::vector<int> parent;
  /// depth[v]: distance from the root (-1 for unreached vertices).
  std::vector<int> depth;
  /// children[v]: tree children in ascending vertex order (deterministic
  /// fold order for convergecast).
  std::vector<std::vector<int>> children;
  /// Height of the tree = max depth (0 for a single-vertex component).
  int height = 0;
  /// Vertices in the root's component (= number of tree nodes).
  int num_nodes = 0;

  bool reached(int v) const {
    return depth[static_cast<std::size_t>(v)] >= 0;
  }
};

/// Builds the BFS spanning tree rooted at `root`. The pooled and serial
/// engines claim in the same order, so the tree is thread-count invariant.
GossipTree build_gossip_tree(const Graph& g, int root,
                             ThreadPool* pool = nullptr);

/// Broadcast: the root's `value` propagates down the tree, one level per
/// message round, each round carrying `payload_bits` bits on every tree edge
/// of that level. Charges height * ceil(payload_bits / B) rounds (height
/// rounds in LOCAL). Returns the delivered value per vertex (`fill` for
/// vertices outside the root's component).
std::vector<std::int64_t> gossip_broadcast(const GossipTree& tree,
                                           std::int64_t value,
                                           std::int64_t payload_bits,
                                           RoundLedger& ledger,
                                           std::string_view phase,
                                           std::int64_t fill = 0);

/// Associative fold a convergecast aggregates with.
enum class GossipOp {
  kSum,
  kMin,
  kMax,
};

/// Convergecast: every vertex contributes values[v]; aggregates flow up the
/// tree (leaves first), each internal vertex folding its own value with its
/// children's subtree aggregates in ascending child order. One 64-bit
/// message per tree edge per level: charges height * ceil(64 / B) rounds.
/// Returns the per-vertex subtree aggregate (the global aggregate is at the
/// root; vertices outside the component return their own value unchanged).
std::vector<std::int64_t> gossip_convergecast(
    const GossipTree& tree, const std::vector<std::int64_t>& values,
    GossipOp op, RoundLedger& ledger, std::string_view phase);

}  // namespace deltacol
