#include "core/api.h"

#include <algorithm>

#include "coloring/linial.h"
#include "coloring/list_coloring.h"
#include "core/internal.h"
#include "graph/components.h"
#include "graph/ops.h"
#include "graph/partition.h"
#include "graph/renumber.h"
#include "graph/structure.h"
#include "runtime/component_scheduler.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kDeterministic: return "deterministic (Thm 4)";
    case Algorithm::kRandomizedLarge: return "randomized large-Delta (Thm 3)";
    case Algorithm::kRandomizedSmall: return "randomized small-Delta (Thm 1)";
    case Algorithm::kBaselineND: return "ND baseline (Thm 21 / PS95)";
    case Algorithm::kBaselineGreedyBrooks: return "greedy+Brooks baseline";
  }
  return "?";
}

namespace {

using internal::ComponentContext;

// Runs one attempt end to end; throws ContractViolation on failure (the
// caller retries randomized algorithms with fresh seeds).
DeltaColoringResult attempt(const Graph& g, Algorithm alg,
                            const DeltaColoringOptions& opt,
                            std::uint64_t seed, ThreadPool* pool) {
  const int n = g.num_vertices();
  const int delta = g.max_degree();
  DC_REQUIRE(n > 0, "empty graph");
  DC_REQUIRE(delta >= 3, "Delta-coloring here requires max degree >= 3 "
                         "(Delta = 2 needs Omega(n) rounds, see paper)");
  if (alg == Algorithm::kRandomizedLarge) {
    DC_REQUIRE(delta >= 4, "Theorem 3 requires Delta >= 4; use "
                           "kRandomizedSmall for Delta = 3");
  }

  DeltaColoringResult res;
  res.delta = delta;
  res.coloring.assign(static_cast<std::size_t>(n), kUncolored);
  // CONGEST(B) accounting mode (api.h): configure the top-level ledger
  // before any charge; per-component ledgers inherit below.
  res.ledger.set_congest_bits(opt.congest_bits);
  Rng rng(seed);

  // Symmetry-breaking schedule: a proper (Delta+1)-coloring computed once,
  // so every later class sweep costs Delta+1 rounds. The deterministic
  // pipeline reduces Linial's O(Delta^2) colors one class per round
  // (O(Delta^2) rounds, once); the randomized pipeline gets the same
  // schedule by trial coloring in O(log n) rounds — this is where Theorem
  // 3's O(log Delta) headstart over deterministic substrates comes from.
  LinialResult lin;
  if (opt.list_engine == ListEngine::kRandomized) {
    const LinialResult raw = linial_coloring(g, res.ledger, pool);
    ListAssignment lists(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      for (Color x = 0; x <= delta; ++x) {
        lists[static_cast<std::size_t>(v)].push_back(x);
      }
    }
    lin.coloring.assign(static_cast<std::size_t>(n), kUncolored);
    rand_list_coloring(g, lists, raw.coloring, raw.num_colors, rng,
                       lin.coloring, res.ledger, "schedule", pool);
    lin.num_colors = delta + 1;
  } else {
    lin = delta_plus_one_schedule(g, res.ledger, pool);
  }

  // Components run in parallel in a real network: charge the maximum
  // component cost on top of the shared Linial rounds. The scheduler makes
  // the wall-clock execution match — components run concurrently — while
  // every observable stays index-keyed: private RNG streams are pre-split
  // here in component order, every job writes only its own ledger / stats /
  // coloring slice, and the folds below run serially in component order.
  const int num_shards = VertexPartition::resolve_num_shards(opt.num_shards);
  const auto comps = connected_components(g).vertex_sets();
  const int num_comps = static_cast<int>(comps.size());
  std::vector<Rng> comp_rngs;
  comp_rngs.reserve(comps.size());
  for (int ci = 0; ci < num_comps; ++ci) comp_rngs.push_back(rng.split());
  std::vector<RoundLedger> comp_ledgers(comps.size());
  for (auto& cl : comp_ledgers) cl.set_congest_bits(opt.congest_bits);
  std::vector<PhaseStats> comp_stats(comps.size());

  const ComponentScheduler scheduler(pool, opt.mode);
  const auto component_job = [&](int ci) {
    const auto& comp_vertices = comps[static_cast<std::size_t>(ci)];
    const auto sub = induced_subgraph(g, comp_vertices);
    const Graph& comp = sub.graph;
    DC_REQUIRE(!(is_clique(comp) && comp.num_vertices() == delta + 1),
               "a component is a (Delta+1)-clique: not Delta-colorable");

    Coloring local(static_cast<std::size_t>(comp.num_vertices()), kUncolored);
    Coloring local_schedule(static_cast<std::size_t>(comp.num_vertices()));
    for (int v = 0; v < comp.num_vertices(); ++v) {
      local_schedule[static_cast<std::size_t>(v)] =
          lin.coloring[static_cast<std::size_t>(
              sub.to_parent[static_cast<std::size_t>(v)])];
    }

    RoundLedger& ledger = comp_ledgers[static_cast<std::size_t>(ci)];
    Rng& comp_rng = comp_rngs[static_cast<std::size_t>(ci)];
    // Component-local shard map: contiguous, or the cluster renumbering of
    // this component's dense ids (a pure function of the component graph,
    // so it is identical whatever thread/shard this job lands on).
    ComponentContext ctx{comp, delta,    local_schedule,
                         lin.num_colors, opt,
                         comp_rng,       ledger,
                         comp_stats[static_cast<std::size_t>(ci)],
                         pool,           num_shards,
                         make_partition(comp, num_shards, opt.partition, pool)};

    if (comp.max_degree() < delta || is_clique(comp) || is_cycle(comp) ||
        is_path(comp)) {
      // Not a nice Delta-regular-ish component: a single (deg+1)-list
      // instance colors it (every vertex has list size Delta >= deg+1).
      std::vector<int> all(static_cast<std::size_t>(comp.num_vertices()));
      for (int v = 0; v < comp.num_vertices(); ++v) {
        all[static_cast<std::size_t>(v)] = v;
      }
      DC_ENSURE(comp.max_degree() < delta,
                "clique/cycle/path component with max degree == Delta "
                "cannot occur (K_{Delta+1} rejected; cycles/paths have "
                "degree 2 < 3)");
      color_vertex_set_as_list_instance(comp, all, delta, local_schedule,
                                        lin.num_colors, opt.list_engine,
                                        &comp_rng, local, ledger,
                                        "trivial-component", pool);
    } else {
      switch (alg) {
        case Algorithm::kDeterministic:
          internal::run_deterministic(ctx, local);
          break;
        case Algorithm::kRandomizedLarge:
          internal::run_randomized(ctx, local, /*small_variant=*/false);
          break;
        case Algorithm::kRandomizedSmall:
          internal::run_randomized(ctx, local, /*small_variant=*/true);
          break;
        case Algorithm::kBaselineND:
          internal::run_baseline_nd(ctx, local);
          break;
        case Algorithm::kBaselineGreedyBrooks:
          internal::run_baseline_greedy_brooks(ctx, local);
          break;
      }
      if (count_uncolored(local) > 0) {
        internal::repair_completion(ctx, local);
      }
    }

    validate_delta_coloring(comp, local, delta);
    // res.coloring slices are disjoint across components: race-free.
    for (int v = 0; v < comp.num_vertices(); ++v) {
      res.coloring[sub.to_parent[static_cast<std::size_t>(v)]] = local[v];
    }
  };
  // Shard-placed execution (no-op at num_shards <= 1): each component runs
  // on the shard that owns its lowest vertex under the run's partition
  // strategy — the placement a distributed deployment would use. Identical
  // observables either way (jobs are index-private); only
  // placement/wall-clock differ.
  std::vector<int> comp_owner(static_cast<std::size_t>(num_comps));
  for (int ci = 0; ci < num_comps; ++ci) {
    comp_owner[static_cast<std::size_t>(ci)] =
        comps[static_cast<std::size_t>(ci)].front();
  }
  scheduler.run_owner_placed(make_partition(g, num_shards, opt.partition, pool),
                             comp_owner, component_job);

  // Serial folds in component order (see scheduler comment above).
  for (const auto& stats : comp_stats) {
    internal::merge_component_stats(res.stats, stats);
  }
  charge_max_component(res.ledger, comp_ledgers);
  validate_delta_coloring(g, res.coloring, delta);
  return res;
}

}  // namespace

namespace internal {

void merge_component_stats(PhaseStats& into, const PhaseStats& from) {
  into.num_dccs_selected += from.num_dccs_selected;
  into.base_layer_size += from.base_layer_size;
  into.num_b_layers += from.num_b_layers;
  into.num_selected += from.num_selected;
  into.num_tnodes += from.num_tnodes;
  into.num_marked += from.num_marked;
  into.num_c_layers += from.num_c_layers;
  into.h_vertices += from.h_vertices;
  into.happy_vertices += from.happy_vertices;
  into.leftover_vertices += from.leftover_vertices;
  into.leftover_components += from.leftover_components;
  into.max_leftover_component =
      std::max(into.max_leftover_component, from.max_leftover_component);
  into.anchors_empty_fallbacks += from.anchors_empty_fallbacks;
  into.brooks_fixes += from.brooks_fixes;
  into.repairs += from.repairs;
  // retries_used is owned by the delta_color retry loop, not per-component.
}

}  // namespace internal

DeltaColoringResult delta_color(const Graph& g, Algorithm alg,
                                const DeltaColoringOptions& opt) {
  const bool randomized = alg != Algorithm::kDeterministic;
  const int tries = randomized && !opt.strict ? std::max(1, opt.max_retries + 1) : 1;
  // One pool for the whole call (retries included); num_threads <= 1 spawns
  // no workers and the runtime takes its inline serial paths throughout.
  ThreadPool pool(ThreadPool::resolve_num_threads(opt.num_threads));
  // Chaos-testing schedule perturbation (api.h): chunk-count jitter + stall
  // injection, a pure function of (salt, shape) — deterministic-mode results
  // are unchanged; fast-mode runs see hostile interleavings.
  pool.set_perturb_salt(opt.perturb_salt);
  ThreadPool* pool_ptr = pool.num_threads() > 1 ? &pool : nullptr;
  std::uint64_t seed = opt.seed;
  for (int attempt_idx = 0;; ++attempt_idx) {
    try {
      DeltaColoringResult res = attempt(g, alg, opt, seed, pool_ptr);
      res.stats.retries_used = attempt_idx;
      return res;
    } catch (const ContractViolation&) {
      if (attempt_idx + 1 >= tries) throw;
      seed = seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL;
    }
  }
}

}  // namespace deltacol
