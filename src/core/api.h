/// \file
/// Public facade of the library: distributed Delta-coloring.
///
/// Implements the paper's algorithms:
///   * kDeterministic        — Theorem 4: ruling set + layering + distributed
///                             Brooks for the base layer.
///   * kRandomizedLarge      — Theorem 3 (Delta >= 4): DCC removal, marking /
///                             T-nodes, shattering, small components, layered
///                             unwind (Phases (1)-(9)).
///   * kRandomizedSmall      — Theorem 1 (Delta >= 3, constant): backoff 12,
///                             r = Theta(log log n).
///   * kBaselineND           — Theorem 21 = [PS95] baseline: network-
///                             decomposition-scheduled layering.
///   * kBaselineGreedyBrooks — natural baseline: distributed (Delta+1)-
///                             coloring, then repair the overflow color class
///                             with scheduled Brooks fixes.
///
/// All algorithms return a proper coloring with Delta = max degree colors and
/// a per-phase round ledger. Non-nice components (cliques of size <= Delta,
/// cycles, paths, components of smaller max degree) are handled by a direct
/// (deg+1)-list instance, exactly as a deployment would.
#pragma once

#include <cstdint>
#include <string>

#include "coloring/coloring.h"
#include "core/layering.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "local/round_ledger.h"
#include "runtime/execution_mode.h"

namespace deltacol {

/// Selects which of the paper's algorithms (or baselines) delta_color runs.
enum class Algorithm {
  kDeterministic,         ///< Theorem 4: deterministic via ruling sets.
  kRandomizedLarge,       ///< Theorem 3: randomized, requires Delta >= 4.
  kRandomizedSmall,       ///< Theorem 1: randomized, tuned for constant Delta.
  kBaselineND,            ///< Theorem 21 = [PS95] network-decomposition baseline.
  kBaselineGreedyBrooks,  ///< (Delta+1)-color greedily, repair overflow class.
};

/// Short stable identifier for \p a (used in logs, benches, CSV output).
std::string algorithm_name(Algorithm a);

/// Tuning knobs for delta_color. The defaults reproduce the paper's behaviour
/// at laptop scale; every field is safe to leave untouched.
struct DeltaColoringOptions {
  /// Master seed for all randomness in the run (runs are reproducible).
  std::uint64_t seed = 1;

  /// Phase (1) DCC-detection radius r for the large-Delta variant; the small
  /// variant derives r = Theta(log log n) from n (clamped to
  /// small_variant_radius_cap to keep ball sizes laptop-sized).
  int dcc_radius = 2;
  int small_variant_radius_cap = 6;

  /// Marking-process parameters. backoff < 0 means the paper's default (6
  /// large / 12 small). selection_prob < 0 means auto: the paper's
  /// Delta^{-6} is asymptotically correct but vanishes at laptop scale, so
  /// auto picks max(Delta^{-6}, 1/(8*Delta)); every node left unhappy is
  /// handled by the (always correct) later phases either way. Set
  /// use_paper_constants to force p = Delta^{-6}.
  int backoff = -1;
  double selection_prob = -1.0;
  bool use_paper_constants = false;

  /// Engine for the per-layer (deg+1)-list instances.
  ListEngine list_engine = ListEngine::kDeterministic;

  /// Strict mode disables all repair fallbacks (tests use this to verify the
  /// paper path); violations then throw ContractViolation.
  bool strict = false;

  /// Full-run retries with fresh randomness if a randomized run throws.
  int max_retries = 2;

  /// Worker threads for the parallel execution runtime (src/runtime/):
  /// connected components run concurrently and the per-node phases (message
  /// rounds, Linial, list-coloring sweeps, DCC detection) execute as chunked
  /// parallel-for loops. Affects wall-clock speed ONLY — colorings, round
  /// ledgers and phase stats are bit-for-bit identical for every value
  /// (enforced by tests/test_parallel_determinism.cpp). <= 1 runs fully
  /// serial; 0 means "use all hardware threads".
  int num_threads = 1;

  /// Shards for the partitioned execution layer (graph/partition.h +
  /// runtime/mailbox.h): vertices split into `num_shards` contiguous
  /// ranges, connected components are placed on the shard owning their
  /// lowest vertex, per-node sweeps run shard-major, and scheduled Brooks
  /// fixes group by home shard. Today every shard executes in-process on
  /// the same ThreadPool (the InProcessTransport); the option exists so
  /// that moving to a distributed Transport is a backend swap, not an
  /// engine change. Like num_threads this affects placement and wall-clock
  /// ONLY — colorings, ledgers and stats are bit-for-bit identical for
  /// every (num_shards, num_threads) pair (enforced by the shard golden
  /// tests in tests/test_parallel_determinism.cpp). <= 1 runs unsharded.
  int num_shards = 1;

  /// How vertices are assigned to shards (graph/partition.h):
  /// kContiguous splits the raw id space into balanced ascending ranges —
  /// the pessimistic baseline where ≈ (S-1)/S of all edges cross shards on
  /// wild-id inputs. kCluster runs the deterministic locality renumbering
  /// pre-pass (graph/renumber.h: BFS ball growing + DFS linearization) so
  /// each shard owns a locality-dense region and cross-shard traffic drops
  /// to the cluster boundary (experiment E18). Like num_shards this affects
  /// placement, message routing and wall-clock ONLY — colorings, ledgers
  /// and stats are bit-for-bit identical for every strategy (enforced by
  /// tests/test_renumber.cpp). Ignored at num_shards <= 1.
  PartitionStrategy partition = PartitionStrategy::kContiguous;

  /// CONGEST(B) bandwidth cap in bits per directed edge per round
  /// (local/round_ledger.h). <= 0 (the default) runs in the LOCAL model:
  /// every message round costs 1. A positive B puts every ledger of the run
  /// (including per-component and scheduler-private child ledgers) into
  /// congest mode: a message round whose heaviest directed edge carries W
  /// wire bits (MessageSize, runtime/message_size.h) is charged
  /// ceil(W / B) rounds. Pure accounting overlay — execution, colorings and
  /// stats are bit-for-bit identical to LOCAL for every B; only the charged
  /// round totals grow, monotonically as B shrinks (enforced by
  /// tests/test_congest.cpp).
  std::int64_t congest_bits = 0;

  /// Execution mode of the parallel runtime (runtime/execution_mode.h).
  /// kDeterministic (default): colorings, ledgers and stats are bit-for-bit
  /// identical for every (threads, shards, partition) shape — the reference
  /// oracle, pinned byte-for-byte by tests/test_golden_determinism.cpp.
  /// kFast: the runtime drops replay/merge ordering wherever the algorithms
  /// only need *a* valid outcome — atomics-based frontier claiming,
  /// merge-on-arrival inboxes without the stable sender sort, first-come
  /// work claiming in the packing engine and component fan-outs, fused
  /// merge+receive barriers. Only VALIDITY is then guaranteed: a proper
  /// Delta-coloring, the same color-count bound, rounds within the
  /// deterministic mode's bound, CONGEST charges from the same order-free
  /// max fold (enforced by tests/test_fast_mode.cpp under schedule
  /// perturbation). CLI: --mode fast.
  ExecutionMode mode = ExecutionMode::kDeterministic;

  /// How a distributed run moves each round's envelopes between ranks
  /// (runtime/execution_mode.h): kReplicated (default) all-gathers full
  /// mailbox rows and replays every shard's merge on every rank;
  /// kOwnerRouted ships only cross-shard slots point-to-point and merges
  /// rank-locally over owned-only state, reassembling results with an
  /// end-of-run gather. Results are bit-identical either way (DESIGN.md §6,
  /// "Owner-compute"). delta_color's in-process pipeline uses shards for
  /// placement only — no transport is ever built — so this knob changes
  /// nothing there; it is carried here so launchers configure one options
  /// struct and apply the policy to the ShardRuntime their message-passing
  /// steps run on (examples/deltacol_mpi_like.cpp). CLI: --exchange owner.
  ExchangePolicy exchange = ExchangePolicy::kReplicated;

  /// Schedule-perturbation salt, a chaos-testing knob (0 = off, the
  /// default). A nonzero salt makes the run's ThreadPool jitter its range
  /// chunk counts and inject sub-millisecond stalls ahead of chunk bodies —
  /// pseudo-randomly from the salt, but as a pure function of (salt, shape),
  /// so deterministic-mode results remain bit-identical (the chunk contract
  /// says boundaries are never observable) while fast-mode runs see hostile
  /// interleavings. Wall-clock only in deterministic mode; the fast-mode
  /// cross-validation harness sweeps salts to hunt schedule-dependent bugs.
  std::uint64_t perturb_salt = 0;
};

/// Per-phase observability of one delta_color run: how much work each phase
/// of the paper's pipeline did. Fields are 0 for phases the chosen algorithm
/// does not execute. Counters aggregate over all connected components of the
/// input (sums, except max_leftover_component which is a maximum), so they
/// are independent of the order — or concurrency — in which components ran.
struct PhaseStats {
  int num_dccs_selected = 0;       ///< Phase (1)
  int base_layer_size = 0;         ///< |B0|
  int num_b_layers = 0;            ///< s
  int num_selected = 0;            ///< Phase (4), after backoff
  int num_tnodes = 0;              ///< surviving T-nodes after Phase (5)
  int num_marked = 0;              ///< marked (color-1) vertices kept
  int num_c_layers = 0;
  int h_vertices = 0;              ///< |H| = remainder after Phase (3)
  int happy_vertices = 0;          ///< vertices absorbed into C-layers
  int leftover_vertices = 0;       ///< |L| entering Phase (6)
  int leftover_components = 0;
  int max_leftover_component = 0;
  int anchors_empty_fallbacks = 0; ///< Phase (6) fallback path uses
  int brooks_fixes = 0;            ///< distributed Brooks invocations
  int repairs = 0;                 ///< emergency repair completions
  int retries_used = 0;
};

/// Everything delta_color produces: the coloring itself plus the round
/// ledger and phase statistics needed to reproduce the paper's experiments.
struct DeltaColoringResult {
  Coloring coloring;  ///< Proper coloring with colors in {0..delta-1}.
  int delta = 0;      ///< Palette size = max degree of the input graph.
  RoundLedger ledger; ///< LOCAL-model rounds charged, broken down by phase.
  PhaseStats stats;   ///< Per-phase work counters.
};

/// Delta-colors \p g with Delta = g.max_degree() colors.
///
/// \param g    Input graph. Requires Delta >= 3 (>= 4 for kRandomizedLarge)
///             and that no component is a (Delta+1)-clique (Brooks'
///             condition); otherwise throws ContractViolation.
/// \param alg  Which algorithm/baseline to run.
/// \param opt  Tuning knobs; the defaults are fine for most uses.
/// \return A validated proper Delta-coloring plus its round ledger and
///         phase statistics.
DeltaColoringResult delta_color(const Graph& g, Algorithm alg,
                                const DeltaColoringOptions& opt = {});

}  // namespace deltacol
