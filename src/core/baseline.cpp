// Baselines the paper improves upon.
//
// run_baseline_nd — Theorem 21 (= [PS95], as rephrased and reproved by the
// paper): a distance-R ruling set defines layers; each layer's (deg+1)-list
// instance is completed by sweeping the color classes of a network
// decomposition and letting each cluster extend the coloring internally
// after gathering itself (cost per layer: #colors * (diameter + 1) rounds).
// With C, D = O(log n) and O(log_Delta n) layers this lands at the
// O(log^3 n / log Delta) complexity of [PS92].
//
// run_baseline_greedy_brooks — the "obvious" approach: distributed
// (Delta+1)-coloring, then eliminate the overflow color class by scheduled
// applications of the distributed Brooks fix.
#include <algorithm>

#include "brooks/distributed_brooks.h"
#include "coloring/list_coloring.h"
#include "core/internal.h"
#include "decomp/network_decomposition.h"
#include "graph/frontier_bfs.h"
#include "graph/ops.h"
#include "mis/mis.h"
#include "mis/ruling_set.h"
#include "util/check.h"

namespace deltacol::internal {

namespace {

// Completes the (deg+1)-list instance on `vertices` by sweeping ND color
// classes; clusters of the active class extend the coloring internally
// (greedy in id order — inside one cluster the work is sequential-local
// after a D-round gather; distinct same-color clusters are non-adjacent).
void color_vertex_set_via_nd(const Graph& g, const std::vector<int>& vertices,
                             int delta, const NetworkDecomposition& nd,
                             Coloring& c, RoundLedger& ledger,
                             std::string_view phase) {
  std::vector<char> in_set(static_cast<std::size_t>(g.num_vertices()), 0);
  for (int v : vertices) {
    if (c[static_cast<std::size_t>(v)] == kUncolored) {
      in_set[static_cast<std::size_t>(v)] = 1;
    }
  }
  for (int k = 0; k < nd.num_colors; ++k) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (!in_set[static_cast<std::size_t>(v)]) continue;
      const int cl = nd.cluster[static_cast<std::size_t>(v)];
      if (nd.cluster_color[static_cast<std::size_t>(cl)] != k) continue;
      const auto x = first_free_color(g, c, v, delta);
      DC_ENSURE(x.has_value(),
                "ND sweep: vertex ran out of colors (instance was not deg+1)");
      c[static_cast<std::size_t>(v)] = *x;
      in_set[static_cast<std::size_t>(v)] = 0;
    }
    ledger.charge(nd.max_diameter + 1, phase);
  }
}

}  // namespace

void run_baseline_nd(ComponentContext& ctx, Coloring& c) {
  const Graph& g = ctx.g;
  const int n = g.num_vertices();
  const int delta = ctx.delta;

  const NetworkDecomposition nd = random_shift_decomposition(
      g, 0.25, ctx.rng, ctx.ledger, "ps/decomposition", ctx.pool);

  const int rho = brooks_search_radius(n, delta);
  const int R = 2 * rho + 2;
  std::vector<int> all(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  const std::vector<int> base =
      ruling_set(g, all, R, RulingSetEngine::kDeterministic, nullptr,
                 ctx.ledger, "ps/ruling-set", ctx.pool, ctx.opt.mode);
  ctx.stats.base_layer_size += static_cast<int>(base.size());

  const int z =
      (R - 1) * ruling_set_cover_radius(n, RulingSetEngine::kDeterministic);
  const Layering layering = build_layers(g, base, z, ctx.pool, ctx.opt.mode);
  ctx.ledger.charge(layering.num_layers, "ps/layering");
  ctx.stats.num_b_layers += layering.num_layers;
  for (int v = 0; v < n; ++v) {
    DC_ENSURE(layering.layer[static_cast<std::size_t>(v)] != kNoLayer,
              "ruling set covering failed to reach a vertex");
  }

  for (int i = layering.num_layers - 1; i >= 1; --i) {
    color_vertex_set_via_nd(g, layering.members[static_cast<std::size_t>(i)],
                            delta, nd, c, ctx.ledger, "ps/layer-coloring");
  }

  // The base fixes have pairwise-disjoint recoloring balls (distance-R
  // ruling set, R = 2*rho + 2): fan them out over the pool with the
  // emergency path deferred to a serial index-ordered pass.
  const auto fixes = schedule_disjoint_brooks_fixes(
      g, c, base, delta, rho, ctx.pool, ctx.num_shards, &ctx.part,
      ctx.opt.mode);
  ctx.stats.brooks_fixes += fixes.num_executed;
  for (const auto& fix : fixes.results) {
    if (fix.used_component_recolor) {
      DC_ENSURE(!ctx.opt.strict, "strict mode: Brooks fix exceeded radius");
      ++ctx.stats.repairs;
      ctx.ledger.charge(2 * fix.radius_used + 1, "ps/base-layer");
    }
  }
  ctx.ledger.charge(2 * rho + 1, "ps/base-layer");
}

void run_baseline_greedy_brooks(ComponentContext& ctx, Coloring& c) {
  const Graph& g = ctx.g;
  const int n = g.num_vertices();
  const int delta = ctx.delta;

  // Stage 1: (Delta+1)-coloring by randomized trial coloring.
  ListAssignment lists(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (Color x = 0; x <= delta; ++x) {
      lists[static_cast<std::size_t>(v)].push_back(x);
    }
  }
  Coloring wide(static_cast<std::size_t>(n), kUncolored);
  rand_list_coloring(g, lists, ctx.schedule, ctx.schedule_colors, ctx.rng,
                     wide, ctx.ledger, "naive/delta-plus-one", ctx.pool);

  // Stage 2: keep colors < Delta; the overflow class (an independent set)
  // is repaired by Brooks fixes scheduled via an MIS of the (2 rho + 1)-th
  // power so concurrent fixes never touch the same vertex.
  for (int v = 0; v < n; ++v) {
    c[static_cast<std::size_t>(v)] =
        wide[static_cast<std::size_t>(v)] == delta
            ? kUncolored
            : wide[static_cast<std::size_t>(v)];
  }
  const int rho = brooks_search_radius(n, delta);
  for (;;) {
    std::vector<int> overflow;
    for (int v = 0; v < n; ++v) {
      if (c[static_cast<std::size_t>(v)] == kUncolored) overflow.push_back(v);
    }
    if (overflow.empty()) break;
    const std::vector<int> batch =
        ruling_set(g, overflow, 2 * rho + 2, RulingSetEngine::kRandomized,
                   &ctx.rng, ctx.ledger, "naive/schedule", ctx.pool,
                   ctx.opt.mode);
    DC_ENSURE(!batch.empty(), "scheduling MIS returned empty batch");
    // The batch is a distance-(2*rho+2) ruling set, so its fixes have
    // disjoint balls and run concurrently; an emergency recolor (serial
    // pass) may side-color later batch members, which are then skipped
    // (`executed` = 0) exactly as the old serial loop skipped them.
    const auto fixes = schedule_disjoint_brooks_fixes(
        g, c, batch, delta, rho, ctx.pool, ctx.num_shards, &ctx.part,
        ctx.opt.mode);
    ctx.stats.brooks_fixes += fixes.num_executed;
    ctx.ledger.charge(2 * rho + 1, "naive/brooks-fixes");
  }
}

}  // namespace deltacol::internal
