// Theorem 4: deterministic distributed Delta-coloring via the layering
// technique (paper Section 3).
//
//   (1) Build B0: a distance-R ruling set, R chosen so that the Brooks
//       recoloring balls of distinct B0 nodes cannot overlap.
//   (2)-(3) Layer the graph by distance to B0 and color layers in reverse
//       order, each a (deg+1)-list instance.
//   (4) Color B0 nodes independently with the distributed Brooks' theorem
//       (Theorem 5), recoloring inside radius < R/2.
#include <algorithm>

#include "brooks/distributed_brooks.h"
#include "core/internal.h"
#include "graph/frontier_bfs.h"
#include "mis/ruling_set.h"
#include "util/check.h"

namespace deltacol::internal {

void run_deterministic(ComponentContext& ctx, Coloring& c) {
  const Graph& g = ctx.g;
  const int n = g.num_vertices();
  const int delta = ctx.delta;

  // Brooks search radius rho; B0 nodes at pairwise distance >= 2 rho + 2
  // make the recoloring balls disjoint (paper: R with 2 log_{D-1} n < R/2).
  const int rho = brooks_search_radius(n, delta);
  const int R = 2 * rho + 2;

  std::vector<int> all(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  const std::vector<int> base =
      ruling_set(g, all, R, RulingSetEngine::kDeterministic, nullptr,
                 ctx.ledger, "det/ruling-set", ctx.pool, ctx.opt.mode);
  DC_ENSURE(!base.empty(), "ruling set of a non-empty graph is empty");
  ctx.stats.base_layer_size += static_cast<int>(base.size());

  // Covering radius of the deterministic engine, in G hops.
  const int z =
      (R - 1) * ruling_set_cover_radius(n, RulingSetEngine::kDeterministic);
  const Layering layering = build_layers(g, base, z, ctx.pool, ctx.opt.mode);
  ctx.ledger.charge(layering.num_layers, "det/layering");
  for (int v = 0; v < n; ++v) {
    DC_ENSURE(layering.layer[static_cast<std::size_t>(v)] != kNoLayer,
              "ruling set covering failed to reach a vertex");
  }
  ctx.stats.num_b_layers += layering.num_layers;

  color_layers_in_reverse(g, layering, delta, ctx.schedule,
                          ctx.schedule_colors, ctx.opt.list_engine, &ctx.rng,
                          c, ctx.ledger, "det/layer-coloring", ctx.pool);

  // Color B0 by independent Brooks fixes. Balls of radius rho around
  // distinct B0 nodes are disjoint (B0 is a distance-R ruling set with
  // R = 2*rho + 2), so the fixes commute and all, in a real network, run in
  // the same 2*rho+1 rounds — and on this host they run concurrently, fanned
  // out over the pool (grouped by home shard when sharding is on), with the
  // Lemma-27 emergency path deferred to a serial pass (see
  // schedule_disjoint_brooks_fixes; debug builds assert the ball
  // disjointness the fan-out relies on).
  for (int v : base) {
    DC_ENSURE(c[static_cast<std::size_t>(v)] == kUncolored,
              "base vertex was colored by a layer instance");
  }
  const auto fixes = schedule_disjoint_brooks_fixes(
      g, c, base, delta, rho, ctx.pool, ctx.num_shards, &ctx.part,
      ctx.opt.mode);
  ctx.stats.brooks_fixes += fixes.num_executed;
  for (const auto& fix : fixes.results) {
    if (fix.used_component_recolor) {
      // Emergency path (should not happen; see brooks_fix): charge
      // sequentially and honestly, in base-index order.
      DC_ENSURE(!ctx.opt.strict, "strict mode: Brooks fix exceeded radius");
      ++ctx.stats.repairs;
      ctx.ledger.charge(2 * fix.radius_used + 1, "det/base-layer");
    }
  }
  ctx.ledger.charge(2 * rho + 1, "det/base-layer");
}

}  // namespace deltacol::internal
