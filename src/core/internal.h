// Internal plumbing between the api dispatcher and the per-component
// algorithm implementations. Not part of the public API.
#pragma once

#include <vector>

#include "core/api.h"
#include "graph/partition.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol::internal {

// Everything an algorithm needs for one nice connected component whose max
// degree equals the global palette size.
struct ComponentContext {
  const Graph& g;            // the component (dense vertex ids)
  int delta;                 // palette size == g.max_degree()
  const Coloring& schedule;  // Linial O(Delta^2) symmetry-breaking coloring
  int schedule_colors;
  const DeltaColoringOptions& opt;
  Rng& rng;
  RoundLedger& ledger;
  PhaseStats& stats;
  ThreadPool* pool = nullptr;  // nullptr: run serial (see src/runtime/)
  // Shard count of the partitioned execution layer, resolved (>= 1).
  // Pipelines use it to place their sweeps / fix batches / inner fan-outs
  // shard-major (graph/partition.h); observables are shard-invariant.
  int num_shards = 1;
  // Shard-ownership map over THIS component's dense ids (contiguous, or the
  // locality renumbering when opt.partition == kCluster), spanning g with
  // num_shards shards. Built once by the dispatcher (make_partition,
  // graph/renumber.h); pipelines route every placement decision through it.
  // Placement-only: observables are partition-invariant.
  VertexPartition part = VertexPartition::contiguous(0, 1);
};

void run_deterministic(ComponentContext& ctx, Coloring& c);
void run_baseline_nd(ComponentContext& ctx, Coloring& c);
void run_baseline_greedy_brooks(ComponentContext& ctx, Coloring& c);
void run_randomized(ComponentContext& ctx, Coloring& c, bool small_variant);

// Folds one component's counters into the run-wide stats (sums, except
// max_leftover_component which is a max; retries_used is owned by the
// dispatcher). Called on the dispatcher thread, in component-index order.
void merge_component_stats(PhaseStats& into, const PhaseStats& from);

// Section 4.3: color one leftover component (vertex list in ctx.g ids, all
// currently uncolored) respecting the partial coloring in c. Returns true
// on success. Returns false — having colored nothing — when the component
// has neither a free node nor a DCC (the Lemma-27 fallback case, reachable
// only under non-paper parameters): the caller must then run
// repair_completion serially, because the repair may color outside the
// component and so cannot run under the Phase-(6) fan-out. On the success
// path the function writes only the component's own coloring slice, reads
// only stable outside state, and draws only from ctx.rng — which is what
// makes leftover components schedulable in parallel (DESIGN.md §6).
bool color_small_component(ComponentContext& ctx, Coloring& c,
                           const std::vector<int>& component);

// Repair path: greedily color any still-uncolored vertices, invoking the
// distributed Brooks fix for stuck ones. Always succeeds on nice graphs;
// rounds are charged (sequentially, worst case) to "repair".
void repair_completion(ComponentContext& ctx, Coloring& c);

}  // namespace deltacol::internal
