#include "core/layering.h"

#include <algorithm>

#include "coloring/list_coloring.h"
#include "graph/frontier_bfs.h"
#include "graph/ops.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

namespace {

// Materializes a Layering from the engine's level slices. Members of each
// layer are sorted by id (the contract downstream phases and the golden
// round counts were built against).
Layering layering_from_scratch(const BfsScratch& scratch, int n) {
  Layering out;
  out.layer.assign(static_cast<std::size_t>(n), kNoLayer);
  out.num_layers = scratch.num_levels();
  out.members.resize(static_cast<std::size_t>(out.num_layers));
  for (int l = 0; l < out.num_layers; ++l) {
    const auto lv = scratch.level(l);
    auto& slot = out.members[static_cast<std::size_t>(l)];
    slot.assign(lv.begin(), lv.end());
    std::sort(slot.begin(), slot.end());
    for (int v : slot) out.layer[static_cast<std::size_t>(v)] = l;
  }
  return out;
}

}  // namespace

Layering build_layers(const Graph& g, const std::vector<int>& base,
                      int max_depth, ThreadPool* pool, ExecutionMode mode) {
  for (int s : base) {
    DC_REQUIRE(0 <= s && s < g.num_vertices(), "base vertex out of range");
  }
  BfsScratch scratch;
  FrontierBfs engine(pool, mode);
  engine.run_multi(g, scratch, base, max_depth);
  return layering_from_scratch(scratch, g.num_vertices());
}

Layering build_layers_restricted(const Graph& g, const std::vector<int>& base,
                                 int max_depth,
                                 const std::vector<bool>& allowed,
                                 ThreadPool* pool, ExecutionMode mode) {
  DC_REQUIRE(allowed.size() == static_cast<std::size_t>(g.num_vertices()),
             "allowed mask size mismatch");
  for (int s : base) {
    DC_REQUIRE(0 <= s && s < g.num_vertices(), "base vertex out of range");
    DC_REQUIRE(allowed[static_cast<std::size_t>(s)],
               "base vertex excluded by the restriction mask");
  }
  BfsScratch scratch;
  FrontierBfs engine(pool, mode);
  engine.run_multi_filtered(g, scratch, base, max_depth, [&](int v) {
    return allowed[static_cast<std::size_t>(v)];
  });
  return layering_from_scratch(scratch, g.num_vertices());
}

void color_vertex_set_as_list_instance(const Graph& g,
                                       const std::vector<int>& vertices,
                                       int delta, const Coloring& schedule,
                                       int schedule_colors, ListEngine engine,
                                       Rng* rng, Coloring& c,
                                       RoundLedger& ledger,
                                       std::string_view phase,
                                       ThreadPool* pool) {
  std::vector<int> todo;
  for (int v : vertices) {
    if (c[static_cast<std::size_t>(v)] == kUncolored) todo.push_back(v);
  }
  if (todo.empty()) return;
  const auto sub = induced_subgraph(g, todo);
  ListAssignment lists(static_cast<std::size_t>(sub.graph.num_vertices()));
  Coloring sub_schedule(static_cast<std::size_t>(sub.graph.num_vertices()));
  // Per-instance-vertex setup reads the frozen partial coloring and writes
  // i-private slots: a parallel-for.
  pooled_for(pool, 0, sub.graph.num_vertices(), [&](int i) {
    const int p = sub.to_parent[static_cast<std::size_t>(i)];
    lists[static_cast<std::size_t>(i)] = free_colors(g, c, p, delta);
    sub_schedule[static_cast<std::size_t>(i)] =
        schedule[static_cast<std::size_t>(p)];
  });
  DC_ENSURE(lists_have_deg_plus_one(sub.graph, lists),
            "layer instance is not (deg+1): some vertex lacks an uncolored "
            "lower-layer neighbor");
  Coloring sub_c(static_cast<std::size_t>(sub.graph.num_vertices()), kUncolored);
  switch (engine) {
    case ListEngine::kDeterministic:
      det_list_coloring(sub.graph, lists, sub_schedule, schedule_colors, sub_c,
                        ledger, phase, pool);
      break;
    case ListEngine::kRandomized:
      DC_REQUIRE(rng != nullptr, "randomized engine needs an Rng");
      rand_list_coloring(sub.graph, lists, sub_schedule, schedule_colors, *rng,
                         sub_c, ledger, phase, pool);
      break;
  }
  for (int i = 0; i < sub.graph.num_vertices(); ++i) {
    c[sub.to_parent[static_cast<std::size_t>(i)]] = sub_c[i];
  }
}

void color_layers_in_reverse(const Graph& g, const Layering& layering,
                             int delta, const Coloring& schedule,
                             int schedule_colors, ListEngine engine, Rng* rng,
                             Coloring& c, RoundLedger& ledger,
                             std::string_view phase, ThreadPool* pool) {
  // Layers are inherently sequential (layer i needs i+1 colored); the
  // parallelism lives inside each layer's instance.
  for (int i = layering.num_layers - 1; i >= 1; --i) {
    color_vertex_set_as_list_instance(
        g, layering.members[static_cast<std::size_t>(i)], delta, schedule,
        schedule_colors, engine, rng, c, ledger, phase, pool);
  }
}

}  // namespace deltacol
