#include "core/layering.h"

#include <algorithm>
#include <queue>

#include "coloring/list_coloring.h"
#include "graph/ops.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

namespace {

Layering layers_from_distances(const std::vector<int>& dist, int max_depth) {
  Layering out;
  out.layer.assign(dist.size(), kNoLayer);
  int max_layer = -1;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (dist[v] < 0) continue;
    if (max_depth >= 0 && dist[v] > max_depth) continue;
    out.layer[v] = dist[v];
    max_layer = std::max(max_layer, dist[v]);
  }
  out.num_layers = max_layer + 1;
  out.members.resize(static_cast<std::size_t>(out.num_layers));
  for (std::size_t v = 0; v < out.layer.size(); ++v) {
    if (out.layer[v] != kNoLayer) {
      out.members[static_cast<std::size_t>(out.layer[v])].push_back(
          static_cast<int>(v));
    }
  }
  return out;
}

}  // namespace

Layering build_layers(const Graph& g, const std::vector<int>& base,
                      int max_depth) {
  std::vector<bool> all(static_cast<std::size_t>(g.num_vertices()), true);
  return build_layers_restricted(g, base, max_depth, all);
}

Layering build_layers_restricted(const Graph& g, const std::vector<int>& base,
                                 int max_depth,
                                 const std::vector<bool>& allowed) {
  DC_REQUIRE(allowed.size() == static_cast<std::size_t>(g.num_vertices()),
             "allowed mask size mismatch");
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<int> q;
  for (int s : base) {
    DC_REQUIRE(0 <= s && s < g.num_vertices(), "base vertex out of range");
    DC_REQUIRE(allowed[static_cast<std::size_t>(s)],
               "base vertex excluded by the restriction mask");
    if (dist[static_cast<std::size_t>(s)] == 0) continue;
    dist[static_cast<std::size_t>(s)] = 0;
    q.push(s);
  }
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    if (max_depth >= 0 && dist[static_cast<std::size_t>(u)] >= max_depth) continue;
    for (int w : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] != -1) continue;
      if (!allowed[static_cast<std::size_t>(w)]) continue;
      dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
      q.push(w);
    }
  }
  return layers_from_distances(dist, max_depth);
}

void color_vertex_set_as_list_instance(const Graph& g,
                                       const std::vector<int>& vertices,
                                       int delta, const Coloring& schedule,
                                       int schedule_colors, ListEngine engine,
                                       Rng* rng, Coloring& c,
                                       RoundLedger& ledger,
                                       std::string_view phase,
                                       ThreadPool* pool) {
  std::vector<int> todo;
  for (int v : vertices) {
    if (c[static_cast<std::size_t>(v)] == kUncolored) todo.push_back(v);
  }
  if (todo.empty()) return;
  const auto sub = induced_subgraph(g, todo);
  ListAssignment lists(static_cast<std::size_t>(sub.graph.num_vertices()));
  Coloring sub_schedule(static_cast<std::size_t>(sub.graph.num_vertices()));
  // Per-instance-vertex setup reads the frozen partial coloring and writes
  // i-private slots: a parallel-for.
  pooled_for(pool, 0, sub.graph.num_vertices(), [&](int i) {
    const int p = sub.to_parent[static_cast<std::size_t>(i)];
    lists[static_cast<std::size_t>(i)] = free_colors(g, c, p, delta);
    sub_schedule[static_cast<std::size_t>(i)] =
        schedule[static_cast<std::size_t>(p)];
  });
  DC_ENSURE(lists_have_deg_plus_one(sub.graph, lists),
            "layer instance is not (deg+1): some vertex lacks an uncolored "
            "lower-layer neighbor");
  Coloring sub_c(static_cast<std::size_t>(sub.graph.num_vertices()), kUncolored);
  switch (engine) {
    case ListEngine::kDeterministic:
      det_list_coloring(sub.graph, lists, sub_schedule, schedule_colors, sub_c,
                        ledger, phase, pool);
      break;
    case ListEngine::kRandomized:
      DC_REQUIRE(rng != nullptr, "randomized engine needs an Rng");
      rand_list_coloring(sub.graph, lists, sub_schedule, schedule_colors, *rng,
                         sub_c, ledger, phase, pool);
      break;
  }
  for (int i = 0; i < sub.graph.num_vertices(); ++i) {
    c[sub.to_parent[static_cast<std::size_t>(i)]] = sub_c[i];
  }
}

void color_layers_in_reverse(const Graph& g, const Layering& layering,
                             int delta, const Coloring& schedule,
                             int schedule_colors, ListEngine engine, Rng* rng,
                             Coloring& c, RoundLedger& ledger,
                             std::string_view phase, ThreadPool* pool) {
  // Layers are inherently sequential (layer i needs i+1 colored); the
  // parallelism lives inside each layer's instance.
  for (int i = layering.num_layers - 1; i >= 1; --i) {
    color_vertex_set_as_list_instance(
        g, layering.members[static_cast<std::size_t>(i)], delta, schedule,
        schedule_colors, engine, rng, c, ledger, phase, pool);
  }
}

}  // namespace deltacol
