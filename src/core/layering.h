// The paper's layering technique (Sections 1.3 and 3).
//
// Pick a base set B0, define layer B_i as the vertices at distance exactly i
// from B0, remove all layers from the graph, and later color the layers in
// reverse order: when layer B_i is colored, each of its vertices still has
// an uncolored neighbor in B_{i-1}, so coloring G[B_i] while respecting
// already-colored neighbors is a (deg+1)-list coloring instance. The base
// layer is colored last by case-specific machinery (ruling-set independence
// + Brooks in Theorem 4; independent DCCs in Phase (9); free nodes/DCCs in
// Section 4.3).
#pragma once

#include <string_view>
#include <vector>

#include "coloring/coloring.h"
#include "graph/graph.h"
#include "local/round_ledger.h"
#include "runtime/execution_mode.h"
#include "util/rng.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

inline constexpr int kNoLayer = -1;

struct Layering {
  // layer[v] = i if v is in B_i (0 = base), kNoLayer if v was not reached
  // within max_depth (it stays in the remainder graph H).
  std::vector<int> layer;
  int num_layers = 0;  // 1 + max assigned layer index
  // Vertices of each layer, by index.
  std::vector<std::vector<int>> members;
};

// Layers by G-distance to `base` (layer 0 = base itself), truncated at
// max_depth (pass a negative max_depth for unbounded). The restricted
// variant confines the BFS to `allowed` vertices (used for the C-layers of
// Phase (5), which grow through uncolored vertices of H only). The BFS runs
// level-synchronously on the frontier engine; with a pool attached, each
// level's frontier splits into indexed chunks (graph/frontier_bfs.h), and
// the layering is bit-identical for every thread count. `mode` kFast swaps
// the engine's two-phase chunk replay for atomics-based frontier claiming —
// distances (hence layer assignment) stay exact because the BFS is
// level-synchronous, and members are sorted per layer here, so the layering
// is identical; only the claim schedule relaxes.
Layering build_layers(const Graph& g, const std::vector<int>& base,
                      int max_depth, ThreadPool* pool = nullptr,
                      ExecutionMode mode = ExecutionMode::kDeterministic);
Layering build_layers_restricted(const Graph& g, const std::vector<int>& base,
                                 int max_depth,
                                 const std::vector<bool>& allowed,
                                 ThreadPool* pool = nullptr,
                                 ExecutionMode mode = ExecutionMode::kDeterministic);

// Which engine completes each layer's (deg+1)-list instance.
enum class ListEngine { kDeterministic, kRandomized };

// Colors layers num_layers-1, ..., 1 (NOT layer 0) of the layering, in
// reverse order, respecting whatever `c` already contains. `schedule` is the
// O(Delta^2) symmetry-breaking coloring (Linial) used by the deterministic
// engine and by the randomized engine's fallback. Charges one list-coloring
// instance per layer to `phase`.
void color_layers_in_reverse(const Graph& g, const Layering& layering,
                             int delta, const Coloring& schedule,
                             int schedule_colors, ListEngine engine, Rng* rng,
                             Coloring& c, RoundLedger& ledger,
                             std::string_view phase, ThreadPool* pool = nullptr);

// One (deg+1)-list instance: color exactly `vertices` (those uncolored in c)
// from palette {0..delta-1} minus colored neighbors. Shared by all phases.
void color_vertex_set_as_list_instance(const Graph& g,
                                       const std::vector<int>& vertices,
                                       int delta, const Coloring& schedule,
                                       int schedule_colors, ListEngine engine,
                                       Rng* rng, Coloring& c,
                                       RoundLedger& ledger,
                                       std::string_view phase,
                                       ThreadPool* pool = nullptr);

}  // namespace deltacol
