// Theorems 1 and 3: the randomized Delta-coloring algorithms (paper
// Section 4.1, Phases (1)-(9)). The two variants share this code; they
// differ in the DCC radius r (constant for large Delta, Theta(log log n)
// for the small-Delta variant) and the backoff distance b.
//
// Phase map (paper numbering preserved):
//   I   (1)-(3): remove degree-choosable components with small radius —
//       detect DCCs in r-balls, ruling set on the virtual graph GDCC, base
//       layer B0, layers B1..Bs by distance, all removed from the graph.
//   II  (4)-(6): shattering — the marking process creates T-nodes; happy
//       nodes (uncolored path to a T-node or near the boundary) leave in
//       layers C0..C2r; leftover components are colored by Section 4.3.
//   III (7): color layers C2r..C0 in reverse ((deg+1)-list instances).
//   IV  (8)-(9): color layers Bs..B1 in reverse, then the independent
//       degree-choosable components of B0 directly (Theorem 8).
#include <algorithm>
#include <cmath>

#include "core/internal.h"
#include "coloring/degree_choosable.h"
#include "dcc/dcc.h"
#include "graph/components.h"
#include "graph/frontier_bfs.h"
#include "graph/ops.h"
#include "graph/traversal.h"
#include "mis/mis.h"
#include "runtime/component_scheduler.h"
#include "runtime/mailbox.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/math_util.h"

namespace deltacol::internal {

namespace {

struct MarkingOutcome {
  std::vector<int> tnodes;   // surviving selected nodes that created marks
  std::vector<int> marked;   // vertices colored with color 0
};

// Paper Phase (4): select w.p. p; back off if another selected node is
// within distance b in H; survivors color two non-adjacent H-neighbors with
// the first color.
MarkingOutcome marking_process(const Graph& g, const std::vector<bool>& in_h,
                               Coloring& c, double p, int b, Rng& rng,
                               ThreadPool* pool) {
  const int n = g.num_vertices();
  std::vector<int> selected0;
  for (int v = 0; v < n; ++v) {
    if (in_h[static_cast<std::size_t>(v)] && rng.next_bool(p)) {
      selected0.push_back(v);
    }
  }
  std::vector<bool> is_selected0(static_cast<std::size_t>(n), false);
  for (int v : selected0) is_selected0[static_cast<std::size_t>(v)] = true;

  // Back-off test: a pure read of the frozen selection (the b-radius ball
  // scans are the expensive part), so it fans out over the pool; the
  // Rng-consuming mark placement below stays serial in selection order, so
  // the stream is identical for every thread count. Each chunk reuses one
  // epoch-stamped scratch across its balls and the H-membership predicate
  // inlines (no per-edge indirect call).
  const int num_selected = static_cast<int>(selected0.size());
  std::vector<char> lonely_flags(selected0.size(), 1);
  // Chunk cap = one per executor: each chunk allocates O(n) scratch, so
  // more chunks than executors would only multiply that cost.
  pooled_ranges(
      pool, 0, num_selected,
      [&](int /*chunk*/, int lo, int hi) {
        BfsScratch scratch;
        FrontierBfs engine;
        for (int i = lo; i < hi; ++i) {
          const int v = selected0[static_cast<std::size_t>(i)];
          engine.run_filtered(g, scratch, v, b, [&](int u) {
            return in_h[static_cast<std::size_t>(u)];
          });
          for (int u : scratch.order()) {
            if (u != v && is_selected0[static_cast<std::size_t>(u)]) {
              lonely_flags[static_cast<std::size_t>(i)] = 0;
              break;
            }
          }
        }
      },
      pool != nullptr ? pool->num_threads() : 1);
  MarkingOutcome out;
  for (int i = 0; i < num_selected; ++i) {
    const int v = selected0[static_cast<std::size_t>(i)];
    // Back off if another selected node lies within distance b in H.
    if (!lonely_flags[static_cast<std::size_t>(i)]) continue;
    // Pick two non-adjacent H-neighbors at random.
    std::vector<int> nbrs;
    for (int u : g.neighbors(v)) {
      if (in_h[static_cast<std::size_t>(u)]) nbrs.push_back(u);
    }
    rng.shuffle(nbrs);
    int u1 = -1, u2 = -1;
    for (std::size_t i = 0; i < nbrs.size() && u1 < 0; ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!g.has_edge(nbrs[i], nbrs[j])) {
          u1 = nbrs[i];
          u2 = nbrs[j];
          break;
        }
      }
    }
    if (u1 < 0) continue;  // H-neighborhood is a clique: cannot host a T-node
    c[static_cast<std::size_t>(u1)] = 0;
    c[static_cast<std::size_t>(u2)] = 0;
    out.tnodes.push_back(v);
    out.marked.push_back(u1);
    out.marked.push_back(u2);
  }
  return out;
}

}  // namespace

void run_randomized(ComponentContext& ctx, Coloring& c, bool small_variant) {
  const Graph& g = ctx.g;
  const int n = g.num_vertices();
  const int delta = ctx.delta;

  // ---- Parameters -------------------------------------------------------
  int r;
  if (small_variant) {
    const double loglog =
        std::log2(std::max(2.0, std::log2(static_cast<double>(std::max(4, n)))));
    r = std::clamp(static_cast<int>(std::ceil(loglog)), 2,
                   ctx.opt.small_variant_radius_cap);
  } else {
    r = std::max(1, ctx.opt.dcc_radius);
  }
  int b = ctx.opt.backoff;
  if (b < 0) b = ctx.opt.use_paper_constants ? (small_variant ? 12 : 6) : 3;
  DC_REQUIRE(b >= 3, "backoff < 3 can make marks of distinct T-nodes adjacent");
  double p = ctx.opt.selection_prob;
  if (p < 0) {
    p = std::pow(static_cast<double>(delta),
                 -static_cast<double>(ctx.opt.use_paper_constants ? 6 : b));
  }

  // ---- Phase (1): DCC detection in r-balls ------------------------------
  const DccDetection det =
      detect_dccs(g, r, ctx.ledger, "rand/1-dcc-detect", ctx.pool);
  ctx.stats.num_dccs_selected += static_cast<int>(det.dccs.size());

  // ---- Phase (2): ruling set on GDCC, base layer B0 ----------------------
  std::vector<int> base;
  std::vector<char> dcc_in_m;
  if (!det.dccs.empty()) {
    const Graph gdcc = build_dcc_virtual_graph(g, det.dccs);
    // One GDCC round costs a gather across two DCC diameters plus the
    // connecting edge.
    const int per_step = 2 * det.max_dcc_radius + 1;
    const std::vector<bool> in_m = luby_mis(gdcc, ctx.rng, ctx.ledger,
                                            "rand/2-gdcc-ruling", per_step,
                                            ctx.pool, ctx.num_shards,
                                            ctx.opt.mode);
    dcc_in_m.assign(det.dccs.size(), 0);
    for (std::size_t i = 0; i < det.dccs.size(); ++i) {
      if (in_m[i]) {
        dcc_in_m[i] = 1;
        for (int v : det.dccs[i]) base.push_back(v);
      }
    }
  }
  ctx.stats.base_layer_size += static_cast<int>(base.size());

  // ---- Phase (3): layers B0..Bs -----------------------------------------
  const int s = r + 2 * det.max_dcc_radius + 1;
  Layering b_layers;
  std::vector<bool> in_h(static_cast<std::size_t>(n), true);
  if (!base.empty()) {
    b_layers = build_layers(g, base, s, ctx.pool, ctx.opt.mode);
    ctx.ledger.charge(s, "rand/3-b-layers");
    for (int v = 0; v < n; ++v) {
      if (b_layers.layer[static_cast<std::size_t>(v)] != kNoLayer) {
        in_h[static_cast<std::size_t>(v)] = false;
      }
      // Invariant: every vertex whose r-ball contains a DCC is removed, so
      // the remainder H has no DCC of radius <= r (DESIGN.md §4).
      DC_ENSURE(!det.has_dcc[static_cast<std::size_t>(v)] ||
                    b_layers.layer[static_cast<std::size_t>(v)] != kNoLayer,
                "DCC-adjacent vertex escaped the B-layers");
    }
    ctx.stats.num_b_layers += b_layers.num_layers;
  } else {
    for (int v = 0; v < n; ++v) {
      DC_ENSURE(!det.has_dcc[static_cast<std::size_t>(v)],
                "DCC detected but no DCC selected");
    }
  }

  for (int v = 0; v < n; ++v) {
    if (in_h[static_cast<std::size_t>(v)]) ++ctx.stats.h_vertices;
  }

  // ---- Phase (4): marking process / T-node creation ----------------------
  const MarkingOutcome marking =
      marking_process(g, in_h, c, p, b, ctx.rng, ctx.pool);
  ctx.stats.num_selected += static_cast<int>(marking.tnodes.size());
  ctx.ledger.charge(b + 2, "rand/4-marking");

  // ---- Phase (5): layers C0..C2r ----------------------------------------
  // Boundary of H: degree < delta within H. A pure v-private sweep, placed
  // shard-major when sharding is on.
  std::vector<int> deg_h(static_cast<std::size_t>(n), 0);
  sharded_for(ctx.pool, ctx.part, ctx.opt.mode, [&](int v) {
    if (!in_h[static_cast<std::size_t>(v)]) return;
    for (int u : g.neighbors(v)) {
      if (in_h[static_cast<std::size_t>(u)]) {
        ++deg_h[static_cast<std::size_t>(v)];
      }
    }
  });
  std::vector<int> boundary;
  for (int v = 0; v < n; ++v) {
    if (in_h[static_cast<std::size_t>(v)] &&
        deg_h[static_cast<std::size_t>(v)] < delta) {
      boundary.push_back(v);
    }
  }
  // Colored (marked) nodes within distance r of the boundary uncolor
  // themselves (distances measured in H): a frontier BFS restricted to H.
  if (!boundary.empty()) {
    BfsScratch scratch;
    FrontierBfs engine(ctx.pool, ctx.opt.mode);
    engine.run_multi_filtered(g, scratch, boundary, r, [&](int w) {
      return in_h[static_cast<std::size_t>(w)];
    });
    for (int m : marking.marked) {
      if (scratch.visited(m)) c[static_cast<std::size_t>(m)] = kUncolored;
    }
  }
  // Recompute surviving T-nodes: still two neighbors colored with color 0.
  std::vector<int> anchors = boundary;
  int surviving_t = 0;
  for (int v : marking.tnodes) {
    int zero_nbrs = 0;
    for (int u : g.neighbors(v)) {
      if (in_h[static_cast<std::size_t>(u)] &&
          c[static_cast<std::size_t>(u)] == 0) {
        ++zero_nbrs;
      }
    }
    if (zero_nbrs >= 2 && deg_h[static_cast<std::size_t>(v)] >= delta) {
      anchors.push_back(v);
      ++surviving_t;
    }
  }
  ctx.stats.num_tnodes += surviving_t;
  int marked_kept = 0;
  for (int m : marking.marked) {
    if (c[static_cast<std::size_t>(m)] == 0) ++marked_kept;
  }
  ctx.stats.num_marked += marked_kept;

  std::vector<bool> uncolored_h(static_cast<std::size_t>(n), false);
  for (int v = 0; v < n; ++v) {
    uncolored_h[static_cast<std::size_t>(v)] =
        in_h[static_cast<std::size_t>(v)] &&
        c[static_cast<std::size_t>(v)] == kUncolored;
  }
  Layering c_layers;
  std::vector<bool> in_c(static_cast<std::size_t>(n), false);
  if (!anchors.empty()) {
    c_layers = build_layers_restricted(g, anchors, 2 * r, uncolored_h,
                                       ctx.pool, ctx.opt.mode);
    for (int v = 0; v < n; ++v) {
      if (c_layers.layer[static_cast<std::size_t>(v)] != kNoLayer) {
        in_c[static_cast<std::size_t>(v)] = true;
        ++ctx.stats.happy_vertices;
      }
    }
    ctx.stats.num_c_layers += c_layers.num_layers;
  }
  ctx.ledger.charge(3 * r + 2, "rand/5-c-layers");

  // ---- Phase (6): leftover components (Section 4.3) -----------------------
  std::vector<int> leftover;
  for (int v = 0; v < n; ++v) {
    if (uncolored_h[static_cast<std::size_t>(v)] &&
        !in_c[static_cast<std::size_t>(v)]) {
      leftover.push_back(v);
    }
  }
  ctx.stats.leftover_vertices += static_cast<int>(leftover.size());
  if (!leftover.empty()) {
    const auto lsub = induced_subgraph(g, leftover);
    const auto comps = connected_components(lsub.graph).vertex_sets();
    const int num_comps = static_cast<int>(comps.size());
    ctx.stats.leftover_components += num_comps;
    // The leftover instances are disjoint and mutually non-adjacent, so they
    // run concurrently on the pool under the usual determinism recipe
    // (DESIGN.md §6): RNG streams pre-split here in index order, ledgers and
    // stats index-private, each job writing only its component's coloring
    // slice; the LOCAL cost is the max child total, exactly as the serial
    // loop charged it.
    std::vector<std::vector<int>> comp_parents(
        static_cast<std::size_t>(num_comps));
    std::vector<Rng> comp_rngs;
    comp_rngs.reserve(comps.size());
    for (int i = 0; i < num_comps; ++i) {
      const auto& comp = comps[static_cast<std::size_t>(i)];
      ctx.stats.max_leftover_component = std::max(
          ctx.stats.max_leftover_component, static_cast<int>(comp.size()));
      auto& parent_ids = comp_parents[static_cast<std::size_t>(i)];
      parent_ids.reserve(comp.size());
      for (int x : comp) {
        parent_ids.push_back(lsub.to_parent[static_cast<std::size_t>(x)]);
      }
      comp_rngs.push_back(ctx.rng.split());
    }
    std::vector<PhaseStats> comp_stats(static_cast<std::size_t>(num_comps));
    std::vector<char> needs_repair(static_cast<std::size_t>(num_comps), 0);
    const ComponentScheduler scheduler(ctx.pool, ctx.opt.mode);
    const auto leftover_job = [&](int i, RoundLedger& child) {
      ComponentContext child_ctx{
          ctx.g,
          ctx.delta,
          ctx.schedule,
          ctx.schedule_colors,
          ctx.opt,
          comp_rngs[static_cast<std::size_t>(i)],
          child,
          comp_stats[static_cast<std::size_t>(i)],
          ctx.pool,
          ctx.num_shards,
          ctx.part};  // same graph, same ownership map
      if (!color_small_component(child_ctx, c,
                                 comp_parents[static_cast<std::size_t>(i)])) {
        needs_repair[static_cast<std::size_t>(i)] = 1;
      }
    };
    // Each leftover instance is placed on the shard owning its lowest
    // vertex (the same rule the api-level component fan-out uses; no-op at
    // num_shards <= 1); identical observables for any placement.
    std::vector<int> comp_owner(static_cast<std::size_t>(num_comps));
    for (int i = 0; i < num_comps; ++i) {
      comp_owner[static_cast<std::size_t>(i)] =
          comp_parents[static_cast<std::size_t>(i)].front();
    }
    const std::int64_t max_rounds = scheduler.run_max_total_owner_placed(
        ctx.part, comp_owner, leftover_job, ctx.ledger.congest_bits());
    for (const auto& cs : comp_stats) merge_component_stats(ctx.stats, cs);
    ctx.ledger.charge(max_rounds, "rand/6-small-components");
    // Deferred Lemma-27 fallback (see internal.h): the repair may color
    // outside its component, so it runs serially after the barrier. One
    // call colors every still-uncolored vertex, covering all flagged
    // components at once.
    for (char flagged : needs_repair) {
      if (flagged != 0) {
        repair_completion(ctx, c);
        break;
      }
    }
  }

  // ---- Phase (7): color layers C2r..C0 ------------------------------------
  if (c_layers.num_layers > 0) {
    color_layers_in_reverse(g, c_layers, delta, ctx.schedule,
                            ctx.schedule_colors, ctx.opt.list_engine, &ctx.rng,
                            c, ctx.ledger, "rand/7-c-coloring", ctx.pool);
    color_vertex_set_as_list_instance(
        g, c_layers.members.front(), delta, ctx.schedule, ctx.schedule_colors,
        ctx.opt.list_engine, &ctx.rng, c, ctx.ledger, "rand/7-c-coloring",
        ctx.pool);
  }

  // ---- Phase (8): color layers Bs..B1 -------------------------------------
  if (b_layers.num_layers > 0) {
    color_layers_in_reverse(g, b_layers, delta, ctx.schedule,
                            ctx.schedule_colors, ctx.opt.list_engine, &ctx.rng,
                            c, ctx.ledger, "rand/8-b-coloring", ctx.pool);
  }

  // ---- Phase (9): color the base layer B0 (independent DCCs) -------------
  if (!base.empty()) {
    for (std::size_t i = 0; i < det.dccs.size(); ++i) {
      if (!dcc_in_m[i]) continue;
      const auto comp = induced_subgraph(g, det.dccs[i]);
      ListAssignment lists(static_cast<std::size_t>(comp.graph.num_vertices()));
      for (int j = 0; j < comp.graph.num_vertices(); ++j) {
        const int pv = comp.to_parent[static_cast<std::size_t>(j)];
        DC_ENSURE(c[static_cast<std::size_t>(pv)] == kUncolored,
                  "B0 vertex colored before Phase (9)");
        lists[static_cast<std::size_t>(j)] = free_colors(g, c, pv, delta);
      }
      const auto colored = degree_choosable_coloring(comp.graph, lists);
      DC_ENSURE(colored.has_value(),
                "selected DCC was not degree-choosable (Theorem 8 violated?)");
      for (int j = 0; j < comp.graph.num_vertices(); ++j) {
        c[comp.to_parent[static_cast<std::size_t>(j)]] = (*colored)[j];
      }
    }
    ctx.ledger.charge(2 * det.max_dcc_radius + 2, "rand/9-b0-coloring");
  }
}

}  // namespace deltacol::internal
