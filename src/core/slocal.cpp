#include "core/slocal.h"

#include <algorithm>

#include "brooks/distributed_brooks.h"
#include "graph/frontier_bfs.h"
#include "graph/structure.h"
#include "util/check.h"

namespace deltacol {

SlocalResult slocal_delta_coloring(const Graph& g) {
  const int n = g.num_vertices();
  const int delta = g.max_degree();
  DC_REQUIRE(delta >= 3, "SLOCAL Delta-coloring requires max degree >= 3");
  SlocalResult res;
  res.coloring.assign(static_cast<std::size_t>(n), kUncolored);
  const int rho = brooks_search_radius(n, delta);
  BfsScratch fix_scratch;  // one visitation state for every fix's queries
  for (int v = 0; v < n; ++v) {
    if (const auto x = first_free_color(g, res.coloring, v, delta)) {
      res.coloring[static_cast<std::size_t>(v)] = *x;
      res.max_locality = std::max(res.max_locality, 1);
      continue;
    }
    // All delta colors present among committed neighbors: repair via the
    // token walk of Theorem 5 (possible because every vertex keeps, at its
    // own turn, either slack or a repairable neighborhood — exactly the
    // SLOCAL reading of the distributed Brooks' theorem).
    const auto fix = brooks_fix(g, res.coloring, v, delta, rho, &fix_scratch);
    ++res.brooks_invocations;
    res.max_locality = std::max(res.max_locality, fix.radius_used + 1);
  }
  validate_delta_coloring(g, res.coloring, delta);
  return res;
}

}  // namespace deltacol
