// Remark 17: Theorem 5 implies an SLOCAL(O(log_Delta n)) algorithm for
// Delta-coloring (see [GKM17] for the SLOCAL model).
//
// In the SLOCAL model vertices are processed in an adversarial order; each
// vertex reads its radius-r neighborhood (including previously committed
// outputs) and commits its own output irrevocably. Here: each vertex takes
// a free color if one exists, otherwise it invokes the distributed Brooks
// fix, which recolors only *uncommitted-safe* state inside radius
// O(log_{Delta-1} n)... more precisely, it may recolor committed vertices —
// SLOCAL permits reading them; the model-fidelity caveat and the measured
// query radii are what the tests pin down.
#pragma once

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace deltacol {

struct SlocalResult {
  Coloring coloring;
  // Largest neighborhood radius any single vertex needed (the SLOCAL
  // locality); Remark 17 predicts O(log_{Delta-1} n).
  int max_locality = 0;
  int brooks_invocations = 0;
};

// Delta-colors g (same preconditions as delta_color) by one SLOCAL pass in
// vertex-id order.
SlocalResult slocal_delta_coloring(const Graph& g);

}  // namespace deltacol
