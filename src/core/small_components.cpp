// Section 4.3: coloring the components left over after the shattering
// process, plus the universal repair path.
//
// For a leftover component C: a node is *free* if its global degree is
// < Delta or it has an uncolored neighbor outside C (paper: "not colored
// with the first color" — outside C the only colored vertices at this point
// are the marked ones, which carry color 0). Free nodes and DCCs of radius
// <= R (R = 2 log_{Delta-2} |C| + 1) form the virtual graph CDCC; a ruling
// set of CDCC anchors D-layers, colored in reverse; the anchors themselves
// are independent, so free nodes take a free color and DCC anchors are
// colored by Theorem 8 (constructively, brute force as last resort).
// Lemmas 26/27 guarantee the anchors are non-empty and the layers exhaust C;
// both are checked at runtime.
#include <algorithm>
#include <cmath>

#include "brooks/distributed_brooks.h"
#include "coloring/degree_choosable.h"
#include "coloring/greedy.h"
#include "core/internal.h"
#include "dcc/dcc.h"
#include "graph/frontier_bfs.h"
#include "graph/ops.h"
#include "graph/traversal.h"
#include "mis/mis.h"
#include "util/check.h"

namespace deltacol::internal {

namespace {

// Objects of the CDCC virtual graph: singleton free nodes and DCC vertex
// sets, connected when they share a vertex or are adjacent in the component.
struct CdccObjects {
  std::vector<std::vector<int>> vertex_sets;  // in component-local ids
  Graph graph;
};

CdccObjects build_cdcc(const Graph& comp, const std::vector<int>& free_nodes,
                       const std::vector<std::vector<int>>& dccs) {
  CdccObjects out;
  for (int f : free_nodes) out.vertex_sets.push_back({f});
  for (const auto& d : dccs) out.vertex_sets.push_back(d);
  const int k = static_cast<int>(out.vertex_sets.size());
  std::vector<std::vector<int>> membership(
      static_cast<std::size_t>(comp.num_vertices()));
  for (int i = 0; i < k; ++i) {
    for (int v : out.vertex_sets[static_cast<std::size_t>(i)]) {
      membership[static_cast<std::size_t>(v)].push_back(i);
    }
  }
  std::vector<Edge> edges;
  for (int v = 0; v < comp.num_vertices(); ++v) {
    const auto& mv = membership[static_cast<std::size_t>(v)];
    for (std::size_t a = 0; a < mv.size(); ++a) {
      for (std::size_t bidx = a + 1; bidx < mv.size(); ++bidx) {
        edges.emplace_back(mv[a], mv[bidx]);
      }
    }
    for (int u : comp.neighbors(v)) {
      if (u <= v) continue;
      for (int i : mv) {
        for (int j : membership[static_cast<std::size_t>(u)]) {
          if (i != j) edges.emplace_back(std::min(i, j), std::max(i, j));
        }
      }
    }
  }
  out.graph = Graph::from_edges(k, edges);
  return out;
}

}  // namespace

void repair_completion(ComponentContext& ctx, Coloring& c) {
  DC_REQUIRE(!ctx.opt.strict, "strict mode: repair_completion invoked");
  const Graph& g = ctx.g;
  const int rho = brooks_search_radius(g.num_vertices(), ctx.delta);
  BfsScratch fix_scratch;  // one visitation state for every fix's queries
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (c[static_cast<std::size_t>(v)] != kUncolored) continue;
    if (const auto x = first_free_color(g, c, v, ctx.delta)) {
      c[static_cast<std::size_t>(v)] = *x;
      ctx.ledger.charge(1, "repair");
    } else {
      const auto fix = brooks_fix(g, c, v, ctx.delta, rho, &fix_scratch);
      ++ctx.stats.brooks_fixes;
      ctx.ledger.charge(2 * std::max(1, fix.radius_used) + 1, "repair");
    }
    ++ctx.stats.repairs;
  }
}

bool color_small_component(ComponentContext& ctx, Coloring& c,
                           const std::vector<int>& component) {
  const Graph& g = ctx.g;
  const int delta = ctx.delta;
  if (component.empty()) return true;
  const auto sub = induced_subgraph(g, component);
  const Graph& comp = sub.graph;
  const int nc = comp.num_vertices();

  // R = 2 log_{Delta-2} N + 1; for Delta = 3 the expansion base of Lemma 14
  // is 4^{1/6} per hop, hence the adjusted base.
  const double base_exp =
      delta >= 4 ? static_cast<double>(delta - 2) : std::pow(4.0, 1.0 / 6.0);
  const int R = std::min(
      nc, 2 * static_cast<int>(std::ceil(
               std::log(static_cast<double>(std::max(2, nc))) /
               std::log(base_exp))) +
              1);

  // Free nodes (component-local ids).
  std::vector<int> free_nodes;
  for (int v = 0; v < nc; ++v) {
    const int pv = sub.to_parent[static_cast<std::size_t>(v)];
    bool is_free = g.degree(pv) < delta;
    if (!is_free) {
      for (int u : g.neighbors(pv)) {
        const bool outside =
            sub.from_parent[static_cast<std::size_t>(u)] == -1;
        if (outside && c[static_cast<std::size_t>(u)] == kUncolored) {
          is_free = true;
          break;
        }
      }
    }
    if (is_free) free_nodes.push_back(v);
  }

  // DCCs of radius <= R inside the component.
  RoundLedger det_ledger;
  det_ledger.set_congest_bits(ctx.ledger.congest_bits());
  const DccDetection det =
      detect_dccs(comp, R, det_ledger, "small/dcc-detect", ctx.pool);
  ctx.ledger.merge(det_ledger);

  if (free_nodes.empty() && det.dccs.empty()) {
    // Lemma 27 says this cannot happen for genuinely leftover components;
    // reachable only under non-paper parameter choices. The repair may
    // color outside this component, so it is deferred to the caller, after
    // the Phase-(6) fan-out barrier (see internal.h).
    ++ctx.stats.anchors_empty_fallbacks;
    DC_ENSURE(!ctx.opt.strict,
              "strict mode: leftover component has no free node and no DCC "
              "(Lemma 27 violated — check parameters)");
    return false;
  }

  // CDCC virtual graph and its ruling set (paper: (2, gamma)); Luby MIS
  // gives covering radius 1 in CDCC hops.
  const CdccObjects cdcc = build_cdcc(comp, free_nodes, det.dccs);
  const int per_step = 2 * std::max(1, det.max_dcc_radius) + 1;
  const std::vector<bool> in_m = luby_mis(cdcc.graph, ctx.rng, ctx.ledger,
                                          "small/cdcc-ruling", per_step,
                                          ctx.pool, /*num_shards=*/1,
                                          ctx.opt.mode);

  std::vector<int> anchors;  // component-local ids, deduplicated
  std::vector<char> anchor_object(cdcc.vertex_sets.size(), 0);
  {
    std::vector<bool> seen(static_cast<std::size_t>(nc), false);
    for (std::size_t i = 0; i < cdcc.vertex_sets.size(); ++i) {
      if (!in_m[i]) continue;
      anchor_object[i] = 1;
      for (int v : cdcc.vertex_sets[i]) {
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = true;
          anchors.push_back(v);
        }
      }
    }
  }
  DC_ENSURE(!anchors.empty(), "CDCC ruling set is empty");

  // D-layers by distance to the anchors; a connected component is always
  // exhausted (Lemma 26 bounds the layer count, which we record implicitly
  // through the charges below).
  const Layering d_layers =
      build_layers(comp, anchors, -1, ctx.pool, ctx.opt.mode);
  ctx.ledger.charge(d_layers.num_layers, "small/d-layers");
  for (int v = 0; v < nc; ++v) {
    DC_ENSURE(d_layers.layer[static_cast<std::size_t>(v)] != kNoLayer,
              "D-layers failed to exhaust a connected component");
  }

  // Color D_(max)..D_1 in reverse as (deg+1)-list instances on g.
  for (int i = d_layers.num_layers - 1; i >= 1; --i) {
    std::vector<int> members_parent;
    for (int v : d_layers.members[static_cast<std::size_t>(i)]) {
      members_parent.push_back(sub.to_parent[static_cast<std::size_t>(v)]);
    }
    color_vertex_set_as_list_instance(
        g, members_parent, delta, ctx.schedule, ctx.schedule_colors,
        ctx.opt.list_engine, &ctx.rng, c, ctx.ledger, "small/d-coloring",
        ctx.pool);
  }

  // D0: the ruling-set objects are pairwise non-adjacent, color each
  // independently — free nodes take a free color; DCCs via Theorem 8.
  for (std::size_t i = 0; i < cdcc.vertex_sets.size(); ++i) {
    if (!anchor_object[i]) continue;
    const auto& obj = cdcc.vertex_sets[i];
    if (obj.size() == 1 &&
        static_cast<int>(i) < static_cast<int>(free_nodes.size())) {
      const int pv = sub.to_parent[static_cast<std::size_t>(obj.front())];
      if (c[static_cast<std::size_t>(pv)] != kUncolored) continue;
      const auto x = first_free_color(g, c, pv, delta);
      DC_ENSURE(x.has_value(), "free node without a free color");
      c[static_cast<std::size_t>(pv)] = *x;
    } else {
      std::vector<int> obj_parent;
      bool already = false;
      for (int v : obj) {
        const int pv = sub.to_parent[static_cast<std::size_t>(v)];
        if (c[static_cast<std::size_t>(pv)] != kUncolored) already = true;
        obj_parent.push_back(pv);
      }
      DC_ENSURE(!already, "anchor DCC partially colored before D0");
      const auto dsub = induced_subgraph(g, obj_parent);
      ListAssignment lists(static_cast<std::size_t>(dsub.graph.num_vertices()));
      for (int j = 0; j < dsub.graph.num_vertices(); ++j) {
        lists[static_cast<std::size_t>(j)] = free_colors(
            g, c, dsub.to_parent[static_cast<std::size_t>(j)], delta);
      }
      const auto colored = degree_choosable_coloring(dsub.graph, lists);
      DC_ENSURE(colored.has_value(), "anchor DCC not degree-choosable");
      for (int j = 0; j < dsub.graph.num_vertices(); ++j) {
        c[dsub.to_parent[static_cast<std::size_t>(j)]] = (*colored)[j];
      }
    }
  }
  ctx.ledger.charge(2 * std::max(1, det.max_dcc_radius) + 1, "small/d0");
  return true;
}

}  // namespace deltacol::internal
