#include "dcc/dcc.h"

#include <algorithm>
#include <map>

#include "graph/components.h"
#include "graph/frontier_bfs.h"
#include "graph/structure.h"
#include "graph/traversal.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

bool is_dcc(const Graph& g) {
  if (g.num_vertices() < 3) return false;
  if (is_clique(g) || is_odd_cycle(g)) return false;
  // 2-connected == one block covering all vertices and no articulation point.
  const auto bd = block_decomposition(g);
  if (bd.blocks.size() != 1) return false;
  return static_cast<int>(bd.blocks.front().size()) == g.num_vertices();
}

std::vector<std::vector<int>> dcc_blocks(const Graph& g) {
  std::vector<std::vector<int>> out;
  for (const auto& block : block_decomposition(g).blocks) {
    // Fast paths: a 2-vertex block is a bridge (a K2 clique); a 3-vertex
    // 2-connected block is a triangle (K3). Neither is ever a DCC; this
    // matters because sparse balls consist almost entirely of bridges.
    if (block.size() <= 3) continue;
    const auto sub = induced_subgraph(g, block);
    if (!is_clique(sub.graph) && !is_odd_cycle(sub.graph)) {
      out.push_back(block);
    }
  }
  return out;
}

bool ball_contains_dcc(const Graph& g, int v, int r) {
  const auto sub = induced_subgraph(g, ball(g, v, r));
  return !is_gallai_tree(sub.graph);
}

namespace {

// Extracts a small DCC from a non-Gallai block: the vertex set of any even
// cycle induces a 2-connected subgraph that is neither an odd cycle nor
// (unless it is exactly K4) a clique — i.e. a DCC. We find an even cycle as
// a non-tree BFS edge joining adjacent levels (tree paths to the LCA plus
// the edge have even total length). Selecting whole blocks would be correct
// but quadratically expensive: in sparse random graphs the non-Gallai block
// of a ball typically spans much of the ball, so every node would select a
// near-distinct giant component and the virtual graph GDCC would blow up.
// Falls back to the full block when no such edge exists (rare: all non-tree
// edges level-parallel) or the cycle induces K4.
std::vector<int> extract_small_dcc(const Graph& g,
                                   const std::vector<int>& block) {
  if (block.size() <= 6) return block;
  std::vector<char> in_block(static_cast<std::size_t>(g.num_vertices()), 0);
  for (int v : block) in_block[static_cast<std::size_t>(v)] = 1;

  std::vector<int> depth(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<int> parent(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<int> order{block.front()};
  depth[static_cast<std::size_t>(block.front())] = 0;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int u = order[head];
    for (int w : g.neighbors(u)) {
      if (!in_block[static_cast<std::size_t>(w)]) continue;
      if (depth[static_cast<std::size_t>(w)] == -1) {
        depth[static_cast<std::size_t>(w)] = depth[static_cast<std::size_t>(u)] + 1;
        parent[static_cast<std::size_t>(w)] = u;
        order.push_back(w);
      }
    }
  }
  auto cycle_of = [&](int u, int w) {
    // u at depth d, w at depth d+1 with parent(w) != u: walk both up to the
    // LCA; the union plus edge (u, w) is an even cycle.
    std::vector<int> pu{u}, pw{w};
    int a = u, b = w;
    while (depth[static_cast<std::size_t>(b)] >
           depth[static_cast<std::size_t>(a)]) {
      b = parent[static_cast<std::size_t>(b)];
      pw.push_back(b);
    }
    while (a != b) {
      a = parent[static_cast<std::size_t>(a)];
      b = parent[static_cast<std::size_t>(b)];
      pu.push_back(a);
      pw.push_back(b);
    }
    pw.pop_back();  // LCA appears in pu already
    pu.insert(pu.end(), pw.begin(), pw.end());
    return pu;
  };
  std::vector<int> best;
  for (int u : order) {
    for (int w : g.neighbors(u)) {
      if (!in_block[static_cast<std::size_t>(w)]) continue;
      if (depth[static_cast<std::size_t>(w)] !=
              depth[static_cast<std::size_t>(u)] + 1 ||
          parent[static_cast<std::size_t>(w)] == u) {
        continue;
      }
      auto cyc = cycle_of(u, w);
      // An even cycle inducing a complete graph (K4, K6, ...) is a clique,
      // not a DCC; skip those candidates.
      if (induces_clique(g, cyc)) continue;
      if (best.empty() || cyc.size() < best.size()) best = std::move(cyc);
    }
  }
  if (best.empty()) return block;
  std::sort(best.begin(), best.end());
  return best;
}

}  // namespace

DccDetection detect_dccs(const Graph& g, int r, RoundLedger& ledger,
                         std::string_view phase, ThreadPool* pool) {
  DC_REQUIRE(r >= 1, "DCC detection radius must be >= 1");
  const int n = g.num_vertices();
  DccDetection out;
  out.has_dcc.assign(static_cast<std::size_t>(n), false);
  out.selected.assign(static_cast<std::size_t>(n), -1);

  // One parallel gather of radius r: every node learns its ball (plus one
  // extra round to exchange the selections for deduplication).
  ledger.charge(r + 1, phase);

  // Global fast path: induced subgraphs of Gallai trees are Gallai trees
  // (their 2-connected subgraphs live inside clique / odd-cycle blocks), so
  // when the whole graph is Gallai no ball anywhere contains a DCC. This
  // matters for Phase (6), which probes small DCC-free components at radius
  // R ~ 2 log N — quadratic if done ball by ball.
  if (dcc_blocks(g).empty()) return out;

  // Every node inspects its own ball and nominates one DCC vertex set — a
  // pure function of the graph, so the balls are analyzed in parallel (the
  // hottest loop of the randomized pipeline). best_sets[v] is v-private;
  // the cross-node deduplication happens serially below, in id order, so
  // DCC indices are identical for every thread count.
  std::vector<std::vector<int>> best_sets(static_cast<std::size_t>(n));
  auto analyze_range = [&](int /*chunk*/, int lo, int hi) {
    // Reusable per-chunk scratch: one epoch-stamped visitation state for
    // the r-balls (O(n), amortized over the chunk's balls), one for the
    // within-ball distance sweep, and one local-id map — allocating any of
    // these per ball would dominate the runtime at simulation scale.
    BfsScratch ball_scratch;
    BfsScratch sub_scratch;
    FrontierBfs engine;  // serial: the parallelism is across balls
    std::vector<int> local_index(static_cast<std::size_t>(n), -1);
    std::vector<Edge> ball_edges;

    for (int v = lo; v < hi; ++v) {
      // Truncated frontier BFS collecting the ball, in discovery order.
      engine.run(g, ball_scratch, v, r);
      const auto ball_vertices = ball_scratch.order();
      ball_edges.clear();
      for (int i = 0; i < static_cast<int>(ball_vertices.size()); ++i) {
        local_index[static_cast<std::size_t>(
            ball_vertices[static_cast<std::size_t>(i)])] = i;
      }
      for (int i = 0; i < static_cast<int>(ball_vertices.size()); ++i) {
        const int u = ball_vertices[static_cast<std::size_t>(i)];
        for (int w : g.neighbors(u)) {
          const int j = local_index[static_cast<std::size_t>(w)];
          if (j > i) ball_edges.emplace_back(i, j);
        }
      }
      Subgraph sub;
      sub.graph = Graph::from_edges(static_cast<int>(ball_vertices.size()),
                                    ball_edges);
      sub.to_parent.assign(ball_vertices.begin(), ball_vertices.end());
      // Reset the id map before any early exit below (the BFS scratches
      // reset themselves by epoch).
      for (int u : ball_vertices) {
        local_index[static_cast<std::size_t>(u)] = -1;
      }

      const auto local_blocks = dcc_blocks(sub.graph);
      if (local_blocks.empty()) continue;

      // Pick the block nearest to v (distance 0 if v belongs to one); ties
      // by lexicographically smallest parent-id vertex set for determinism.
      const int v_local = 0;  // v is the BFS root of its own ball
      engine.run(sub.graph, sub_scratch, v_local);
      int best_dist = -1;
      const std::vector<int>* best_block = nullptr;
      std::vector<int> best_key;
      for (const auto& block : local_blocks) {
        int d = sub.graph.num_vertices();
        std::vector<int> key;
        key.reserve(block.size());
        for (int x : block) {
          if (sub_scratch.visited(x)) {
            d = std::min(d, sub_scratch.dist(x));
          }
          key.push_back(sub.to_parent[static_cast<std::size_t>(x)]);
        }
        std::sort(key.begin(), key.end());
        if (best_dist == -1 || d < best_dist ||
            (d == best_dist && key < best_key)) {
          best_dist = d;
          best_block = &block;
          best_key = std::move(key);
        }
      }
      // Shrink the winning block to a small DCC (see extract_small_dcc).
      std::vector<int> best_set;
      for (int x : extract_small_dcc(sub.graph, *best_block)) {
        best_set.push_back(sub.to_parent[static_cast<std::size_t>(x)]);
      }
      std::sort(best_set.begin(), best_set.end());
      best_sets[static_cast<std::size_t>(v)] = std::move(best_set);
    }
  };
  // Chunk cap = one per executor: each chunk allocates two O(n) scratch
  // vectors, so more chunks than executors would only multiply that cost
  // (chunk boundaries are not observable — results are unchanged).
  pooled_ranges(pool, 0, n, analyze_range,
                pool != nullptr ? pool->num_threads() : 1);

  // Serial deduplication in id order: first nominator wins the index.
  std::map<std::vector<int>, int> dcc_index;
  for (int v = 0; v < n; ++v) {
    auto& best_set = best_sets[static_cast<std::size_t>(v)];
    if (best_set.empty()) continue;
    out.has_dcc[static_cast<std::size_t>(v)] = true;
    const auto [it, inserted] =
        dcc_index.try_emplace(std::move(best_set),
                              static_cast<int>(out.dccs.size()));
    if (inserted) out.dccs.push_back(it->first);
    out.selected[static_cast<std::size_t>(v)] = it->second;
  }

  // Radii of the selected DCCs: independent BFS sweeps, max-combined (order
  // free), so the scan parallelizes over DCC indices.
  const int num_dccs = static_cast<int>(out.dccs.size());
  std::vector<int> radius(static_cast<std::size_t>(num_dccs), 0);
  pooled_for(pool, 0, num_dccs, [&](int i) {
    const auto sub = induced_subgraph(g, out.dccs[static_cast<std::size_t>(i)]);
    radius[static_cast<std::size_t>(i)] = graph_radius(sub.graph);
  });
  for (int i = 0; i < num_dccs; ++i) {
    out.max_dcc_radius = std::max(out.max_dcc_radius,
                                  radius[static_cast<std::size_t>(i)]);
  }
  return out;
}

Graph build_dcc_virtual_graph(const Graph& g,
                              const std::vector<std::vector<int>>& dccs) {
  const int k = static_cast<int>(dccs.size());
  // membership[v] = list of DCC indices containing v.
  std::vector<std::vector<int>> membership(
      static_cast<std::size_t>(g.num_vertices()));
  for (int i = 0; i < k; ++i) {
    for (int v : dccs[static_cast<std::size_t>(i)]) {
      membership[static_cast<std::size_t>(v)].push_back(i);
    }
  }
  std::vector<Edge> edges;
  // Shared vertices.
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto& m = membership[static_cast<std::size_t>(v)];
    for (std::size_t a = 0; a < m.size(); ++a) {
      for (std::size_t b = a + 1; b < m.size(); ++b) {
        edges.emplace_back(m[a], m[b]);
      }
    }
  }
  // Edges of g between different DCCs.
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int u : g.neighbors(v)) {
      if (u <= v) continue;
      for (int i : membership[static_cast<std::size_t>(v)]) {
        for (int j : membership[static_cast<std::size_t>(u)]) {
          if (i != j) edges.emplace_back(std::min(i, j), std::max(i, j));
        }
      }
    }
  }
  return Graph::from_edges(k, edges);
}

}  // namespace deltacol
