// Degree-choosable components (Definitions 6-9, Theorem 8).
//
// A DCC is a node-induced subgraph that is 2-connected and neither a clique
// nor an odd cycle. By Theorem 8 [ERT79, Viz76] these are exactly the
// building blocks of degree-choosability: a partial Delta-coloring can
// always be completed inside an uncolored DCC.
//
// Key reduction (proved in DESIGN.md §4): an induced subgraph contains some
// DCC iff it is NOT a Gallai tree, i.e. iff one of its biconnected blocks is
// neither a clique nor an odd cycle. Detection in r-balls therefore costs
// one block decomposition per ball.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "graph/ops.h"
#include "local/round_ledger.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

// Is this whole graph a DCC? (2-connected, not clique, not odd cycle,
// at least 3 vertices.)
bool is_dcc(const Graph& g);

// Vertex sets (in g's ids) of all non-Gallai blocks of g.
std::vector<std::vector<int>> dcc_blocks(const Graph& g);

// Does the r-ball around v contain a DCC (equivalently: is it non-Gallai)?
bool ball_contains_dcc(const Graph& g, int v, int r);

// Phase (1) of the randomized algorithms: every node inspects its r-ball; if
// the ball contains a DCC the node selects the one nearest to it (ties by
// smallest vertex set, lexicographically). Returns the deduplicated DCC list
// plus per-node selection. Charges O(r) rounds (one parallel gather).
struct DccDetection {
  // has_dcc[v]: v's r-ball contains a DCC.
  std::vector<bool> has_dcc;
  // selected[v]: index into dccs of the DCC v selected, or -1.
  std::vector<int> selected;
  // Unique selected DCC vertex sets, in g's vertex ids, sorted.
  std::vector<std::vector<int>> dccs;
  // Max radius over selected DCCs (each measured inside its own subgraph);
  // bounds the GDCC simulation overhead.
  int max_dcc_radius = 0;
};
DccDetection detect_dccs(const Graph& g, int r, RoundLedger& ledger,
                         std::string_view phase, ThreadPool* pool = nullptr);

// The virtual graph GDCC: one vertex per DCC; two DCCs are adjacent iff they
// share a vertex or are joined by an edge of g (paper Phase (1)).
Graph build_dcc_virtual_graph(const Graph& g,
                              const std::vector<std::vector<int>>& dccs);

}  // namespace deltacol
