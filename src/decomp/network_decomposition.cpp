#include "decomp/network_decomposition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "coloring/coloring.h"
#include "coloring/list_coloring.h"
#include "coloring/linial.h"
#include "graph/frontier_bfs.h"
#include "graph/traversal.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/math_util.h"

namespace deltacol {

std::vector<std::vector<int>> NetworkDecomposition::cluster_vertex_sets() const {
  std::vector<std::vector<int>> sets(static_cast<std::size_t>(num_clusters()));
  for (int v = 0; v < static_cast<int>(cluster.size()); ++v) {
    sets[static_cast<std::size_t>(cluster[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  return sets;
}

namespace {

// Every vertex draws delta_v ~ Exp(beta); v joins the center u maximizing
// delta_u - dist(u, v) (every vertex is a potential center). Computed by a
// multi-source Dijkstra over the shifted keys. Distributed this runs in
// O(max shift) rounds, which we charge.
struct ShiftAssignment {
  std::vector<int> owner;
  int max_shift = 0;
};

ShiftAssignment shifted_voronoi(const Graph& g, double beta, Rng& rng) {
  const int n = g.num_vertices();
  std::vector<double> shift(static_cast<std::size_t>(n));
  double max_shift = 0.0;
  for (int v = 0; v < n; ++v) {
    // Exponential with rate beta, truncated to keep rounds bounded.
    const double e = -std::log(1.0 - rng.next_double()) / beta;
    const double cap = 4.0 * std::log(static_cast<double>(std::max(2, n))) / beta;
    shift[static_cast<std::size_t>(v)] = std::min(e, cap);
    max_shift = std::max(max_shift, shift[static_cast<std::size_t>(v)]);
  }
  // Key of v via center u: shift[u] - dist(u, v); maximize. Dijkstra on
  // negated keys with real-valued priorities.
  using Item = std::pair<double, int>;  // (key, vertex); max-heap
  std::priority_queue<Item> pq;
  std::vector<double> best(static_cast<std::size_t>(n),
                           -std::numeric_limits<double>::infinity());
  ShiftAssignment out;
  out.owner.assign(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    best[static_cast<std::size_t>(v)] = shift[static_cast<std::size_t>(v)];
    out.owner[static_cast<std::size_t>(v)] = v;
    pq.emplace(best[static_cast<std::size_t>(v)], v);
  }
  while (!pq.empty()) {
    const auto [key, v] = pq.top();
    pq.pop();
    if (key < best[static_cast<std::size_t>(v)]) continue;  // stale
    for (int u : g.neighbors(v)) {
      const double cand = key - 1.0;
      if (cand > best[static_cast<std::size_t>(u)]) {
        best[static_cast<std::size_t>(u)] = cand;
        out.owner[static_cast<std::size_t>(u)] = out.owner[static_cast<std::size_t>(v)];
        pq.emplace(cand, u);
      }
    }
  }
  out.max_shift = static_cast<int>(std::ceil(max_shift));
  return out;
}

}  // namespace

Graph build_cluster_graph(const Graph& g, const std::vector<int>& cluster,
                          int num_clusters) {
  std::vector<Edge> edges;
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int u : g.neighbors(v)) {
      const int cv = cluster[static_cast<std::size_t>(v)];
      const int cu = cluster[static_cast<std::size_t>(u)];
      if (cv < cu) edges.emplace_back(cv, cu);
    }
  }
  return Graph::from_edges(num_clusters, edges);
}

NetworkDecomposition random_shift_decomposition(const Graph& g, double beta,
                                                Rng& rng, RoundLedger& ledger,
                                                std::string_view phase,
                                                ThreadPool* pool) {
  DC_REQUIRE(beta > 0.0 && beta < 1.0, "beta must be in (0, 1)");
  const int n = g.num_vertices();
  DC_REQUIRE(n > 0, "decomposition of empty graph");
  const ShiftAssignment assignment = shifted_voronoi(g, beta, rng);
  ledger.charge(assignment.max_shift, phase);

  // Compact cluster ids.
  NetworkDecomposition nd;
  nd.cluster.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> id_map(static_cast<std::size_t>(n), -1);
  int k = 0;
  for (int v = 0; v < n; ++v) {
    const int o = assignment.owner[static_cast<std::size_t>(v)];
    if (id_map[static_cast<std::size_t>(o)] == -1) id_map[static_cast<std::size_t>(o)] = k++;
    nd.cluster[static_cast<std::size_t>(v)] = id_map[static_cast<std::size_t>(o)];
  }

  // Color the cluster graph with (deg+1) randomized trial coloring; one
  // cluster-graph round costs O(D) base rounds (clusters talk via their
  // trees). We charge max_shift per cluster round.
  const Graph cg = build_cluster_graph(g, nd.cluster, k);
  ListAssignment lists(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    for (int x = 0; x <= cg.degree(c); ++x) {
      lists[static_cast<std::size_t>(c)].push_back(x);
    }
  }
  RoundLedger cluster_ledger;
  cluster_ledger.set_congest_bits(ledger.congest_bits());
  Coloring cc(static_cast<std::size_t>(k), kUncolored);
  const LinialResult lin = linial_coloring(cg, cluster_ledger);
  rand_list_coloring(cg, lists, lin.coloring, lin.num_colors, rng, cc,
                     cluster_ledger, phase);
  ledger.charge(cluster_ledger.total() * std::max(1, assignment.max_shift),
                phase);

  nd.cluster_color.assign(cc.begin(), cc.end());
  nd.num_colors = num_colors_used(cc);

  // Weak diameter bookkeeping (measured, for reporting and tests): one
  // full BFS per cluster, fanned out over the pool in indexed chunks. Each
  // chunk reuses one epoch-stamped scratch across its sweeps and folds a
  // chunk-local max; a max is order-free, so the result is thread-count
  // independent.
  const auto sets = nd.cluster_vertex_sets();
  const int num_sets = static_cast<int>(sets.size());
  // Chunk cap = one per executor: each chunk holds O(n) BFS scratch.
  const int max_chunks = pool != nullptr ? pool->num_threads() : 1;
  const int num_chunks =
      pool != nullptr ? pool->num_range_chunks(num_sets, max_chunks) : 1;
  std::vector<int> chunk_max(static_cast<std::size_t>(num_chunks), 0);
  pooled_ranges(
      pool, 0, num_sets,
      [&](int chunk, int lo, int hi) {
        BfsScratch scratch;
        FrontierBfs engine;
        int best = 0;
        for (int ci = lo; ci < hi; ++ci) {
          const auto& set = sets[static_cast<std::size_t>(ci)];
          if (set.empty()) continue;
          engine.run(g, scratch, set.front());
          for (int v : set) {
            DC_ENSURE(scratch.visited(v),
                      "cluster spans disconnected parts of G");
            best = std::max(best, 2 * scratch.dist(v));
          }
        }
        chunk_max[static_cast<std::size_t>(chunk)] = best;
      },
      max_chunks);
  nd.max_diameter = 0;
  for (int c = 0; c < num_chunks; ++c) {
    nd.max_diameter =
        std::max(nd.max_diameter, chunk_max[static_cast<std::size_t>(c)]);
  }
  return nd;
}

bool is_valid_decomposition(const Graph& g, const NetworkDecomposition& nd) {
  if (static_cast<int>(nd.cluster.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int c = nd.cluster[static_cast<std::size_t>(v)];
    if (c < 0 || c >= nd.num_clusters()) return false;
  }
  // Cluster-graph coloring proper?
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int u : g.neighbors(v)) {
      const int cv = nd.cluster[static_cast<std::size_t>(v)];
      const int cu = nd.cluster[static_cast<std::size_t>(u)];
      if (cv != cu &&
          nd.cluster_color[static_cast<std::size_t>(cv)] ==
              nd.cluster_color[static_cast<std::size_t>(cu)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace deltacol
