// Network decomposition: partition into low-diameter clusters plus a proper
// coloring of the cluster graph.
//
// The paper invokes [PS92]/[AGLP89] 2^O(sqrt(log n)) decompositions for the
// Theorem 21 baseline and Lemma 24 (P3)/(P4). We substitute the random-shift
// (exponential-delay) clustering of Miller–Peng–Xu / Linial–Saks: every
// vertex draws an exponential shift, joins the cluster of the shifted-closest
// center, giving clusters of weak diameter O(log n / beta) w.h.p.; the
// cluster graph is then (deg+1)-colored by randomized trial coloring. Any
// (C, D) decomposition serves the callers identically (they only iterate
// color classes and gather clusters); see DESIGN.md "Substitutions".
#pragma once

#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "local/round_ledger.h"
#include "util/rng.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

struct NetworkDecomposition {
  std::vector<int> cluster;        // cluster id per vertex, dense in [0, k)
  std::vector<int> cluster_color;  // proper color per cluster id
  int num_colors = 0;
  int max_diameter = 0;  // max weak cluster diameter (measured in G)

  int num_clusters() const { return static_cast<int>(cluster_color.size()); }
  std::vector<std::vector<int>> cluster_vertex_sets() const;
};

// Random-shift (C, D) decomposition with D = O(log n) w.h.p. `beta` is the
// exponential rate; smaller beta means larger clusters and fewer colors.
// The pool (optional) parallelizes the per-cluster weak-diameter sweeps;
// the decomposition is bit-identical for every thread count.
NetworkDecomposition random_shift_decomposition(const Graph& g, double beta,
                                                Rng& rng, RoundLedger& ledger,
                                                std::string_view phase,
                                                ThreadPool* pool = nullptr);

// Cluster graph: one vertex per cluster, edge when two clusters touch.
Graph build_cluster_graph(const Graph& g, const std::vector<int>& cluster,
                          int num_clusters);

// Test oracle: clusters connected?, coloring proper?, diameter bound.
bool is_valid_decomposition(const Graph& g, const NetworkDecomposition& nd);

}  // namespace deltacol
