#include "graph/components.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace deltacol {

std::vector<std::vector<int>> ConnectedComponents::vertex_sets() const {
  std::vector<std::vector<int>> sets(static_cast<std::size_t>(count));
  for (int v = 0; v < static_cast<int>(component.size()); ++v) {
    sets[static_cast<std::size_t>(component[v])].push_back(v);
  }
  return sets;
}

ConnectedComponents connected_components(const Graph& g) {
  ConnectedComponents cc;
  const int n = g.num_vertices();
  cc.component.assign(static_cast<std::size_t>(n), -1);
  for (int s = 0; s < n; ++s) {
    if (cc.component[s] != -1) continue;
    const int id = cc.count++;
    std::queue<int> q;
    cc.component[s] = id;
    q.push(s);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int w : g.neighbors(u)) {
        if (cc.component[w] == -1) {
          cc.component[w] = id;
          q.push(w);
        }
      }
    }
  }
  return cc;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() <= 1) return true;
  return connected_components(g).count == 1;
}

namespace {

// One DFS frame for the iterative lowpoint computation.
struct Frame {
  int vertex;
  int parent;
  std::size_t next_neighbor;  // index into neighbors(vertex)
};

}  // namespace

BlockDecomposition block_decomposition(const Graph& g) {
  const int n = g.num_vertices();
  BlockDecomposition out;
  out.is_articulation.assign(static_cast<std::size_t>(n), false);

  std::vector<int> disc(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), -1);
  std::vector<Edge> edge_stack;
  int timer = 0;

  auto pop_block = [&](int u, int w) {
    // Pop edges up to and including (u, w); their endpoints form one block.
    std::vector<int> verts;
    Edge e;
    do {
      DC_ENSURE(!edge_stack.empty(), "edge stack underflow in block pop");
      e = edge_stack.back();
      edge_stack.pop_back();
      verts.push_back(e.first);
      verts.push_back(e.second);
    } while (!(e.first == u && e.second == w));
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    out.blocks.push_back(std::move(verts));
  };

  std::vector<Frame> stack;
  for (int root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    int root_children = 0;
    stack.push_back({root, -1, 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const int u = f.vertex;
      const auto nb = g.neighbors(u);
      if (f.next_neighbor < nb.size()) {
        const int w = nb[f.next_neighbor++];
        if (disc[w] == -1) {
          edge_stack.emplace_back(u, w);
          disc[w] = low[w] = timer++;
          if (u == root) ++root_children;
          stack.push_back({w, u, 0});
        } else if (w != f.parent && disc[w] < disc[u]) {
          // Back edge.
          edge_stack.emplace_back(u, w);
          low[u] = std::min(low[u], disc[w]);
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          const int p = stack.back().vertex;
          low[p] = std::min(low[p], low[u]);
          if (low[u] >= disc[p]) {
            // p separates u's subtree: close the block rooted at edge (p,u).
            if (p != root || root_children > 1 ||
                (p == root && low[u] >= disc[p])) {
              // Articulation flag handled below; block always closes here.
            }
            pop_block(p, u);
            if (p != root) out.is_articulation[p] = true;
          }
        }
      }
    }
    if (root_children > 1) out.is_articulation[root] = true;
  }
  DC_ENSURE(edge_stack.empty(), "unclosed block at end of DFS");
  return out;
}

}  // namespace deltacol
