// Connectivity and biconnectivity (block) decomposition.
//
// Blocks (maximal 2-connected subgraphs, with bridges as K2 blocks) are the
// backbone of the Gallai-tree characterization of non-degree-choosable
// graphs (Theorem 8 of the paper): a graph is a Gallai tree iff every block
// is a clique or an odd cycle.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace deltacol {

struct ConnectedComponents {
  std::vector<int> component;  // component id per vertex, dense in [0, count)
  int count = 0;

  std::vector<std::vector<int>> vertex_sets() const;
};
ConnectedComponents connected_components(const Graph& g);

bool is_connected(const Graph& g);

struct BlockDecomposition {
  // Vertex sets of the blocks. A bridge contributes a 2-vertex block; an
  // isolated vertex contributes no block.
  std::vector<std::vector<int>> blocks;
  // True for cut vertices (articulation points).
  std::vector<bool> is_articulation;
};

// Iterative Tarjan/Hopcroft lowpoint algorithm; linear time, no recursion so
// deep graphs (long paths) are safe.
BlockDecomposition block_decomposition(const Graph& g);

}  // namespace deltacol
