#include "graph/frontier_bfs.h"

#include <algorithm>

#include "util/check.h"

namespace deltacol {

std::vector<int> dense_distances(const BfsScratch& s, int n, int unreachable) {
  std::vector<int> dist(static_cast<std::size_t>(n), unreachable);
  for (int v : s.order()) dist[static_cast<std::size_t>(v)] = s.dist(v);
  return dist;
}

int min_eccentricity(const Graph& g, ThreadPool* pool) {
  const int n = g.num_vertices();
  DC_REQUIRE(n > 0, "radius of empty graph");
  // Chunk cap = one per executor: each chunk holds O(n) BFS scratch.
  const int max_chunks = pool != nullptr ? pool->num_threads() : 1;
  const int num_chunks =
      pool != nullptr ? pool->num_range_chunks(n, max_chunks) : 1;
  std::vector<int> chunk_min(static_cast<std::size_t>(num_chunks), n);
  pooled_ranges(
      pool, 0, n,
      [&](int chunk, int lo, int hi) {
        // One scratch per chunk, amortized over the chunk's eccentricity
        // sweeps; the sweeps themselves run serially — the parallelism is
        // the fan-out across source vertices.
        BfsScratch scratch;
        FrontierBfs engine;
        int best = n;
        for (int v = lo; v < hi; ++v) {
          engine.run(g, scratch, v);
          best = std::min(best, scratch.num_levels() - 1);
        }
        chunk_min[static_cast<std::size_t>(chunk)] = best;
      },
      max_chunks);
  int radius = n;
  for (int c = 0; c < num_chunks; ++c) {
    radius = std::min(radius, chunk_min[static_cast<std::size_t>(c)]);
  }
  return radius;
}

}  // namespace deltacol
