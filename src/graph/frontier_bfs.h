/// \file
/// Level-synchronous BFS engine — the allocation-lean traversal core behind
/// every ball / layering / multi-source query in the library (DESIGN.md §6,
/// ARCHITECTURE.md "Traversal substrate").
///
/// Two ideas, both invisible to callers of the classic traversal.h API:
///
///  1. **Epoch-stamped scratch.** A `BfsScratch` owns the O(n) visitation
///     state once; each query bumps a 32-bit epoch instead of clearing, so a
///     query costs O(ball) — not O(n) — after the first. Results (visit
///     order, level boundaries, distances, nearest-source labels) are views
///     into the scratch, sized to the ball, valid until the next query.
///
///  2. **Chunk-deterministic frontier splitting.** With a `ThreadPool`
///     attached, each level's frontier expands in two phases: chunk c scans
///     its index range of the frontier and records every not-yet-visited
///     neighbor as a candidate in its own fragment (a pure read of the
///     level-start visitation state — no writes, no races); then a serial
///     claim pass replays the fragments in chunk index order. Concatenating
///     fragments in chunk order reproduces the exact edge-scan sequence of
///     the serial loop, so the visit order — including the labeled engine's
///     smaller-source-id tie-break — is bit-identical to the serial engine
///     for every thread count and every chunk partition.
///
/// The predicate-filtered variants take the predicate as a template
/// parameter so the per-edge test inlines (no std::function indirection on
/// the hot path); `traversal.h` keeps a `std::function` wrapper for ABI
/// users. Predicates must be pure functions of the vertex id: the pooled
/// engine evaluates them concurrently.
///
/// **Fast mode** (ExecutionMode::kFast, runtime/execution_mode.h): the
/// two-phase replay is replaced by single-phase atomics-based claiming —
/// each chunk claims neighbors directly via a relaxed atomic exchange on the
/// epoch stamp, the winner writes distance/label, and fragments concatenate
/// in chunk order only to keep level slices contiguous. One barrier per
/// level instead of a barrier plus a serial replay. What stays exact: level
/// MEMBERSHIP and distances (the expansion is still level-synchronous, a
/// vertex is claimed at the first level that reaches it), so layerings,
/// ball memberships and eccentricities are unchanged. What is relaxed: the
/// visit order within a level (claim-race order, run-to-run nondeterministic)
/// and the labeled tie-break — source_of(v) is the first claimant's seed,
/// *a* nearest source rather than the smallest-id one. Callers that consume
/// order-insensitively (layering sorts its members; ball queries read
/// visited()/dist() only) observe identical results; callers that need the
/// serial order (graph/renumber.h, congest/gossip.h — cross-rank replicated
/// structures) stay on the deterministic engine unconditionally.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "runtime/execution_mode.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

/// Reusable visitation state for FrontierBfs. One O(n) allocation amortized
/// over arbitrarily many queries (on graphs of any size up to the largest
/// seen); distances/labels of vertices outside the last query's ball are
/// garbage by design — gate every read on visited().
///
/// **Epoch-stamp invariant.** `visited(v)` holds iff `stamp_[v] == epoch_`,
/// and `begin_query` invalidates the previous query by bumping `epoch_`
/// (O(1)) instead of clearing the stamps (O(n)). Consequences callers rely
/// on: (a) `dist`/`source_of`/`level` reads are only meaningful under a true
/// `visited(v)` — everything else is stale data from an arbitrary earlier
/// query; (b) when the 32-bit epoch wraps (once per ~4·10⁹ queries), the
/// stamps are honestly cleared once, so a stale stamp can never alias the
/// live epoch; (c) one scratch may serve graphs of different sizes — the
/// arrays grow to the largest seen and never shrink.
class BfsScratch {
 public:
  // --- results of the last query (views valid until the next query) -------

  /// True iff v was reached by the last query (see the epoch-stamp
  /// invariant above).
  bool visited(int v) const {
    return stamp_[static_cast<std::size_t>(v)] == epoch_;
  }
  /// BFS distance from the nearest source; meaningful iff visited(v).
  int dist(int v) const { return dist_[static_cast<std::size_t>(v)]; }
  /// Nearest source (ties toward the smaller source id); meaningful iff
  /// visited(v) and the query was a labeled multi-source run.
  int source_of(int v) const { return source_[static_cast<std::size_t>(v)]; }

  /// Every visited vertex in deterministic visit order: sources first (in
  /// claim order), then each level's discoveries in frontier-scan order.
  std::span<const int> order() const { return {order_.data(), order_.size()}; }
  /// Number of non-empty BFS levels (0 for a query with no sources);
  /// eccentricity of the source = num_levels() - 1.
  int num_levels() const {
    return static_cast<int>(level_offsets_.size()) - 1;
  }

  /// Conflict-ball helper: appends to `out` the value `local_id[v]` of every
  /// visited vertex v whose entry is >= 0, in visit order. `local_id` is any
  /// caller-owned dense table over the queried graph's vertices (entries < 0
  /// mean "not a member"). This is how the ruling-set packing engine
  /// (mis/packing.h) turns a truncated ball query into a candidate's
  /// conflict set without materializing a power graph.
  void members_into(std::span<const int> local_id, std::vector<int>& out) const {
    for (int v : order()) {
      const int j = local_id[static_cast<std::size_t>(v)];
      if (j >= 0) out.push_back(j);
    }
  }

  /// The vertices at distance exactly l, as a slice of order().
  std::span<const int> level(int l) const {
    const auto lo = static_cast<std::size_t>(
        level_offsets_[static_cast<std::size_t>(l)]);
    const auto hi = static_cast<std::size_t>(
        level_offsets_[static_cast<std::size_t>(l) + 1]);
    return {order_.data() + lo, hi - lo};
  }

 private:
  friend class FrontierBfs;

  // Readies the scratch for one query over n vertices: O(n) only when the
  // capacity grows or the 32-bit epoch wraps, O(1) otherwise.
  void begin_query(int n) {
    DC_REQUIRE(n >= 0, "BFS over negative vertex count");
    if (static_cast<int>(stamp_.size()) < n) {
      stamp_.resize(static_cast<std::size_t>(n), 0);
      dist_.resize(static_cast<std::size_t>(n));
      source_.resize(static_cast<std::size_t>(n));
    }
    if (++epoch_ == 0) {  // wrap after ~4e9 queries: one honest O(n) clear
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    order_.clear();
    level_offsets_.assign(1, 0);
  }

  void claim(int v, int d, int src) {
    stamp_[static_cast<std::size_t>(v)] = epoch_;
    dist_[static_cast<std::size_t>(v)] = d;
    source_[static_cast<std::size_t>(v)] = src;
    order_.push_back(v);
  }

  std::vector<std::uint32_t> stamp_;  // visited(v) <=> stamp_[v] == epoch_
  std::vector<int> dist_;
  std::vector<int> source_;
  std::uint32_t epoch_ = 0;

  std::vector<int> order_;          // visit order of the last query
  std::vector<int> level_offsets_;  // level l = order_[off[l], off[l+1])

  // Pooled engine state, reused across levels and queries: per-chunk
  // next-frontier candidate fragments (vertex, source label) and a sort
  // buffer for labeled seeds.
  std::vector<std::vector<std::pair<int, int>>> fragments_;
  std::vector<int> seed_buf_;
};

/// The engine. Stateless apart from the (optional) pool handle; all query
/// state lives in the caller's BfsScratch, so one engine can serve scratches
/// of different sizes and one scratch can move between engines.
class FrontierBfs {
 public:
  /// `mode` selects the pooled expansion strategy (see the file comment):
  /// kDeterministic replays candidates in chunk order (bit-identical visit
  /// order for every thread count), kFast claims via atomics in one barrier
  /// (exact levels/distances, relaxed intra-level order and label
  /// tie-breaks). With no pool (or one thread) both modes run the serial
  /// reference.
  explicit FrontierBfs(ThreadPool* pool = nullptr,
                       ExecutionMode mode = ExecutionMode::kDeterministic)
      : pool_(pool), mode_(mode) {}

  ThreadPool* pool() const { return pool_; }
  ExecutionMode mode() const { return mode_; }

  /// Single-source BFS up to max_dist (< 0: unbounded).
  void run(const Graph& g, BfsScratch& s, int source, int max_dist = -1) {
    const int seed[1] = {source};
    run_impl<false>(g, s, std::span<const int>(seed, 1), max_dist, kAllowAll);
  }

  /// Single-source BFS that may only traverse vertices with allowed(v) true;
  /// the source is always included. `allowed` must be a pure function.
  template <typename Allowed>
  void run_filtered(const Graph& g, BfsScratch& s, int source, int max_dist,
                    Allowed&& allowed) {
    const int seed[1] = {source};
    run_impl<false>(g, s, std::span<const int>(seed, 1), max_dist, allowed);
  }

  /// Unlabeled multi-source BFS (distances only; duplicates in `sources` are
  /// merged). Used by the layering machinery.
  void run_multi(const Graph& g, BfsScratch& s, std::span<const int> sources,
                 int max_dist = -1) {
    run_impl<false>(g, s, sources, max_dist, kAllowAll);
  }

  /// Restricted multi-source BFS: traversal confined to allowed(v) vertices
  /// (sources are always included, mirroring run_filtered).
  template <typename Allowed>
  void run_multi_filtered(const Graph& g, BfsScratch& s,
                          std::span<const int> sources, int max_dist,
                          Allowed&& allowed) {
    run_impl<false>(g, s, sources, max_dist, allowed);
  }

  /// Labeled multi-source BFS: source_of(v) is the nearest source, distance
  /// ties broken toward the smaller source id (the paper's "breaking ties
  /// using identifiers"). Seeds are claimed in ascending id order so the
  /// level-synchronous expansion resolves ties exactly like the classic
  /// FIFO formulation.
  void run_multi_labeled(const Graph& g, BfsScratch& s,
                         std::span<const int> sources, int max_dist = -1) {
    s.seed_buf_.assign(sources.begin(), sources.end());
    std::sort(s.seed_buf_.begin(), s.seed_buf_.end());
    run_impl<true>(
        g, s, std::span<const int>(s.seed_buf_.data(), s.seed_buf_.size()),
        max_dist, kAllowAll);
  }

 private:
  struct AllowAll {
    bool operator()(int) const { return true; }
  };
  static constexpr AllowAll kAllowAll{};
  // Below this frontier size the two-phase pooled expansion costs more than
  // it wins; purely a performance threshold — results are identical either
  // way, so the cutoff is never observable.
  static constexpr int kMinParallelFrontier = 512;

  template <bool kLabeled, typename Allowed>
  void run_impl(const Graph& g, BfsScratch& s, std::span<const int> sources,
                int max_dist, Allowed&& allowed) {
    const int n = g.num_vertices();
    s.begin_query(n);
    for (int v : sources) {
      DC_REQUIRE(0 <= v && v < n, "BFS source out of range");
      if (s.visited(v)) continue;  // duplicate source
      s.claim(v, 0, kLabeled ? v : -1);
    }
    if (s.order_.empty()) {
      s.level_offsets_.clear();  // num_levels() == 0, no trailing sentinel
      s.level_offsets_.push_back(0);
      return;
    }
    s.level_offsets_.push_back(static_cast<int>(s.order_.size()));

    int level = 0;
    int lo = 0;
    int hi = static_cast<int>(s.order_.size());
    while (lo < hi && (max_dist < 0 || level < max_dist)) {
      if (pool_ != nullptr && pool_->num_threads() > 1 &&
          hi - lo >= kMinParallelFrontier) {
        if (mode_ == ExecutionMode::kFast) {
          expand_atomic<kLabeled>(g, s, lo, hi, level, allowed);
        } else {
          expand_pooled<kLabeled>(g, s, lo, hi, level, allowed);
        }
      } else {
        expand_serial<kLabeled>(g, s, lo, hi, level, allowed);
      }
      lo = hi;
      hi = static_cast<int>(s.order_.size());
      if (hi > lo) s.level_offsets_.push_back(hi);
      ++level;
    }
  }

  // The reference expansion: scan the frontier in visit order, claim
  // first-discovered neighbors, relax same-level source labels.
  template <bool kLabeled, typename Allowed>
  void expand_serial(const Graph& g, BfsScratch& s, int lo, int hi, int level,
                     Allowed&& allowed) {
    for (int idx = lo; idx < hi; ++idx) {
      const int u = s.order_[static_cast<std::size_t>(idx)];
      for (int w : g.neighbors(u)) {
        if (!s.visited(w)) {
          if (!allowed(w)) continue;
          s.claim(w, level + 1,
                  kLabeled ? s.source_[static_cast<std::size_t>(u)] : -1);
        } else if constexpr (kLabeled) {
          // Equal distance through a smaller-id source: prefer it. Only
          // vertices claimed in this very level can satisfy the dist check.
          if (s.dist_[static_cast<std::size_t>(w)] == level + 1 &&
              s.source_[static_cast<std::size_t>(u)] <
                  s.source_[static_cast<std::size_t>(w)]) {
            s.source_[static_cast<std::size_t>(w)] =
                s.source_[static_cast<std::size_t>(u)];
          }
        }
      }
    }
  }

  // Two-phase pooled expansion. Phase A (parallel): each chunk filters its
  // frontier slice's neighbors against the frozen level-start visitation
  // state — reads only, every write lands in the chunk's own fragment.
  // Phase B (serial): replay fragments in chunk index order. The replayed
  // candidate sequence equals the serial edge-scan sequence with the same
  // filter applied, so claims and label relaxations happen in the identical
  // order — bit-identical output for any thread/chunk count.
  template <bool kLabeled, typename Allowed>
  void expand_pooled(const Graph& g, BfsScratch& s, int lo, int hi, int level,
                     Allowed&& allowed) {
    const int num_chunks = pool_->num_range_chunks(hi - lo);
    if (static_cast<int>(s.fragments_.size()) < num_chunks) {
      s.fragments_.resize(static_cast<std::size_t>(num_chunks));
    }
    pool_->parallel_ranges(lo, hi, [&](int chunk, int clo, int chi) {
      auto& frag = s.fragments_[static_cast<std::size_t>(chunk)];
      frag.clear();
      for (int idx = clo; idx < chi; ++idx) {
        const int u = s.order_[static_cast<std::size_t>(idx)];
        const int label =
            kLabeled ? s.source_[static_cast<std::size_t>(u)] : -1;
        for (int w : g.neighbors(u)) {
          if (!s.visited(w) && allowed(w)) frag.emplace_back(w, label);
        }
      }
    });
    for (int chunk = 0; chunk < num_chunks; ++chunk) {
      for (const auto& [w, label] : s.fragments_[static_cast<std::size_t>(chunk)]) {
        if (!s.visited(w)) {
          s.claim(w, level + 1, label);
        } else if constexpr (kLabeled) {
          if (s.dist_[static_cast<std::size_t>(w)] == level + 1 &&
              label < s.source_[static_cast<std::size_t>(w)]) {
            s.source_[static_cast<std::size_t>(w)] = label;
          }
        }
      }
    }
  }

  // Fast-mode expansion: one barrier, atomics-based first-claim. Each chunk
  // claims neighbors directly with a relaxed exchange on the epoch stamp —
  // the winner (the exchange that did NOT read the live epoch) owns the
  // vertex and writes its distance/label (plain stores: single writer, and
  // no other thread reads a freshly claimed vertex's payload this level —
  // fast mode drops the labeled same-level relaxation, so source_of is the
  // first claimant's seed). Fragments then concatenate serially in chunk
  // order, purely to keep level slices contiguous in order_; the
  // concatenation order is NOT the serial visit order. Every stamp access
  // in this phase goes through std::atomic_ref, keeping the race on claims
  // a synchronized one (TSan-clean by construction). Level membership and
  // distances are exact — a vertex is claimable only while unvisited, and
  // the expansion stays level-synchronous — which is all order-insensitive
  // callers consume.
  template <bool kLabeled, typename Allowed>
  void expand_atomic(const Graph& g, BfsScratch& s, int lo, int hi, int level,
                     Allowed&& allowed) {
    const int num_chunks = pool_->num_range_chunks(hi - lo);
    if (static_cast<int>(s.fragments_.size()) < num_chunks) {
      s.fragments_.resize(static_cast<std::size_t>(num_chunks));
    }
    const std::uint32_t epoch = s.epoch_;
    pool_->parallel_ranges(lo, hi, [&](int chunk, int clo, int chi) {
      auto& frag = s.fragments_[static_cast<std::size_t>(chunk)];
      frag.clear();
      for (int idx = clo; idx < chi; ++idx) {
        const int u = s.order_[static_cast<std::size_t>(idx)];
        const int label =
            kLabeled ? s.source_[static_cast<std::size_t>(u)] : -1;
        for (int w : g.neighbors(u)) {
          std::atomic_ref<std::uint32_t> stamp(
              s.stamp_[static_cast<std::size_t>(w)]);
          if (stamp.load(std::memory_order_relaxed) == epoch) continue;
          if (!allowed(w)) continue;
          if (stamp.exchange(epoch, std::memory_order_relaxed) == epoch) {
            continue;  // another chunk claimed w first
          }
          s.dist_[static_cast<std::size_t>(w)] = level + 1;
          s.source_[static_cast<std::size_t>(w)] = label;
          frag.emplace_back(w, label);
        }
      }
    });
    for (int chunk = 0; chunk < num_chunks; ++chunk) {
      for (const auto& [w, label] :
           s.fragments_[static_cast<std::size_t>(chunk)]) {
        (void)label;
        s.order_.push_back(w);
      }
    }
  }

  ThreadPool* pool_ = nullptr;
  ExecutionMode mode_ = ExecutionMode::kDeterministic;
};

/// Bridges from scratch views back to the classic dense-vector API: the
/// distances of the last query as a vector sized n, `unreachable` for
/// vertices outside the ball.
std::vector<int> dense_distances(const BfsScratch& s, int n,
                                 int unreachable = -1);

/// Minimum eccentricity over all vertices — the graph radius for connected
/// graphs. The per-vertex BFS sweeps fan out over the pool in indexed chunks
/// (serial when pool is null); each chunk reuses one scratch across its
/// sweeps and folds a chunk-local minimum, combined in chunk order (a min is
/// order-free, so any thread count yields the same value).
int min_eccentricity(const Graph& g, ThreadPool* pool = nullptr);

}  // namespace deltacol
