#include "graph/generators.h"

#include <algorithm>
#include <set>

#include "graph/components.h"
#include "graph/ops.h"
#include "util/check.h"

namespace deltacol {

Graph path_graph(int n) {
  DC_REQUIRE(n >= 1, "path needs at least one vertex");
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

Graph cycle_graph(int n) {
  DC_REQUIRE(n >= 3, "cycle needs at least three vertices");
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::from_edges(n, edges);
}

Graph clique_graph(int n) {
  DC_REQUIRE(n >= 1, "clique needs at least one vertex");
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph::from_edges(n, edges);
}

Graph complete_bipartite(int a, int b) {
  DC_REQUIRE(a >= 1 && b >= 1, "both sides must be non-empty");
  std::vector<Edge> edges;
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) edges.emplace_back(i, a + j);
  }
  return Graph::from_edges(a + b, edges);
}

Graph star_graph(int leaves) {
  DC_REQUIRE(leaves >= 1, "star needs at least one leaf");
  std::vector<Edge> edges;
  for (int i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return Graph::from_edges(leaves + 1, edges);
}

Graph grid_graph(int rows, int cols, bool wrap) {
  DC_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  if (wrap) DC_REQUIRE(rows >= 3 && cols >= 3, "torus needs >= 3 per dimension");
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      else if (wrap) edges.emplace_back(id(r, c), id(r, 0));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
      else if (wrap) edges.emplace_back(id(r, c), id(0, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph hypercube_graph(int dim) {
  DC_REQUIRE(1 <= dim && dim <= 24, "hypercube dimension out of range");
  const int n = 1 << dim;
  std::vector<Edge> edges;
  for (int v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const int u = v ^ (1 << b);
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph circulant_graph(int n, const std::vector<int>& offsets) {
  DC_REQUIRE(n >= 3, "circulant needs at least three vertices");
  std::vector<Edge> edges;
  for (int v = 0; v < n; ++v) {
    for (int o : offsets) {
      DC_REQUIRE(1 <= o && o < n, "circulant offset out of range");
      edges.emplace_back(v, (v + o) % n);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph petersen_graph() {
  std::vector<Edge> edges;
  for (int i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);          // outer 5-cycle
    edges.emplace_back(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    edges.emplace_back(i, 5 + i);                // spokes
  }
  return Graph::from_edges(10, edges);
}

Graph complete_kary_tree(int arity, int depth) {
  DC_REQUIRE(arity >= 2 && depth >= 1, "need arity >= 2, depth >= 1");
  std::vector<Edge> edges;
  int next = 1;
  std::vector<int> frontier{0};
  for (int d = 0; d < depth; ++d) {
    std::vector<int> next_frontier;
    for (int v : frontier) {
      for (int c = 0; c < arity; ++c) {
        edges.emplace_back(v, next);
        next_frontier.push_back(next++);
      }
    }
    frontier = std::move(next_frontier);
  }
  return Graph::from_edges(next, edges);
}

Graph theta_graph(int inner1, int inner2, int inner3) {
  DC_REQUIRE(inner1 >= 1 && inner2 >= 1 && inner3 >= 1,
             "theta paths need at least one internal vertex each");
  // Vertices: 0 and 1 are the hubs; then the three paths.
  std::vector<Edge> edges;
  int next = 2;
  for (int len : {inner1, inner2, inner3}) {
    int prev = 0;
    for (int i = 0; i < len; ++i) {
      edges.emplace_back(prev, next);
      prev = next++;
    }
    edges.emplace_back(prev, 1);
  }
  return Graph::from_edges(next, edges);
}

Graph clique_ring(int k, int clique_size) {
  DC_REQUIRE(k >= 2 && clique_size >= 3, "need k >= 2 rings of cliques of size >= 3");
  // Each clique has clique_size vertices; consecutive cliques share exactly
  // one vertex, and the last shares one with the first.
  const int fresh_per_clique = clique_size - 1;
  const int n = k * fresh_per_clique;
  std::vector<Edge> edges;
  for (int i = 0; i < k; ++i) {
    // Clique i consists of the shared vertex with clique i-1 (vertex
    // i*fresh - 1, wrapping) plus fresh vertices.
    std::vector<int> members;
    members.push_back((i * fresh_per_clique + n - 1) % n);
    for (int j = 0; j < fresh_per_clique; ++j) {
      members.push_back(i * fresh_per_clique + j);
    }
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        edges.emplace_back(members[a], members[b]);
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph preferential_attachment(int n, int edges_per_vertex, Rng& rng) {
  DC_REQUIRE(edges_per_vertex >= 1, "attachment needs at least one edge");
  DC_REQUIRE(n > edges_per_vertex, "graph too small for the clique seed");
  const int m = edges_per_vertex;
  std::vector<Edge> edges;
  // Degree-proportional sampling via the repeated-endpoint list: every edge
  // endpoint appears once, so a uniform draw lands on v with probability
  // deg(v) / (2 * |E|).
  std::vector<int> endpoints;
  for (int u = 0; u <= m; ++u) {
    for (int v = u + 1; v <= m; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<int> picked;
  for (int v = m + 1; v < n; ++v) {
    picked.clear();
    while (static_cast<int>(picked.size()) < m) {
      const int u = endpoints[static_cast<std::size_t>(
          rng.next_below(endpoints.size()))];
      if (std::find(picked.begin(), picked.end(), u) == picked.end()) {
        picked.push_back(u);
      }
    }
    for (int u : picked) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph triangle_cactus(int min_vertices) {
  DC_REQUIRE(min_vertices >= 3, "need at least one triangle");
  std::vector<Edge> edges;
  int next = 3;
  edges.emplace_back(0, 1);
  edges.emplace_back(1, 2);
  edges.emplace_back(0, 2);
  // Every vertex of the current fringe gets its second triangle, breadth
  // first, until the budget is reached.
  std::vector<int> fringe{0, 1, 2};
  std::size_t head = 0;
  while (next < min_vertices && head < fringe.size()) {
    const int v = fringe[head++];
    const int a = next++;
    const int b = next++;
    edges.emplace_back(v, a);
    edges.emplace_back(v, b);
    edges.emplace_back(a, b);
    fringe.push_back(a);
    fringe.push_back(b);
  }
  return Graph::from_edges(next, edges);
}

bool regular_graph_feasible(int n, int d) {
  return n >= 1 && d >= 0 && d < n && (static_cast<long long>(n) * d) % 2 == 0;
}

Graph random_regular(int n, int d, Rng& rng) {
  DC_REQUIRE(regular_graph_feasible(n, d), "infeasible (n, d) for regular graph");
  if (d == 0) return Graph::from_edges(n, std::vector<Edge>{});
  // Configuration model: pair up n*d stubs, then repair self-loops and
  // multi-edges with random edge swaps.
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (int v = 0; v < n; ++v) {
      for (int i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    std::vector<Edge> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      edges.emplace_back(stubs[i], stubs[i + 1]);
    }
    // Repair pass: resolve conflicts by swapping endpoints with random
    // non-conflicting edges.
    auto key = [](int u, int v) {
      return std::make_pair(std::min(u, v), std::max(u, v));
    };
    std::set<Edge> seen;
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto [u, v] = edges[i];
      if (u == v || !seen.insert(key(u, v)).second) bad.push_back(i);
    }
    bool ok = true;
    int budget = 50 * static_cast<int>(bad.size()) + 100;
    while (!bad.empty() && budget-- > 0) {
      const std::size_t i = bad.back();
      const std::size_t j =
          static_cast<std::size_t>(rng.next_below(edges.size()));
      if (i == j) continue;
      auto [a, b] = edges[i];
      auto [c, e] = edges[j];
      // Propose swap: (a,b),(c,e) -> (a,c),(b,e).
      if (a == c || b == e) continue;
      const auto k1 = key(a, c), k2 = key(b, e);
      if (seen.count(k1) || seen.count(k2) || k1 == k2) continue;
      // Remove old keys (edge j was valid; edge i may not be in `seen`).
      if (c != e) seen.erase(key(c, e));
      if (a != b) seen.erase(key(a, b));
      edges[i] = {a, c};
      edges[j] = {b, e};
      seen.insert(k1);
      seen.insert(k2);
      bad.pop_back();
      // Edge i might have been a duplicate sharing its key with another
      // edge; re-validate is unnecessary because we only erased keys we
      // inserted for valid edges, and both new keys were checked fresh.
    }
    if (!bad.empty()) ok = false;
    if (!ok) continue;
    Graph g = Graph::from_edges(n, edges);
    if (g.num_edges() == static_cast<std::int64_t>(n) * d / 2) return g;
  }
  DC_ENSURE(false, "random_regular failed to converge; try different (n, d)");
  return Graph{};
}

Graph random_tree(int n, int max_deg, Rng& rng) {
  DC_REQUIRE(n >= 1, "tree needs at least one vertex");
  DC_REQUIRE(max_deg >= 2 || n <= 2, "max degree too small for a tree");
  std::vector<Edge> edges;
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::vector<int> attachable{0};
  for (int v = 1; v < n; ++v) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.next_below(attachable.size()));
    const int parent = attachable[idx];
    edges.emplace_back(parent, v);
    if (++deg[static_cast<std::size_t>(parent)] >= max_deg) {
      attachable[idx] = attachable.back();
      attachable.pop_back();
    }
    deg[static_cast<std::size_t>(v)] = 1;
    if (max_deg > 1) attachable.push_back(v);
  }
  return Graph::from_edges(n, edges);
}

Graph random_graph_max_degree(int n, int max_deg, double edge_factor, Rng& rng) {
  DC_REQUIRE(n >= 2 && max_deg >= 2, "need n >= 2, max_deg >= 2");
  DC_REQUIRE(edge_factor >= 1.0, "edge_factor < 1 would disconnect the graph");
  // Backbone: random spanning tree respecting the cap; then random extra
  // edges while respecting the cap.
  Graph tree = random_tree(n, max_deg, rng);
  std::vector<Edge> edges = tree.edge_list();
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::set<Edge> present(edges.begin(), edges.end());
  for (const auto& [u, v] : edges) {
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
  }
  const auto target =
      static_cast<std::int64_t>(edge_factor * static_cast<double>(n));
  int attempts = 20 * n;
  while (static_cast<std::int64_t>(edges.size()) < target && attempts-- > 0) {
    const int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (deg[static_cast<std::size_t>(u)] >= max_deg ||
        deg[static_cast<std::size_t>(v)] >= max_deg) {
      continue;
    }
    const Edge e{std::min(u, v), std::max(u, v)};
    if (!present.insert(e).second) continue;
    edges.push_back(e);
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
  }
  return Graph::from_edges(n, edges);
}

Graph random_gallai_tree(int n, int max_deg, Rng& rng) {
  DC_REQUIRE(n >= 3 && max_deg >= 3, "need n >= 3 and max_deg >= 3");
  // Grow a tree of blocks. Every block is a clique (size <= max_deg) or an
  // odd cycle; blocks attach to an existing vertex with spare degree.
  std::vector<Edge> edges;
  std::vector<int> deg;
  auto new_vertex = [&]() {
    deg.push_back(0);
    return static_cast<int>(deg.size()) - 1;
  };
  auto add_edge = [&](int u, int v) {
    edges.emplace_back(u, v);
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
  };
  new_vertex();  // seed vertex 0
  while (static_cast<int>(deg.size()) < n) {
    // Pick an attachment point with spare degree.
    std::vector<int> candidates;
    for (int v = 0; v < static_cast<int>(deg.size()); ++v) {
      if (deg[static_cast<std::size_t>(v)] < max_deg - 1) candidates.push_back(v);
    }
    if (candidates.empty()) {
      // Every vertex is near-saturated; attach a pendant edge (a K2 block)
      // to any vertex with one unit of spare degree to regain headroom.
      int host = -1;
      for (int v = 0; v < static_cast<int>(deg.size()); ++v) {
        if (deg[static_cast<std::size_t>(v)] < max_deg) {
          host = v;
          break;
        }
      }
      DC_ENSURE(host >= 0, "Gallai-tree growth ran out of attach points");
      add_edge(host, new_vertex());
      continue;
    }
    const int root =
        candidates[static_cast<std::size_t>(rng.next_below(candidates.size()))];
    const int spare = max_deg - deg[static_cast<std::size_t>(root)];
    const int remaining = n - static_cast<int>(deg.size());
    if (rng.next_bool(0.5) || spare < 2) {
      // Attach a clique of size s (root + s-1 fresh vertices); root gains
      // s-1 degree.
      const int max_fresh = std::min({spare, max_deg - 1, remaining});
      const int fresh = std::max(1, rng.next_int(1, std::max(1, max_fresh)));
      std::vector<int> members{root};
      for (int i = 0; i < fresh; ++i) members.push_back(new_vertex());
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          add_edge(members[a], members[b]);
        }
      }
    } else {
      // Attach an odd cycle of length 2k+1 through the root; root gains 2.
      const int max_inner = std::max(2, std::min(remaining, 8));
      int inner = rng.next_int(2, max_inner);
      if (inner % 2 == 1) inner = inner == max_inner ? inner - 1 : inner + 1;
      // cycle length = inner + 1 (root) must be odd => inner even.
      int prev = root;
      for (int i = 0; i < inner; ++i) {
        const int v = new_vertex();
        add_edge(prev, v);
        prev = v;
      }
      add_edge(prev, root);
    }
  }
  return Graph::from_edges(static_cast<int>(deg.size()), edges);
}

std::vector<NamedWorkload> generator_zoo() {
  Rng rng(71);
  std::vector<NamedWorkload> zoo;
  zoo.push_back({"regular-500-6", random_regular(500, 6, rng)});
  zoo.push_back({"gallai-400-4", random_gallai_tree(400, 4, rng)});
  zoo.push_back({"sparse-400-6", random_graph_max_degree(400, 6, 1.8, rng)});
  zoo.push_back(
      {"3-components",
       disjoint_union(disjoint_union(random_regular(200, 5, rng),
                                     random_regular(90, 4, rng)),
                      random_graph_max_degree(150, 6, 1.8, rng))});
  zoo.push_back({"triangle-cactus", triangle_cactus(1500)});
  return zoo;
}

Graph generator_zoo_graph(const std::string& name) {
  std::string names;
  for (auto& w : generator_zoo()) {
    if (w.name == name) return std::move(w.graph);
    names += names.empty() ? w.name : ", " + w.name;
  }
  DC_REQUIRE(false, "unknown zoo workload '" + name + "' (have: " + names + ")");
  return {};
}

}  // namespace deltacol
