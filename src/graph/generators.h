// Graph generators: the workload zoo for tests, benches, and examples.
//
// The paper's algorithms require "nice" graphs (connected, not a path, cycle,
// or clique) with a given maximum degree Delta. The generators below cover
// the regimes the theorems distinguish: constant degree vs large degree,
// locally tree-like (expanding, DCC-free balls) vs DCC-rich, and the
// adversarial Gallai-tree-like instances where Delta-coloring is tight.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace deltacol {

// Deterministic families -----------------------------------------------------
Graph path_graph(int n);
Graph cycle_graph(int n);
Graph clique_graph(int n);
Graph complete_bipartite(int a, int b);
Graph star_graph(int leaves);
// rows x cols grid; when wrap is true the grid is a torus (4-regular for
// rows, cols >= 3).
Graph grid_graph(int rows, int cols, bool wrap);
Graph hypercube_graph(int dim);
// Circulant graph C_n(offsets): i ~ i +/- o (mod n) for each offset o.
Graph circulant_graph(int n, const std::vector<int>& offsets);
Graph petersen_graph();
// Complete tree where every internal vertex has `arity` children.
Graph complete_kary_tree(int arity, int depth);
// Two hub vertices joined by three internally disjoint paths of the given
// inner lengths (number of internal vertices, each >= 1; at most one may be
// zero-length... all >= 1 here). The smallest degree-choosable components
// (DCCs) are theta graphs, so this is the canonical positive DCC test case.
Graph theta_graph(int inner1, int inner2, int inner3);
// Ring of k cliques of size s, consecutive cliques sharing one vertex.
// 2-connected, neither clique nor odd cycle for k >= 2, s >= 3: a large DCC.
Graph clique_ring(int k, int clique_size);

// Randomized families --------------------------------------------------------
// Uniform-ish d-regular simple graph via the configuration model with edge
// swap repair. Requires n*d even and d < n.
Graph random_regular(int n, int d, Rng& rng);
// Connected random graph with max degree <= max_deg and roughly
// edge_factor * n edges (edge_factor >= 1 keeps it connected via a random
// spanning tree backbone).
Graph random_graph_max_degree(int n, int max_deg, double edge_factor, Rng& rng);
// Random tree with maximum degree <= max_deg (random attachment).
Graph random_tree(int n, int max_deg, Rng& rng);
// Random connected Gallai tree (every block a clique or odd cycle) with
// approximately n vertices and maximum degree <= max_deg (>= 3). These are
// the graphs with NO degree-choosable component anywhere: the hard case for
// Delta-coloring.
Graph random_gallai_tree(int n, int max_deg, Rng& rng);

// Connected heavy-tailed ("power-law") graph via preferential attachment:
// after an (edges_per_vertex + 1)-clique seed, each new vertex attaches to
// edges_per_vertex distinct existing vertices chosen proportional to their
// current degree, so hub degrees grow far beyond the typical degree. Ids
// follow attachment order (hubs get low ids); bench_e18 scrambles them to
// model wild-id inputs. Requires n > edges_per_vertex >= 1.
Graph preferential_attachment(int n, int edges_per_vertex, Rng& rng);

// Triangle cactus: a complete tree of triangles where every interior vertex
// lies in exactly two triangles (degree 4) and only the fringe is
// deficient. A Gallai tree (all blocks are triangles) whose interior is
// 4-regular — the worst case for the distributed Brooks' theorem: a token
// starting at the center must travel Theta(log n) hops to reach slack.
Graph triangle_cactus(int min_vertices);

// Returns true iff generating a d-regular graph on n vertices is possible.
bool regular_graph_feasible(int n, int d);

// The named workload zoo shared by the differential suites, the socket
// launcher and the benches: five instances spanning the regimes above
// (regular, Gallai-tree, sparse, multi-component, triangle-cactus), built
// deterministically from a fixed seed so every process that asks for
// "regular-500-6" gets the bit-identical graph.
struct NamedWorkload {
  std::string name;
  Graph graph;
};
std::vector<NamedWorkload> generator_zoo();

// Looks up one zoo instance by name (throws ContractViolation listing the
// valid names on a miss).
Graph generator_zoo_graph(const std::string& name);

}  // namespace deltacol
