#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace deltacol {

Graph Graph::from_edges(int n, std::span<const Edge> edges) {
  DC_REQUIRE(n >= 0, "vertex count must be non-negative");
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    DC_REQUIRE(0 <= u && u < n && 0 <= v && v < n, "edge endpoint out of range");
    DC_REQUIRE(u != v, "self-loops are not allowed in simple graphs");
    normalized.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : normalized) {
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (int v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adj_.resize(normalized.size() * 2);
  std::vector<int> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : normalized) {
    g.adj_[static_cast<std::size_t>(cursor[u]++)] = v;
    g.adj_[static_cast<std::size_t>(cursor[v]++)] = u;
  }
  for (int v = 0; v < n; ++v) {
    auto nb = g.adj_.begin() + g.offsets_[v];
    std::sort(nb, g.adj_.begin() + g.offsets_[v + 1]);
  }
  g.max_degree_ = 0;
  g.min_degree_ = n > 0 ? n : 0;
  for (int v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
    g.min_degree_ = std::min(g.min_degree_, g.degree(v));
  }
  if (n == 0) g.min_degree_ = 0;
  return g;
}

bool Graph::has_edge(int u, int v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(num_edges()));
  for (int u = 0; u < num_vertices(); ++u) {
    for (int v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

void GraphBuilder::add_edge(int u, int v) {
  DC_REQUIRE(0 <= u && u < n_ && 0 <= v && v < n_, "edge endpoint out of range");
  DC_REQUIRE(u != v, "self-loops are not allowed in simple graphs");
  edges_.emplace_back(u, v);
}

bool GraphBuilder::has_edge(int u, int v) const {
  for (const auto& [a, b] : edges_) {
    if ((a == u && b == v) || (a == v && b == u)) return true;
  }
  return false;
}

}  // namespace deltacol
