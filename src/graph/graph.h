// Immutable simple undirected graph in CSR (compressed sparse row) layout.
//
// Vertices are dense integers [0, n). Adjacency lists are sorted, which makes
// has_edge O(log deg) and set operations over neighborhoods cheap. Graphs in
// this library are values: algorithms never mutate a Graph, they build new
// ones (e.g. induced subgraphs) via GraphBuilder.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace deltacol {

using Edge = std::pair<int, int>;

class Graph {
 public:
  Graph() = default;

  // Builds a graph from an edge list. Self-loops are rejected; duplicate
  // edges (in either orientation) are merged.
  static Graph from_edges(int n, std::span<const Edge> edges);
  static Graph from_edges(int n, const std::vector<Edge>& edges) {
    return from_edges(n, std::span<const Edge>(edges));
  }

  int num_vertices() const { return static_cast<int>(offsets_.size()) - 1; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(adj_.size()) / 2; }

  int degree(int v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const int> neighbors(int v) const {
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  bool has_edge(int u, int v) const;

  // Maximum degree Delta(G); 0 for the empty graph.
  int max_degree() const { return max_degree_; }
  int min_degree() const { return min_degree_; }

  // All edges with u < v, in sorted order.
  std::vector<Edge> edge_list() const;

 private:
  std::vector<int> offsets_{0};
  std::vector<int> adj_;
  int max_degree_ = 0;
  int min_degree_ = 0;
};

// Incremental construction helper; tolerates duplicate add_edge calls.
class GraphBuilder {
 public:
  explicit GraphBuilder(int n) : n_(n) {}

  void add_edge(int u, int v);
  bool has_edge(int u, int v) const;
  int num_vertices() const { return n_; }
  const std::vector<Edge>& edges() const { return edges_; }

  Graph build() const { return Graph::from_edges(n_, edges_); }

 private:
  int n_;
  std::vector<Edge> edges_;
};

}  // namespace deltacol
