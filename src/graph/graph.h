/// \file
/// Immutable simple undirected graph in CSR (compressed sparse row) layout.
///
/// Vertices are dense integers [0, n). Adjacency lists are sorted, which makes
/// has_edge O(log deg) and set operations over neighborhoods cheap. Graphs in
/// this library are values: algorithms never mutate a Graph, they build new
/// ones (e.g. induced subgraphs) via GraphBuilder.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace deltacol {

/// An undirected edge; orientation is irrelevant (normalized on build).
using Edge = std::pair<int, int>;

/// Immutable simple undirected graph over vertices {0, ..., n-1}.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an edge list. Self-loops are rejected (throws via
  /// DC_REQUIRE); duplicate edges (in either orientation) are merged.
  static Graph from_edges(int n, std::span<const Edge> edges);
  static Graph from_edges(int n, const std::vector<Edge>& edges) {
    return from_edges(n, std::span<const Edge>(edges));
  }

  int num_vertices() const { return static_cast<int>(offsets_.size()) - 1; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(adj_.size()) / 2; }

  int degree(int v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Sorted neighbors of \p v as a zero-copy view into the CSR arrays;
  /// valid for the lifetime of this Graph.
  std::span<const int> neighbors(int v) const {
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  /// O(log deg(u)) adjacency test.
  bool has_edge(int u, int v) const;

  /// Maximum degree Delta(G); 0 for the empty graph.
  int max_degree() const { return max_degree_; }
  int min_degree() const { return min_degree_; }

  /// All edges with u < v, in sorted order.
  std::vector<Edge> edge_list() const;

 private:
  std::vector<int> offsets_{0};
  std::vector<int> adj_;
  int max_degree_ = 0;
  int min_degree_ = 0;
};

/// Incremental construction helper; tolerates duplicate add_edge calls.
class GraphBuilder {
 public:
  explicit GraphBuilder(int n) : n_(n) {}

  /// Records the undirected edge {u, v}; rejects self-loops and
  /// out-of-range endpoints. Duplicates are merged at build().
  void add_edge(int u, int v);
  /// Linear scan over recorded edges (builder-side convenience; use
  /// Graph::has_edge after build() for the O(log deg) version).
  bool has_edge(int u, int v) const;
  int num_vertices() const { return n_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Materializes the immutable CSR Graph.
  Graph build() const { return Graph::from_edges(n_, edges_); }

 private:
  int n_;
  std::vector<Edge> edges_;
};

}  // namespace deltacol
