#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace deltacol {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) {
    out << u << ' ' << v << '\n';
  }
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  int n = -1;
  std::int64_t m = -1;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (n < 0) {
      DC_REQUIRE(static_cast<bool>(ls >> n >> m), "bad edge-list header");
      DC_REQUIRE(n >= 0 && m >= 0, "negative counts in header");
      continue;
    }
    int u, v;
    DC_REQUIRE(static_cast<bool>(ls >> u >> v), "bad edge-list line");
    edges.emplace_back(u, v);
  }
  DC_REQUIRE(n >= 0, "edge list missing header");
  DC_REQUIRE(static_cast<std::int64_t>(edges.size()) == m,
             "edge count does not match header");
  return Graph::from_edges(n, edges);
}

void write_dot(std::ostream& out, const Graph& g,
               const std::optional<Coloring>& coloring) {
  static const char* kPalette[] = {"#e6194b", "#3cb44b", "#4363d8", "#ffe119",
                                   "#f58231", "#911eb4", "#46f0f0", "#f032e6"};
  constexpr int kPaletteSize = 8;
  out << "graph G {\n  node [style=filled];\n";
  for (int v = 0; v < g.num_vertices(); ++v) {
    out << "  " << v;
    if (coloring) {
      const Color c = (*coloring)[static_cast<std::size_t>(v)];
      out << " [label=\"" << v << ":" << c << "\"";
      if (c >= 0 && c < kPaletteSize) {
        out << ", fillcolor=\"" << kPalette[c] << "\"";
      }
      out << "]";
    }
    out << ";\n";
  }
  for (const auto& [u, v] : g.edge_list()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  DC_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_edge_list(out, g);
  DC_ENSURE(out.good(), "write failed: " + path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  DC_REQUIRE(in.good(), "cannot open file for reading: " + path);
  return read_edge_list(in);
}

}  // namespace deltacol
