// Graph serialization: whitespace edge lists (one "u v" pair per line, with
// an optional "n m" header) and Graphviz DOT output for visual debugging of
// small instances and their colorings.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace deltacol {

// Format:
//   n m
//   u1 v1
//   ...
// Lines starting with '#' are comments. Vertices are 0-based.
void write_edge_list(std::ostream& out, const Graph& g);
Graph read_edge_list(std::istream& in);

// DOT output; when a coloring is given, vertices are filled from a small
// palette (colors beyond the palette get numbered labels only).
void write_dot(std::ostream& out, const Graph& g,
               const std::optional<Coloring>& coloring = std::nullopt);

// Convenience file wrappers (throw ContractViolation on I/O failure).
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

}  // namespace deltacol
