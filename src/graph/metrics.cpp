#include "graph/metrics.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace deltacol {

int girth(const Graph& g) {
  // BFS from every vertex; the first non-tree edge seen closes a cycle of
  // length dist(u) + dist(w) + 1 (same level) or dist(u) + dist(w) + 1
  // (cross level); taking the min over all roots is exact for girth.
  int best = -1;
  const int n = g.num_vertices();
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int root = 0; root < n; ++root) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<int> q;
    dist[static_cast<std::size_t>(root)] = 0;
    parent[static_cast<std::size_t>(root)] = -1;
    q.push(root);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int w : g.neighbors(u)) {
        if (w == parent[static_cast<std::size_t>(u)]) continue;
        if (dist[static_cast<std::size_t>(w)] == -1) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
          parent[static_cast<std::size_t>(w)] = u;
          q.push(w);
        } else {
          const int cycle = dist[static_cast<std::size_t>(u)] +
                            dist[static_cast<std::size_t>(w)] + 1;
          if (best == -1 || cycle < best) best = cycle;
        }
      }
    }
  }
  return best;
}

DegeneracyResult degeneracy(const Graph& g) {
  const int n = g.num_vertices();
  DegeneracyResult res;
  std::vector<int> deg(static_cast<std::size_t>(n));
  const int maxd = g.max_degree();
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(maxd) + 1);
  for (int v = 0; v < n; ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    buckets[static_cast<std::size_t>(g.degree(v))].push_back(v);
  }
  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  int cursor = 0;
  for (int step = 0; step < n; ++step) {
    // Find the lowest non-empty bucket (degrees only drop by one per
    // removal, so rewinding the cursor by one suffices).
    cursor = std::max(0, cursor - 1);
    while (cursor <= maxd) {
      auto& b = buckets[static_cast<std::size_t>(cursor)];
      while (!b.empty() &&
             (removed[static_cast<std::size_t>(b.back())] ||
              deg[static_cast<std::size_t>(b.back())] != cursor)) {
        b.pop_back();
      }
      if (!b.empty()) break;
      ++cursor;
    }
    DC_ENSURE(cursor <= maxd, "degeneracy peeling ran out of buckets");
    const int v = buckets[static_cast<std::size_t>(cursor)].back();
    buckets[static_cast<std::size_t>(cursor)].pop_back();
    removed[static_cast<std::size_t>(v)] = true;
    res.order.push_back(v);
    res.degeneracy = std::max(res.degeneracy, cursor);
    for (int u : g.neighbors(v)) {
      if (removed[static_cast<std::size_t>(u)]) continue;
      const int d = --deg[static_cast<std::size_t>(u)];
      buckets[static_cast<std::size_t>(d)].push_back(u);
    }
  }
  return res;
}

std::int64_t count_triangles(const Graph& g) {
  // For each edge (u, v) with u < v, intersect sorted neighborhoods above v.
  std::int64_t triangles = 0;
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.neighbors(u)) {
      if (v <= u) continue;
      const auto nu = g.neighbors(u);
      const auto nv = g.neighbors(v);
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) ++i;
        else if (nu[i] > nv[j]) ++j;
        else {
          if (nu[i] > v) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

double clustering_coefficient(const Graph& g) {
  std::int64_t wedges = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const std::int64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(g)) /
         static_cast<double>(wedges);
}

std::vector<int> degree_histogram(const Graph& g) {
  std::vector<int> hist(static_cast<std::size_t>(g.max_degree()) + 1, 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    ++hist[static_cast<std::size_t>(g.degree(v))];
  }
  return hist;
}

double cross_edge_fraction(const Graph& g, const VertexPartition& part) {
  DC_REQUIRE(part.num_vertices() == g.num_vertices(),
             "partition does not span the graph");
  if (g.num_edges() == 0 || part.num_shards() <= 1) return 0.0;
  std::int64_t cross = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int sv = part.shard_of(v);
    for (int u : g.neighbors(v)) {
      if (v < u && part.shard_of(u) != sv) ++cross;
    }
  }
  return static_cast<double>(cross) / static_cast<double>(g.num_edges());
}

}  // namespace deltacol
