// Workload characterization metrics: girth, degeneracy, clustering,
// degree histograms. Used by the experiment harness to describe generated
// graphs and by tests as independent oracles (e.g. girth > 2r+1 certifies
// DCC-free r-balls).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"

namespace deltacol {

// Length of the shortest cycle; -1 for forests. O(n * m) BFS-based.
int girth(const Graph& g);

// Degeneracy (the max over the peeling order of the minimum degree) and the
// associated elimination order (smallest-last).
struct DegeneracyResult {
  int degeneracy = 0;
  std::vector<int> order;  // peeling order, lowest-degree-first
};
DegeneracyResult degeneracy(const Graph& g);

// Global clustering coefficient: 3 * triangles / open wedges (0 if no
// wedges).
double clustering_coefficient(const Graph& g);

// Number of triangles.
std::int64_t count_triangles(const Graph& g);

// histogram[d] = number of vertices of degree d.
std::vector<int> degree_histogram(const Graph& g);

// Fraction of undirected edges whose endpoints live on different shards of
// `part` (0 for edgeless graphs or a single shard). This is the static
// locality figure behind the per-round message split that experiments E15
// and E18 measure: under a dense all-neighbors round, cross_fraction of all
// envelopes — and of all encoded payload bytes — cross a shard boundary.
double cross_edge_fraction(const Graph& g, const VertexPartition& part);

}  // namespace deltacol
