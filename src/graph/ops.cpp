#include "graph/ops.h"

#include <algorithm>

#include "graph/frontier_bfs.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

Subgraph induced_subgraph(const Graph& g, std::span<const int> vertices) {
  Subgraph out;
  out.to_parent.assign(vertices.begin(), vertices.end());
  std::sort(out.to_parent.begin(), out.to_parent.end());
  out.to_parent.erase(
      std::unique(out.to_parent.begin(), out.to_parent.end()),
      out.to_parent.end());
  out.from_parent.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  for (int i = 0; i < static_cast<int>(out.to_parent.size()); ++i) {
    const int p = out.to_parent[static_cast<std::size_t>(i)];
    DC_REQUIRE(0 <= p && p < g.num_vertices(), "subgraph vertex out of range");
    out.from_parent[static_cast<std::size_t>(p)] = i;
  }
  std::vector<Edge> edges;
  for (int i = 0; i < static_cast<int>(out.to_parent.size()); ++i) {
    const int p = out.to_parent[static_cast<std::size_t>(i)];
    for (int w : g.neighbors(p)) {
      const int j = out.from_parent[static_cast<std::size_t>(w)];
      if (j > i) edges.emplace_back(i, j);
    }
  }
  out.graph = Graph::from_edges(static_cast<int>(out.to_parent.size()), edges);
  return out;
}

Subgraph remove_vertices(const Graph& g, std::span<const int> removed) {
  std::vector<bool> gone(static_cast<std::size_t>(g.num_vertices()), false);
  for (int v : removed) {
    DC_REQUIRE(0 <= v && v < g.num_vertices(), "removed vertex out of range");
    gone[static_cast<std::size_t>(v)] = true;
  }
  std::vector<int> keep;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!gone[static_cast<std::size_t>(v)]) keep.push_back(v);
  }
  return induced_subgraph(g, keep);
}

Graph power_graph(const Graph& g, int k, ThreadPool* pool) {
  DC_REQUIRE(k >= 1, "power graph exponent must be >= 1");
  const int n = g.num_vertices();
  // One truncated BFS per vertex, chunked over the pool; each chunk reuses
  // one scratch and collects edges into its own fragment, concatenated in
  // chunk order (from_edges normalizes, so any chunking yields the same
  // graph).
  // Chunk cap = one per executor: each chunk holds O(n) BFS scratch.
  const int max_chunks = pool != nullptr ? pool->num_threads() : 1;
  const int num_chunks =
      pool != nullptr ? pool->num_range_chunks(n, max_chunks) : 1;
  std::vector<std::vector<Edge>> chunk_edges(
      static_cast<std::size_t>(num_chunks));
  pooled_ranges(
      pool, 0, n,
      [&](int chunk, int lo, int hi) {
        BfsScratch scratch;
        FrontierBfs engine;
        auto& edges = chunk_edges[static_cast<std::size_t>(chunk)];
        for (int v = lo; v < hi; ++v) {
          engine.run(g, scratch, v, k);
          for (int u : scratch.order()) {
            if (u > v) edges.emplace_back(v, u);
          }
        }
      },
      max_chunks);
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& ce : chunk_edges) total += ce.size();
  edges.reserve(total);
  for (const auto& ce : chunk_edges) {
    edges.insert(edges.end(), ce.begin(), ce.end());
  }
  return Graph::from_edges(n, edges);
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  std::vector<Edge> edges = a.edge_list();
  const int shift = a.num_vertices();
  for (const auto& [u, v] : b.edge_list()) {
    edges.emplace_back(u + shift, v + shift);
  }
  return Graph::from_edges(a.num_vertices() + b.num_vertices(), edges);
}

}  // namespace deltacol
