// Graph-valued operations: induced subgraphs (with vertex maps), vertex
// deletion, and power graphs G^k (used to run MIS-based ruling sets at
// distance, Lemma 20).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

// An induced subgraph together with the mapping between its dense vertex ids
// and the parent graph's ids.
struct Subgraph {
  Graph graph;
  std::vector<int> to_parent;    // subgraph id -> parent id
  std::vector<int> from_parent;  // parent id -> subgraph id, or -1
};

Subgraph induced_subgraph(const Graph& g, std::span<const int> vertices);
inline Subgraph induced_subgraph(const Graph& g, const std::vector<int>& v) {
  return induced_subgraph(g, std::span<const int>(v));
}

// G with a vertex subset removed (keeps ids of the remaining vertices dense;
// returns the mapping like induced_subgraph).
Subgraph remove_vertices(const Graph& g, std::span<const int> removed);

// The k-th power: u ~ v iff 1 <= dist_G(u, v) <= k. Computed by truncated
// frontier BFS from every vertex, fanned out over the pool when one is
// attached (per-chunk scratch reuse; the result is thread-count
// independent).
Graph power_graph(const Graph& g, int k, ThreadPool* pool = nullptr);

// Disjoint union of two graphs (vertices of b are shifted by a.num_vertices()).
Graph disjoint_union(const Graph& a, const Graph& b);

}  // namespace deltacol
