#include "graph/partition.h"

#include <algorithm>

#include "util/check.h"

namespace deltacol {

const char* partition_strategy_name(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kCluster:
      return "cluster";
  }
  DC_REQUIRE(false, "unknown partition strategy");
  return "contiguous";
}

bool parse_partition_strategy(const std::string& name,
                              PartitionStrategy* out) {
  if (name == "contiguous") {
    *out = PartitionStrategy::kContiguous;
    return true;
  }
  if (name == "cluster") {
    *out = PartitionStrategy::kCluster;
    return true;
  }
  return false;
}

VertexPartition VertexPartition::contiguous(int n, int num_shards) {
  DC_REQUIRE(n >= 0, "partition over negative vertex count");
  DC_REQUIRE(num_shards >= 1, "partition needs at least one shard");
  VertexPartition p;
  p.n_ = n;
  p.num_shards_ = num_shards;
  return p;
}

VertexPartition VertexPartition::renumbered(
    int num_shards, std::shared_ptr<const std::vector<int>> to_new,
    std::shared_ptr<const std::vector<int>> to_old) {
  DC_REQUIRE(num_shards >= 1, "partition needs at least one shard");
  DC_REQUIRE(to_new != nullptr && to_old != nullptr,
             "renumbered partition needs both permutation tables");
  DC_REQUIRE(to_new->size() == to_old->size(),
             "permutation tables disagree on n");
  const int n = static_cast<int>(to_new->size());
  for (int v = 0; v < n; ++v) {
    const int p = (*to_new)[static_cast<std::size_t>(v)];
    DC_REQUIRE(0 <= p && p < n, "renumbering position out of range");
    DC_REQUIRE((*to_old)[static_cast<std::size_t>(p)] == v,
               "renumbering is not a bijection");
  }
  // One shard owns everything regardless of layout: keep the cheap
  // contiguous representation (identity position map) so S=1 stays the
  // exact serial baseline.
  if (num_shards == 1) return contiguous(n, 1);
  VertexPartition part = contiguous(n, num_shards);
  part.to_new_ = std::move(to_new);
  part.to_old_ = std::move(to_old);
  auto owned = std::make_shared<std::vector<std::vector<int>>>(
      static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto& list = (*owned)[static_cast<std::size_t>(s)];
    list.reserve(static_cast<std::size_t>(part.size(s)));
    for (int p = part.begin(s); p < part.end(s); ++p) {
      list.push_back((*part.to_old_)[static_cast<std::size_t>(p)]);
    }
    // Owned ids ascend in *original* id so every shard-local sweep visits
    // vertices in the same relative order the serial engine does — the
    // keystone of the stable-merge argument in DESIGN.md §6.
    std::sort(list.begin(), list.end());
  }
  part.owned_ = std::move(owned);
  return part;
}

int VertexPartition::resolve_num_shards(int requested) {
  return std::max(1, requested);
}

GraphView::GraphView(const Graph& g, const VertexPartition& part, int shard)
    : g_(&g), part_(part), shard_(shard) {
  DC_REQUIRE(part.num_vertices() == g.num_vertices(),
             "partition does not span the graph");
  DC_REQUIRE(0 <= shard && shard < part.num_shards(), "shard out of range");
  lo_ = part.begin(shard);
  hi_ = part.end(shard);
  cross_.assign(static_cast<std::size_t>(part.num_shards()), 0);
  for (int i = 0; i < part.size(shard); ++i) {
    const int v = part.owned_vertex(shard, i);
    for (int u : g.neighbors(v)) {
      if (owns(u)) {
        // Counted once per undirected internal edge (from its smaller end).
        if (v < u) ++internal_edges_;
      } else {
        halo_.push_back(u);
        ++cross_[static_cast<std::size_t>(part.shard_of(u))];
      }
    }
  }
  std::sort(halo_.begin(), halo_.end());
  halo_.erase(std::unique(halo_.begin(), halo_.end()), halo_.end());
}

bool GraphView::in_halo(int v) const {
  return std::binary_search(halo_.begin(), halo_.end(), v);
}

std::int64_t GraphView::total_cross_edges() const {
  std::int64_t total = 0;
  for (std::int64_t c : cross_) total += c;
  return total;
}

std::vector<GraphView> build_graph_views(const Graph& g,
                                         const VertexPartition& part) {
  std::vector<GraphView> views;
  views.reserve(static_cast<std::size_t>(part.num_shards()));
  for (int s = 0; s < part.num_shards(); ++s) views.emplace_back(g, part, s);
  return views;
}

}  // namespace deltacol
