#include "graph/partition.h"

#include <algorithm>

#include "util/check.h"

namespace deltacol {

VertexPartition VertexPartition::contiguous(int n, int num_shards) {
  DC_REQUIRE(n >= 0, "partition over negative vertex count");
  DC_REQUIRE(num_shards >= 1, "partition needs at least one shard");
  VertexPartition p;
  p.n_ = n;
  p.num_shards_ = num_shards;
  return p;
}

int VertexPartition::resolve_num_shards(int requested) {
  return std::max(1, requested);
}

GraphView::GraphView(const Graph& g, const VertexPartition& part, int shard)
    : g_(&g), shard_(shard) {
  DC_REQUIRE(part.num_vertices() == g.num_vertices(),
             "partition does not span the graph");
  DC_REQUIRE(0 <= shard && shard < part.num_shards(), "shard out of range");
  lo_ = part.begin(shard);
  hi_ = part.end(shard);
  cross_.assign(static_cast<std::size_t>(part.num_shards()), 0);
  for (int v = lo_; v < hi_; ++v) {
    for (int u : g.neighbors(v)) {
      if (owns(u)) {
        // Counted once per undirected internal edge (from its smaller end).
        if (v < u) ++internal_edges_;
      } else {
        halo_.push_back(u);
        ++cross_[static_cast<std::size_t>(part.shard_of(u))];
      }
    }
  }
  std::sort(halo_.begin(), halo_.end());
  halo_.erase(std::unique(halo_.begin(), halo_.end()), halo_.end());
}

bool GraphView::in_halo(int v) const {
  return std::binary_search(halo_.begin(), halo_.end(), v);
}

std::int64_t GraphView::total_cross_edges() const {
  std::int64_t total = 0;
  for (std::int64_t c : cross_) total += c;
  return total;
}

std::vector<GraphView> build_graph_views(const Graph& g,
                                         const VertexPartition& part) {
  std::vector<GraphView> views;
  views.reserve(static_cast<std::size_t>(part.num_shards()));
  for (int s = 0; s < part.num_shards(); ++s) views.emplace_back(g, part, s);
  return views;
}

}  // namespace deltacol
