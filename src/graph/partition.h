/// \file
/// Deterministic vertex partitioning and per-shard graph views — the data
/// layer of the shard runtime (see runtime/mailbox.h for the execution
/// layer and ARCHITECTURE.md "The shard layer" for the full picture).
///
/// A `VertexPartition` splits the dense vertex ids [0, n) into `num_shards`
/// **contiguous, ascending** ranges whose sizes differ by at most one. Two
/// properties make this the partition the whole runtime is built on:
///
///  1. **Determinism.** The split is a pure function of (n, num_shards) —
///     no hashing, no seeds — so every process (today: every shard job on
///     the ThreadPool; later: every rank of a distributed transport) derives
///     the identical owner map locally.
///  2. **Order preservation.** Ranges ascend with the shard id, so
///     concatenating per-shard data in shard order reproduces ascending
///     vertex order. This is what lets the mailbox layer merge shard-major
///     and still hand every inbox the exact byte sequence the serial engine
///     produced (DESIGN.md §6, "shard-major merge").
///
/// A `GraphView` is one shard's projection of a CSR `Graph`: a zero-copy
/// window of owned vertices (whose adjacency it reads directly from the
/// parent's CSR arrays) plus a **halo table** — the sorted global ids of
/// non-owned vertices adjacent to owned ones (the "ghost" vertices a
/// distributed shard would replicate) and per-destination-shard cross-edge
/// counts (the CONGEST-style message budget of one dense round, measured by
/// experiment E15).
///
/// **Renumbered partitions (PR 8).** A `VertexPartition` can additionally
/// carry a locality-aware bijection between the original vertex ids and a
/// *layout* space (see graph/renumber.h): shard s still owns the contiguous
/// layout range [begin(s), end(s)), but the vertices living in that range
/// are `{to_old[p] : p in [begin(s), end(s))}`. Execution stays entirely in
/// original ids — the renumbering only redefines *ownership and layout* —
/// so every determinism contract (id-keyed RNG splits, id tie-breaks,
/// Linial's id-seeded palette) is untouched by construction; DESIGN.md §6
/// gives the merge-order argument. `shard_of` remains O(1): one array
/// lookup plus the closed form.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace deltacol {

/// How the shard runtime assigns vertices to shards.
///  - kContiguous: shard s owns the ascending id range
///    [floor(s*n/S), floor((s+1)*n/S)) — the pessimistic baseline (E15:
///    cross_fraction ~ (S-1)/S on scrambled inputs).
///  - kCluster: a deterministic BFS-ball renumbering pre-pass
///    (graph/renumber.h) packs nearby vertices into the same shard;
///    observables stay bit-identical to kContiguous.
enum class PartitionStrategy {
  kContiguous = 0,
  kCluster = 1,
};

/// "contiguous" / "cluster" (stable CLI / JSON spelling).
const char* partition_strategy_name(PartitionStrategy strategy);

/// Parses the CLI spelling; returns false (and leaves *out alone) on an
/// unknown name.
bool parse_partition_strategy(const std::string& name, PartitionStrategy* out);

/// Contiguous balanced split of [0, n) into num_shards ascending ranges.
/// Empty shards are legal (num_shards may exceed n); shard s owns
/// [floor(s*n/S), floor((s+1)*n/S)).
///
/// In renumbered mode (see file comment) the ranges live in *layout* space
/// and `owned_vertex(s, i)` enumerates the owned original ids in ascending
/// original-id order. Copies are O(1): the permutation tables are shared.
class VertexPartition {
 public:
  VertexPartition() = default;

  /// The canonical deterministic partition (see file comment).
  /// Requires num_shards >= 1; n >= 0.
  static VertexPartition contiguous(int n, int num_shards);

  /// A partition whose shard s owns the original ids mapped into the layout
  /// range [begin(s), end(s)) by the bijection to_new/to_old
  /// (to_old[to_new[v]] == v for all v; validated). num_shards == 1
  /// degenerates to contiguous (every vertex owned by shard 0).
  static VertexPartition renumbered(
      int num_shards, std::shared_ptr<const std::vector<int>> to_new,
      std::shared_ptr<const std::vector<int>> to_old);

  /// Resolves a DeltaColoringOptions-style shard count: values < 1 mean
  /// "unsharded" and clamp to 1.
  static int resolve_num_shards(int requested);

  int num_vertices() const { return n_; }
  int num_shards() const { return num_shards_; }

  /// True when layout space == id space (no renumbering attached).
  bool is_contiguous() const { return to_new_ == nullptr; }

  /// First layout position of shard s (== first owned vertex id when
  /// is_contiguous()).
  int begin(int s) const { return static_cast<int>(int64_begin(s)); }
  /// One past the last layout position of shard s.
  int end(int s) const { return static_cast<int>(int64_begin(s + 1)); }
  int size(int s) const { return end(s) - begin(s); }

  /// Layout position of original vertex v (identity when contiguous).
  int position_of(int v) const {
    return to_new_ == nullptr ? v : (*to_new_)[static_cast<std::size_t>(v)];
  }
  /// Original vertex at layout position p (identity when contiguous).
  int vertex_at(int p) const {
    return to_old_ == nullptr ? p : (*to_old_)[static_cast<std::size_t>(p)];
  }

  /// i-th owned original id of shard s, ascending in original id;
  /// i in [0, size(s)). O(1) either way.
  int owned_vertex(int s, int i) const {
    return owned_ == nullptr
               ? begin(s) + i
               : (*owned_)[static_cast<std::size_t>(s)]
                          [static_cast<std::size_t>(i)];
  }

  /// Owner shard of vertex v, in O(1) (closed form of the inverse of
  /// begin() applied to v's layout position; exhaustively pinned against a
  /// scan in tests/test_partition and tests/test_renumber).
  /// Requires 0 <= v < num_vertices().
  int shard_of(int v) const {
    return static_cast<int>(
        ((static_cast<std::int64_t>(position_of(v)) + 1) * num_shards_ - 1) /
        n_);
  }

 private:
  std::int64_t int64_begin(int s) const {
    return static_cast<std::int64_t>(s) * n_ / num_shards_;
  }

  int n_ = 0;
  int num_shards_ = 1;
  // Renumbered mode only (all null when contiguous); shared so partition
  // copies stay O(1).
  std::shared_ptr<const std::vector<int>> to_new_;
  std::shared_ptr<const std::vector<int>> to_old_;
  std::shared_ptr<const std::vector<std::vector<int>>> owned_;
};

/// One shard's view of a Graph: owned contiguous layout range + halo table.
/// Zero-copy — adjacency reads go straight to the parent CSR; only the halo
/// table and the per-shard cross-edge counters are materialized (O(owned
/// adjacency) build, once). Under a renumbered partition the owned range
/// [owned_begin(), owned_end()) is in *layout* space; `owned_vertex(i)`
/// enumerates the owned original ids, and halo()/neighbors() stay in
/// original ids throughout.
class GraphView {
 public:
  GraphView() = default;

  /// Builds shard `shard`'s view. The partition must span g's vertices.
  GraphView(const Graph& g, const VertexPartition& part, int shard);

  const Graph& graph() const { return *g_; }
  const VertexPartition& partition() const { return part_; }
  int shard() const { return shard_; }

  /// Layout-space bounds of the owned range (== vertex-id bounds when the
  /// partition is contiguous).
  int owned_begin() const { return lo_; }
  int owned_end() const { return hi_; }
  int num_owned() const { return hi_ - lo_; }
  /// i-th owned original id, ascending in original id; i in [0, num_owned()).
  int owned_vertex(int i) const { return part_.owned_vertex(shard_, i); }
  bool owns(int v) const {
    return part_.is_contiguous() ? (lo_ <= v && v < hi_)
                                 : part_.shard_of(v) == shard_;
  }

  /// Adjacency of an owned vertex (straight from the parent CSR; callers
  /// split owned vs halo endpoints with owns()).
  std::span<const int> neighbors(int v) const { return g_->neighbors(v); }

  /// Ghost table: sorted, duplicate-free global ids of every non-owned
  /// vertex adjacent to an owned one. A distributed shard replicates
  /// exactly these vertices' state.
  std::span<const int> halo() const { return {halo_.data(), halo_.size()}; }
  bool in_halo(int v) const;

  /// Undirected edges with both endpoints owned.
  std::int64_t internal_edges() const { return internal_edges_; }
  /// Directed (owned -> dst-shard) cross edges: the number of per-round
  /// messages this shard sends to `dst` under a dense all-neighbors round.
  std::int64_t cross_edges(int dst_shard) const {
    return cross_[static_cast<std::size_t>(dst_shard)];
  }
  /// Total directed cross edges leaving this shard.
  std::int64_t total_cross_edges() const;

 private:
  const Graph* g_ = nullptr;
  VertexPartition part_;  // O(1) copy (shared permutation tables)
  int shard_ = 0;
  int lo_ = 0;
  int hi_ = 0;
  std::vector<int> halo_;
  std::vector<std::int64_t> cross_;  // indexed by destination shard
  std::int64_t internal_edges_ = 0;
};

/// All shards' views of g under part, indexed by shard id.
std::vector<GraphView> build_graph_views(const Graph& g,
                                         const VertexPartition& part);

}  // namespace deltacol
