/// \file
/// Deterministic vertex partitioning and per-shard graph views — the data
/// layer of the shard runtime (see runtime/mailbox.h for the execution
/// layer and ARCHITECTURE.md "The shard layer" for the full picture).
///
/// A `VertexPartition` splits the dense vertex ids [0, n) into `num_shards`
/// **contiguous, ascending** ranges whose sizes differ by at most one. Two
/// properties make this the partition the whole runtime is built on:
///
///  1. **Determinism.** The split is a pure function of (n, num_shards) —
///     no hashing, no seeds — so every process (today: every shard job on
///     the ThreadPool; later: every rank of a distributed transport) derives
///     the identical owner map locally.
///  2. **Order preservation.** Ranges ascend with the shard id, so
///     concatenating per-shard data in shard order reproduces ascending
///     vertex order. This is what lets the mailbox layer merge shard-major
///     and still hand every inbox the exact byte sequence the serial engine
///     produced (DESIGN.md §6, "shard-major merge").
///
/// A `GraphView` is one shard's projection of a CSR `Graph`: a zero-copy
/// window of owned vertices (whose adjacency it reads directly from the
/// parent's CSR arrays) plus a **halo table** — the sorted global ids of
/// non-owned vertices adjacent to owned ones (the "ghost" vertices a
/// distributed shard would replicate) and per-destination-shard cross-edge
/// counts (the CONGEST-style message budget of one dense round, measured by
/// experiment E15).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace deltacol {

/// Contiguous balanced split of [0, n) into num_shards ascending ranges.
/// Empty shards are legal (num_shards may exceed n); shard s owns
/// [floor(s*n/S), floor((s+1)*n/S)).
class VertexPartition {
 public:
  VertexPartition() = default;

  /// The canonical deterministic partition (see file comment).
  /// Requires num_shards >= 1; n >= 0.
  static VertexPartition contiguous(int n, int num_shards);

  /// Resolves a DeltaColoringOptions-style shard count: values < 1 mean
  /// "unsharded" and clamp to 1.
  static int resolve_num_shards(int requested);

  int num_vertices() const { return n_; }
  int num_shards() const { return num_shards_; }

  /// First owned vertex of shard s.
  int begin(int s) const { return static_cast<int>(int64_begin(s)); }
  /// One past the last owned vertex of shard s.
  int end(int s) const { return static_cast<int>(int64_begin(s + 1)); }
  int size(int s) const { return end(s) - begin(s); }

  /// Owner shard of vertex v, in O(1) (closed form of the inverse of
  /// begin(); exhaustively pinned against a scan in tests/test_partition).
  /// Requires 0 <= v < num_vertices().
  int shard_of(int v) const {
    return static_cast<int>(
        ((static_cast<std::int64_t>(v) + 1) * num_shards_ - 1) / n_);
  }

 private:
  std::int64_t int64_begin(int s) const {
    return static_cast<std::int64_t>(s) * n_ / num_shards_;
  }

  int n_ = 0;
  int num_shards_ = 1;
};

/// One shard's view of a Graph: owned contiguous vertex range + halo table.
/// Zero-copy — adjacency reads go straight to the parent CSR; only the halo
/// table and the per-shard cross-edge counters are materialized (O(owned
/// adjacency) build, once).
class GraphView {
 public:
  GraphView() = default;

  /// Builds shard `shard`'s view. The partition must span g's vertices.
  GraphView(const Graph& g, const VertexPartition& part, int shard);

  const Graph& graph() const { return *g_; }
  int shard() const { return shard_; }

  int owned_begin() const { return lo_; }
  int owned_end() const { return hi_; }
  int num_owned() const { return hi_ - lo_; }
  bool owns(int v) const { return lo_ <= v && v < hi_; }

  /// Adjacency of an owned vertex (straight from the parent CSR; callers
  /// split owned vs halo endpoints with owns()).
  std::span<const int> neighbors(int v) const { return g_->neighbors(v); }

  /// Ghost table: sorted, duplicate-free global ids of every non-owned
  /// vertex adjacent to an owned one. A distributed shard replicates
  /// exactly these vertices' state.
  std::span<const int> halo() const { return {halo_.data(), halo_.size()}; }
  bool in_halo(int v) const;

  /// Undirected edges with both endpoints owned.
  std::int64_t internal_edges() const { return internal_edges_; }
  /// Directed (owned -> dst-shard) cross edges: the number of per-round
  /// messages this shard sends to `dst` under a dense all-neighbors round.
  std::int64_t cross_edges(int dst_shard) const {
    return cross_[static_cast<std::size_t>(dst_shard)];
  }
  /// Total directed cross edges leaving this shard.
  std::int64_t total_cross_edges() const;

 private:
  const Graph* g_ = nullptr;
  int shard_ = 0;
  int lo_ = 0;
  int hi_ = 0;
  std::vector<int> halo_;
  std::vector<std::int64_t> cross_;  // indexed by destination shard
  std::int64_t internal_edges_ = 0;
};

/// All shards' views of g under part, indexed by shard id.
std::vector<GraphView> build_graph_views(const Graph& g,
                                         const VertexPartition& part);

}  // namespace deltacol
