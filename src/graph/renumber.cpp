#include "graph/renumber.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "graph/frontier_bfs.h"
#include "util/check.h"

namespace deltacol {

namespace {

// Ascending-neighbor DFS preorder over the vertices with cluster_of[v] == c,
// starting at seed, appended to out. The cluster is connected (a prefix of a
// BFS visit order), so this reaches every member exactly once.
void cluster_preorder_into(const Graph& g, const std::vector<int>& cluster_of,
                           int c, int seed, std::vector<char>& on_stack,
                           std::vector<int>& stack, std::vector<int>& out) {
  stack.clear();
  stack.push_back(seed);
  on_stack[static_cast<std::size_t>(seed)] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    out.push_back(v);
    // CSR adjacency ascends; push reversed so the smallest id pops first.
    const auto nbrs = g.neighbors(v);
    for (auto it = nbrs.rbegin(); it != nbrs.rend(); ++it) {
      const int u = *it;
      if (cluster_of[static_cast<std::size_t>(u)] != c) continue;
      if (on_stack[static_cast<std::size_t>(u)]) continue;
      on_stack[static_cast<std::size_t>(u)] = 1;
      stack.push_back(u);
    }
  }
}

}  // namespace

Renumbering identity_renumbering(int n) {
  DC_REQUIRE(n >= 0, "renumbering over negative vertex count");
  auto ident = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n));
  std::iota(ident->begin(), ident->end(), 0);
  Renumbering r;
  r.to_new = ident;
  r.to_old = ident;  // self-inverse
  r.num_clusters = 0;
  return r;
}

Renumbering cluster_renumbering(const Graph& g, int target_cluster_size,
                                ThreadPool* pool) {
  const int n = g.num_vertices();
  if (target_cluster_size <= 0) target_cluster_size = std::max(1, n / 64);

  // ---- 1. Grow clusters: lowest unassigned seed, filtered BFS, take the
  // first `target` vertices of the visit order. -----------------------------
  std::vector<int> cluster_of(static_cast<std::size_t>(n), -1);
  std::vector<int> cluster_seed;
  FrontierBfs bfs(pool);
  BfsScratch scratch;
  for (int seed = 0; seed < n; ++seed) {
    if (cluster_of[static_cast<std::size_t>(seed)] >= 0) continue;
    const int c = static_cast<int>(cluster_seed.size());
    bfs.run_filtered(g, scratch, seed, /*max_dist=*/-1, [&](int v) {
      return cluster_of[static_cast<std::size_t>(v)] < 0;
    });
    const auto order = scratch.order();
    const std::size_t take = std::min(
        order.size(), static_cast<std::size_t>(target_cluster_size));
    for (std::size_t i = 0; i < take; ++i) {
      cluster_of[static_cast<std::size_t>(order[i])] = c;
    }
    cluster_seed.push_back(seed);
  }
  const int num_clusters = static_cast<int>(cluster_seed.size());

  // ---- 2+3. Linearize: DFS over the cluster quotient (ascending cluster
  // ids, lowest-unvisited restart), emitting each cluster's members in
  // within-cluster DFS preorder. --------------------------------------------
  std::vector<std::vector<int>> quotient(
      static_cast<std::size_t>(num_clusters));
  for (int v = 0; v < n; ++v) {
    const int cv = cluster_of[static_cast<std::size_t>(v)];
    for (int u : g.neighbors(v)) {
      const int cu = cluster_of[static_cast<std::size_t>(u)];
      if (cu != cv) quotient[static_cast<std::size_t>(cv)].push_back(cu);
    }
  }
  for (auto& adj : quotient) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  auto to_old = std::make_shared<std::vector<int>>();
  to_old->reserve(static_cast<std::size_t>(n));
  std::vector<char> cluster_done(static_cast<std::size_t>(num_clusters), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<int> cstack;
  std::vector<int> vstack;
  for (int root = 0; root < num_clusters; ++root) {
    if (cluster_done[static_cast<std::size_t>(root)]) continue;
    cstack.clear();
    cstack.push_back(root);
    cluster_done[static_cast<std::size_t>(root)] = 1;
    while (!cstack.empty()) {
      const int c = cstack.back();
      cstack.pop_back();
      cluster_preorder_into(g, cluster_of, c,
                            cluster_seed[static_cast<std::size_t>(c)],
                            on_stack, vstack, *to_old);
      const auto& adj = quotient[static_cast<std::size_t>(c)];
      for (auto it = adj.rbegin(); it != adj.rend(); ++it) {
        if (cluster_done[static_cast<std::size_t>(*it)]) continue;
        cluster_done[static_cast<std::size_t>(*it)] = 1;
        cstack.push_back(*it);
      }
    }
  }
  DC_ENSURE(static_cast<int>(to_old->size()) == n,
            "cluster linearization lost vertices");

  auto to_new = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    (*to_new)[static_cast<std::size_t>((*to_old)[static_cast<std::size_t>(p)])] =
        p;
  }
  Renumbering r;
  r.to_new = std::move(to_new);
  r.to_old = std::move(to_old);
  r.num_clusters = num_clusters;
  return r;
}

Graph relabeled_graph(const Graph& g, const Renumbering& renum) {
  const int n = g.num_vertices();
  DC_REQUIRE(renum.num_vertices() == n, "renumbering does not span the graph");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (int v = 0; v < n; ++v) {
    for (int u : g.neighbors(v)) {
      if (v < u) {
        edges.push_back({renum.position_of(v), renum.position_of(u)});
      }
    }
  }
  return Graph::from_edges(n, edges);
}

VertexPartition make_partition(const Graph& g, int num_shards,
                               PartitionStrategy strategy, ThreadPool* pool) {
  const int resolved = VertexPartition::resolve_num_shards(num_shards);
  if (strategy == PartitionStrategy::kContiguous || resolved <= 1) {
    return VertexPartition::contiguous(g.num_vertices(), resolved);
  }
  const Renumbering renum = cluster_renumbering(g, /*target=*/0, pool);
  return VertexPartition::renumbered(resolved, renum.to_new, renum.to_old);
}

}  // namespace deltacol
