/// \file
/// Locality-aware vertex renumbering — the pre-pass behind
/// `PartitionStrategy::kCluster` (ROADMAP direction 2; DESIGN.md §6 for the
/// determinism argument, ARCHITECTURE.md "Partitioning" for the picture).
///
/// The contiguous `VertexPartition` is the pessimistic baseline: on inputs
/// with arbitrary ("wild") vertex ids, a fraction ≈ (S-1)/S of all edges
/// cross shards, so nearly every mailbox envelope — and, on the TCP path,
/// nearly every encoded payload byte — is cross-rank (experiment E15).
/// `cluster_renumbering` computes a bijection between the original ids and a
/// *layout* space in which topologically nearby vertices sit at nearby
/// positions, so the same contiguous split now cuts along cluster seams
/// (experiment E18 measures the drop).
///
/// The algorithm (chosen over label propagation — see DESIGN.md §6 for the
/// justification) is deterministic BFS ball growing on the existing
/// `FrontierBfs` engine, the same machinery the paper's network
/// decomposition uses for cluster growing:
///
///  1. **Grow.** Repeatedly take the lowest still-unassigned id as a seed,
///     run a filtered BFS over unassigned vertices, and carve off the first
///     `target_cluster_size` vertices of its visit order (a prefix of BFS
///     visit order is connected, so every cluster is connected).
///  2. **Linearize within clusters.** Order each cluster's members by an
///     ascending-neighbor DFS preorder from the seed, restricted to the
///     cluster. DFS subtree contiguity keeps any *slice* of a cluster's
///     range locality-dense — BFS level order would interleave tree levels
///     (on trees/cacti it degenerates to heap order, where parent and child
///     are far apart).
///  3. **Linearize across clusters.** Concatenate clusters in DFS preorder
///     over the cluster quotient graph (ascending cluster ids, restarting
///     from the lowest unvisited cluster per component), so adjacent
///     clusters get adjacent layout ranges.
///
/// The result is a pure function of the graph — no seeds, no shard count —
/// so every rank derives the identical permutation locally, and one
/// permutation serves every S. Cost: O(K·(n+m)) with K = ceil(n /
/// target_cluster_size) clusters per component (the filtered BFS re-scans
/// the shrinking unassigned region once per cluster).
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/thread_pool.h"

namespace deltacol {

/// A bijection original id <-> layout position, shared (O(1) copies).
struct Renumbering {
  /// original id v -> layout position.
  std::shared_ptr<const std::vector<int>> to_new;
  /// layout position p -> original id.
  std::shared_ptr<const std::vector<int>> to_old;
  /// Number of clusters the growing pass produced (1 cluster per connected
  /// region of size <= target; identity_renumbering reports 0).
  int num_clusters = 0;

  int num_vertices() const {
    return to_new == nullptr ? 0 : static_cast<int>(to_new->size());
  }
  int position_of(int v) const {
    return (*to_new)[static_cast<std::size_t>(v)];
  }
  int original_of(int p) const {
    return (*to_old)[static_cast<std::size_t>(p)];
  }
};

/// The identity layout (useful as a differential baseline in tests).
Renumbering identity_renumbering(int n);

/// Deterministic BFS-ball clustering + DFS linearization (file comment).
/// target_cluster_size <= 0 picks the default max(1, n/64) — small enough
/// that any shard count up to 64 gets whole clusters, large enough that the
/// quotient stays tiny. The pool only accelerates the BFS expansion; the
/// result is bit-identical for every pool size (FrontierBfs contract).
Renumbering cluster_renumbering(const Graph& g, int target_cluster_size = 0,
                                ThreadPool* pool = nullptr);

/// The graph in layout coordinates: vertex p is renum.original_of(p), edges
/// relabeled accordingly. The runtime never needs this (execution stays in
/// original ids); it exists for isomorphism checks and locality inspection.
Graph relabeled_graph(const Graph& g, const Renumbering& renum);

/// The partition the shard runtime should use for (g, num_shards) under
/// `strategy`: plain contiguous, or contiguous-over-the-cluster-layout.
/// num_shards is resolved DeltaColoringOptions-style (< 1 clamps to 1);
/// S == 1 always yields the contiguous partition (no renumbering cost on
/// the serial path).
VertexPartition make_partition(const Graph& g, int num_shards,
                               PartitionStrategy strategy,
                               ThreadPool* pool = nullptr);

}  // namespace deltacol
