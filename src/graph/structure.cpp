#include "graph/structure.h"

#include "graph/components.h"
#include "graph/ops.h"

namespace deltacol {

bool is_clique(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) return false;
  for (int v = 0; v < n; ++v) {
    if (g.degree(v) != n - 1) return false;
  }
  return true;
}

bool is_cycle(const Graph& g) {
  const int n = g.num_vertices();
  if (n < 3) return false;
  for (int v = 0; v < n; ++v) {
    if (g.degree(v) != 2) return false;
  }
  return is_connected(g);
}

bool is_odd_cycle(const Graph& g) { return is_cycle(g) && g.num_vertices() % 2 == 1; }

bool is_path(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) return false;
  if (n == 1) return true;
  int deg_one = 0;
  for (int v = 0; v < n; ++v) {
    const int d = g.degree(v);
    if (d > 2) return false;
    if (d == 1) ++deg_one;
    if (d == 0) return false;
  }
  return deg_one == 2 && is_connected(g);
}

bool is_nice(const Graph& g) {
  return is_connected(g) && !is_path(g) && !is_cycle(g) && !is_clique(g);
}

bool is_gallai_tree(const Graph& g) {
  const auto blocks = block_decomposition(g).blocks;
  for (const auto& block : blocks) {
    const auto sub = induced_subgraph(g, block);
    if (!is_clique(sub.graph) && !is_odd_cycle(sub.graph)) return false;
  }
  return true;
}

bool induces_clique(const Graph& g, std::span<const int> vertices) {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (!g.has_edge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

}  // namespace deltacol
