// Structural predicates from the paper's Section 2: cliques, cycles, paths,
// nice graphs, and Gallai trees (Definition 7 / Theorem 8).
#pragma once

#include <span>

#include "graph/graph.h"

namespace deltacol {

// Whole-graph predicates. All treat the graph as-is (they do not look at a
// subset); use ops.h::induced_subgraph to test a vertex subset.
bool is_clique(const Graph& g);       // complete graph on >= 1 vertices
bool is_cycle(const Graph& g);        // connected, every degree exactly 2, n >= 3
bool is_odd_cycle(const Graph& g);
bool is_path(const Graph& g);         // connected, max degree <= 2, not a cycle
// "Nice" per [PS95]: connected and neither a path, a cycle, nor a clique.
// Nice graphs are exactly the connected graphs the paper's algorithms accept.
bool is_nice(const Graph& g);

// A Gallai tree: every block is a clique or an odd cycle (Definition 7).
// By Theorem 8 [ERT79, Viz76], Gallai trees are exactly the graphs that are
// NOT degree-choosable.
bool is_gallai_tree(const Graph& g);

// Does the vertex subset induce a clique in g?
bool induces_clique(const Graph& g, std::span<const int> vertices);

}  // namespace deltacol
