#include "graph/traversal.h"

#include <algorithm>

#include "graph/frontier_bfs.h"
#include "util/check.h"

namespace deltacol {

std::vector<int> bfs_distances(const Graph& g, int source, int max_dist) {
  DC_REQUIRE(0 <= source && source < g.num_vertices(), "source out of range");
  BfsScratch scratch;
  FrontierBfs engine;
  engine.run(g, scratch, source, max_dist);
  return dense_distances(scratch, g.num_vertices(), kUnreachable);
}

MultiSourceBfs multi_source_bfs(const Graph& g, const std::vector<int>& sources,
                                int max_dist) {
  BfsScratch scratch;
  FrontierBfs engine;
  engine.run_multi_labeled(g, scratch, sources, max_dist);
  MultiSourceBfs out;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  out.dist.assign(n, kUnreachable);
  out.source.assign(n, -1);
  for (int v : scratch.order()) {
    out.dist[static_cast<std::size_t>(v)] = scratch.dist(v);
    out.source[static_cast<std::size_t>(v)] = scratch.source_of(v);
  }
  return out;
}

std::vector<int> ball(const Graph& g, int v, int r) {
  DC_REQUIRE(0 <= v && v < g.num_vertices(), "source out of range");
  BfsScratch scratch;
  FrontierBfs engine;
  engine.run(g, scratch, v, r);
  std::vector<int> out(scratch.order().begin(), scratch.order().end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> ball_filtered(const Graph& g, int v, int r,
                               const std::function<bool(int)>& allowed) {
  DC_REQUIRE(0 <= v && v < g.num_vertices(), "source out of range");
  BfsScratch scratch;
  FrontierBfs engine;
  engine.run_filtered(g, scratch, v, r, [&](int u) { return allowed(u); });
  return {scratch.order().begin(), scratch.order().end()};
}

std::vector<std::vector<int>> bfs_layers(const Graph& g, int v, int r) {
  DC_REQUIRE(0 <= v && v < g.num_vertices(), "source out of range");
  if (r < 0) return {};
  BfsScratch scratch;
  FrontierBfs engine;
  engine.run(g, scratch, v, r);
  // r+1 slots even when the BFS exhausts earlier, matching the classic API.
  std::vector<std::vector<int>> layers(static_cast<std::size_t>(r) + 1);
  for (int t = 0; t < scratch.num_levels(); ++t) {
    const auto lv = scratch.level(t);
    auto& slot = layers[static_cast<std::size_t>(t)];
    slot.assign(lv.begin(), lv.end());
    std::sort(slot.begin(), slot.end());
  }
  return layers;
}

int eccentricity(const Graph& g, int v) {
  DC_REQUIRE(0 <= v && v < g.num_vertices(), "source out of range");
  BfsScratch scratch;
  FrontierBfs engine;
  engine.run(g, scratch, v);
  return scratch.num_levels() - 1;
}

int graph_radius(const Graph& g, ThreadPool* pool) {
  return min_eccentricity(g, pool);
}

}  // namespace deltacol
