#include "graph/traversal.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace deltacol {

std::vector<int> bfs_distances(const Graph& g, int source, int max_dist) {
  DC_REQUIRE(0 <= source && source < g.num_vertices(), "source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), kUnreachable);
  std::queue<int> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    if (max_dist >= 0 && dist[u] >= max_dist) continue;
    for (int w : g.neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

MultiSourceBfs multi_source_bfs(const Graph& g, const std::vector<int>& sources,
                                int max_dist) {
  MultiSourceBfs out;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  out.dist.assign(n, kUnreachable);
  out.source.assign(n, -1);
  // Seed in increasing id order so FIFO order resolves distance ties toward
  // the smaller source id deterministically.
  std::vector<int> seeds = sources;
  std::sort(seeds.begin(), seeds.end());
  std::queue<int> q;
  for (int s : seeds) {
    DC_REQUIRE(0 <= s && s < g.num_vertices(), "source out of range");
    if (out.dist[s] == 0) continue;  // duplicate source
    out.dist[s] = 0;
    out.source[s] = s;
    q.push(s);
  }
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    if (max_dist >= 0 && out.dist[u] >= max_dist) continue;
    for (int w : g.neighbors(u)) {
      if (out.dist[w] == kUnreachable) {
        out.dist[w] = out.dist[u] + 1;
        out.source[w] = out.source[u];
        q.push(w);
      } else if (out.dist[w] == out.dist[u] + 1 &&
                 out.source[u] < out.source[w]) {
        // Equal distance through a smaller-id source: prefer it. Because the
        // queue is FIFO and seeds were pushed in id order this can only
        // tighten assignments before w is expanded.
        out.source[w] = out.source[u];
      }
    }
  }
  return out;
}

std::vector<int> ball(const Graph& g, int v, int r) {
  std::vector<int> out;
  const auto dist = bfs_distances(g, v, r);
  for (int u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] != kUnreachable) out.push_back(u);
  }
  return out;
}

std::vector<int> ball_filtered(const Graph& g, int v, int r,
                               const std::function<bool(int)>& allowed) {
  DC_REQUIRE(0 <= v && v < g.num_vertices(), "source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), kUnreachable);
  std::vector<int> out;
  std::queue<int> q;
  dist[v] = 0;
  out.push_back(v);
  q.push(v);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    if (dist[u] >= r) continue;
    for (int w : g.neighbors(u)) {
      if (dist[w] == kUnreachable && allowed(w)) {
        dist[w] = dist[u] + 1;
        out.push_back(w);
        q.push(w);
      }
    }
  }
  return out;
}

std::vector<std::vector<int>> bfs_layers(const Graph& g, int v, int r) {
  const auto dist = bfs_distances(g, v, r);
  std::vector<std::vector<int>> layers(static_cast<std::size_t>(r) + 1);
  for (int u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] != kUnreachable && dist[u] <= r) {
      layers[static_cast<std::size_t>(dist[u])].push_back(u);
    }
  }
  return layers;
}

int eccentricity(const Graph& g, int v) {
  const auto dist = bfs_distances(g, v);
  int ecc = 0;
  for (int d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

int graph_radius(const Graph& g) {
  DC_REQUIRE(g.num_vertices() > 0, "radius of empty graph");
  int radius = g.num_vertices();
  for (int v = 0; v < g.num_vertices(); ++v) {
    radius = std::min(radius, eccentricity(g, v));
  }
  return radius;
}

}  // namespace deltacol
