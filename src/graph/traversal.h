// Breadth-first traversal utilities: distances, balls, layered BFS, and
// multi-source BFS with nearest-source assignment (the workhorse of the
// paper's layering technique).
//
// These are the classic value-returning entry points; they are implemented
// on the level-synchronous engine in graph/frontier_bfs.h. Hot paths that
// issue many queries should hold a BfsScratch and use FrontierBfs directly —
// that amortizes the O(n) visitation state over all queries and returns
// results sized to the ball, not to n.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

inline constexpr int kUnreachable = -1;

// Single-source BFS distances; entries are kUnreachable if not reached within
// max_dist (max_dist < 0 means unbounded).
std::vector<int> bfs_distances(const Graph& g, int source, int max_dist = -1);

// Multi-source BFS. For every vertex, the distance to the nearest source and
// the identity of that source (ties broken toward the smaller source vertex
// id, matching the paper's "breaking ties using identifiers").
struct MultiSourceBfs {
  std::vector<int> dist;    // kUnreachable if no source reaches the vertex
  std::vector<int> source;  // nearest source vertex id, or -1
};
MultiSourceBfs multi_source_bfs(const Graph& g, const std::vector<int>& sources,
                                int max_dist = -1);

// Vertices within distance r of v (including v), in increasing id order.
std::vector<int> ball(const Graph& g, int v, int r);

// Like ball(), but the BFS may only traverse vertices for which allowed(u) is
// true (the source is always included), returned in BFS discovery order.
// Used for "uncolored path" reachability in the shattering phase. This is
// the type-erased ABI wrapper; templated callers should prefer
// FrontierBfs::run_filtered, which inlines the per-edge predicate test.
std::vector<int> ball_filtered(const Graph& g, int v, int r,
                               const std::function<bool(int)>& allowed);

// BFS layers from v: result[t] lists the vertices at distance exactly t (in
// increasing id order), up to distance r.
std::vector<std::vector<int>> bfs_layers(const Graph& g, int v, int r);

// Eccentricity of v (max distance to any reachable vertex).
int eccentricity(const Graph& g, int v);

// Radius of the graph restricted to one connected component containing any
// vertex: min over component vertices of eccentricity. For whole (connected)
// graphs only; callers pass induced subgraphs. The n eccentricity sweeps fan
// out over the pool when one is attached (chunk-deterministic min-fold; the
// result is thread-count independent).
int graph_radius(const Graph& g, ThreadPool* pool = nullptr);

}  // namespace deltacol
