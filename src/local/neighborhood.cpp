#include "local/neighborhood.h"

#include "graph/traversal.h"
#include "util/check.h"

namespace deltacol {

void NeighborhoodOracle::begin_gather(int radius, std::string_view phase) {
  DC_REQUIRE(radius >= 0, "gather radius must be non-negative");
  ledger_.charge(radius, phase);
  gathered_radius_ = radius;
}

Subgraph NeighborhoodOracle::ball_subgraph(int v, int r) const {
  DC_REQUIRE(r <= gathered_radius_,
             "ball radius exceeds the last gathered radius; call begin_gather");
  return induced_subgraph(graph_, ball(graph_, v, r));
}

}  // namespace deltacol
