#include "local/neighborhood.h"

#include "util/check.h"

namespace deltacol {

void NeighborhoodOracle::begin_gather(int radius, std::string_view phase) {
  DC_REQUIRE(radius >= 0, "gather radius must be non-negative");
  ledger_.charge(radius, phase);
  gathered_radius_ = radius;
}

Subgraph NeighborhoodOracle::ball_subgraph(int v, int r) {
  DC_REQUIRE(r <= gathered_radius_,
             "ball radius exceeds the last gathered radius; call begin_gather");
  FrontierBfs engine;
  engine.run(graph_, scratch_, v, r);
  return induced_subgraph(graph_, scratch_.order());
}

}  // namespace deltacol
