// Neighborhood gathering with honest round charging.
//
// In the LOCAL model, any t-round algorithm is equivalent to every node
// collecting its radius-t neighborhood (including all edges and any public
// per-node annotations) and computing its output locally. The oracle below
// implements that equivalence: callers extract balls and are charged the
// radius once per synchronous "gather" step, not once per node — all nodes
// gather in parallel in the same t rounds.
#pragma once

#include <vector>

#include "graph/frontier_bfs.h"
#include "graph/graph.h"
#include "graph/ops.h"
#include "local/round_ledger.h"

namespace deltacol {

class NeighborhoodOracle {
 public:
  NeighborhoodOracle(const Graph& g, RoundLedger& ledger)
      : graph_(g), ledger_(ledger) {}

  // Announce one parallel gather step of radius r (all nodes learn their
  // r-balls simultaneously). Subsequent ball_subgraph calls with radius <= r
  // are free until the next begin_gather.
  void begin_gather(int radius, std::string_view phase);

  // The induced subgraph on the r-ball around v. Requires a preceding
  // begin_gather with radius >= r. The ball BFS reuses one epoch-stamped
  // scratch across calls (O(ball) per query, not O(n)); the method is
  // deliberately non-const so one oracle cannot be shared across threads —
  // give each thread its own oracle.
  Subgraph ball_subgraph(int v, int r);

  const Graph& graph() const { return graph_; }

 private:
  const Graph& graph_;
  RoundLedger& ledger_;
  int gathered_radius_ = -1;
  BfsScratch scratch_;  // query cache, see ball_subgraph
};

}  // namespace deltacol
