#include "local/round_ledger.h"

#include <sstream>

#include "util/check.h"

namespace deltacol {

RoundLedger::RoundLedger(const RoundLedger& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  total_ = other.total_;
  congest_bits_ = other.congest_bits_;
  phases_ = other.phases_;
}

RoundLedger& RoundLedger::operator=(const RoundLedger& other) {
  if (this == &other) return *this;
  // Copy under the source lock first so self-consistent state is taken even
  // if the source is being charged concurrently.
  std::int64_t total;
  std::int64_t congest_bits;
  std::vector<PhaseTotal> phases;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    total = other.total_;
    congest_bits = other.congest_bits_;
    phases = other.phases_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  total_ = total;
  congest_bits_ = congest_bits;
  phases_ = std::move(phases);
  return *this;
}

void RoundLedger::set_congest_bits(std::int64_t bits) {
  std::lock_guard<std::mutex> lock(mu_);
  congest_bits_ = bits > 0 ? bits : 0;
}

std::int64_t RoundLedger::congest_bits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return congest_bits_;
}

std::int64_t RoundLedger::message_round_cost(std::int64_t max_edge_bits) const {
  DC_REQUIRE(max_edge_bits >= 0, "negative edge load");
  std::lock_guard<std::mutex> lock(mu_);
  if (congest_bits_ <= 0 || max_edge_bits <= congest_bits_) return 1;
  return (max_edge_bits + congest_bits_ - 1) / congest_bits_;
}

void RoundLedger::charge_message_round(std::int64_t max_edge_bits,
                                       std::string_view phase,
                                       std::int64_t multiplier) {
  DC_REQUIRE(multiplier >= 1, "multiplier must be >= 1");
  charge(message_round_cost(max_edge_bits) * multiplier, phase);
}

void RoundLedger::charge_locked(std::int64_t rounds, std::string_view phase) {
  total_ += rounds;
  for (auto& p : phases_) {
    if (p.phase == phase) {
      p.rounds += rounds;
      return;
    }
  }
  phases_.push_back({std::string(phase), rounds});
}

void RoundLedger::charge(std::int64_t rounds, std::string_view phase) {
  DC_REQUIRE(rounds >= 0, "cannot charge negative rounds");
  std::lock_guard<std::mutex> lock(mu_);
  charge_locked(rounds, phase);
}

std::int64_t RoundLedger::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::int64_t RoundLedger::phase_total(std::string_view phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : phases_) {
    if (p.phase == phase) return p.rounds;
  }
  return 0;
}

void RoundLedger::merge(const RoundLedger& child) {
  // Take a self-consistent snapshot of the child (it may be `*this`-unlike
  // but still live), then fold it in under our own lock.
  std::vector<PhaseTotal> child_phases;
  {
    std::lock_guard<std::mutex> lock(child.mu_);
    child_phases = child.phases_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : child_phases) charge_locked(p.rounds, p.phase);
}

std::string RoundLedger::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "total rounds: " << total_ << '\n';
  for (const auto& p : phases_) {
    os << "  " << p.phase << ": " << p.rounds << '\n';
  }
  return os.str();
}

void RoundLedger::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
  phases_.clear();
}

}  // namespace deltacol
