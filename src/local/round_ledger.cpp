#include "local/round_ledger.h"

#include <sstream>

#include "util/check.h"

namespace deltacol {

void RoundLedger::charge(std::int64_t rounds, std::string_view phase) {
  DC_REQUIRE(rounds >= 0, "cannot charge negative rounds");
  total_ += rounds;
  for (auto& p : phases_) {
    if (p.phase == phase) {
      p.rounds += rounds;
      return;
    }
  }
  phases_.push_back({std::string(phase), rounds});
}

std::int64_t RoundLedger::phase_total(std::string_view phase) const {
  for (const auto& p : phases_) {
    if (p.phase == phase) return p.rounds;
  }
  return 0;
}

void RoundLedger::merge(const RoundLedger& child) {
  for (const auto& p : child.phases_) charge(p.rounds, p.phase);
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  os << "total rounds: " << total_ << '\n';
  for (const auto& p : phases_) {
    os << "  " << p.phase << ": " << p.rounds << '\n';
  }
  return os.str();
}

void RoundLedger::reset() {
  total_ = 0;
  phases_.clear();
}

}  // namespace deltacol
