#include "local/round_ledger.h"

#include <sstream>

#include "util/check.h"

namespace deltacol {

RoundLedger::RoundLedger(const RoundLedger& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  total_ = other.total_;
  phases_ = other.phases_;
}

RoundLedger& RoundLedger::operator=(const RoundLedger& other) {
  if (this == &other) return *this;
  // Copy under the source lock first so self-consistent state is taken even
  // if the source is being charged concurrently.
  std::int64_t total;
  std::vector<PhaseTotal> phases;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    total = other.total_;
    phases = other.phases_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  total_ = total;
  phases_ = std::move(phases);
  return *this;
}

void RoundLedger::charge_locked(std::int64_t rounds, std::string_view phase) {
  total_ += rounds;
  for (auto& p : phases_) {
    if (p.phase == phase) {
      p.rounds += rounds;
      return;
    }
  }
  phases_.push_back({std::string(phase), rounds});
}

void RoundLedger::charge(std::int64_t rounds, std::string_view phase) {
  DC_REQUIRE(rounds >= 0, "cannot charge negative rounds");
  std::lock_guard<std::mutex> lock(mu_);
  charge_locked(rounds, phase);
}

std::int64_t RoundLedger::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::int64_t RoundLedger::phase_total(std::string_view phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : phases_) {
    if (p.phase == phase) return p.rounds;
  }
  return 0;
}

void RoundLedger::merge(const RoundLedger& child) {
  // Take a self-consistent snapshot of the child (it may be `*this`-unlike
  // but still live), then fold it in under our own lock.
  std::vector<PhaseTotal> child_phases;
  {
    std::lock_guard<std::mutex> lock(child.mu_);
    child_phases = child.phases_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : child_phases) charge_locked(p.rounds, p.phase);
}

std::string RoundLedger::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "total rounds: " << total_ << '\n';
  for (const auto& p : phases_) {
    os << "  " << p.phase << ": " << p.rounds << '\n';
  }
  return os.str();
}

void RoundLedger::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
  phases_.clear();
}

}  // namespace deltacol
