/// \file
/// Round accounting for the LOCAL model.
///
/// Every algorithm in this library runs against a RoundLedger and charges the
/// number of synchronous communication rounds each step would take on a real
/// network. Two execution styles feed the same ledger:
///
///  1. Message-passing style (SyncEngine): each executed round charges 1.
///  2. Neighborhood-gathering style: in the LOCAL model a t-round algorithm
///     is exactly a function of each node's t-neighborhood, so a step
///     implemented centrally as "every node inspects its r-ball and decides"
///     charges r rounds (plus the rounds of any inner subroutine).
///
/// The ledger keeps a per-phase breakdown so experiments can report where the
/// rounds went (e.g. how much of Theorem 3's cost is the list-coloring
/// substitution discussed in DESIGN.md).
///
/// Thread safety: charge/merge/reset and the scalar reads are internally
/// synchronized, so concurrent phases of the parallel runtime may charge a
/// shared ledger. breakdown() returns a reference and must only be called
/// when no writer is active (the runtime only folds ledgers after its
/// barriers, so this holds by construction). Determinism note: the parallel
/// runtime never charges one ledger from two threads whose order matters —
/// each component job owns a private ledger and the fold is serial — the
/// locking is a safety net for ad-hoc callers, not an ordering mechanism.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace deltacol {

/// Accumulates LOCAL-model communication rounds, tagged by algorithm phase.
/// This is the library's cost model: results are compared by ledger totals,
/// never by wall-clock time.
///
/// **CongestLedger mode.** set_congest_bits(B) with B > 0 switches the
/// ledger from LOCAL (unbounded messages) to CONGEST(B): a synchronous
/// message round whose heaviest directed edge carries `bits` bits is charged
/// ceil(bits / B) sub-rounds — the rounds a B-bit-per-edge network needs to
/// move the same data, with the per-round maximum taken across edges because
/// all edges transfer in parallel. B <= 0 (the default) is the LOCAL model,
/// i.e. B = infinity: every message round charges exactly 1, so LOCAL round
/// counts are recovered exactly. The mode only changes what
/// charge_message_round() records — execution, merge order, colorings and
/// stats are untouched, which is what makes CONGEST-vs-LOCAL differential
/// testing meaningful (tests/test_congest.cpp).
class RoundLedger {
 public:
  RoundLedger() = default;
  RoundLedger(const RoundLedger& other);
  RoundLedger& operator=(const RoundLedger& other);

  /// Charge \p rounds communication rounds to the named phase.
  void charge(std::int64_t rounds, std::string_view phase);

  /// Enters CONGEST(B) mode (bits > 0) or LOCAL mode (bits <= 0, stored as
  /// 0). Configuration, not a charge: it survives reset() and is copied by
  /// the copy operations, but merge() never propagates it.
  void set_congest_bits(std::int64_t bits);
  /// The B-bit cap; 0 means LOCAL / unbounded.
  std::int64_t congest_bits() const;

  /// Cost of one synchronous message round whose heaviest directed edge
  /// carries \p max_edge_bits: 1 in LOCAL mode, max(1, ceil(bits / B)) in
  /// CONGEST(B) mode (a round is charged even when nothing was sent — the
  /// barrier happened). Monotone non-increasing in B, pinning the round
  /// inflation the differential harness asserts.
  std::int64_t message_round_cost(std::int64_t max_edge_bits) const;

  /// charge(message_round_cost(max_edge_bits) * multiplier, phase):
  /// `multiplier` is the rounds_per_step factor of simulated power-graph /
  /// virtual-graph rounds (see mis/mis.h).
  void charge_message_round(std::int64_t max_edge_bits, std::string_view phase,
                            std::int64_t multiplier = 1);

  /// Total rounds charged so far, across all phases.
  std::int64_t total() const;

  /// One phase's accumulated cost. Phases appear in first-charge order.
  struct PhaseTotal {
    std::string phase;
    std::int64_t rounds;
  };
  /// Unsynchronized view; callers must be quiescent (no concurrent charge).
  const std::vector<PhaseTotal>& breakdown() const { return phases_; }

  /// Rounds charged to \p phase (0 if the phase never charged).
  std::int64_t phase_total(std::string_view phase) const;

  /// Merge another ledger into this one (used when a subroutine ran with its
  /// own ledger, e.g. recursive calls on components; components run in
  /// parallel, so the caller usually charges the max child instead — see
  /// runtime/component_scheduler.h).
  void merge(const RoundLedger& child);

  /// Human-readable multi-line report.
  std::string report() const;

  /// Drops all charges; the congest mode (configuration) is kept.
  void reset();

 private:
  void charge_locked(std::int64_t rounds, std::string_view phase);

  mutable std::mutex mu_;
  std::int64_t total_ = 0;
  std::int64_t congest_bits_ = 0;  // 0 = LOCAL (unbounded messages)
  std::vector<PhaseTotal> phases_;
};

}  // namespace deltacol
