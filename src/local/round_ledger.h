/// \file
/// Round accounting for the LOCAL model.
///
/// Every algorithm in this library runs against a RoundLedger and charges the
/// number of synchronous communication rounds each step would take on a real
/// network. Two execution styles feed the same ledger:
///
///  1. Message-passing style (SyncEngine): each executed round charges 1.
///  2. Neighborhood-gathering style: in the LOCAL model a t-round algorithm
///     is exactly a function of each node's t-neighborhood, so a step
///     implemented centrally as "every node inspects its r-ball and decides"
///     charges r rounds (plus the rounds of any inner subroutine).
///
/// The ledger keeps a per-phase breakdown so experiments can report where the
/// rounds went (e.g. how much of Theorem 3's cost is the list-coloring
/// substitution discussed in DESIGN.md).
///
/// Thread safety: charge/merge/reset and the scalar reads are internally
/// synchronized, so concurrent phases of the parallel runtime may charge a
/// shared ledger. breakdown() returns a reference and must only be called
/// when no writer is active (the runtime only folds ledgers after its
/// barriers, so this holds by construction). Determinism note: the parallel
/// runtime never charges one ledger from two threads whose order matters —
/// each component job owns a private ledger and the fold is serial — the
/// locking is a safety net for ad-hoc callers, not an ordering mechanism.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace deltacol {

/// Accumulates LOCAL-model communication rounds, tagged by algorithm phase.
/// This is the library's cost model: results are compared by ledger totals,
/// never by wall-clock time.
class RoundLedger {
 public:
  RoundLedger() = default;
  RoundLedger(const RoundLedger& other);
  RoundLedger& operator=(const RoundLedger& other);

  /// Charge \p rounds communication rounds to the named phase.
  void charge(std::int64_t rounds, std::string_view phase);

  /// Total rounds charged so far, across all phases.
  std::int64_t total() const;

  /// One phase's accumulated cost. Phases appear in first-charge order.
  struct PhaseTotal {
    std::string phase;
    std::int64_t rounds;
  };
  /// Unsynchronized view; callers must be quiescent (no concurrent charge).
  const std::vector<PhaseTotal>& breakdown() const { return phases_; }

  /// Rounds charged to \p phase (0 if the phase never charged).
  std::int64_t phase_total(std::string_view phase) const;

  /// Merge another ledger into this one (used when a subroutine ran with its
  /// own ledger, e.g. recursive calls on components; components run in
  /// parallel, so the caller usually charges the max child instead — see
  /// runtime/component_scheduler.h).
  void merge(const RoundLedger& child);

  /// Human-readable multi-line report.
  std::string report() const;

  /// Drops all charges; the ledger is as if freshly constructed.
  void reset();

 private:
  void charge_locked(std::int64_t rounds, std::string_view phase);

  mutable std::mutex mu_;
  std::int64_t total_ = 0;
  std::vector<PhaseTotal> phases_;
};

}  // namespace deltacol
