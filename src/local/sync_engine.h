// Synchronous message-passing execution for LOCAL-model algorithms.
//
// A SyncEngine holds per-node state and executes synchronous rounds: first
// every node produces messages for its neighbors from its current state,
// then all messages are delivered simultaneously and every node updates its
// state from its inbox. This is exactly the LOCAL model round structure
// (Msg is any value type). When the ledger is in CONGEST(B) mode
// (round_ledger.h) the executed round is unchanged but its charge becomes
// ceil(heaviest-edge-bits / B): bandwidth is an accounting overlay, never an
// execution constraint, so CONGEST runs stay bit-identical to LOCAL runs.
//
// Since the shard layer landed, this engine is written as the S = 1
// instance of the partitioned execution model: the node sweep runs over a
// whole-graph GraphView and every send is staged through a single-slot
// Mailbox before delivery (graph/partition.h, runtime/mailbox.h). With one
// shard the staging slot is filled and drained in ascending sender order —
// the exact fill order the pre-shard engine used — so this remains the
// byte-level reference semantics that ParallelSyncEngine (any chunking, any
// shard count) must reproduce, while sharing the same vocabulary the
// sharded engine is expressed in.
//
// Algorithms that are naturally per-node (Luby's MIS, trial list coloring,
// Linial's coloring) run through this engine; structural steps with large
// radii use NeighborhoodOracle instead (see round_ledger.h for why both are
// faithful).
#pragma once

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "local/round_ledger.h"
#include "runtime/execution_mode.h"
#include "runtime/mailbox.h"
#include "runtime/message_size.h"
#include "util/check.h"

namespace deltacol {

template <typename State, typename Msg>
class SyncEngine {
 public:
  // Messages a node sends in one round: (neighbor, payload) pairs. Sending
  // to a non-neighbor is a contract violation (the LOCAL model only has
  // links to neighbors).
  using Outbox = std::vector<std::pair<int, Msg>>;
  // send(v, state) -> messages for neighbors of v.
  using SendFn = std::function<Outbox(int, const State&)>;
  // receive(v, state, inbox): update v's state from delivered messages.
  // Inbox entries are (sender, payload), sorted by sender.
  using Inbox = std::vector<std::pair<int, Msg>>;
  using RecvFn = std::function<void(int, State&, const Inbox&)>;

  // `mode` (runtime/execution_mode.h): kFast skips the per-inbox sender
  // sort. The serial staging slot already fills in ascending sender order,
  // so the sort is a no-op here — results are identical either way; fast
  // mode just drops the wasted pass.
  SyncEngine(const Graph& g, RoundLedger& ledger, std::string phase,
             ExecutionMode mode = ExecutionMode::kDeterministic)
      : graph_(g),
        ledger_(ledger),
        phase_(std::move(phase)),
        mode_(mode),
        partition_(VertexPartition::contiguous(g.num_vertices(), 1)),
        view_(g, partition_, 0),
        mailbox_(&partition_),
        states_(static_cast<std::size_t>(g.num_vertices())) {}

  const Graph& graph() const { return graph_; }

  State& state(int v) { return states_[static_cast<std::size_t>(v)]; }
  const State& state(int v) const { return states_[static_cast<std::size_t>(v)]; }

  // Executes one synchronous round over the whole graph and charges 1 round.
  void round(const SendFn& send, const RecvFn& receive) {
    const int n = view_.num_owned();
    std::vector<Inbox> inboxes(static_cast<std::size_t>(n));
    // Send phase: the single shard sweeps its owned range in ascending id
    // order, staging through its mailbox row.
    mailbox_.clear();
    for (int v = view_.owned_begin(); v < view_.owned_end(); ++v) {
      for (auto& [to, msg] : send(v, states_[static_cast<std::size_t>(v)])) {
        DC_REQUIRE(graph_.has_edge(v, to),
                   "LOCAL model: messages only travel along edges");
        mailbox_.post(0, v, to, std::move(msg));
      }
    }
    // Merge phase: drain slot (0, 0) — already in ascending sender order —
    // then sort each inbox by sender.
    for (auto& e : mailbox_.slot(0, 0)) {
      inboxes[static_cast<std::size_t>(e.to)].emplace_back(e.from,
                                                           std::move(e.msg));
    }
    // Stable, matching ParallelSyncEngine::sort_inbox: ties (one sender,
    // several messages to one destination) keep emission order on every
    // execution path, so the parallel/sharded/renumbered merges reproduce
    // this exact sequence (DESIGN.md §6). Fast mode skips it (see ctor).
    if (mode_ == ExecutionMode::kDeterministic) {
      for (auto& inbox : inboxes) {
        std::stable_sort(
            inbox.begin(), inbox.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
      }
    }
    // CONGEST accounting (round_ledger.h): the heaviest directed edge sets
    // the round's cost. Pure reads of the merged inboxes — computed only in
    // congest mode, and never touching merge order or receive semantics.
    std::int64_t max_edge_bits = 0;
    if (ledger_.congest_bits() > 0) {
      for (const auto& inbox : inboxes) {
        max_edge_bits = std::max(max_edge_bits, max_edge_bits_in_inbox(inbox));
      }
    }
    // Receive phase over the owned range.
    for (int v = view_.owned_begin(); v < view_.owned_end(); ++v) {
      receive(v, states_[static_cast<std::size_t>(v)],
              inboxes[static_cast<std::size_t>(v)]);
    }
    ledger_.charge_message_round(max_edge_bits, phase_);
  }

 private:
  const Graph& graph_;
  RoundLedger& ledger_;
  std::string phase_;
  ExecutionMode mode_ = ExecutionMode::kDeterministic;
  VertexPartition partition_;
  GraphView view_;
  Mailbox<Msg> mailbox_;
  std::vector<State> states_;
};

}  // namespace deltacol
