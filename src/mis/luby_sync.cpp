#include "mis/luby_sync.h"

#include <string>

#include "runtime/mailbox.h"
#include "runtime/parallel_sync_engine.h"
#include "util/check.h"

namespace deltacol {

namespace {

enum class NodeStatus { kActive, kInMis, kOut };

struct NodeState {
  NodeStatus status = NodeStatus::kActive;
  std::uint64_t priority = 0;
  Rng rng{0};
};

// Messages carry either a priority announcement or a join notification.
struct Msg {
  bool is_join = false;
  std::uint64_t priority = 0;
};

}  // namespace

// Wire size registration (runtime/message_size.h): 1-bit flag + 64-bit
// priority, matching the kLubyMessageBits constant the tests pin.
template <>
struct MessageSize<Msg> {
  static std::int64_t bits(const Msg&) { return kLubyMessageBits; }
};
static_assert(kLubyMessageBits == 1 + 64,
              "Luby wire format: 1-bit join flag + 64-bit priority");

// Wire codec registration (net/wire_codec.h), field by field beside the
// sizing above: 1 byte for the sub-byte flag + 8 bytes priority = 9 bytes =
// ceil(1/8) + ceil(64/8) — the per-field rounding the fuzz suite pins.
template <>
struct WireCodec<Msg> {
  static void encode(const Msg& m, WireWriter& w) {
    WireCodec<bool>::encode(m.is_join, w);
    WireCodec<std::uint64_t>::encode(m.priority, w);
  }
  static Msg decode(WireReader& r) {
    Msg m;
    m.is_join = WireCodec<bool>::decode(r);
    m.priority = WireCodec<std::uint64_t>::decode(r);
    return m;
  }
};

std::vector<bool> luby_mis_message_passing(const Graph& g, Rng& rng,
                                           RoundLedger& ledger,
                                           std::string_view phase,
                                           ThreadPool* pool,
                                           ShardRuntime* shards,
                                           ExecutionMode mode) {
  const int n = g.num_vertices();
  ParallelSyncEngine<NodeState, Msg> engine(g, ledger, std::string(phase),
                                            pool, shards, mode);
  const VertexPartition part = shards != nullptr
                                   ? shards->partition()
                                   : VertexPartition::contiguous(n, 1);
  // Owner-compute (DESIGN.md §6): the engine holds owned-only state, so
  // every sweep below runs over the local shard's owned list and the
  // termination test / result extraction go through the transport's
  // deterministic collectives instead of reading global state.
  const bool owner = shards != nullptr && engine.owner_local_state();
  const int local = owner ? shards->transport().local_shard() : -1;

  // LOCAL-model nodes own private randomness: seed each node once from the
  // caller's stream (private coins, not communication) — serially, so the
  // per-node streams are thread-count independent. Owner-compute ranks
  // still advance the caller's stream n times (stream identity with every
  // other shape) but keep only their owned nodes' streams.
  for (int v = 0; v < n; ++v) {
    Rng node_rng = rng.split();
    if (!owner || part.shard_of(v) == local) {
      engine.state(v).rng = std::move(node_rng);
    }
  }

  // Per-vertex sweep helper: all vertices in-process, owned vertices only
  // under owner-compute (the bodies are v-private either way).
  const auto sweep = [&](const auto& body) {
    if (owner) {
      const GraphView& view = shards->view(local);
      pooled_for(pool, 0, view.num_owned(),
                 [&](int i) { body(view.owned_vertex(i)); });
      return;
    }
    sharded_for(pool, part, mode, body);
  };

  int remaining = n;
  while (remaining > 0) {
    // Private coin flips — no communication round. Each node draws from its
    // own Rng: a shard-major parallel-for over the runtime's partition
    // (v-private, so any placement yields the same streams).
    sweep([&](int v) {
      NodeState& s = engine.state(v);
      if (s.status == NodeStatus::kActive) s.priority = s.rng.next_u64();
    });
    // Round A: actives announce priorities; local minima join.
    engine.round(
        [&g](int v, const NodeState& s) {
          ParallelSyncEngine<NodeState, Msg>::Outbox out;
          if (s.status == NodeStatus::kActive) {
            for (int u : g.neighbors(v)) out.push_back({u, {false, s.priority}});
          }
          return out;
        },
        [](int v, NodeState& s, const ParallelSyncEngine<NodeState, Msg>::Inbox& in) {
          if (s.status != NodeStatus::kActive) return;
          bool local_min = true;
          for (const auto& [from, msg] : in) {
            if (msg.is_join) continue;
            if (msg.priority < s.priority ||
                (msg.priority == s.priority && from < v)) {
              local_min = false;
            }
          }
          if (local_min) s.status = NodeStatus::kInMis;
        });
    // Round B: joiners notify, active neighbors drop out.
    engine.round(
        [&g](int v, const NodeState& s) {
          ParallelSyncEngine<NodeState, Msg>::Outbox out;
          if (s.status == NodeStatus::kInMis) {
            for (int u : g.neighbors(v)) out.push_back({u, {true, 0}});
          }
          return out;
        },
        [](int, NodeState& s, const ParallelSyncEngine<NodeState, Msg>::Inbox& in) {
          if (s.status != NodeStatus::kActive) return;
          for (const auto& [from, msg] : in) {
            (void)from;
            if (msg.is_join) {
              s.status = NodeStatus::kOut;
              return;
            }
          }
        });
    // Termination: count actives. Owner-compute ranks count their owned
    // actives and fold the counts deterministically across ranks — every
    // rank leaves the loop on the same iteration, by construction.
    if (owner) {
      const GraphView& view = shards->view(local);
      std::int64_t active = 0;
      for (int i = 0; i < view.num_owned(); ++i) {
        if (engine.state(view.owned_vertex(i)).status == NodeStatus::kActive) {
          ++active;
        }
      }
      remaining =
          static_cast<int>(shards->transport().allreduce_sum(active));
      continue;
    }
    remaining = 0;
    for (int v = 0; v < n; ++v) {
      if (engine.state(v).status == NodeStatus::kActive) ++remaining;
    }
  }
  // Result extraction. Owner-compute ranks know only their shard's flags:
  // the deterministic end-of-run gather (Transport::gather_colors)
  // reassembles the global MIS on every rank, bit-identical to the
  // replicated shapes.
  std::vector<bool> out(static_cast<std::size_t>(n), false);
  if (owner) {
    const GraphView& view = shards->view(local);
    std::vector<int> flags(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < view.num_owned(); ++i) {
      const int v = view.owned_vertex(i);
      flags[static_cast<std::size_t>(v)] =
          engine.state(v).status == NodeStatus::kInMis ? 1 : 0;
    }
    shards->transport().gather_colors(part, flags);
    for (int v = 0; v < n; ++v) {
      out[static_cast<std::size_t>(v)] = flags[static_cast<std::size_t>(v)] == 1;
    }
    return out;
  }
  for (int v = 0; v < n; ++v) {
    out[static_cast<std::size_t>(v)] = engine.state(v).status == NodeStatus::kInMis;
  }
  return out;
}

}  // namespace deltacol
