// Luby's MIS implemented literally on the synchronous message-passing
// engine (SyncEngine): every round each active node draws a priority, sends
// it to its neighbors, and joins when it holds the local minimum; joiners
// then notify neighbors, which deactivate.
//
// Functionally equivalent to mis/luby_mis (which runs the same logic over
// shared arrays and charges the same rounds); this version exists to pin
// down that the library's algorithms are genuinely message-passing
// realizable — the test suite asserts both engines produce a valid MIS and
// charge identical round counts per iteration structure.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "local/round_ledger.h"
#include "runtime/execution_mode.h"
#include "util/rng.h"

namespace deltacol {

class ThreadPool;     // src/runtime/thread_pool.h; nullptr = serial
class ShardRuntime;   // src/runtime/mailbox.h; nullptr = unsharded

// Wire size of one Luby message under the MessageSize convention
// (runtime/message_size.h): a 1-bit join flag plus a 64-bit priority. The
// CONGEST(B) cost of each Luby round is ceil(kLubyMessageBits / B) — tests
// pin byte counters against this constant (tests/test_message_size.cpp,
// tests/test_fuzz.cpp).
inline constexpr std::int64_t kLubyMessageBits = 65;

// `pool` routes the rounds through the ParallelSyncEngine (bit-identical
// results for any thread count; nullptr runs the serial reference path).
// `shards` (built over g) additionally routes every round through the
// partitioned mailbox/transport layer and records per-round message volume
// on it — still bit-identical for every (shards, threads) combination
// (tests/test_mailbox.cpp pins this). `mode` kFast runs the engine's
// merge-on-arrival rounds (no stable sender sort, fused barriers) — safe
// here because both receive callbacks are order-free folds over the inbox
// (a min over priorities, an any-join flag); the result is still a valid
// MIS with the same round charges (tests/test_fast_mode.cpp pins this).
std::vector<bool> luby_mis_message_passing(
    const Graph& g, Rng& rng, RoundLedger& ledger, std::string_view phase,
    ThreadPool* pool = nullptr, ShardRuntime* shards = nullptr,
    ExecutionMode mode = ExecutionMode::kDeterministic);

}  // namespace deltacol
