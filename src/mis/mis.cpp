#include "mis/mis.h"

#include "runtime/mailbox.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

std::vector<bool> luby_mis(const Graph& g, Rng& rng, RoundLedger& ledger,
                           std::string_view phase, int rounds_per_step,
                           ThreadPool* pool, int num_shards,
                           ExecutionMode mode) {
  DC_REQUIRE(rounds_per_step >= 1, "rounds_per_step must be >= 1");
  const int n = g.num_vertices();
  std::vector<bool> in_set(static_cast<std::size_t>(n), false);
  std::vector<bool> active(static_cast<std::size_t>(n), true);
  std::vector<std::uint64_t> priority(static_cast<std::size_t>(n));
  std::vector<char> is_min(static_cast<std::size_t>(n), 0);
  int remaining = n;
  while (remaining > 0) {
    // Priority draws stay serial in id order: one shared Rng stream, so the
    // run is identical for every thread count.
    for (int v = 0; v < n; ++v) {
      if (active[static_cast<std::size_t>(v)]) {
        priority[static_cast<std::size_t>(v)] = rng.next_u64();
      }
    }
    // Local minima join the MIS. (Tie-break by id; 64-bit ties are
    // effectively impossible but the break keeps the step deterministic
    // given the drawn priorities.) The scan reads frozen priorities and
    // writes v-private flags: a shard-major parallel-for.
    sharded_for(pool, num_shards, n, mode, [&](int v) {
      is_min[static_cast<std::size_t>(v)] = 0;
      if (!active[static_cast<std::size_t>(v)]) return;
      bool local_min = true;
      for (int u : g.neighbors(v)) {
        if (!active[static_cast<std::size_t>(u)]) continue;
        if (priority[static_cast<std::size_t>(u)] <
                priority[static_cast<std::size_t>(v)] ||
            (priority[static_cast<std::size_t>(u)] ==
                 priority[static_cast<std::size_t>(v)] &&
             u < v)) {
          local_min = false;
          break;
        }
      }
      is_min[static_cast<std::size_t>(v)] = local_min ? 1 : 0;
    });
    std::vector<int> joined;
    for (int v = 0; v < n; ++v) {
      if (is_min[static_cast<std::size_t>(v)]) joined.push_back(v);
    }
    for (int v : joined) {
      in_set[static_cast<std::size_t>(v)] = true;
      active[static_cast<std::size_t>(v)] = false;
      --remaining;
      for (int u : g.neighbors(v)) {
        if (active[static_cast<std::size_t>(u)]) {
          active[static_cast<std::size_t>(u)] = false;
          --remaining;
        }
      }
    }
    // One exchange of priorities (64-bit payloads) + one notification of
    // joiners (1-bit). Under CONGEST(B) each message round is charged by its
    // heaviest edge load (round_ledger.h); in LOCAL both cost 1, recovering
    // the original 2 * rounds_per_step.
    ledger.charge_message_round(64, phase, rounds_per_step);
    ledger.charge_message_round(1, phase, rounds_per_step);
  }
  return in_set;
}

std::vector<bool> mis_from_coloring(const Graph& g, const Coloring& schedule,
                                    int num_schedule_colors,
                                    RoundLedger& ledger, std::string_view phase,
                                    int rounds_per_step) {
  DC_REQUIRE(is_proper_with_palette(g, schedule, num_schedule_colors),
             "schedule must be a proper coloring");
  const int n = g.num_vertices();
  std::vector<bool> in_set(static_cast<std::size_t>(n), false);
  std::vector<bool> blocked(static_cast<std::size_t>(n), false);
  for (int c = 0; c < num_schedule_colors; ++c) {
    for (int v = 0; v < n; ++v) {
      if (schedule[static_cast<std::size_t>(v)] != c) continue;
      if (blocked[static_cast<std::size_t>(v)]) continue;
      in_set[static_cast<std::size_t>(v)] = true;
      for (int u : g.neighbors(v)) blocked[static_cast<std::size_t>(u)] = true;
    }
    // Each schedule step is one 1-bit "I joined" notification round: it
    // always fits any B, so CONGEST charges match LOCAL exactly.
    ledger.charge_message_round(1, phase, rounds_per_step);
  }
  return in_set;
}

bool is_mis(const Graph& g, const std::vector<bool>& in_set) {
  if (static_cast<int>(in_set.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    bool has_set_neighbor = false;
    for (int u : g.neighbors(v)) {
      if (in_set[static_cast<std::size_t>(u)]) has_set_neighbor = true;
    }
    if (in_set[static_cast<std::size_t>(v)] && has_set_neighbor) return false;
    if (!in_set[static_cast<std::size_t>(v)] && !has_set_neighbor) return false;
  }
  return true;
}

}  // namespace deltacol
