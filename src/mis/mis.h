// Maximal independent set algorithms.
//
// MIS is the engine under every ruling-set computation (Lemma 20): an MIS of
// the power graph G^{k-1} is a (k, k-1)-ruling set of G. We provide Luby's
// randomized algorithm [Lub86/ABI86] and a deterministic variant that sweeps
// the color classes of a symmetry-breaking coloring (the classic
// coloring-to-MIS reduction).
#pragma once

#include <string_view>
#include <vector>

#include "coloring/coloring.h"
#include "graph/graph.h"
#include "local/round_ledger.h"
#include "runtime/execution_mode.h"
#include "util/rng.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

// Luby's MIS: each round, active vertices draw random priorities; local
// minima join, neighbors of joiners deactivate. O(log n) rounds w.h.p.
// `rounds_per_step` lets callers running on a simulated power graph charge
// k rounds of the base graph per MIS round. `num_shards` > 1 runs the
// per-node scans shard-major (graph/partition.h); like `pool`, it never
// changes results. `mode` kFast swaps the shard-major local-minima scan for
// a dynamically chunked sweep (runtime/mailbox.h sharded_for) — the scan
// reads frozen priorities and writes v-private flags, so the sweep grouping
// is not observable; priorities themselves stay a serial id-order stream.
std::vector<bool> luby_mis(const Graph& g, Rng& rng, RoundLedger& ledger,
                           std::string_view phase, int rounds_per_step = 1,
                           ThreadPool* pool = nullptr, int num_shards = 1,
                           ExecutionMode mode = ExecutionMode::kDeterministic);

// Deterministic MIS by sweeping the classes of a proper schedule coloring:
// class-c vertices join if no neighbor joined earlier. num_schedule_colors
// rounds.
std::vector<bool> mis_from_coloring(const Graph& g, const Coloring& schedule,
                                    int num_schedule_colors,
                                    RoundLedger& ledger, std::string_view phase,
                                    int rounds_per_step = 1);

// Test oracle: independent + maximal.
bool is_mis(const Graph& g, const std::vector<bool>& in_set);

}  // namespace deltacol
