#include "mis/packing.h"

#include <algorithm>
#include <atomic>

#include "graph/frontier_bfs.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

namespace {

enum : char { kAlive = 0, kPicked = 1, kDominated = 2 };

// Candidates resolved per round: large enough to amortize the round's
// fork-join barrier over many ball queries and keep every worker busy, yet
// bounded so the intra-batch waste stays small (balls of candidates
// dominated by a pick of the same round — a pick can only prune candidates
// whose balls are not yet queued; when candidate ids are scattered over the
// graph, a dominating pick almost never shares a batch with its victims).
// The batch size is never observable in the result, only in wall-clock.
int batch_capacity(int executors) { return std::max(256, 32 * executors); }

}  // namespace

std::vector<int> greedy_alpha_packing(const Graph& g,
                                      const std::vector<int>& subset,
                                      int alpha, ThreadPool* pool,
                                      ExecutionMode mode) {
  // Without workers the round structure degenerates to one ball per pick —
  // the reference's exact work pattern with extra bookkeeping — so the
  // serial engine IS the reference (bit-identical by the equivalence
  // argument in the header, so the routing is unobservable; the reference
  // validates the same preconditions, keeping error behaviour identical
  // too).
  if (pool == nullptr || pool->num_threads() <= 1) {
    return greedy_alpha_packing_reference(g, subset, alpha);
  }
  DC_REQUIRE(alpha >= 1, "alpha must be >= 1");
  for (int s : subset) {
    DC_REQUIRE(0 <= s && s < g.num_vertices(), "subset vertex out of range");
  }
  std::vector<int> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  // Deduplicate before anything else: a repeat occurrence is at distance 0
  // from its first pick, so it can never be a second pick (for alpha == 1,
  // duplicates would otherwise violate the pairwise-distance contract), and
  // the dense index below needs one slot per vertex.
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (alpha == 1) return sorted;  // distance >= 1: every distinct member
  const int k = static_cast<int>(sorted.size());
  const int radius = alpha - 1;

  std::vector<int> cand_id(static_cast<std::size_t>(g.num_vertices()), -1);
  for (int i = 0; i < k; ++i) {
    cand_id[static_cast<std::size_t>(sorted[static_cast<std::size_t>(i)])] = i;
  }

  std::vector<char> status(static_cast<std::size_t>(k), kAlive);
  std::vector<int> out;
  const int executors = pool->num_threads();
  const int cap = batch_capacity(executors);
  // Chunk cap = one per executor: each chunk holds O(n) BFS scratch. The
  // scratches persist across rounds (chunk indices are stable), so the O(n)
  // visitation state is paid once per executor, not once per round — the
  // epoch stamp then prices every ball query at O(ball).
  const int max_chunks = executors;
  std::vector<BfsScratch> scratches(static_cast<std::size_t>(max_chunks));
  std::vector<int> batch;
  batch.reserve(static_cast<std::size_t>(cap));
  std::vector<std::vector<int>> conflict(static_cast<std::size_t>(cap));

  int cursor = 0;  // candidates below it are picked or dominated forever
  while (cursor < k) {
    // Next batch: the alive id-prefix, at most `cap` members.
    batch.clear();
    while (cursor < k && static_cast<int>(batch.size()) < cap) {
      if (status[static_cast<std::size_t>(cursor)] == kAlive) {
        batch.push_back(cursor);
      }
      ++cursor;
    }
    if (batch.empty()) break;

    // (a) Conflict sets on the pool: subset members within alpha-1 of each
    // batch candidate, one truncated r-ball per candidate. Dispatched as
    // explicit chunks rather than parallel_ranges: the per-item body is a
    // whole BFS, so the pool's small-range inline cutoff (tuned for cheap
    // per-item loops) must not serialize these batches.
    const int batch_size = static_cast<int>(batch.size());
    const int num_chunks = std::min(max_chunks, batch_size);
    std::atomic<int> next{0};  // fast mode's first-come claim cursor
    pool->parallel_chunks(num_chunks, [&](int chunk) {
      BfsScratch& scratch = scratches[static_cast<std::size_t>(chunk)];
      FrontierBfs engine;
      const auto query_ball = [&](int i) {
        const int ci = batch[static_cast<std::size_t>(i)];
        engine.run(g, scratch, sorted[static_cast<std::size_t>(ci)], radius);
        auto& cf = conflict[static_cast<std::size_t>(i)];
        cf.clear();
        scratch.members_into(cand_id, cf);
      };
      if (mode == ExecutionMode::kFast) {
        // First-come claiming (see header): each executor grabs the next
        // unqueried ball; conflict slots stay candidate-private, so only
        // the executor-to-ball assignment is relaxed.
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= batch_size) break;
          query_ball(i);
        }
        return;
      }
      const int lo = batch_size * chunk / num_chunks;
      const int hi = batch_size * (chunk + 1) / num_chunks;
      for (int i = lo; i < hi; ++i) query_ball(i);
    });

    // (b) Commit pass, ascending id: a candidate joins iff its conflict set
    // holds no pick — no earlier pick within alpha-1, the serial greedy's
    // test verbatim. (c) Each pick then prunes its conflict set so later
    // rounds skip those candidates without a ball query.
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const int ci = batch[bi];
      if (status[static_cast<std::size_t>(ci)] != kAlive) continue;
      const auto& cf = conflict[bi];
      bool dominated = false;
      for (int cj : cf) {
        if (status[static_cast<std::size_t>(cj)] == kPicked) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        status[static_cast<std::size_t>(ci)] = kDominated;
        continue;
      }
      status[static_cast<std::size_t>(ci)] = kPicked;
      out.push_back(sorted[static_cast<std::size_t>(ci)]);
      for (int cj : cf) {
        if (status[static_cast<std::size_t>(cj)] == kAlive) {
          status[static_cast<std::size_t>(cj)] = kDominated;
        }
      }
    }
  }
  return out;
}

std::vector<int> greedy_alpha_packing_reference(const Graph& g,
                                                const std::vector<int>& subset,
                                                int alpha) {
  DC_REQUIRE(alpha >= 1, "alpha must be >= 1");
  for (int s : subset) {
    DC_REQUIRE(0 <= s && s < g.num_vertices(), "subset vertex out of range");
  }
  std::vector<int> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (alpha == 1) return sorted;
  std::vector<int> dist_to_chosen(static_cast<std::size_t>(g.num_vertices()),
                                  -1);
  std::vector<int> out;
  std::vector<int> q;  // relaxation queue, reused across picks
  for (int v : sorted) {
    if (dist_to_chosen[static_cast<std::size_t>(v)] != -1) continue;
    out.push_back(v);
    // Truncated BFS marking everything within alpha-1 of v. Labels from
    // earlier picks must be RELAXED when v is closer, or the frontier
    // would be cut early and a too-close vertex could be picked later.
    q.assign(1, v);
    dist_to_chosen[static_cast<std::size_t>(v)] = 0;
    for (std::size_t head = 0; head < q.size(); ++head) {
      const int u = q[head];
      if (dist_to_chosen[static_cast<std::size_t>(u)] >= alpha - 1) continue;
      const int next = dist_to_chosen[static_cast<std::size_t>(u)] + 1;
      for (int w : g.neighbors(u)) {
        auto& dw = dist_to_chosen[static_cast<std::size_t>(w)];
        if (dw == -1 || next < dw) {
          dw = next;
          q.push_back(w);
        }
      }
    }
  }
  return out;
}

}  // namespace deltacol
