// Batch-parallel greedy distance-alpha packing — the engine behind the
// default deterministic ruling-set engine (Lemma 20, mis/ruling_set.h).
//
// The specification is the classic serial greedy: walk the subset in
// ascending id order and pick every vertex at distance >= alpha from all
// earlier picks. That loop looks inherently sequential (each decision
// depends on every earlier one), but the decisions batch by *distance
// independence*: whether v is picked depends only on picks inside v's
// (alpha-1)-ball, so a whole id-prefix of candidates can resolve in one
// round once each member knows its conflict set — the same
// commit-an-independent-prefix-per-round discipline that deterministic
// gossip schedules and pipelined CONGEST algorithms use.
//
// Round structure (greedy_alpha_packing):
//
//   (a) take the next batch of still-alive candidates in ascending id order
//       and compute, fanned out over the ThreadPool in indexed chunks (one
//       pooled BfsScratch per chunk), each candidate's *conflict set*: the
//       subset members within distance alpha-1 (a truncated FrontierBfs
//       r-ball mapped through BfsScratch::members_into);
//   (b) commit, in one cheap serial pass in ascending id order, every batch
//       candidate that is id-minimal among the not-yet-dominated members of
//       its conflict set — i.e. whose conflict set contains no pick;
//   (c) prune: mark every conflict-set member of the round's picks as
//       dominated, so later rounds never pay a ball query for them.
//
// Why (b) is bit-identical to the serial greedy: the commit pass visits
// candidates in the same ascending id order as the serial loop, and
// "conflict set contains no pick" is exactly the serial loop's "no earlier
// pick within distance alpha-1" — picks from earlier rounds and from
// earlier in the same pass are both visible, because conflict sets are
// symmetric (u in ball(v, alpha-1) iff v in ball(u, alpha-1)) and index
// every subset member regardless of status. The expensive part, (a), is
// embarrassingly parallel; the serial residue (b)+(c) is O(sum of the
// picks' conflict sizes) flag writes. tests/test_mis_ruling.cpp enforces
// golden equivalence against greedy_alpha_packing_reference over the
// generator zoo for thread counts {1, 2, 8}.
//
// Without workers (pool null or single-executor) the round structure would
// degenerate to one ball query per pick — the reference's work pattern with
// extra bookkeeping — so the engine routes that case to the reference
// directly: the serial path costs exactly what the seed's greedy cost, and
// the equivalence makes the routing unobservable (E14 measures both).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "runtime/execution_mode.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

// Greedy distance-alpha packing of `subset` in ascending id order: the
// returned vertices (ascending, duplicates in `subset` collapsed) are
// pairwise at distance >= alpha in G, and every skipped subset member is
// within alpha-1 of an earlier (smaller-id) pick. Batch-parallel on `pool`;
// the result is bit-identical for every thread count, including
// pool == nullptr.
//
// `mode` (runtime/execution_mode.h): kFast replaces the static per-chunk
// ball-query ranges of step (a) with first-come atomic-cursor claiming —
// balls vary wildly in cost, so static ranges leave executors idle behind a
// heavy chunk. A pure scheduling relaxation: every conflict set is computed
// into its candidate-private slot either way and the serial commit pass (b)
// is untouched, so the returned packing is the same — only which executor
// ran which ball query changes.
std::vector<int> greedy_alpha_packing(
    const Graph& g, const std::vector<int>& subset, int alpha,
    ThreadPool* pool = nullptr,
    ExecutionMode mode = ExecutionMode::kDeterministic);

// The serial reference: the literal one-candidate-at-a-time greedy with
// truncated relaxation BFS marking. Kept as the golden oracle for the batch
// engine's equivalence tests (and as the readable spec of the contract).
std::vector<int> greedy_alpha_packing_reference(const Graph& g,
                                                const std::vector<int>& subset,
                                                int alpha);

}  // namespace deltacol
