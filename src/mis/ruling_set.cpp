#include "mis/ruling_set.h"

#include <algorithm>

#include "coloring/linial.h"
#include "graph/frontier_bfs.h"
#include "graph/traversal.h"
#include "mis/mis.h"
#include "mis/packing.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/math_util.h"

namespace deltacol {

namespace {

// Auxiliary graph on `subset`: u ~ v iff dist_G(u, v) <= alpha - 1.
// Built by truncated frontier BFS from each subset vertex; the sweeps fan
// out over the pool in indexed chunks (each reusing one scratch), and the
// per-chunk edge fragments are concatenated in chunk order — from_edges
// normalizes anyway, so the graph is identical for every thread count.
Graph auxiliary_graph(const Graph& g, const std::vector<int>& subset,
                      int alpha, ThreadPool* pool) {
  std::vector<int> local_id(static_cast<std::size_t>(g.num_vertices()), -1);
  for (int i = 0; i < static_cast<int>(subset.size()); ++i) {
    local_id[static_cast<std::size_t>(subset[static_cast<std::size_t>(i)])] = i;
  }
  const int k = static_cast<int>(subset.size());
  // Chunk cap = one per executor: each chunk holds O(n) BFS scratch.
  const int max_chunks = pool != nullptr ? pool->num_threads() : 1;
  const int num_chunks =
      pool != nullptr ? pool->num_range_chunks(k, max_chunks) : 1;
  std::vector<std::vector<Edge>> chunk_edges(
      static_cast<std::size_t>(num_chunks));
  pooled_ranges(
      pool, 0, k,
      [&](int chunk, int lo, int hi) {
        BfsScratch scratch;
        FrontierBfs engine;
        auto& edges = chunk_edges[static_cast<std::size_t>(chunk)];
        for (int i = lo; i < hi; ++i) {
          engine.run(g, scratch, subset[static_cast<std::size_t>(i)],
                     alpha - 1);
          for (int v : scratch.order()) {
            const int j = local_id[static_cast<std::size_t>(v)];
            if (j > i) edges.emplace_back(i, j);
          }
        }
      },
      max_chunks);
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& ce : chunk_edges) total += ce.size();
  edges.reserve(total);
  for (const auto& ce : chunk_edges) {
    edges.insert(edges.end(), ce.begin(), ce.end());
  }
  return Graph::from_edges(k, edges);
}

// Bitwise divide-and-conquer independent set with covering radius <= #bits
// (measured in `aux`). Classes are ID prefixes; when two classes merge at bit
// level l, members of the bit-1 class adjacent to a surviving bit-0 member
// drop out. Any dropped vertex starts a chain of length <= #bits to a
// survivor, giving a (2, ceil(log2 n_aux))-ruling set of aux in that many
// aux rounds.
std::vector<bool> aglp_independent_set(const Graph& aux, RoundLedger& ledger,
                                       std::string_view phase,
                                       int rounds_per_step) {
  const int n = aux.num_vertices();
  std::vector<bool> in(static_cast<std::size_t>(n), true);
  const int bits = n <= 1 ? 1 : ceil_log2(static_cast<std::uint64_t>(n)) + 1;
  for (int level = 0; level < bits; ++level) {
    std::vector<bool> next = in;
    for (int v = 0; v < n; ++v) {
      if (!in[static_cast<std::size_t>(v)]) continue;
      if (((v >> level) & 1) == 0) continue;
      for (int u : aux.neighbors(v)) {
        if (in[static_cast<std::size_t>(u)] && ((u >> level) & 1) == 0 &&
            (u >> (level + 1)) == (v >> (level + 1))) {
          next[static_cast<std::size_t>(v)] = false;
          break;
        }
      }
    }
    in = std::move(next);
    ledger.charge(rounds_per_step, phase);
  }
  return in;
}

}  // namespace

std::vector<int> ruling_set(const Graph& g, const std::vector<int>& subset,
                            int alpha, RulingSetEngine engine, Rng* rng,
                            RoundLedger& ledger, std::string_view phase,
                            ThreadPool* pool, ExecutionMode mode) {
  DC_REQUIRE(alpha >= 1, "alpha must be >= 1");
  for (int s : subset) {
    DC_REQUIRE(0 <= s && s < g.num_vertices(), "subset vertex out of range");
  }
  if (subset.empty()) return {};
  if (alpha == 1) return subset;  // every vertex may be chosen

  const int per_step = alpha - 1;
  if (engine == RulingSetEngine::kDeterministic) {
    // Greedy distance-alpha packing in ID order, resolved by the
    // batch-parallel engine (mis/packing.h — bit-identical to the serial
    // greedy for every thread count); covering radius alpha-1 follows
    // because a skipped vertex was within alpha-1 of an earlier pick.
    // Charged at the AGLP bitwise price (see header).
    std::vector<int> out = greedy_alpha_packing(g, subset, alpha, pool, mode);
    const int bits =
        subset.size() <= 1
            ? 1
            : ceil_log2(static_cast<std::uint64_t>(subset.size())) + 1;
    ledger.charge(static_cast<std::int64_t>(bits) * per_step, phase);
    return out;
  }

  const Graph aux = auxiliary_graph(g, subset, alpha, pool);
  std::vector<bool> in_set;
  switch (engine) {
    case RulingSetEngine::kRandomized: {
      DC_REQUIRE(rng != nullptr, "randomized engine needs an Rng");
      in_set = luby_mis(aux, *rng, ledger, phase, per_step, pool,
                        /*num_shards=*/1, mode);
      break;
    }
    case RulingSetEngine::kDeterministic:
      DC_ENSURE(false, "handled above");
      break;
    case RulingSetEngine::kDeterministicAglpBitwise: {
      in_set = aglp_independent_set(aux, ledger, phase, per_step);
      break;
    }
    case RulingSetEngine::kDeterministicColorSweep: {
      // Linial's coloring of the auxiliary graph: each of its rounds is one
      // exchange over distance alpha-1, charged accordingly.
      RoundLedger aux_ledger;
      aux_ledger.set_congest_bits(ledger.congest_bits());
      const LinialResult lin = linial_coloring(aux, aux_ledger);
      ledger.charge(aux_ledger.total() * per_step, phase);
      in_set = mis_from_coloring(aux, lin.coloring, lin.num_colors, ledger,
                                 phase, per_step);
      break;
    }
  }
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(subset.size()); ++i) {
    if (in_set[static_cast<std::size_t>(i)]) {
      out.push_back(subset[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

int ruling_set_cover_radius(int subset_size, RulingSetEngine engine) {
  switch (engine) {
    case RulingSetEngine::kDeterministicAglpBitwise:
      return subset_size <= 1
                 ? 1
                 : ceil_log2(static_cast<std::uint64_t>(subset_size)) + 1;
    case RulingSetEngine::kDeterministic:
    case RulingSetEngine::kRandomized:
    case RulingSetEngine::kDeterministicColorSweep:
      return 1;  // greedy packing / aux-graph MIS: covering radius 1
  }
  return 1;
}

bool is_ruling_set(const Graph& g, const std::vector<int>& subset,
                   const std::vector<int>& ruling, int alpha, int beta) {
  // Packing: pairwise distance >= alpha. One scratch serves every sweep.
  BfsScratch scratch;
  FrontierBfs engine;
  for (std::size_t i = 0; i < ruling.size(); ++i) {
    engine.run(g, scratch, ruling[i], alpha - 1);
    for (std::size_t j = 0; j < ruling.size(); ++j) {
      if (i == j) continue;
      if (scratch.visited(ruling[j])) return false;
    }
  }
  // Membership and covering.
  std::vector<bool> in_subset(static_cast<std::size_t>(g.num_vertices()), false);
  for (int s : subset) in_subset[static_cast<std::size_t>(s)] = true;
  for (int r : ruling) {
    if (!in_subset[static_cast<std::size_t>(r)]) return false;
  }
  if (ruling.empty()) return subset.empty();
  const auto cover = multi_source_bfs(g, ruling, beta);
  for (int s : subset) {
    if (cover.dist[static_cast<std::size_t>(s)] == kUnreachable) return false;
  }
  return true;
}

}  // namespace deltacol
