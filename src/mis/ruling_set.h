// (alpha, beta) ruling sets — Lemma 20 of the paper.
//
// An (alpha, beta) ruling set of a vertex subset S within G is M ⊆ S with
// (packing) dist_G(u, v) >= alpha for distinct u, v in M, and (covering)
// dist_G(s, M) <= beta for every s in S.
//
// We realize every Lemma 20 variant through one mechanism: an MIS of the
// auxiliary graph on S with edges between vertices at distance <= alpha-1 in
// G. Maximality makes beta = alpha-1, which dominates (is stronger than) all
// the beta values quoted in Lemma 20, so any caller written against the
// lemma's contract remains correct. One auxiliary-graph round costs alpha-1
// rounds of G (simulating the power graph), which the ledger charges.
// See DESIGN.md "Substitutions" for the round-complexity caveat.
#pragma once

#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "local/round_ledger.h"
#include "runtime/execution_mode.h"
#include "util/rng.h"

namespace deltacol {

class ThreadPool;  // src/runtime/thread_pool.h; nullptr = serial

enum class RulingSetEngine {
  // Deterministic default. Rounds are charged as the bitwise ID
  // divide-and-conquer [AGLP89-style] algorithm would cost — (alpha-1) *
  // ceil(log2 |subset|) — while the set itself is computed by greedy
  // distance-alpha packing in ID order (batch-parallel, see mis/packing.h),
  // which satisfies a strictly stronger contract (covering alpha-1 instead
  // of (alpha-1) log n) without materializing the power graph (that
  // materialization is quadratic once alpha exceeds the graph diameter).
  kDeterministic,
  // Luby MIS on the auxiliary (power) graph; O(log n) aux rounds w.h.p.
  // Realizes the randomized rows (3)-(4) of Lemma 20.
  kRandomized,
  // Bitwise AGLP divide-and-conquer, run literally on the materialized
  // auxiliary graph. Used by tests to cross-validate kDeterministic's
  // charging model; only for small graphs.
  kDeterministicAglpBitwise,
  // Linial coloring of the auxiliary graph + class sweep; round cost grows
  // with Delta(aux)^2 — only sensible for small auxiliary graphs, kept for
  // cross-validation in tests.
  kDeterministicColorSweep,
};

// Ruling set of `subset` (pass all vertices for a ruling set of G). rng may
// be null for the deterministic engine. `mode` kFast forwards to the fast
// scheduling paths of the underlying engines (packing's first-come ball
// claiming, Luby's dynamically chunked scans) — the set returned satisfies
// the same (alpha, beta) contract either way.
std::vector<int> ruling_set(const Graph& g, const std::vector<int>& subset,
                            int alpha, RulingSetEngine engine, Rng* rng,
                            RoundLedger& ledger, std::string_view phase,
                            ThreadPool* pool = nullptr,
                            ExecutionMode mode = ExecutionMode::kDeterministic);

// Covering radius in auxiliary-graph hops guaranteed by each engine: the
// MIS-based engines give 1 (maximality); the bitwise deterministic engine
// gives ceil(log2 |subset|) + 1. In G-hops multiply by (alpha - 1).
int ruling_set_cover_radius(int subset_size, RulingSetEngine engine);

// Test oracle for the (alpha, beta) contract.
bool is_ruling_set(const Graph& g, const std::vector<int>& subset,
                   const std::vector<int>& ruling, int alpha, int beta);

}  // namespace deltacol
