#include "net/frame.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace deltacol {

namespace {

using Deadline = std::chrono::steady_clock::time_point;

[[noreturn]] void io_fail(const char* what) {
  throw WireError(std::string(what) + ": " + std::strerror(errno));
}

// write(2) raises SIGPIPE (fatal by default) when the peer has gone; send(2)
// with MSG_NOSIGNAL turns that into EPIPE, which we surface as WireError.
// Non-socket fds (the framing tests run over pipes too) fall back to write.
std::ptrdiff_t write_some(int fd, const std::uint8_t* data, std::size_t n) {
  std::ptrdiff_t w = ::send(fd, data, n, MSG_NOSIGNAL);
  if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, n);
  return w;
}

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const std::ptrdiff_t w = write_some(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      io_fail("frame write failed");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

// Blocks until `fd` is readable or `deadline` passes; throws WireError on
// an expired deadline (the peer went silent mid-frame). A null deadline
// waits forever — the original behavior.
void wait_readable(int fd, const Deadline* deadline) {
  for (;;) {
    int wait_ms = -1;
    if (deadline != nullptr) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        throw WireError("frame read timed out: peer went silent");
      }
      wait_ms = static_cast<int>(left.count());
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int rv = ::poll(&p, 1, wait_ms);
    if (rv > 0) return;  // readable (or HUP/ERR — the read will surface it)
    if (rv < 0 && errno != EINTR) io_fail("frame poll failed");
    // rv == 0 (poll timeout) loops back to re-check the deadline and throw.
  }
}

// Returns bytes read into [data, data+n); stops early only on EOF. Loops
// over short reads and EINTR — the segmentation a stream socket delivers is
// never visible above this function. A non-null `deadline` bounds every
// wait (see wait_readable).
std::size_t read_upto(int fd, std::uint8_t* data, std::size_t n,
                      const Deadline* deadline) {
  std::size_t got = 0;
  while (got < n) {
    if (deadline != nullptr) wait_readable(fd, deadline);
    const std::ptrdiff_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      io_fail("frame read failed");
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

void write_frame(int fd, const WireBuf& payload) {
  std::uint8_t prefix[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  prefix[0] = static_cast<std::uint8_t>(len);
  prefix[1] = static_cast<std::uint8_t>(len >> 8);
  prefix[2] = static_cast<std::uint8_t>(len >> 16);
  prefix[3] = static_cast<std::uint8_t>(len >> 24);
  write_all(fd, prefix, 4);
  write_all(fd, payload.data(), payload.size());
}

bool try_read_frame(int fd, WireBuf& out, int timeout_ms) {
  Deadline deadline_storage;
  const Deadline* deadline = nullptr;
  if (timeout_ms > 0) {
    deadline_storage = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }
  std::uint8_t prefix[4];
  const std::size_t got = read_upto(fd, prefix, 4, deadline);
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got < 4) throw WireError("torn frame: EOF inside the length prefix");
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            static_cast<std::uint32_t>(prefix[1]) << 8 |
                            static_cast<std::uint32_t>(prefix[2]) << 16 |
                            static_cast<std::uint32_t>(prefix[3]) << 24;
  if (len > kMaxFrameBytes) {
    throw WireError("frame length " + std::to_string(len) +
                    " exceeds kMaxFrameBytes — corrupted stream");
  }
  out.resize(len);
  if (read_upto(fd, out.data(), len, deadline) < len) {
    throw WireError("torn frame: EOF inside a " + std::to_string(len) +
                    "-byte payload");
  }
  return true;
}

WireBuf read_frame(int fd, int timeout_ms) {
  WireBuf out;
  if (!try_read_frame(fd, out, timeout_ms)) {
    throw WireError("unexpected EOF: peer closed before sending a frame");
  }
  return out;
}

}  // namespace deltacol
