/// \file
/// Length-prefixed framing over a byte-stream file descriptor — the lowest
/// layer of the net/ subsystem (ARCHITECTURE.md "The net layer").
///
/// A frame is a 4-byte little-endian payload length followed by the payload.
/// TCP (and AF_UNIX stream sockets, which the hermetic tests use) delivers a
/// byte stream with arbitrary segmentation, so every read here loops until
/// the frame is whole: short reads are re-issued, EINTR is retried, and an
/// EOF that lands *inside* a frame — a torn frame — throws `WireError`
/// rather than handing a truncated payload up the stack
/// (tests/test_socket_transport.cpp injects exactly these failures).
///
/// Frames carry serialized mailbox slots (net/wire_codec.h), so the length
/// guard `kMaxFrameBytes` bounds what a confused or hostile peer can make
/// this process allocate.
#pragma once

#include <cstdint>

#include "net/wire_codec.h"

namespace deltacol {

/// Upper bound on a single frame's payload (1 GiB). A length prefix beyond
/// this is treated as stream corruption, not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Bytes a frame adds on top of its payload (the length prefix) — part of
/// the fixed framing overhead the E17 bench accounts for.
inline constexpr std::int64_t kFramePrefixBytes = 4;

/// Writes one whole frame (length prefix + payload), looping over partial
/// writes. Throws WireError on any I/O error (including a peer that closed
/// the connection — SIGPIPE is suppressed).
void write_frame(int fd, const WireBuf& payload);

/// Reads one whole frame's payload, looping over partial reads. Throws
/// WireError on a torn frame (EOF mid-frame), an oversized length prefix, or
/// any I/O error — including EOF at a frame boundary (use try_read_frame
/// where a clean shutdown is expected).
///
/// `timeout_ms > 0` bounds the WHOLE frame read with a poll(2)-guarded
/// deadline: a peer that stops sending mid-round surfaces as a WireError
/// ("timed out") instead of hanging this rank forever — the multi-machine
/// hardening knob (DELTACOL_NET_TIMEOUT_MS on SocketTransport). `<= 0`
/// keeps the original block-forever behavior.
WireBuf read_frame(int fd, int timeout_ms = 0);

/// Like read_frame, but a clean EOF at a frame boundary returns false
/// instead of throwing. EOF inside a frame still throws (torn frame), and
/// so does an expired `timeout_ms` deadline.
bool try_read_frame(int fd, WireBuf& out, int timeout_ms = 0);

}  // namespace deltacol
