#include "net/rank_loader.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "net/wire_codec.h"
#include "util/check.h"

namespace deltacol {

namespace {

CsrSlice slice_from_rows(int n_global, int lo, int hi,
                         std::vector<std::vector<int>> rows) {
  CsrSlice slice;
  slice.n_global = n_global;
  slice.lo = lo;
  slice.hi = hi;
  slice.offsets.assign(1, 0);
  slice.offsets.reserve(static_cast<std::size_t>(hi - lo) + 1);
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    slice.targets.insert(slice.targets.end(), row.begin(), row.end());
    slice.offsets.push_back(static_cast<std::int64_t>(slice.targets.size()));
  }
  return slice;
}

}  // namespace

CsrSlice slice_of(const Graph& g, const VertexPartition& part, int shard) {
  DC_REQUIRE(part.num_vertices() == g.num_vertices(),
             "partition was built for a different graph");
  DC_REQUIRE(shard >= 0 && shard < part.num_shards(), "shard out of range");
  const int lo = part.begin(shard);
  const int hi = part.end(shard);
  std::vector<std::vector<int>> rows(static_cast<std::size_t>(hi - lo));
  for (int p = lo; p < hi; ++p) {
    const int v = part.vertex_at(p);
    auto& row = rows[static_cast<std::size_t>(p - lo)];
    const auto nbrs = g.neighbors(v);
    row.reserve(nbrs.size());
    for (int u : nbrs) row.push_back(part.position_of(u));
  }
  // slice_from_rows re-sorts: original-id adjacency order is not layout
  // order under a renumbered partition.
  return slice_from_rows(g.num_vertices(), lo, hi, std::move(rows));
}

namespace {

// Shared streaming core: reads the header, obtains the partition from
// make_part(n), then keeps only the layout rows owned by `shard`.
template <typename MakePart>
CsrSlice stream_slice(std::istream& in, int shard, MakePart&& make_part) {
  std::string line;
  int n = -1;
  std::int64_t m = -1;
  std::int64_t seen = 0;
  int lo = 0, hi = 0;
  VertexPartition part;
  std::vector<std::vector<int>> rows;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (n < 0) {
      DC_REQUIRE(static_cast<bool>(ls >> n >> m), "bad edge-list header");
      DC_REQUIRE(n >= 0 && m >= 0, "negative counts in header");
      part = make_part(n);
      DC_REQUIRE(shard >= 0 && shard < part.num_shards(),
                 "shard out of range");
      lo = part.begin(shard);
      hi = part.end(shard);
      rows.resize(static_cast<std::size_t>(hi - lo));
      continue;
    }
    int u, v;
    DC_REQUIRE(static_cast<bool>(ls >> u >> v), "bad edge-list line");
    DC_REQUIRE(u >= 0 && u < n && v >= 0 && v < n,
               "edge endpoint out of range");
    DC_REQUIRE(u != v, "self-loop in edge list");
    ++seen;
    // Relabel into layout space and keep only what this rank owns;
    // everything else streams past (identity relabeling when contiguous).
    const int pu = part.position_of(u);
    const int pv = part.position_of(v);
    if (pu >= lo && pu < hi) {
      rows[static_cast<std::size_t>(pu - lo)].push_back(pv);
    }
    if (pv >= lo && pv < hi) {
      rows[static_cast<std::size_t>(pv - lo)].push_back(pu);
    }
  }
  DC_REQUIRE(n >= 0, "edge list missing header");
  DC_REQUIRE(seen == m, "edge count does not match header");
  return slice_from_rows(n, lo, hi, std::move(rows));
}

}  // namespace

CsrSlice load_edge_list_slice(std::istream& in, int num_shards, int shard) {
  DC_REQUIRE(num_shards >= 1, "need at least one shard");
  return stream_slice(in, shard, [num_shards](int n) {
    return VertexPartition::contiguous(n, num_shards);
  });
}

CsrSlice load_edge_list_slice(const std::string& path, int num_shards,
                              int shard) {
  std::ifstream in(path);
  DC_REQUIRE(in.good(), "cannot open file for reading: " + path);
  return load_edge_list_slice(in, num_shards, shard);
}

CsrSlice load_edge_list_slice(std::istream& in, const VertexPartition& part,
                              int shard) {
  return stream_slice(in, shard, [&part](int n) {
    DC_REQUIRE(part.num_vertices() == n,
               "partition does not span the edge-list graph");
    return part;
  });
}

CsrSlice load_edge_list_slice(const std::string& path,
                              const VertexPartition& part, int shard) {
  std::ifstream in(path);
  DC_REQUIRE(in.good(), "cannot open file for reading: " + path);
  return load_edge_list_slice(in, part, shard);
}

std::vector<int> halo_of(const CsrSlice& slice) {
  std::vector<int> halo;
  for (int t : slice.targets) {
    if (!slice.owns(t)) halo.push_back(t);
  }
  std::sort(halo.begin(), halo.end());
  halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
  return halo;
}

std::vector<HaloNeighborhood> exchange_halo_adjacency(Transport& transport,
                                                      const CsrSlice& slice) {
  const int world = transport.num_shards();
  const int self = transport.local_shard();
  DC_REQUIRE(self >= 0, "halo exchange needs a rank-aware transport");
  const VertexPartition part =
      VertexPartition::contiguous(slice.n_global, world);
  DC_REQUIRE(part.begin(self) == slice.lo && part.end(self) == slice.hi,
             "slice does not match this rank under the contiguous partition");

  // Round 1: tell each owner which of its vertices sit in our halo.
  using IdList = std::vector<std::uint32_t>;
  const std::vector<int> halo = halo_of(slice);
  std::vector<IdList> wanted(static_cast<std::size_t>(world));
  for (int v : halo) {
    wanted[static_cast<std::size_t>(part.shard_of(v))].push_back(
        static_cast<std::uint32_t>(v));
  }
  std::vector<WireBuf> request_row(static_cast<std::size_t>(world));
  for (int d = 0; d < world; ++d) {
    WireWriter w;
    WireCodec<IdList>::encode(wanted[static_cast<std::size_t>(d)], w);
    request_row[static_cast<std::size_t>(d)] = w.take();
  }
  const auto requests = transport.all_gather_rows(std::move(request_row));

  // Round 2: answer every request against our owned rows, then collect the
  // answers addressed to us. Reply slot = vector of (vertex, adjacency).
  using Reply = std::vector<std::pair<std::uint32_t, IdList>>;
  std::vector<WireBuf> reply_row(static_cast<std::size_t>(world));
  for (int requester = 0; requester < world; ++requester) {
    WireReader r(requests[static_cast<std::size_t>(requester)]
                         [static_cast<std::size_t>(self)]);
    const IdList asked = WireCodec<IdList>::decode(r);
    DC_REQUIRE(r.done(), "trailing bytes in halo request");
    Reply reply;
    reply.reserve(asked.size());
    for (std::uint32_t gv : asked) {
      const int v = static_cast<int>(gv);
      DC_REQUIRE(slice.owns(v), "halo request for a vertex we do not own");
      const auto nbrs = slice.neighbors(v);
      IdList adj;
      adj.reserve(nbrs.size());
      for (int t : nbrs) adj.push_back(static_cast<std::uint32_t>(t));
      reply.emplace_back(gv, std::move(adj));
    }
    WireWriter w;
    WireCodec<Reply>::encode(reply, w);
    reply_row[static_cast<std::size_t>(requester)] = w.take();
  }
  const auto replies = transport.all_gather_rows(std::move(reply_row));

  std::vector<HaloNeighborhood> out;
  out.reserve(halo.size());
  for (int owner = 0; owner < world; ++owner) {
    WireReader r(replies[static_cast<std::size_t>(owner)]
                        [static_cast<std::size_t>(self)]);
    const Reply reply = WireCodec<Reply>::decode(r);
    DC_REQUIRE(r.done(), "trailing bytes in halo reply");
    DC_REQUIRE(reply.size() == wanted[static_cast<std::size_t>(owner)].size(),
               "halo reply does not answer every request");
    for (const auto& [gv, adj] : reply) {
      HaloNeighborhood hn;
      hn.vertex = static_cast<int>(gv);
      hn.neighbors.reserve(adj.size());
      for (std::uint32_t t : adj) hn.neighbors.push_back(static_cast<int>(t));
      out.push_back(std::move(hn));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HaloNeighborhood& a, const HaloNeighborhood& b) {
              return a.vertex < b.vertex;
            });
  DC_ENSURE(out.size() == halo.size(), "halo exchange lost a vertex");
  return out;
}

}  // namespace deltacol
