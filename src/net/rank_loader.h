/// \file
/// Per-rank graph loading for distributed runs: each process materializes
/// only its own contiguous CSR slice and learns about the boundary (halo)
/// by asking the owners over the wire.
///
/// Three pieces:
///
///   * `CsrSlice` — the owned rows [lo, hi) of the global CSR, with global
///     neighbor ids. `slice_of` cuts one from an in-memory Graph (the
///     reference path); `load_edge_list_slice` streams the standard edge-list
///     format (graph/io.h) and keeps only edges touching the owned range, so
///     a rank never holds the full graph.
///   * `halo_of` — the sorted global ids of non-owned endpoints reachable
///     from the slice, exactly the halo table `GraphView` builds centrally.
///   * `exchange_halo_adjacency` — two `Transport::all_gather_rows` rounds
///     (request halo ids from their owners, owners reply with the full
///     adjacency of each requested vertex), giving every rank the one-hop
///     neighborhoods of its halo without any rank loading remote rows from
///     disk. Payloads go through the WireCodec vector/pair combinators, so
///     this is also a live end-to-end exercise of the codec family.
///
/// tests/test_socket_transport.cpp checks slice + halo against the
/// centrally built `GraphView` on the generator zoo, and the mpi-like
/// launcher prints per-rank slice statistics from this path.
///
/// This loader is the data-side half of the owner-compute model
/// (DESIGN.md §6, "Owner-compute"): a rank that loads only its slice and
/// runs under `ExchangePolicy::kOwnerRouted` holds O(n/S + halo) graph
/// *and* O(n/S + halo) algorithm state — nothing per-vertex global ever
/// materializes on a rank until the end-of-run `gather_colors`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/mailbox.h"

namespace deltacol {

/// The owned rows [lo, hi) of the global CSR. `offsets` has hi-lo+1 entries
/// (local indexing: owned vertex v lives at row v-lo); `targets` holds
/// sorted **global** neighbor ids, so cross-shard edges are visible as
/// targets outside [lo, hi).
///
/// **Coordinates.** Slices live in the partition's *layout* space, where
/// ownership is contiguous by construction: for the contiguous partition
/// that is the original id space unchanged; for a renumbered locality
/// partition (graph/renumber.h) row p is original vertex
/// part.vertex_at(p) and targets are layout positions too. Callers
/// translate at the boundary with part.vertex_at / part.position_of —
/// exactly the id-translation discipline the rest of the runtime uses.
struct CsrSlice {
  int n_global = 0;
  int lo = 0;
  int hi = 0;
  std::vector<std::int64_t> offsets{0};
  std::vector<int> targets;

  int num_owned() const { return hi - lo; }
  bool owns(int v) const { return v >= lo && v < hi; }
  int degree(int v) const {
    return static_cast<int>(offsets[static_cast<std::size_t>(v - lo) + 1] -
                            offsets[static_cast<std::size_t>(v - lo)]);
  }
  /// Sorted global neighbor ids of owned vertex \p v.
  std::span<const int> neighbors(int v) const {
    return {targets.data() + offsets[static_cast<std::size_t>(v - lo)],
            static_cast<std::size_t>(degree(v))};
  }
};

/// Cuts shard \p shard's slice from an in-memory graph (reference path).
/// Works for contiguous and renumbered partitions alike (see the
/// coordinates note on CsrSlice).
CsrSlice slice_of(const Graph& g, const VertexPartition& part, int shard);

/// Streams the graph/io.h edge-list format and keeps only the rows owned by
/// \p shard under the contiguous partition of n into \p num_shards. Any
/// rank's slice of a file equals `slice_of` on the fully loaded graph.
CsrSlice load_edge_list_slice(std::istream& in, int num_shards, int shard);
CsrSlice load_edge_list_slice(const std::string& path, int num_shards,
                              int shard);

/// Streaming load under an explicit (possibly renumbered) partition, which
/// must span the file's vertex count. Edge endpoints are relabeled into
/// layout space on the fly through the partition's O(n) position table —
/// the rank holds its own rows plus that table, never the full O(m) graph.
/// Equals `slice_of(g, part, shard)` on the fully loaded graph.
CsrSlice load_edge_list_slice(std::istream& in, const VertexPartition& part,
                              int shard);
CsrSlice load_edge_list_slice(const std::string& path,
                              const VertexPartition& part, int shard);

/// Sorted global ids of non-owned endpoints reachable from the slice — the
/// same set as GraphView::halo() for this shard.
std::vector<int> halo_of(const CsrSlice& slice);

/// One halo vertex's owner-provided adjacency.
struct HaloNeighborhood {
  int vertex = 0;                // global id (a member of halo_of(slice))
  std::vector<int> neighbors;    // its full sorted global adjacency
};

/// Fetches the full adjacency of every halo vertex from its owning rank over
/// \p transport (two all_gather_rows trips; see file comment). Every rank in
/// the transport's world must call this collectively with its own slice.
/// Results come back sorted by vertex id, aligned with halo_of(slice).
std::vector<HaloNeighborhood> exchange_halo_adjacency(Transport& transport,
                                                      const CsrSlice& slice);

}  // namespace deltacol
