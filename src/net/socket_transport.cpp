#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "net/frame.h"
#include "net/wire_codec.h"
#include "util/check.h"

namespace deltacol {

namespace {

/// Exchange-frame payload layout (the frame length prefix itself lives in
/// net/frame.h): u32 sender rank, u32 sequence number, u32 slot count, then
/// per slot u32 length + bytes. The receiver validates all three header
/// fields before accepting a single slot.
constexpr std::uint32_t kHelloMagic = 0xDC01u;

/// Collective tags for the owner-routed path. Every collective consumes one
/// tick of the SAME sequence counter the all-gather uses, and every frame
/// leads with its tag — so a rank that mixes policies or collectives out of
/// step decodes a wrong tag/seq and fails loudly instead of merging a stale
/// or foreign frame. The replicated all-gather frame layout above is
/// untouched (its closed-form byte accounting is pinned by bench_e17).
constexpr std::uint32_t kOwnedMagic = 0xDC0Eu;   // exchange_owned
constexpr std::uint32_t kReduceMagic = 0xDC0Fu;  // allreduce_{sum,max}
constexpr std::uint32_t kGatherMagic = 0xDC10u;  // gather_colors

/// DELTACOL_NET_TIMEOUT_MS (read once per transport, at construction):
/// <= 0 / unset = wait forever (the original behavior).
int net_timeout_from_env() {
  const char* s = std::getenv("DELTACOL_NET_TIMEOUT_MS");
  if (s == nullptr) return 0;
  const int ms = std::atoi(s);
  return ms > 0 ? ms : 0;
}

/// Owned-exchange frame payload: tag, u32 sender, u32 seq, u32 destination
/// rank, u32 world, world×u64 posted-envelope counts (the sender's mailbox
/// row), world×u64 posted wire bits, u32 slot length + the encoded
/// (sender, dest) slot. The tally rows ride along so every rank reassembles
/// the full S×S counters without a second collective.
constexpr std::int64_t owned_frame_header_bytes(int world) {
  return 5 * 4 + static_cast<std::int64_t>(world) * 16 + 4;
}

WireBuf encode_owned_frame(int sender, std::uint32_t seq, int dest, int world,
                           const std::vector<std::int64_t>& row_counts,
                           const std::vector<std::int64_t>& row_bits,
                           const WireBuf& slot) {
  WireWriter w;
  w.put_u32(kOwnedMagic);
  w.put_u32(static_cast<std::uint32_t>(sender));
  w.put_u32(seq);
  w.put_u32(static_cast<std::uint32_t>(dest));
  w.put_u32(static_cast<std::uint32_t>(world));
  for (std::int64_t c : row_counts) w.put_u64(static_cast<std::uint64_t>(c));
  for (std::int64_t b : row_bits) w.put_u64(static_cast<std::uint64_t>(b));
  w.put_u32(static_cast<std::uint32_t>(slot.size()));
  for (std::uint8_t b : slot) w.put_u8(b);
  return w.take();
}

struct OwnedFrame {
  std::vector<std::int64_t> row_counts;
  std::vector<std::int64_t> row_bits;
  WireBuf slot;
};

OwnedFrame decode_owned_frame(const WireBuf& payload, int expect_sender,
                              std::uint32_t expect_seq, int expect_dest,
                              int expect_world) {
  WireReader r(payload);
  const std::uint32_t magic = r.get_u32();
  if (magic != kOwnedMagic) {
    throw WireError("owner-routed frame has tag " + std::to_string(magic) +
                    " — peer rank " + std::to_string(expect_sender) +
                    " is running a different exchange policy or collective");
  }
  const std::uint32_t sender = r.get_u32();
  const std::uint32_t seq = r.get_u32();
  const std::uint32_t dest = r.get_u32();
  const std::uint32_t world = r.get_u32();
  if (sender != static_cast<std::uint32_t>(expect_sender)) {
    throw WireError("owner-routed frame from rank " + std::to_string(sender) +
                    " arrived on the connection to rank " +
                    std::to_string(expect_sender));
  }
  if (seq != expect_seq) {
    throw WireError("rank " + std::to_string(expect_sender) +
                    " is out of step: owner-routed frame seq " +
                    std::to_string(seq) + " != expected " +
                    std::to_string(expect_seq));
  }
  if (dest != static_cast<std::uint32_t>(expect_dest)) {
    throw WireError("owner-routed frame addressed to rank " +
                    std::to_string(dest) + " delivered to rank " +
                    std::to_string(expect_dest));
  }
  if (world != static_cast<std::uint32_t>(expect_world)) {
    throw WireError("owner-routed frame carries a row for a world of " +
                    std::to_string(world) + ", expected " +
                    std::to_string(expect_world));
  }
  OwnedFrame out;
  out.row_counts.resize(world);
  out.row_bits.resize(world);
  for (std::uint32_t d = 0; d < world; ++d) {
    out.row_counts[d] = static_cast<std::int64_t>(r.get_u64());
  }
  for (std::uint32_t d = 0; d < world; ++d) {
    out.row_bits[d] = static_cast<std::int64_t>(r.get_u64());
  }
  const std::uint32_t len = r.get_u32();
  if (len != r.remaining()) {
    throw WireError("owner-routed frame slot length disagrees with the frame");
  }
  out.slot.resize(len);
  for (std::uint32_t i = 0; i < len; ++i) out.slot[i] = r.get_u8();
  return out;
}

WireBuf encode_exchange_frame(int sender, std::uint32_t seq,
                              const std::vector<WireBuf>& row) {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(sender));
  w.put_u32(seq);
  w.put_u32(static_cast<std::uint32_t>(row.size()));
  for (const WireBuf& slot : row) {
    w.put_u32(static_cast<std::uint32_t>(slot.size()));
    for (std::uint8_t b : slot) w.put_u8(b);
  }
  return w.take();
}

std::vector<WireBuf> decode_exchange_frame(const WireBuf& payload,
                                           int expect_sender,
                                           std::uint32_t expect_seq,
                                           int expect_world) {
  WireReader r(payload);
  const std::uint32_t sender = r.get_u32();
  const std::uint32_t seq = r.get_u32();
  const std::uint32_t slots = r.get_u32();
  if (sender != static_cast<std::uint32_t>(expect_sender)) {
    throw WireError("exchange frame from rank " + std::to_string(sender) +
                    " arrived on the connection to rank " +
                    std::to_string(expect_sender));
  }
  if (seq != expect_seq) {
    throw WireError("rank " + std::to_string(expect_sender) +
                    " is out of step: frame seq " + std::to_string(seq) +
                    " != expected " + std::to_string(expect_seq));
  }
  if (slots != static_cast<std::uint32_t>(expect_world)) {
    throw WireError("exchange frame carries " + std::to_string(slots) +
                    " slots for a world of " + std::to_string(expect_world));
  }
  std::vector<WireBuf> row(slots);
  for (std::uint32_t d = 0; d < slots; ++d) {
    const std::uint32_t len = r.get_u32();
    if (len > r.remaining()) {
      throw WireError("exchange frame slot length overruns the frame");
    }
    WireBuf slot(len);
    for (std::uint32_t i = 0; i < len; ++i) slot[i] = r.get_u8();
    row[d] = std::move(slot);
  }
  if (!r.done()) throw WireError("trailing bytes after exchange frame slots");
  return row;
}

void set_nodelay(int fd) {
  int one = 1;
  // Best effort: socketpair(AF_UNIX) fds used by the hermetic tests reject
  // TCP options, which is fine — they have no Nagle to disable.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int connect_with_retry(const std::string& host, int port, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const std::string port_str = std::to_string(port);
  for (;;) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int gai = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
    if (gai == 0) {
      for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
          ::freeaddrinfo(res);
          set_nodelay(fd);
          return fd;
        }
        ::close(fd);
      }
      ::freeaddrinfo(res);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw WireError("rendezvous: could not connect to " + host + ":" +
                      port_str + " within the timeout — is the peer up?");
    }
    // The peer may simply not have bound its listener yet; back off briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

int listen_on(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireError("rendezvous: socket() failed");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw WireError("rendezvous: bind to port " + std::to_string(port) +
                    " failed: " + std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw WireError("rendezvous: listen failed");
  }
  return fd;
}

}  // namespace

std::vector<std::pair<std::string, int>> NetConfig::parse_endpoints(
    const std::string& spec) {
  std::vector<std::pair<std::string, int>> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    const std::size_t colon = item.rfind(':');
    DC_REQUIRE(colon != std::string::npos && colon > 0 &&
                   colon + 1 < item.size(),
               "endpoint must be host:port, got '" + item + "'");
    const std::string host = item.substr(0, colon);
    int port = 0;
    try {
      port = std::stoi(item.substr(colon + 1));
    } catch (const std::exception&) {
      port = -1;
    }
    DC_REQUIRE(port > 0 && port < 65536,
               "endpoint port out of range in '" + item + "'");
    out.emplace_back(host, port);
    begin = end + 1;
  }
  return out;
}

std::vector<std::pair<std::string, int>> NetConfig::localhost_endpoints(
    int world, int port_base) {
  DC_REQUIRE(world >= 1, "world must be positive");
  DC_REQUIRE(port_base > 0 && port_base + world <= 65536,
             "port range out of bounds");
  std::vector<std::pair<std::string, int>> out;
  out.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) out.emplace_back("127.0.0.1", port_base + r);
  return out;
}

std::optional<NetConfig> NetConfig::from_env() {
  const char* rank_s = std::getenv("DELTACOL_RANK");
  const char* world_s = std::getenv("DELTACOL_WORLD");
  if (rank_s == nullptr && world_s == nullptr) return std::nullopt;
  DC_REQUIRE(rank_s != nullptr && world_s != nullptr,
             "DELTACOL_RANK and DELTACOL_WORLD must be set together");
  NetConfig cfg;
  cfg.rank = std::atoi(rank_s);
  cfg.world = std::atoi(world_s);
  if (const char* eps = std::getenv("DELTACOL_ENDPOINTS")) {
    cfg.endpoints = parse_endpoints(eps);
  } else if (const char* base = std::getenv("DELTACOL_PORT_BASE")) {
    cfg.endpoints = localhost_endpoints(cfg.world, std::atoi(base));
  } else {
    DC_REQUIRE(false,
               "set DELTACOL_ENDPOINTS (host:port,...) or DELTACOL_PORT_BASE");
  }
  cfg.validate();
  return cfg;
}

void NetConfig::validate() const {
  DC_REQUIRE(world >= 1, "world must be positive");
  DC_REQUIRE(rank >= 0 && rank < world, "rank out of range for world");
  DC_REQUIRE(static_cast<int>(endpoints.size()) == world,
             "need exactly one endpoint per rank");
}

SocketTransport::SocketTransport(const NetConfig& cfg, int connect_timeout_ms)
    : rank_(cfg.rank), world_(cfg.world), net_timeout_ms_(net_timeout_from_env()) {
  cfg.validate();
  fds_.assign(static_cast<std::size_t>(world_), -1);
  if (world_ == 1) return;  // a lonely rank needs no mesh

  // DELTACOL_NET_TIMEOUT_MS overrides the connect budget and additionally
  // bounds the accept wait — a rank whose peer never dials fails loudly
  // instead of sitting in accept(2) forever.
  const int budget =
      net_timeout_ms_ > 0 ? net_timeout_ms_ : connect_timeout_ms;
  const int listen_fd = listen_on(cfg.endpoints[static_cast<std::size_t>(rank_)].second,
                                  world_);
  try {
    // Connect to every lower rank; the hello frame tells them who we are.
    for (int r = 0; r < rank_; ++r) {
      const auto& [host, port] = cfg.endpoints[static_cast<std::size_t>(r)];
      const int fd = connect_with_retry(host, port, budget);
      WireWriter hello;
      hello.put_u32(kHelloMagic);
      hello.put_u32(static_cast<std::uint32_t>(rank_));
      write_frame(fd, hello.take());
      fds_[static_cast<std::size_t>(r)] = fd;
    }
    // Accept from every higher rank; their hello frame tells us who they are.
    for (int pending = world_ - 1 - rank_; pending > 0; --pending) {
      if (net_timeout_ms_ > 0) {
        pollfd p{};
        p.fd = listen_fd;
        p.events = POLLIN;
        int rv;
        do {
          rv = ::poll(&p, 1, net_timeout_ms_);
        } while (rv < 0 && errno == EINTR);
        if (rv == 0) {
          throw WireError(
              "rendezvous: rank " + std::to_string(rank_) + " timed out after " +
              std::to_string(net_timeout_ms_) + " ms waiting for " +
              std::to_string(pending) + " higher rank(s) to dial");
        }
        if (rv < 0) throw WireError("rendezvous: poll on listener failed");
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) throw WireError("rendezvous: accept failed");
      set_nodelay(fd);
      const WireBuf hello = read_frame(fd, net_timeout_ms_);
      WireReader r(hello);
      const std::uint32_t magic = r.get_u32();
      const std::uint32_t peer = r.get_u32();
      if (magic != kHelloMagic || !r.done() ||
          peer <= static_cast<std::uint32_t>(rank_) ||
          peer >= static_cast<std::uint32_t>(world_) ||
          fds_[peer] != -1) {
        ::close(fd);
        throw WireError("rendezvous: bad hello frame from peer");
      }
      fds_[peer] = fd;
    }
  } catch (...) {
    ::close(listen_fd);
    close_all();
    throw;
  }
  ::close(listen_fd);
}

SocketTransport::SocketTransport(int rank, int world, std::vector<int> peer_fds)
    : rank_(rank),
      world_(world),
      fds_(std::move(peer_fds)),
      net_timeout_ms_(net_timeout_from_env()) {
  DC_REQUIRE(world_ >= 1, "world must be positive");
  DC_REQUIRE(rank_ >= 0 && rank_ < world_, "rank out of range for world");
  DC_REQUIRE(static_cast<int>(fds_.size()) == world_,
             "need one fd slot per rank");
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    DC_REQUIRE(fds_[static_cast<std::size_t>(r)] >= 0,
               "missing peer fd for rank " + std::to_string(r));
  }
  fds_[static_cast<std::size_t>(rank_)] = -1;
}

SocketTransport::~SocketTransport() { close_all(); }

void SocketTransport::close_all() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void SocketTransport::run_shards(const std::function<void(int)>& body) {
  body(rank_);
}

std::vector<std::uint8_t> SocketTransport::read_frame_from(int peer) {
  try {
    return read_frame(fds_[static_cast<std::size_t>(peer)], net_timeout_ms_);
  } catch (const WireError& e) {
    throw WireError("rank " + std::to_string(rank_) +
                    ": reading from rank " + std::to_string(peer) + ": " +
                    e.what());
  }
}

void SocketTransport::send_row_frames(
    const std::vector<std::vector<std::uint8_t>>& row) {
  const WireBuf frame = encode_exchange_frame(rank_, seq_, row);
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    write_frame(fds_[static_cast<std::size_t>(r)], frame);
    bytes_sent_ += static_cast<std::int64_t>(frame.size()) + kFramePrefixBytes;
    ++frames_sent_;
  }
}

std::vector<std::vector<std::vector<std::uint8_t>>>
SocketTransport::all_gather_rows(
    std::vector<std::vector<std::uint8_t>> local_row) {
  DC_REQUIRE(static_cast<int>(local_row.size()) == world_,
             "local row must carry one slot per destination rank");
  for (int d = 0; d < world_; ++d) {
    if (d == rank_) continue;
    cross_payload_bytes_ +=
        static_cast<std::int64_t>(local_row[static_cast<std::size_t>(d)].size());
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> rows(
      static_cast<std::size_t>(world_));

  // Writer thread pushes our row to every peer while this thread reads the
  // peers' rows — with everyone sending and receiving concurrently, no pair
  // of ranks can deadlock on full TCP buffers.
  std::exception_ptr write_error;
  std::thread writer([&] {
    try {
      send_row_frames(local_row);
    } catch (...) {
      write_error = std::current_exception();
    }
  });
  std::exception_ptr read_error;
  try {
    for (int r = 0; r < world_; ++r) {
      if (r == rank_) continue;
      const WireBuf frame = read_frame_from(r);
      bytes_received_ +=
          static_cast<std::int64_t>(frame.size()) + kFramePrefixBytes;
      rows[static_cast<std::size_t>(r)] =
          decode_exchange_frame(frame, r, seq_, world_);
    }
  } catch (...) {
    read_error = std::current_exception();
  }
  writer.join();
  if (read_error) std::rethrow_exception(read_error);
  if (write_error) std::rethrow_exception(write_error);

  rows[static_cast<std::size_t>(rank_)] = std::move(local_row);
  ++seq_;
  return rows;
}

Transport::OwnedExchange SocketTransport::exchange_owned(
    std::vector<std::vector<std::uint8_t>> to_peers,
    std::vector<std::int64_t> row_counts, std::vector<std::int64_t> row_bits) {
  DC_REQUIRE(static_cast<int>(to_peers.size()) == world_,
             "owner-routed exchange needs one slot per destination rank");
  DC_REQUIRE(static_cast<int>(row_counts.size()) == world_ &&
                 static_cast<int>(row_bits.size()) == world_,
             "owner-routed exchange needs one tally per destination rank");
  DC_REQUIRE(to_peers[static_cast<std::size_t>(rank_)].empty(),
             "owner-routed exchange: the local slot never crosses the wire");

  OwnedExchange out;
  out.slots.resize(static_cast<std::size_t>(world_));
  out.slot_counts.assign(
      static_cast<std::size_t>(world_) * static_cast<std::size_t>(world_), 0);
  out.slot_bits.assign(out.slot_counts.size(), 0);
  for (int d = 0; d < world_; ++d) {
    const std::size_t idx = static_cast<std::size_t>(rank_) *
                                static_cast<std::size_t>(world_) +
                            static_cast<std::size_t>(d);
    out.slot_counts[idx] = row_counts[static_cast<std::size_t>(d)];
    out.slot_bits[idx] = row_bits[static_cast<std::size_t>(d)];
  }

  // Encode every frame up front on the calling thread (counters are not
  // thread-safe), asserting per frame that the physical slot payload is
  // exactly the bytes the cross_payload_bytes counter records — under this
  // policy the counter IS the measured wire payload, not a prediction.
  const std::int64_t header = owned_frame_header_bytes(world_);
  std::vector<WireBuf> frames(static_cast<std::size_t>(world_));
  for (int d = 0; d < world_; ++d) {
    if (d == rank_) continue;
    const WireBuf& slot = to_peers[static_cast<std::size_t>(d)];
    frames[static_cast<std::size_t>(d)] =
        encode_owned_frame(rank_, seq_, d, world_, row_counts, row_bits, slot);
    DC_ENSURE(static_cast<std::int64_t>(
                  frames[static_cast<std::size_t>(d)].size()) ==
                  header + static_cast<std::int64_t>(slot.size()),
              "owner-routed frame size disagrees with its slot payload");
    cross_payload_bytes_ += static_cast<std::int64_t>(slot.size());
    bytes_sent_ += static_cast<std::int64_t>(
                       frames[static_cast<std::size_t>(d)].size()) +
                   kFramePrefixBytes;
    ++frames_sent_;
  }

  // One writer thread per peer pushes that peer's frame while this thread
  // reads the peers in rank order — everyone sends and receives
  // concurrently, so no pair of ranks can deadlock on full TCP buffers, and
  // slow peers overlap instead of serializing.
  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(world_ - 1));
  std::vector<std::exception_ptr> write_errors(
      static_cast<std::size_t>(world_));
  for (int d = 0; d < world_; ++d) {
    if (d == rank_) continue;
    writers.emplace_back([this, d, &frames, &write_errors] {
      try {
        write_frame(fds_[static_cast<std::size_t>(d)],
                    frames[static_cast<std::size_t>(d)]);
      } catch (...) {
        write_errors[static_cast<std::size_t>(d)] = std::current_exception();
      }
    });
  }
  std::exception_ptr read_error;
  try {
    for (int s = 0; s < world_; ++s) {
      if (s == rank_) continue;
      const WireBuf frame = read_frame_from(s);
      bytes_received_ +=
          static_cast<std::int64_t>(frame.size()) + kFramePrefixBytes;
      OwnedFrame decoded = decode_owned_frame(frame, s, seq_, rank_, world_);
      for (int d = 0; d < world_; ++d) {
        const std::size_t idx = static_cast<std::size_t>(s) *
                                    static_cast<std::size_t>(world_) +
                                static_cast<std::size_t>(d);
        out.slot_counts[idx] = decoded.row_counts[static_cast<std::size_t>(d)];
        out.slot_bits[idx] = decoded.row_bits[static_cast<std::size_t>(d)];
      }
      out.slots[static_cast<std::size_t>(s)] = std::move(decoded.slot);
    }
  } catch (...) {
    read_error = std::current_exception();
  }
  for (std::thread& w : writers) w.join();
  if (read_error) std::rethrow_exception(read_error);
  for (const std::exception_ptr& e : write_errors) {
    if (e) std::rethrow_exception(e);
  }
  ++seq_;
  return out;
}

// Small all-to-all of one u64 per rank, folded in ascending rank order
// including our own — every rank computes the identical result. Shares the
// sequence counter with the exchanges so collective drift is caught.
std::int64_t SocketTransport::allreduce_sum(std::int64_t value) {
  std::int64_t acc = 0;
  const auto fold = [&acc](std::int64_t x) { acc += x; };
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) {
      fold(value);
      continue;
    }
    fold(exchange_reduce_value(r, value));
  }
  ++seq_;
  return acc;
}

std::int64_t SocketTransport::allreduce_max(std::int64_t value) {
  std::int64_t acc = value;
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    acc = std::max(acc, exchange_reduce_value(r, value));
  }
  ++seq_;
  return acc;
}

void SocketTransport::gather_colors(const VertexPartition& part,
                                    std::vector<int>& values) {
  DC_REQUIRE(part.num_shards() == world_,
             "gather_colors: partition shard count disagrees with the world");
  DC_REQUIRE(static_cast<int>(values.size()) == part.num_vertices(),
             "gather_colors: value array does not span the partition");
  if (world_ == 1) return;

  // Frame: tag, sender, seq, u32 owned count, count×u32 values in owned
  // order (ascending original id — graph/partition.h). Identical frame to
  // every peer, so one writer thread suffices (the all-gather pattern).
  WireWriter w;
  w.put_u32(kGatherMagic);
  w.put_u32(static_cast<std::uint32_t>(rank_));
  w.put_u32(seq_);
  const int owned = part.size(rank_);
  w.put_u32(static_cast<std::uint32_t>(owned));
  for (int i = 0; i < owned; ++i) {
    w.put_u32(static_cast<std::uint32_t>(
        values[static_cast<std::size_t>(part.owned_vertex(rank_, i))]));
  }
  const WireBuf frame = w.take();
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    bytes_sent_ += static_cast<std::int64_t>(frame.size()) + kFramePrefixBytes;
    ++frames_sent_;
  }
  std::exception_ptr write_error;
  std::thread writer([&] {
    try {
      for (int r = 0; r < world_; ++r) {
        if (r == rank_) continue;
        write_frame(fds_[static_cast<std::size_t>(r)], frame);
      }
    } catch (...) {
      write_error = std::current_exception();
    }
  });
  std::exception_ptr read_error;
  try {
    for (int s = 0; s < world_; ++s) {
      if (s == rank_) continue;
      const WireBuf in = read_frame_from(s);
      bytes_received_ +=
          static_cast<std::int64_t>(in.size()) + kFramePrefixBytes;
      WireReader r(in);
      const std::uint32_t magic = r.get_u32();
      const std::uint32_t sender = r.get_u32();
      const std::uint32_t seq = r.get_u32();
      const std::uint32_t count = r.get_u32();
      if (magic != kGatherMagic ||
          sender != static_cast<std::uint32_t>(s) || seq != seq_ ||
          count != static_cast<std::uint32_t>(part.size(s))) {
        throw WireError("gather_colors: malformed frame from rank " +
                        std::to_string(s));
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        values[static_cast<std::size_t>(
            part.owned_vertex(s, static_cast<int>(i)))] =
            static_cast<int>(r.get_u32());
      }
      if (!r.done()) {
        throw WireError("gather_colors: trailing bytes from rank " +
                        std::to_string(s));
      }
    }
  } catch (...) {
    read_error = std::current_exception();
  }
  writer.join();
  if (read_error) std::rethrow_exception(read_error);
  if (write_error) std::rethrow_exception(write_error);
  ++seq_;
}

// One round of the reduce all-to-all against a single peer: send our value,
// read theirs (both 24-byte frames; the deterministic folds above never
// depend on arrival order because every pairwise exchange is synchronous).
std::int64_t SocketTransport::exchange_reduce_value(int peer,
                                                    std::int64_t value) {
  WireWriter w;
  w.put_u32(kReduceMagic);
  w.put_u32(static_cast<std::uint32_t>(rank_));
  w.put_u32(seq_);
  w.put_u64(static_cast<std::uint64_t>(value));
  const WireBuf frame = w.take();
  bytes_sent_ += static_cast<std::int64_t>(frame.size()) + kFramePrefixBytes;
  ++frames_sent_;
  std::exception_ptr write_error;
  std::thread writer([&] {
    try {
      write_frame(fds_[static_cast<std::size_t>(peer)], frame);
    } catch (...) {
      write_error = std::current_exception();
    }
  });
  std::int64_t peer_value = 0;
  std::exception_ptr read_error;
  try {
    const WireBuf in = read_frame_from(peer);
    bytes_received_ += static_cast<std::int64_t>(in.size()) + kFramePrefixBytes;
    WireReader r(in);
    const std::uint32_t magic = r.get_u32();
    const std::uint32_t sender = r.get_u32();
    const std::uint32_t seq = r.get_u32();
    peer_value = static_cast<std::int64_t>(r.get_u64());
    if (magic != kReduceMagic ||
        sender != static_cast<std::uint32_t>(peer) || seq != seq_ ||
        !r.done()) {
      throw WireError("allreduce: malformed frame from rank " +
                      std::to_string(peer));
    }
  } catch (...) {
    read_error = std::current_exception();
  }
  writer.join();
  if (read_error) std::rethrow_exception(read_error);
  if (write_error) std::rethrow_exception(write_error);
  return peer_value;
}

void SocketTransport::barrier() {
  all_gather_rows(
      std::vector<std::vector<std::uint8_t>>(static_cast<std::size_t>(world_)));
}

}  // namespace deltacol
