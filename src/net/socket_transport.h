/// \file
/// The TCP backend of the shard runtime: one OS process per shard/rank,
/// persistent connections, frame-per-row exchange.
///
/// `SocketTransport` implements the distributed half of the `Transport`
/// contract (runtime/mailbox.h):
///
///   * `local_shard()` is this process's rank — `run_shards(body)` invokes
///     `body(rank)` and nothing else; the other ranks run their own bodies
///     in their own processes.
///   * `all_gather_rows()` ships this rank's serialized mailbox row to every
///     peer as one frame per peer (net/frame.h) and blocks until every
///     peer's row arrived — the inter-round barrier of a distributed run.
///     Frames carry a sequence number, so a rank that drifted a round out of
///     step fails loudly instead of merging stale slots.
///   * `exchange_owned()` is the owner-routed alternative
///     (ExchangePolicy::kOwnerRouted, runtime/execution_mode.h): one
///     point-to-point frame per peer carrying ONLY the slot addressed to
///     that peer (plus this rank's per-slot tally row, so every rank
///     reassembles the full S×S counters), written by per-peer writer
///     threads while this thread reads the peers in rank order. The same
///     sequence counter as the all-gather guards collective drift, so a
///     rank that mixes the two policies mid-run fails loudly too.
///   * `allreduce_sum()` / `allreduce_max()` / `gather_colors()` are the
///     small deterministic collectives an owner-compute run needs for
///     termination tests, the CONGEST max fold, and the end-of-run result
///     gather.
///
/// **Hardening** (multi-machine runs): DELTACOL_NET_TIMEOUT_MS, read at
/// construction, bounds the rendezvous (connect retry budget AND the accept
/// wait for peers that never dial) and every per-frame read — a silent or
/// absent peer surfaces as a WireError naming the peer rank instead of
/// hanging this rank forever. Unset or <= 0 keeps the original behavior
/// (20 s connect budget, block-forever reads).
///
/// **Rendezvous.** Every rank knows the full host:port list (`NetConfig`,
/// parsed from flags or the DELTACOL_RANK / DELTACOL_WORLD /
/// DELTACOL_ENDPOINTS environment — the mpi-like launcher contract). Rank r
/// listens on its own endpoint, connects to every lower rank (with retry
/// while peers are still starting), and accepts from every higher rank; a
/// hello frame identifies the connecting rank, so the mesh is complete and
/// order-independent before the constructor returns. Sockets run with
/// TCP_NODELAY — a synchronous round trip per engine round would otherwise
/// sit out Nagle's timer thousands of times.
///
/// Tests construct the transport directly over pre-connected socketpair fds
/// (the hermetic two-ranks-in-one-process harness,
/// tests/test_socket_transport.cpp); the rendezvous path is exercised by
/// scripts/run_local_cluster.sh and the tcp-2rank CI leg.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/mailbox.h"

namespace deltacol {

/// One rank's view of the cluster: who am I, how many of us, where is
/// everyone. Endpoint i is where rank i listens.
struct NetConfig {
  int rank = -1;
  int world = 0;
  std::vector<std::pair<std::string, int>> endpoints;  // (host, port) per rank

  /// Parses "host:port,host:port,..." (one endpoint per rank, in rank
  /// order). Throws ContractViolation on malformed input.
  static std::vector<std::pair<std::string, int>> parse_endpoints(
      const std::string& spec);

  /// Builds the all-localhost cluster every rank list for single-machine
  /// runs: rank i listens on port_base + i.
  static std::vector<std::pair<std::string, int>> localhost_endpoints(
      int world, int port_base);

  /// Reads DELTACOL_RANK, DELTACOL_WORLD and DELTACOL_ENDPOINTS (or
  /// DELTACOL_PORT_BASE for an all-localhost cluster). Returns nullopt when
  /// the variables are absent; throws ContractViolation when they are
  /// present but inconsistent.
  static std::optional<NetConfig> from_env();

  /// Validates rank/world/endpoint consistency (throws ContractViolation).
  void validate() const;
};

/// The TCP `Transport`: see the file comment. Not thread-safe — one engine
/// drives one transport, exactly like the in-process backends.
class SocketTransport final : public Transport {
 public:
  /// Rendezvous constructor: listen + full-mesh connect per `cfg` (see file
  /// comment). Throws WireError if the mesh cannot be established within
  /// `connect_timeout_ms`.
  explicit SocketTransport(const NetConfig& cfg, int connect_timeout_ms = 20000);

  /// Pre-connected constructor (hermetic tests): `peer_fds[r]` is a
  /// connected stream-socket fd to rank r (ignored at index `rank`). Takes
  /// ownership of the fds.
  SocketTransport(int rank, int world, std::vector<int> peer_fds);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  int num_shards() const override { return world_; }
  int local_shard() const override { return rank_; }

  /// Runs only the local rank's body (the other ranks are other processes).
  void run_shards(const std::function<void(int)>& body) override;

  void exchange() override { ++exchanges_; }

  std::vector<std::vector<std::vector<std::uint8_t>>> all_gather_rows(
      std::vector<std::vector<std::uint8_t>> local_row) override;

  /// Owner-routed point-to-point exchange (see the file comment and the
  /// Transport contract). `to_peers[rank()]` must be empty — the local slot
  /// never crosses the wire — and the returned slots[rank()] is empty for
  /// the same reason.
  OwnedExchange exchange_owned(std::vector<std::vector<std::uint8_t>> to_peers,
                               std::vector<std::int64_t> row_counts,
                               std::vector<std::int64_t> row_bits) override;

  /// Deterministic sum over every rank's value (exchanged all-to-all,
  /// folded in ascending rank order — identical on every rank).
  std::int64_t allreduce_sum(std::int64_t value) override;

  /// Deterministic max over every rank's value.
  std::int64_t allreduce_max(std::int64_t value) override;

  /// Gathers the owned entries of `values` from every rank (per `part`) so
  /// the whole array is globally agreed on return — the end-of-run result
  /// reassembly of an owner-routed run.
  void gather_colors(const VertexPartition& part,
                     std::vector<int>& values) override;

  /// Blocks until every rank reached this barrier (an all-gather of empty
  /// rows). Used by launchers to fence phases that are replicated rather
  /// than exchanged.
  void barrier();

  int rank() const { return rank_; }
  int world() const { return world_; }
  int exchanges() const { return exchanges_; }

  // --- physically measured wire traffic (frame payloads + prefixes), the
  // --- denominator of the E17 framing-overhead ratio.
  std::int64_t wire_bytes_sent() const { return bytes_sent_; }
  std::int64_t wire_bytes_received() const { return bytes_received_; }
  std::int64_t frames_sent() const { return frames_sent_; }

  /// Encoded payload bytes addressed to *other* ranks across all exchanges.
  /// Under the replicated all-gather this is a *prediction*: the full row
  /// ships to every peer, so wire_bytes_sent is partition-invariant and
  /// this counter is what an owner-routed exchange *would* put on the wire
  /// (the number bench_e18 reports as the locality win). Under
  /// exchange_owned the same counter becomes the *measured* physical slot
  /// payload — each increment is bytes actually framed to exactly one peer
  /// (exchange_owned asserts the equality per frame) — so prediction and
  /// realization are the one counter, comparable across policies
  /// (bench_e20).
  std::int64_t cross_payload_bytes() const { return cross_payload_bytes_; }

 private:
  void send_row_frames(const std::vector<std::vector<std::uint8_t>>& row);
  /// read_frame with this transport's timeout, rethrowing WireError with
  /// the peer rank named (the hardening contract).
  std::vector<std::uint8_t> read_frame_from(int peer);
  /// One pairwise leg of an allreduce: send our value to `peer`, return
  /// theirs (synchronous, sequence-validated).
  std::int64_t exchange_reduce_value(int peer, std::int64_t value);
  void close_all();

  int rank_ = -1;
  int world_ = 0;
  std::vector<int> fds_;  // per peer rank, -1 at rank_
  std::uint32_t seq_ = 0;
  int exchanges_ = 0;
  int net_timeout_ms_ = 0;  // DELTACOL_NET_TIMEOUT_MS; 0 = wait forever
  std::int64_t bytes_sent_ = 0;
  std::int64_t bytes_received_ = 0;
  std::int64_t frames_sent_ = 0;
  std::int64_t cross_payload_bytes_ = 0;
};

}  // namespace deltacol
