/// \file
/// Wire serialization for the message-passing layer — the byte-level twin of
/// the CONGEST sizing traits (runtime/message_size.h).
///
/// `WireCodec<Msg>` answers the question MessageSize only prices: what bytes
/// does `msg` occupy on a real link? The two families follow the same
/// convention field by field, so bytes-on-wire and bits-charged stay provably
/// proportional:
///
///   | field             | MessageSize charge | WireCodec encoding          |
///   |-------------------|--------------------|-----------------------------|
///   | bool              | 1 bit              | 1 byte (0/1)                |
///   | i32 / u32         | 32 bits            | 4 bytes, little-endian      |
///   | i64 / u64         | 64 bits            | 8 bytes, little-endian      |
///   | pair<A, B>        | concat             | concat                      |
///   | vector<T>         | 32-bit prefix + T* | u32 prefix + elements       |
///
/// i.e. the encoded payload of any registered message is exactly the sum of
/// ceil(field_bits / 8) over its fields (sub-byte fields round up to whole
/// bytes — the only place wire bytes exceed charged bits). The fuzz suite
/// pins this equality for every registered type (tests/test_fuzz.cpp).
///
/// Like MessageSize, the primary template is deliberately left undefined:
/// an unregistered message type is a compile error, never a silently wrong
/// byte stream. Algorithm translation units that define private message
/// structs specialize both traits side by side (see mis/luby_sync.cpp).
///
/// Decoding is strict: a `WireReader` that runs out of bytes, a bool byte
/// outside {0, 1}, or a vector length that cannot fit the remaining bytes
/// throws `WireError` — a torn or corrupted stream never decodes to a
/// plausible-looking message.
///
/// Both wire disciplines share this codec unchanged: the replicated
/// all-gather serializes a shard's full mailbox row, the owner-routed
/// exchange (`Mailbox::encode_owned_row` → `Transport::exchange_owned`)
/// serializes only the off-diagonal slots of that row — same
/// `encode_slot`/`decode_slot` framing per slot, just fewer slots shipped.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace deltacol {

/// A serialized payload (one mailbox slot, one frame body, ...).
using WireBuf = std::vector<std::uint8_t>;

/// Malformed bytes on the wire: truncated payloads, torn frames, impossible
/// lengths. Deliberately not a ContractViolation — the peer (or the network)
/// is at fault, not this process's caller.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian fields to a growing buffer.
class WireWriter {
 public:
  void put_u8(std::uint8_t x) { buf_.push_back(x); }

  void put_u32(std::uint32_t x) {
    buf_.push_back(static_cast<std::uint8_t>(x));
    buf_.push_back(static_cast<std::uint8_t>(x >> 8));
    buf_.push_back(static_cast<std::uint8_t>(x >> 16));
    buf_.push_back(static_cast<std::uint8_t>(x >> 24));
  }

  void put_u64(std::uint64_t x) {
    put_u32(static_cast<std::uint32_t>(x));
    put_u32(static_cast<std::uint32_t>(x >> 32));
  }

  std::size_t size() const { return buf_.size(); }
  WireBuf take() { return std::move(buf_); }

 private:
  WireBuf buf_;
};

/// Consumes fixed-width little-endian fields from a buffer; throws WireError
/// on underrun. Non-owning — the buffer must outlive the reader.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const WireBuf& buf) : WireReader(buf.data(), buf.size()) {}

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t get_u32() {
    need(4);
    const std::uint32_t x = static_cast<std::uint32_t>(data_[pos_]) |
                            static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return x;
  }

  std::uint64_t get_u64() {
    const std::uint64_t lo = get_u32();
    const std::uint64_t hi = get_u32();
    return lo | hi << 32;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw WireError("wire payload truncated: need " + std::to_string(n) +
                      " byte(s), have " + std::to_string(size_ - pos_));
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Primary template: intentionally undefined — specialize for every message
/// type that crosses a distributed Transport (the mirror of MessageSize's
/// registration discipline; see the file comment for the convention).
template <typename Msg>
struct WireCodec;

// --- scalar payloads -------------------------------------------------------

template <>
struct WireCodec<bool> {
  static void encode(const bool& x, WireWriter& w) { w.put_u8(x ? 1 : 0); }
  static bool decode(WireReader& r) {
    const std::uint8_t b = r.get_u8();
    if (b > 1) throw WireError("wire bool byte out of range");
    return b == 1;
  }
};

template <>
struct WireCodec<std::uint32_t> {
  static void encode(const std::uint32_t& x, WireWriter& w) { w.put_u32(x); }
  static std::uint32_t decode(WireReader& r) { return r.get_u32(); }
};

template <>
struct WireCodec<std::int32_t> {
  static void encode(const std::int32_t& x, WireWriter& w) {
    w.put_u32(static_cast<std::uint32_t>(x));
  }
  static std::int32_t decode(WireReader& r) {
    return static_cast<std::int32_t>(r.get_u32());
  }
};

template <>
struct WireCodec<std::uint64_t> {
  static void encode(const std::uint64_t& x, WireWriter& w) { w.put_u64(x); }
  static std::uint64_t decode(WireReader& r) { return r.get_u64(); }
};

template <>
struct WireCodec<std::int64_t> {
  static void encode(const std::int64_t& x, WireWriter& w) {
    w.put_u64(static_cast<std::uint64_t>(x));
  }
  static std::int64_t decode(WireReader& r) {
    return static_cast<std::int64_t>(r.get_u64());
  }
};

// --- composite payloads ----------------------------------------------------

template <typename A, typename B>
struct WireCodec<std::pair<A, B>> {
  static void encode(const std::pair<A, B>& p, WireWriter& w) {
    WireCodec<A>::encode(p.first, w);
    WireCodec<B>::encode(p.second, w);
  }
  static std::pair<A, B> decode(WireReader& r) {
    // Sequenced explicitly: argument evaluation order is unspecified.
    A a = WireCodec<A>::decode(r);
    B b = WireCodec<B>::decode(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename T>
struct WireCodec<std::vector<T>> {
  static void encode(const std::vector<T>& v, WireWriter& w) {
    w.put_u32(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) WireCodec<T>::encode(x, w);
  }
  static std::vector<T> decode(WireReader& r) {
    const std::uint32_t count = r.get_u32();
    // Every element costs at least one byte, so a count the remaining bytes
    // cannot cover is corruption — reject before allocating.
    if (count > r.remaining()) {
      throw WireError("wire vector length exceeds remaining payload");
    }
    std::vector<T> v;
    v.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      v.push_back(WireCodec<T>::decode(r));
    }
    return v;
  }
};

// --- mailbox slot encoding -------------------------------------------------
//
// One (source-shard, destination-shard) mailbox slot on the wire:
//
//   u32 envelope count, then per envelope: u32 to, u32 from, payload.
//
// The 8 addressing bytes per envelope and the 4-byte count are framing
// overhead on top of the MessageSize-priced payload (in the CONGEST model
// addressing is carried by the port a message arrives on, so it is not
// charged — see message_size.h). Envelope order is preserved exactly: the
// decoded slot replays the sender's post order, which is what makes the
// shard-major merge rule survive serialization (DESIGN.md §6).

/// Per-envelope wire overhead (to + from) in bytes, and the per-slot count
/// prefix — the constants the E17 bench checks the physical byte ratio
/// against.
inline constexpr std::int64_t kWireEnvelopeOverheadBytes = 8;
inline constexpr std::int64_t kWireSlotPrefixBytes = 4;

/// Serializes one mailbox slot. `Env` is any envelope shape with `to`,
/// `from` (vertex ids) and `msg` (a registered WireCodec type) — i.e.
/// Mailbox<Msg>::Envelope.
template <typename Msg, typename Env>
WireBuf encode_slot(const std::vector<Env>& slot) {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(slot.size()));
  for (const Env& e : slot) {
    w.put_u32(static_cast<std::uint32_t>(e.to));
    w.put_u32(static_cast<std::uint32_t>(e.from));
    WireCodec<Msg>::encode(e.msg, w);
  }
  return w.take();
}

/// Decodes one mailbox slot (the exact inverse of encode_slot). Throws
/// WireError on truncation, trailing bytes, or malformed payloads.
template <typename Msg, typename Env>
std::vector<Env> decode_slot(const WireBuf& bytes) {
  WireReader r(bytes);
  const std::uint32_t count = r.get_u32();
  // Each envelope costs at least its 8 addressing bytes — reject impossible
  // counts before allocating.
  if (count > r.remaining() / kWireEnvelopeOverheadBytes) {
    throw WireError("wire slot envelope count exceeds remaining payload");
  }
  std::vector<Env> slot;
  slot.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const int to = static_cast<int>(r.get_u32());
    const int from = static_cast<int>(r.get_u32());
    slot.push_back(Env{to, from, WireCodec<Msg>::decode(r)});
  }
  if (!r.done()) throw WireError("trailing bytes after mailbox slot");
  return slot;
}

}  // namespace deltacol
