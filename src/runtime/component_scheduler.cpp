#include "runtime/component_scheduler.h"

#include <algorithm>
#include <exception>

#include "runtime/mailbox.h"
#include "util/check.h"

namespace deltacol {

void ComponentScheduler::run(int count,
                             const std::function<void(int)>& job) const {
  if (count <= 0) return;
  if (pool_ == nullptr) {
    for (int i = 0; i < count; ++i) job(i);
    return;
  }
  pool_->parallel_chunks(count, job);
}

std::int64_t ComponentScheduler::run_max_total(
    int count, const std::function<void(int, RoundLedger&)>& job,
    std::int64_t congest_bits) const {
  if (count <= 0) return 0;
  std::vector<RoundLedger> children(static_cast<std::size_t>(count));
  for (auto& child : children) child.set_congest_bits(congest_bits);
  run(count,
      [&](int i) { job(i, children[static_cast<std::size_t>(i)]); });
  std::int64_t best = 0;
  for (const auto& child : children) best = std::max(best, child.total());
  return best;
}

void ComponentScheduler::run_placed(const std::vector<int>& placement,
                                    Transport& transport,
                                    const std::function<void(int)>& job) const {
  const int count = static_cast<int>(placement.size());
  if (count <= 0) return;
  const int num_shards = transport.num_shards();
  if (num_shards <= 1) {
    // One shard owns everything: placement is vacuous, keep the per-job
    // dynamic load balancing of the unplaced path.
    run(count, job);
    return;
  }
  // Group jobs by home shard, preserving ascending index order per shard.
  std::vector<std::vector<int>> by_shard(
      static_cast<std::size_t>(num_shards));
  for (int i = 0; i < count; ++i) {
    const int s = placement[static_cast<std::size_t>(i)];
    DC_REQUIRE(0 <= s && s < num_shards, "job placed on nonexistent shard");
    by_shard[static_cast<std::size_t>(s)].push_back(i);
  }
  // Every job runs; exceptions land in job-indexed slots so the winner is
  // the lowest job index — the same exception a serial loop (and run())
  // would surface, independent of placement and backend scheduling.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(count));
  transport.run_shards([&](int s) {
    for (int i : by_shard[static_cast<std::size_t>(s)]) {
      try {
        job(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    }
  });
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

std::int64_t ComponentScheduler::run_max_total_placed(
    const std::vector<int>& placement, Transport& transport,
    const std::function<void(int, RoundLedger&)>& job,
    std::int64_t congest_bits) const {
  const int count = static_cast<int>(placement.size());
  if (count <= 0) return 0;
  std::vector<RoundLedger> children(static_cast<std::size_t>(count));
  for (auto& child : children) child.set_congest_bits(congest_bits);
  run_placed(placement, transport,
             [&](int i) { job(i, children[static_cast<std::size_t>(i)]); });
  std::int64_t best = 0;
  for (const auto& child : children) best = std::max(best, child.total());
  return best;
}

namespace {

std::vector<int> owner_placement(const VertexPartition& part,
                                 const std::vector<int>& owner_vertex) {
  std::vector<int> placement(owner_vertex.size());
  for (std::size_t i = 0; i < owner_vertex.size(); ++i) {
    placement[i] = part.shard_of(owner_vertex[i]);
  }
  return placement;
}

}  // namespace

void ComponentScheduler::run_owner_placed(
    const VertexPartition& part, const std::vector<int>& owner_vertex,
    const std::function<void(int)>& job) const {
  // Fast mode: skip the in-process shard placement entirely and let every
  // job claim a pool chunk first-come (see the ctor comment — placement
  // only steers wall-clock; index-private outputs keep results valid).
  if (part.num_shards() <= 1 || mode_ == ExecutionMode::kFast) {
    run(static_cast<int>(owner_vertex.size()), job);
    return;
  }
  InProcessTransport transport(part.num_shards(), pool_);
  run_placed(owner_placement(part, owner_vertex), transport, job);
}

std::int64_t ComponentScheduler::run_max_total_owner_placed(
    const VertexPartition& part, const std::vector<int>& owner_vertex,
    const std::function<void(int, RoundLedger&)>& job,
    std::int64_t congest_bits) const {
  if (part.num_shards() <= 1 || mode_ == ExecutionMode::kFast) {
    return run_max_total(static_cast<int>(owner_vertex.size()), job,
                         congest_bits);
  }
  InProcessTransport transport(part.num_shards(), pool_);
  return run_max_total_placed(owner_placement(part, owner_vertex), transport,
                              job, congest_bits);
}

void ComponentScheduler::run_owner_placed(
    int n, int num_shards, const std::vector<int>& owner_vertex,
    const std::function<void(int)>& job) const {
  run_owner_placed(VertexPartition::contiguous(n, std::max(1, num_shards)),
                   owner_vertex, job);
}

std::int64_t ComponentScheduler::run_max_total_owner_placed(
    int n, int num_shards, const std::vector<int>& owner_vertex,
    const std::function<void(int, RoundLedger&)>& job,
    std::int64_t congest_bits) const {
  return run_max_total_owner_placed(
      VertexPartition::contiguous(n, std::max(1, num_shards)), owner_vertex,
      job, congest_bits);
}

void charge_max_component(RoundLedger& parent,
                          const std::vector<RoundLedger>& children) {
  // Strictly-greater scan from 0 in index order: a run whose components all
  // charged nothing merges nothing (matching the serial engine's fold).
  const RoundLedger* best = nullptr;
  std::int64_t best_total = 0;
  for (const auto& child : children) {
    if (child.total() > best_total) {
      best = &child;
      best_total = child.total();
    }
  }
  if (best != nullptr) parent.merge(*best);
}

}  // namespace deltacol
