#include "runtime/component_scheduler.h"

#include <algorithm>

namespace deltacol {

void ComponentScheduler::run(int count,
                             const std::function<void(int)>& job) const {
  if (count <= 0) return;
  if (pool_ == nullptr) {
    for (int i = 0; i < count; ++i) job(i);
    return;
  }
  pool_->parallel_chunks(count, job);
}

std::int64_t ComponentScheduler::run_max_total(
    int count, const std::function<void(int, RoundLedger&)>& job) const {
  if (count <= 0) return 0;
  std::vector<RoundLedger> children(static_cast<std::size_t>(count));
  run(count,
      [&](int i) { job(i, children[static_cast<std::size_t>(i)]); });
  std::int64_t best = 0;
  for (const auto& child : children) best = std::max(best, child.total());
  return best;
}

void charge_max_component(RoundLedger& parent,
                          const std::vector<RoundLedger>& children) {
  // Strictly-greater scan from 0 in index order: a run whose components all
  // charged nothing merges nothing (matching the serial engine's fold).
  const RoundLedger* best = nullptr;
  std::int64_t best_total = 0;
  for (const auto& child : children) {
    if (child.total() > best_total) {
      best = &child;
      best_total = child.total();
    }
  }
  if (best != nullptr) parent.merge(*best);
}

}  // namespace deltacol
