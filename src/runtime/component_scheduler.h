/// \file
/// Deterministic fan-out of independent per-component runs.
///
/// In a real network, disjoint connected components (and the independent
/// list-coloring instances derived from them) execute concurrently and the
/// LOCAL-model cost of the whole run is the MAXIMUM component cost, not the
/// sum. The serial engine already charges that way; this scheduler makes the
/// wall-clock execution match the model — components run concurrently on a
/// ThreadPool — without touching the accounting:
///
///   * every job gets index-private outputs (its own RoundLedger, its own
///     PhaseStats, a disjoint slice of the global coloring), so execution
///     order cannot leak into results;
///   * all randomness is pre-split on the calling thread in index order, so
///     each job sees the same private stream at any thread count;
///   * results are folded back in index order after the barrier
///     (charge_max_component picks the same winner a serial loop would).
///
/// See DESIGN.md "Runtime" for why this preserves bit-for-bit determinism.
#pragma once

#include <functional>
#include <vector>

#include "local/round_ledger.h"
#include "runtime/execution_mode.h"
#include "runtime/thread_pool.h"

namespace deltacol {

class Transport;        // src/runtime/mailbox.h
class VertexPartition;  // src/graph/partition.h

class ComponentScheduler {
 public:
  /// `pool` may be nullptr: jobs then run inline, in index order.
  /// `mode` (runtime/execution_mode.h): kFast makes the *_placed fan-outs
  /// ignore shard placement for in-process execution and delegate to the
  /// dynamically load-balanced run()/run_max_total() — first-come job
  /// claiming instead of shard-fenced queues. Results stay identical
  /// because jobs keep index-private outputs regardless of where they run;
  /// only wall-clock placement changes (which is the point).
  explicit ComponentScheduler(ThreadPool* pool,
                              ExecutionMode mode = ExecutionMode::kDeterministic)
      : pool_(pool), mode_(mode) {}

  /// Runs job(0) .. job(count - 1), concurrently when a multi-threaded pool
  /// is attached. Each component is one schedulable unit (components vary
  /// wildly in size; one-chunk-per-job load-balances dynamically). Blocks
  /// until all jobs finished; the lowest-index job's exception is rethrown
  /// (the one a serial loop would have surfaced).
  void run(int count, const std::function<void(int)>& job) const;

  /// Phase-(6)-style fan-out: runs job(i, ledger_i) for every i with an
  /// index-private RoundLedger and returns the maximum child total — the
  /// LOCAL-model cost of independent instances executing concurrently on a
  /// real network (§2 of DESIGN.md). Callers charge the returned value to
  /// their own phase tag; the per-child phase breakdowns are deliberately
  /// discarded (the max is a single network-time figure, not a merge).
  /// Exceptions follow run(): the lowest-index job's is rethrown.
  ///
  /// `congest_bits` propagates the caller's CONGEST(B) mode onto each
  /// index-private child ledger before its job runs (0 = LOCAL) — child
  /// ledgers are created here, so the mode cannot be inherited any other
  /// way, and merge() deliberately never copies configuration.
  std::int64_t run_max_total(
      int count, const std::function<void(int, RoundLedger&)>& job,
      std::int64_t congest_bits = 0) const;

  /// Shard-placed fan-out (the distributed execution shape): job i runs on
  /// its home shard `placement[i]`, shards execute through `transport`
  /// (concurrently under InProcessTransport with a pooled runtime), and a
  /// shard runs its own jobs in ascending index order — exactly what a rank
  /// of a distributed deployment would do with the components it owns.
  ///
  /// Results are identical to run() for any placement because jobs keep the
  /// index-private-output discipline; only wall-clock placement changes.
  /// The exception contract also matches run(): every job executes (a
  /// throwing job cannot cancel siblings) and the lowest-index job's
  /// exception is rethrown after the barrier. transport.num_shards() <= 1
  /// falls back to run()'s per-job dynamic load balancing.
  void run_placed(const std::vector<int>& placement, Transport& transport,
                  const std::function<void(int)>& job) const;

  /// run_max_total with shard placement; see run_placed / run_max_total.
  std::int64_t run_max_total_placed(
      const std::vector<int>& placement, Transport& transport,
      const std::function<void(int, RoundLedger&)>& job,
      std::int64_t congest_bits = 0) const;

  /// The canonical home-shard convenience used by the api-level component
  /// fan-out and the Phase-(6) leftover fan-out: job i is placed on the
  /// shard owning `owner_vertex[i]` under `part` (contiguous or
  /// locality-renumbered — placement is wherever part.shard_of says the
  /// owner lives), executed through an in-process transport over this
  /// scheduler's pool. A single shard falls back to the unplaced
  /// run()/run_max_total().
  void run_owner_placed(const VertexPartition& part,
                        const std::vector<int>& owner_vertex,
                        const std::function<void(int)>& job) const;
  std::int64_t run_max_total_owner_placed(
      const VertexPartition& part, const std::vector<int>& owner_vertex,
      const std::function<void(int, RoundLedger&)>& job,
      std::int64_t congest_bits = 0) const;

  /// Contiguous-partition convenience (the pre-PR-8 signatures).
  void run_owner_placed(int n, int num_shards,
                        const std::vector<int>& owner_vertex,
                        const std::function<void(int)>& job) const;
  std::int64_t run_max_total_owner_placed(
      int n, int num_shards, const std::vector<int>& owner_vertex,
      const std::function<void(int, RoundLedger&)>& job,
      std::int64_t congest_bits = 0) const;

 private:
  ThreadPool* pool_;
  ExecutionMode mode_ = ExecutionMode::kDeterministic;
};

/// LOCAL-model accounting for parallel component runs: merges into `parent`
/// the child ledger with the largest total (ties broken by lowest index,
/// exactly like the serial max-scan). No-op when `children` is empty.
void charge_max_component(RoundLedger& parent,
                          const std::vector<RoundLedger>& children);

}  // namespace deltacol
