/// \file
/// Execution-mode switch of the parallel runtime: bit-exact replay vs
/// relaxed-order speed (ROADMAP direction 5, DESIGN.md §6 "Fast mode").
///
/// **kDeterministic** (the default, and the reference oracle) keeps every
/// ordering discipline the runtime was built on: two-phase frontier replay
/// (graph/frontier_bfs.h), shard-major stable-sorted inbox merges
/// (runtime/parallel_sync_engine.h, local/sync_engine.h), static chunk
/// partitions and shard-placed fan-outs (runtime/component_scheduler.h,
/// runtime/mailbox.h). Results are bit-identical for every
/// (threads, shards, partition) shape.
///
/// **kFast** drops those orderings wherever the algorithms only need *a*
/// valid outcome, not *the* serial one: atomics-based first-claim frontier
/// expansion, merge-on-arrival inboxes with no stable sort, first-come work
/// claiming in the packing engine and the component fan-outs, and fused
/// merge+receive barriers. The contract shrinks to VALIDITY — a proper
/// Delta-coloring within the proven round bounds, CONGEST charges computed
/// by the same order-free max fold — and is pinned by the cross-validation
/// harness (tests/test_fast_mode.cpp) under randomized chunking, injected
/// stalls and adversarial delivery orders. Deterministic-mode behaviour is
/// untouched by construction (the fast paths are opt-in branches), which the
/// pre-PR golden regression test (tests/test_golden_determinism.cpp) pins
/// byte-for-byte.
#pragma once

#include <cstring>

namespace deltacol {

enum class ExecutionMode {
  kDeterministic,  ///< Bit-exact replay/merge ordering (the reference).
  kFast,           ///< Relaxed ordering; only validity is guaranteed.
};

/// Short stable identifier (logs, benches, CSV output).
inline const char* execution_mode_name(ExecutionMode m) {
  return m == ExecutionMode::kFast ? "fast" : "deterministic";
}

/// Parses a CLI spelling ("deterministic"/"det" or "fast") into \p out;
/// returns false (leaving \p out untouched) on anything else.
inline bool parse_execution_mode(const char* s, ExecutionMode* out) {
  if (std::strcmp(s, "deterministic") == 0 || std::strcmp(s, "det") == 0) {
    *out = ExecutionMode::kDeterministic;
    return true;
  }
  if (std::strcmp(s, "fast") == 0) {
    *out = ExecutionMode::kFast;
    return true;
  }
  return false;
}

}  // namespace deltacol
