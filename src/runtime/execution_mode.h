/// \file
/// Execution-mode switch of the parallel runtime: bit-exact replay vs
/// relaxed-order speed (ROADMAP direction 5, DESIGN.md §6 "Fast mode").
///
/// **kDeterministic** (the default, and the reference oracle) keeps every
/// ordering discipline the runtime was built on: two-phase frontier replay
/// (graph/frontier_bfs.h), shard-major stable-sorted inbox merges
/// (runtime/parallel_sync_engine.h, local/sync_engine.h), static chunk
/// partitions and shard-placed fan-outs (runtime/component_scheduler.h,
/// runtime/mailbox.h). Results are bit-identical for every
/// (threads, shards, partition) shape.
///
/// **kFast** drops those orderings wherever the algorithms only need *a*
/// valid outcome, not *the* serial one: atomics-based first-claim frontier
/// expansion, merge-on-arrival inboxes with no stable sort, first-come work
/// claiming in the packing engine and the component fan-outs, and fused
/// merge+receive barriers. The contract shrinks to VALIDITY — a proper
/// Delta-coloring within the proven round bounds, CONGEST charges computed
/// by the same order-free max fold — and is pinned by the cross-validation
/// harness (tests/test_fast_mode.cpp) under randomized chunking, injected
/// stalls and adversarial delivery orders. Deterministic-mode behaviour is
/// untouched by construction (the fast paths are opt-in branches), which the
/// pre-PR golden regression test (tests/test_golden_determinism.cpp) pins
/// byte-for-byte.
#pragma once

#include <cstring>

namespace deltacol {

enum class ExecutionMode {
  kDeterministic,  ///< Bit-exact replay/merge ordering (the reference).
  kFast,           ///< Relaxed ordering; only validity is guaranteed.
};

/// How a distributed run moves one round's envelopes between ranks
/// (ROADMAP direction 1 follow-on; DESIGN.md §6 "Owner-compute").
///
/// **kReplicated** (the default, and the differential oracle): every rank
/// serializes its full mailbox row, all-gathers it, and replays the merge +
/// receive for all S shards — per-rank compute is O(n) and wire traffic is
/// O(S × total bytes), but the discipline is simple and every rank holds the
/// complete global state at all times.
///
/// **kOwnerRouted**: every rank owns only its shard's state end-to-end.
/// Only the slots addressed to *other* ranks are encoded (local-slot
/// envelopes never touch the codec), point-to-point frames replace the
/// all-gather, and merge + receive run only for the local shard — per-rank
/// work drops to O(n/S + halo) and the wire carries exactly the cross-shard
/// payload a locality partition (graph/renumber.h) leaves behind. A
/// deterministic end-of-run gather reassembles the global result on every
/// rank, bit-identical to the replicated path (the shard-major merge rule
/// makes each shard's inbox independent of other shards' local state).
/// In-process runs honor the policy too — off-diagonal slots round-trip
/// through the wire codec — so the hermetic zoo differential covers both
/// policies without sockets.
enum class ExchangePolicy {
  kReplicated,   ///< Full-row all-gather + replicated merge (the oracle).
  kOwnerRouted,  ///< Point-to-point cross slots only; rank-local merge.
};

/// Short stable identifier (logs, benches, CSV output).
inline const char* exchange_policy_name(ExchangePolicy p) {
  return p == ExchangePolicy::kOwnerRouted ? "owner" : "replicated";
}

/// Parses a CLI spelling ("replicated" or "owner"/"owner-routed") into
/// \p out; returns false (leaving \p out untouched) on anything else.
inline bool parse_exchange_policy(const char* s, ExchangePolicy* out) {
  if (std::strcmp(s, "replicated") == 0) {
    *out = ExchangePolicy::kReplicated;
    return true;
  }
  if (std::strcmp(s, "owner") == 0 || std::strcmp(s, "owner-routed") == 0) {
    *out = ExchangePolicy::kOwnerRouted;
    return true;
  }
  return false;
}

/// Short stable identifier (logs, benches, CSV output).
inline const char* execution_mode_name(ExecutionMode m) {
  return m == ExecutionMode::kFast ? "fast" : "deterministic";
}

/// Parses a CLI spelling ("deterministic"/"det" or "fast") into \p out;
/// returns false (leaving \p out untouched) on anything else.
inline bool parse_execution_mode(const char* s, ExecutionMode* out) {
  if (std::strcmp(s, "deterministic") == 0 || std::strcmp(s, "det") == 0) {
    *out = ExecutionMode::kDeterministic;
    return true;
  }
  if (std::strcmp(s, "fast") == 0) {
    *out = ExecutionMode::kFast;
    return true;
  }
  return false;
}

}  // namespace deltacol
