#include "runtime/mailbox.h"

namespace deltacol {

std::vector<std::vector<std::vector<std::uint8_t>>> Transport::all_gather_rows(
    std::vector<std::vector<std::uint8_t>> local_row) {
  (void)local_row;
  DC_REQUIRE(false,
             "all_gather_rows: this transport has no wire — the byte "
             "exchange is only meaningful when local_shard() >= 0");
  return {};
}

Transport::OwnedExchange Transport::exchange_owned(
    std::vector<std::vector<std::uint8_t>> to_peers,
    std::vector<std::int64_t> row_counts, std::vector<std::int64_t> row_bits) {
  (void)to_peers;
  (void)row_counts;
  (void)row_bits;
  DC_REQUIRE(false,
             "exchange_owned: this transport has no wire — the owner-routed "
             "byte exchange is only meaningful when local_shard() >= 0 "
             "(in-process owner-routed rounds round-trip slots through the "
             "codec in the engine instead)");
  return {};
}

InProcessTransport::InProcessTransport(int num_shards, ThreadPool* pool)
    : num_shards_(num_shards), pool_(pool) {
  DC_REQUIRE(num_shards >= 1, "transport needs at least one shard");
}

void InProcessTransport::run_shards(const std::function<void(int)>& body) {
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->parallel_chunks(num_shards_, body);
  } else {
    for (int s = 0; s < num_shards_; ++s) body(s);
  }
}

ShardRuntime::ShardRuntime(const Graph& g, int num_shards, ThreadPool* pool)
    : ShardRuntime(g, num_shards, pool,
                   std::make_unique<InProcessTransport>(
                       VertexPartition::resolve_num_shards(num_shards),
                       pool)) {}

ShardRuntime::ShardRuntime(const Graph& g, int num_shards, ThreadPool* pool,
                           std::unique_ptr<Transport> transport)
    : ShardRuntime(
          g,
          VertexPartition::contiguous(
              g.num_vertices(),
              VertexPartition::resolve_num_shards(num_shards)),
          pool, std::move(transport)) {}

ShardRuntime::ShardRuntime(const Graph& g, VertexPartition part,
                           ThreadPool* pool,
                           std::unique_ptr<Transport> transport)
    : part_(std::move(part)),
      views_(build_graph_views(g, part_)),
      transport_(transport != nullptr
                     ? std::move(transport)
                     : std::make_unique<InProcessTransport>(
                           part_.num_shards(), pool)),
      pool_(pool),
      sent_(static_cast<std::size_t>(part_.num_shards()) *
                static_cast<std::size_t>(part_.num_shards()),
            0),
      sent_bits_(sent_.size(), 0) {
  DC_REQUIRE(part_.num_vertices() == g.num_vertices(),
             "partition does not span the graph");
  DC_REQUIRE(transport_->num_shards() == part_.num_shards(),
             "transport shard count disagrees with the partition");
}

void ShardRuntime::record_round(
    const std::vector<std::int64_t>& slot_counts,
    const std::vector<std::int64_t>& slot_bit_totals) {
  DC_REQUIRE(slot_counts.size() == sent_.size(),
             "slot count vector has the wrong shape");
  DC_REQUIRE(slot_bit_totals.size() == sent_bits_.size(),
             "slot bit vector has the wrong shape");
  for (std::size_t i = 0; i < sent_.size(); ++i) {
    sent_[i] += slot_counts[i];
    sent_bits_[i] += slot_bit_totals[i];
  }
  ++rounds_;
}

std::int64_t ShardRuntime::total_messages() const {
  std::int64_t total = 0;
  for (std::int64_t c : sent_) total += c;
  return total;
}

std::int64_t ShardRuntime::total_bits() const {
  std::int64_t total = 0;
  for (std::int64_t b : sent_bits_) total += b;
  return total;
}

std::int64_t ShardRuntime::cross_shard_messages() const {
  const int s = num_shards();
  std::int64_t total = 0;
  for (int a = 0; a < s; ++a) {
    for (int b = 0; b < s; ++b) {
      if (a != b) total += slot_messages(a, b);
    }
  }
  return total;
}

std::int64_t ShardRuntime::cross_shard_bits() const {
  const int s = num_shards();
  std::int64_t total = 0;
  for (int a = 0; a < s; ++a) {
    for (int b = 0; b < s; ++b) {
      if (a != b) total += slot_bits(a, b);
    }
  }
  return total;
}

void ShardRuntime::reset_counters() {
  for (auto& c : sent_) c = 0;
  for (auto& b : sent_bits_) b = 0;
  rounds_ = 0;
}

}  // namespace deltacol
