/// \file
/// Shard-to-shard message passing: the execution layer of the shard runtime
/// (the data layer is graph/partition.h; ARCHITECTURE.md "The shard layer").
///
/// Three pieces:
///
///  * `Transport` — the only interface a distributed backend has to
///    implement. It answers "how many shards", "which shard is local"
///    (local_shard(): -1 in process, a rank id when distributed), "run this
///    shard body on every local shard, then barrier", and — for distributed
///    backends — "ship my serialized mailbox row to every peer and give me
///    theirs" (all_gather_rows). `InProcessTransport` is the in-memory
///    backend: shards are indexed chunks on the existing ThreadPool, so a
///    mailbox handed from shard a to shard b is a pointer, not bytes.
///    `SocketTransport` (net/socket_transport.h) is the TCP backend: each OS
///    process owns one shard, run_shards() runs only the local rank's body,
///    and the bytes move through all_gather_rows — nothing above this
///    interface changes (that is the point of this layer).
///
///  * `Mailbox<Msg>` — per-(source-shard, destination-shard) staging slots
///    for one round's envelopes. Posting is row-private (shard s writes only
///    slots (s, *)), draining is column-private (shard d reads only slots
///    (*, d)), so no synchronization beyond the transport barrier is needed.
///
///  * `ShardRuntime` — one graph's shard bundle: partition + views +
///    transport + cumulative message-volume counters, in envelopes AND in
///    wire bits (MessageSize, runtime/message_size.h) — the CONGEST metrics
///    reported by bench_e15/bench_e16 and the serialization sizing a socket
///    Transport needs.
///
/// **The merge-order rule** (the whole determinism argument, DESIGN.md §6):
/// within a source shard, envelopes are staged in ascending sender order
/// (chunk-indexed staging concatenated in chunk order, exactly the
/// ParallelSyncEngine discipline); destination shards drain slots in
/// ascending source-shard order and the engine re-sorts each inbox
/// *stably* by sender. Under the contiguous partition shard-major
/// concatenation already is global ascending sender order — the serial
/// engine's inbox fill order; under a renumbered locality-aware partition
/// (graph/partition.h, PR 8) it is not, but the stable sort restores it
/// exactly, because each sender's messages to one destination live in a
/// single slot in emission order. Either way every inbox is byte-identical
/// for every (shards, threads, partition) combination.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "graph/partition.h"
#include "net/wire_codec.h"
#include "runtime/execution_mode.h"
#include "runtime/message_size.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

/// Executes shard bodies and moves staged messages between shards. See the
/// file comment for the backend contract.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_shards() const = 0;

  /// Runs body(0) .. body(S-1), one invocation per **local** shard, and
  /// blocks until all completed (a barrier). In-process every shard is
  /// local; a distributed backend (local_shard() >= 0) invokes only its own
  /// rank's body — the other S-1 invocations happen in the peer processes.
  /// Bodies must write only shard-private state; concurrent execution is
  /// allowed but not required, and the lowest shard's exception wins (the
  /// ThreadPool contract), so results never depend on backend scheduling.
  virtual void run_shards(const std::function<void(int)>& body) = 0;

  /// Delivers everything staged since the last exchange. In-process this is
  /// a no-op — mailboxes live in shared memory and the run_shards barrier
  /// already published them. A distributed backend has already moved the
  /// bytes through all_gather_rows (the engine drives serialization, since
  /// only it knows the message type); exchange() remains the per-round
  /// backend hook (counters, flushes).
  virtual void exchange() {}

  /// The one shard this OS process owns, or -1 when every shard is local
  /// (the in-process backends). When >= 0, the engine stages sends for this
  /// shard only, ships its serialized mailbox row through all_gather_rows,
  /// fills the other rows from the wire (Mailbox::fill), and replays the
  /// merge + receive for every shard so each rank's replicated global state
  /// stays bit-identical (DESIGN.md §6, "the socket backend").
  virtual int local_shard() const { return -1; }

  /// Distributed byte exchange: ships this rank's serialized mailbox row
  /// (`local_row[d]` = the encoded (local_shard, d) slot, S entries) to
  /// every peer and returns all ranks' rows — result[s][d] is the encoded
  /// (s, d) slot, with result[local_shard()] being `local_row` unchanged.
  /// Blocks until every rank has contributed: this is the inter-round
  /// barrier of a distributed run. Only meaningful when local_shard() >= 0;
  /// the in-process default has no wire and throws.
  virtual std::vector<std::vector<std::vector<std::uint8_t>>> all_gather_rows(
      std::vector<std::vector<std::uint8_t>> local_row);

  /// Result of an owner-routed exchange (ExchangePolicy::kOwnerRouted).
  /// `slots[s]` is the encoded (s, local_shard) slot shipped by rank s
  /// (empty at s == local_shard — the local slot never crossed the wire);
  /// `slot_counts` / `slot_bits` are the reassembled full S×S row-major
  /// per-slot tallies (every rank's posted row, piggybacked on the frames),
  /// so ShardRuntime::record_round sees the same counters the replicated
  /// and in-process runs see.
  struct OwnedExchange {
    std::vector<std::vector<std::uint8_t>> slots;
    std::vector<std::int64_t> slot_counts;
    std::vector<std::int64_t> slot_bits;
  };

  /// Owner-routed distributed exchange: ships `to_peers[d]` — the encoded
  /// (local_shard, d) slot — point-to-point to rank d only (to_peers at the
  /// local index must be empty: local envelopes stay in the mailbox,
  /// untouched by the codec), together with this rank's posted per-slot
  /// tallies (`row_counts` / `row_bits`, S entries each), and returns the
  /// slots the peers addressed to this rank plus the reassembled global
  /// tallies. Blocks until every peer's frame arrived (the inter-round
  /// barrier). Only meaningful when local_shard() >= 0; the in-process
  /// default has no wire and throws — in-process owner-routed rounds
  /// round-trip slots through the codec locally instead
  /// (runtime/parallel_sync_engine.h).
  virtual OwnedExchange exchange_owned(
      std::vector<std::vector<std::uint8_t>> to_peers,
      std::vector<std::int64_t> row_counts, std::vector<std::int64_t> row_bits);

  /// Deterministic cross-rank sum of one i64 per rank (folded in ascending
  /// rank order). The in-process default is the identity: every shard is
  /// local, so the caller's value already is the global value. Owner-routed
  /// runs use this for termination tests over owned-only state.
  virtual std::int64_t allreduce_sum(std::int64_t value) { return value; }

  /// Deterministic cross-rank max of one i64 per rank. In-process identity,
  /// like allreduce_sum. Owner-routed runs use this for the CONGEST
  /// heaviest-edge fold, which is order-free by construction.
  virtual std::int64_t allreduce_max(std::int64_t value) { return value; }

  /// Reassembles a globally indexed per-vertex array on every rank: each
  /// rank contributes `values[v]` for the vertices its shard owns under
  /// `part`, and on return every entry is globally agreed — the
  /// deterministic end-of-run gather of an owner-routed run (colorings, MIS
  /// flags, any per-vertex int). The in-process default is a no-op: every
  /// vertex is already local.
  virtual void gather_colors(const VertexPartition& part,
                             std::vector<int>& values) {
    (void)part;
    (void)values;
  }
};

/// The shared-memory backend: S shards fan out as indexed chunks on the
/// ThreadPool (inline and serial when `pool` is null or single-threaded).
class InProcessTransport final : public Transport {
 public:
  InProcessTransport(int num_shards, ThreadPool* pool);

  int num_shards() const override { return num_shards_; }
  void run_shards(const std::function<void(int)>& body) override;

 private:
  int num_shards_;
  ThreadPool* pool_;
};

/// One graph's shard bundle: the deterministic partition, each shard's
/// GraphView, the transport, and cumulative message-volume accounting.
/// Engines hold a (mutable) pointer; construction is O(n + m) once.
class ShardRuntime {
 public:
  /// In-process runtime: S shards on `pool` (nullptr runs shards serially).
  ShardRuntime(const Graph& g, int num_shards, ThreadPool* pool);
  /// Custom backend (tests inject scheduling-perverse transports to pin
  /// order-independence; the socket runtime injects SocketTransport).
  ShardRuntime(const Graph& g, int num_shards, ThreadPool* pool,
               std::unique_ptr<Transport> transport);
  /// Explicit partition (contiguous or renumbered — graph/renumber.h); the
  /// partition's shard count is authoritative. transport == nullptr builds
  /// the in-process backend.
  ShardRuntime(const Graph& g, VertexPartition part, ThreadPool* pool,
               std::unique_ptr<Transport> transport = nullptr);

  int num_shards() const { return part_.num_shards(); }
  const VertexPartition& partition() const { return part_; }
  const GraphView& view(int shard) const {
    return views_[static_cast<std::size_t>(shard)];
  }
  Transport& transport() const { return *transport_; }
  ThreadPool* pool() const { return pool_; }

  /// How engines attached to this runtime move envelopes between shards
  /// (runtime/execution_mode.h). kReplicated (the default) keeps the
  /// full-row all-gather + replicated merge; kOwnerRouted ships only
  /// cross-shard slots point-to-point and merges rank-locally. Results are
  /// bit-identical either way (DESIGN.md §6, "Owner-compute"); set before
  /// attaching engines.
  ExchangePolicy exchange_policy() const { return exchange_policy_; }
  void set_exchange_policy(ExchangePolicy policy) { exchange_policy_ = policy; }

  /// True when engines should run the rank-local owner-compute round: the
  /// owner-routed policy over a distributed transport. In-process
  /// owner-routed runs keep full state (there is no wire to save) but
  /// round-trip cross slots through the codec so the policy is covered
  /// hermetically.
  bool owner_routed_distributed() const {
    return exchange_policy_ == ExchangePolicy::kOwnerRouted &&
           transport_->local_shard() >= 0;
  }

  // --- message-volume accounting (per-round CONGEST metrics, bench_e15 /
  // --- bench_e16): cumulative per-(src, dst) envelope counts and wire bits.

  /// Folds one round's per-slot envelope counts and wire-bit totals (both
  /// row-major, S*S entries — Mailbox::slot_counts() / slot_bits()). Called
  /// by the engine on the calling thread after the receive barrier.
  void record_round(const std::vector<std::int64_t>& slot_counts,
                    const std::vector<std::int64_t>& slot_bit_totals);

  std::int64_t rounds_recorded() const { return rounds_; }
  /// Cumulative envelopes staged in slot (src, dst).
  std::int64_t slot_messages(int src, int dst) const {
    return sent_[slot_index(src, dst)];
  }
  /// Cumulative wire bits staged in slot (src, dst) (MessageSize sizing —
  /// the bytes a serializing transport would frame are ceil(bits / 8)).
  std::int64_t slot_bits(int src, int dst) const {
    return sent_bits_[slot_index(src, dst)];
  }
  std::int64_t total_messages() const;
  std::int64_t total_bits() const;
  /// Messages that crossed a shard boundary (off-diagonal slots) — the part
  /// a distributed transport pays for.
  std::int64_t cross_shard_messages() const;
  /// Wire bits that crossed a shard boundary.
  std::int64_t cross_shard_bits() const;

  /// Zeroes every cumulative counter (messages, bits, rounds) so one
  /// runtime — whose partition/view/transport construction is O(n + m) —
  /// can be reused across independent workloads with per-workload
  /// accounting. Views, partition and transport are untouched.
  void reset_counters();

 private:
  std::size_t slot_index(int src, int dst) const {
    return static_cast<std::size_t>(src) *
               static_cast<std::size_t>(num_shards()) +
           static_cast<std::size_t>(dst);
  }

  VertexPartition part_;
  std::vector<GraphView> views_;
  std::unique_ptr<Transport> transport_;
  ThreadPool* pool_;
  ExchangePolicy exchange_policy_ = ExchangePolicy::kReplicated;
  std::vector<std::int64_t> sent_;       // row-major (src, dst), cumulative
  std::vector<std::int64_t> sent_bits_;  // same shape, MessageSize bits
  std::int64_t rounds_ = 0;
};

/// Per-(source-shard, destination-shard) staging slots for one round.
/// Envelope order within a slot is the poster's responsibility (ascending
/// sender — see the merge-order rule in the file comment); routing by
/// destination owner is this class's.
template <typename Msg>
class Mailbox {
 public:
  struct Envelope {
    int to;
    int from;
    Msg msg;
  };

  explicit Mailbox(const VertexPartition* part)
      : part_(part),
        num_shards_(part->num_shards()),
        slots_(static_cast<std::size_t>(num_shards_) *
               static_cast<std::size_t>(num_shards_)),
        slot_counts_(slots_.size(), 0),
        slot_bits_(slots_.size(), 0),
        filled_(slots_.size(), 0) {}

  int num_shards() const { return num_shards_; }

  /// Stages one envelope from `from` (owned by src_shard) to `to`; routed
  /// to slot (src_shard, owner(to)). Only src_shard may call this (row
  /// privacy — which also makes the per-slot tallies race-free). The
  /// envelope's wire size is accounted at post time via MessageSize<Msg>.
  void post(int src_shard, int from, int to, Msg msg) {
    const int dst_shard = part_->shard_of(to);
    const std::size_t idx = slot_index(src_shard, dst_shard);
    slot_bits_[idx] += message_bits(msg);
    ++slot_counts_[idx];
    slots_[idx].push_back(Envelope{to, from, std::move(msg)});
  }

  /// Installs a whole slot at once — the remote-fill path of a distributed
  /// backend: rank d decodes the bytes rank s shipped and fills slot (s, d)
  /// (and, under the replicated-state discipline, every other remote slot
  /// too). Envelope order must be the sender's post order — decode_slot
  /// preserves it — so the shard-major merge rule survives serialization.
  /// The envelopes are accounted exactly as a local post would have
  /// (MessageSize is a pure function of the value, so both sides of the
  /// wire tally identical counters). A slot may be filled at most once per
  /// round, and never on top of locally posted envelopes: double delivery
  /// is a transport bug this assertion turns into a loud failure instead of
  /// silently duplicated messages.
  void fill(int src_shard, int dst_shard, std::vector<Envelope> envelopes) {
    const std::size_t idx = slot_index(src_shard, dst_shard);
    DC_REQUIRE(!filled_[idx], "mailbox slot filled twice in one round");
    DC_REQUIRE(slots_[idx].empty(),
               "mailbox fill would clobber locally posted envelopes");
    filled_[idx] = 1;
    for (const Envelope& e : envelopes) {
      slot_bits_[idx] += message_bits(e.msg);
    }
    slot_counts_[idx] += static_cast<std::int64_t>(envelopes.size());
    slots_[idx] = std::move(envelopes);
  }

  /// Serializes the off-diagonal slots of `src_shard`'s row for an
  /// owner-routed exchange (Transport::exchange_owned): entry d is the
  /// encoded (src_shard, d) slot for d != src_shard, and the entry at
  /// src_shard stays EMPTY — the local slot's envelopes are left in place,
  /// never touching the codec (that is the owner-compute invariant a
  /// distributed transport must not break; see DESIGN.md §6). The encoded
  /// slots are copies: the off-diagonal envelopes stay staged too, so a
  /// transport failure mid-exchange never loses the round. At most one
  /// owner-routed exchange per round: a second call before clear() is a
  /// double-exchange transport bug and throws.
  std::vector<std::vector<std::uint8_t>> encode_owned_row(int src_shard) {
    DC_REQUIRE(!owner_exchanged_,
               "owner-routed exchange ran twice in one round "
               "(encode_owned_row before clear())");
    owner_exchanged_ = true;
    std::vector<std::vector<std::uint8_t>> row(
        static_cast<std::size_t>(num_shards_));
    for (int d = 0; d < num_shards_; ++d) {
      if (d == src_shard) continue;  // the local slot never crosses the wire
      row[static_cast<std::size_t>(d)] = encode_slot<Msg>(slot(src_shard, d));
    }
    return row;
  }

  /// Moves one slot's envelopes out (the drain side of the receive barrier),
  /// leaving the slot empty. The round's tallies (slot_counts / slot_bits)
  /// are unaffected — they describe what was staged this round, not what is
  /// currently buffered — so ShardRuntime::record_round may run after the
  /// receive has drained everything.
  std::vector<Envelope> drain(int src_shard, int dst_shard) {
    return std::exchange(slots_[slot_index(src_shard, dst_shard)], {});
  }

  std::vector<Envelope>& slot(int src, int dst) {
    return slots_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(num_shards_) +
                  static_cast<std::size_t>(dst)];
  }
  const std::vector<Envelope>& slot(int src, int dst) const {
    return slots_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(num_shards_) +
                  static_cast<std::size_t>(dst)];
  }

  /// Per-slot envelope counts of this round, row-major (feeds
  /// ShardRuntime::record_round). Accumulated at post/fill time, so the
  /// counts survive drain().
  const std::vector<std::int64_t>& slot_counts() const { return slot_counts_; }

  /// Per-slot wire-bit totals of this round, row-major (the byte-accounting
  /// companion of slot_counts(), accumulated at post/fill time).
  const std::vector<std::int64_t>& slot_bits() const { return slot_bits_; }

  /// Empties every slot, zeroes the tallies and re-arms the fill-once and
  /// exchange-once guards, keeping capacity (called at round start).
  void clear() {
    for (auto& s : slots_) s.clear();
    for (auto& c : slot_counts_) c = 0;
    for (auto& b : slot_bits_) b = 0;
    for (auto& f : filled_) f = 0;
    owner_exchanged_ = false;
  }

 private:
  std::size_t slot_index(int src, int dst) const {
    return static_cast<std::size_t>(src) *
               static_cast<std::size_t>(num_shards_) +
           static_cast<std::size_t>(dst);
  }

  const VertexPartition* part_;
  int num_shards_;
  std::vector<std::vector<Envelope>> slots_;
  std::vector<std::int64_t> slot_counts_;  // row-major, this round's staged
  std::vector<std::int64_t> slot_bits_;    // same shape, MessageSize bits
  std::vector<std::uint8_t> filled_;       // fill-once-per-round guards
  bool owner_exchanged_ = false;           // exchange-once-per-round guard
};

/// Shard-major sweep: body(v) for every vertex, with each shard's owned set
/// as one placement unit on the pool (the unit a distributed runtime would
/// pin to a rank). Falls back to pooled_for when num_shards <= 1. The body
/// must write only v-private state — the same contract as pooled_for — so
/// every (num_shards, threads, partition) combination yields identical
/// results; only placement and wall-clock change.
template <typename Body>
void sharded_for(ThreadPool* pool, const VertexPartition& part,
                 const Body& body) {
  if (part.num_shards() <= 1) {
    pooled_for(pool, 0, part.num_vertices(), body);
    return;
  }
  const auto shard_body = [&part, &body](int s) {
    const int count = part.size(s);
    for (int i = 0; i < count; ++i) body(part.owned_vertex(s, i));
  };
  if (pool != nullptr) {
    pool->parallel_chunks(part.num_shards(), shard_body);
  } else {
    for (int s = 0; s < part.num_shards(); ++s) shard_body(s);
  }
}

/// Contiguous-partition convenience overload (the pre-PR-8 signature).
template <typename Body>
void sharded_for(ThreadPool* pool, int num_shards, int n, const Body& body) {
  if (num_shards <= 1) {
    pooled_for(pool, 0, n, body);
    return;
  }
  sharded_for(pool, VertexPartition::contiguous(n, num_shards), body);
}

/// Mode-aware sharded_for (runtime/execution_mode.h). kDeterministic keeps
/// the shard-major placement sweep above. kFast drops the placement
/// fiction for in-process sweeps and runs a plain range-chunked pooled_for
/// over all vertices — dynamically claimed chunks load-balance across the
/// whole id space instead of being fenced at shard boundaries. Valid for
/// the same reason sharded_for is: the body only writes v-private state, so
/// the iteration grouping is not observable in the result.
template <typename Body>
void sharded_for(ThreadPool* pool, const VertexPartition& part,
                 ExecutionMode mode, const Body& body) {
  if (mode == ExecutionMode::kFast) {
    pooled_for(pool, 0, part.num_vertices(), body);
    return;
  }
  sharded_for(pool, part, body);
}

/// Contiguous-partition convenience overload of the mode-aware sweep.
template <typename Body>
void sharded_for(ThreadPool* pool, int num_shards, int n, ExecutionMode mode,
                 const Body& body) {
  if (mode == ExecutionMode::kFast) {
    pooled_for(pool, 0, n, body);
    return;
  }
  sharded_for(pool, num_shards, n, body);
}

}  // namespace deltacol
