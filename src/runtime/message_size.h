/// \file
/// Wire-size accounting for the message-passing layer — the data model of
/// CONGEST mode (DESIGN.md §6, "CONGEST accounting").
///
/// `MessageSize<Msg>` answers one question: how many bits would `msg` occupy
/// on a real link? Every message type that flows through a `SyncEngine`,
/// `ParallelSyncEngine` or `Mailbox` must specialize it — the primary
/// template is deliberately left undefined, so an unregistered message type
/// is a compile error, never a silent under-charge. The registered sizes are
/// pinned against a hand-computed table in tests/test_message_size.cpp.
///
/// Sizing convention: payload bits only. Addressing (sender/receiver ids) is
/// carried by the edge itself in the CONGEST model — a node knows which port
/// a message arrived on — so envelope headers are not charged. Fixed-width
/// fields are charged at their declared width; a bool/flag is 1 bit;
/// variable-length payloads charge a 32-bit length prefix plus their
/// elements (the encoding a socket Transport would frame).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace deltacol {

/// Primary template: intentionally undefined. Specialize for every message
/// type the pipelines send (see the file comment for the sizing convention).
template <typename Msg>
struct MessageSize;

/// Bits `msg` occupies on the wire (the quantity the CONGEST B-bit cap and
/// the per-shard byte counters are measured in).
template <typename Msg>
inline std::int64_t message_bits(const Msg& msg) {
  return MessageSize<Msg>::bits(msg);
}

// --- scalar payloads -------------------------------------------------------

template <>
struct MessageSize<bool> {
  static std::int64_t bits(const bool&) { return 1; }
};

template <>
struct MessageSize<std::int32_t> {
  static std::int64_t bits(const std::int32_t&) { return 32; }
};

template <>
struct MessageSize<std::uint32_t> {
  static std::int64_t bits(const std::uint32_t&) { return 32; }
};

template <>
struct MessageSize<std::int64_t> {
  static std::int64_t bits(const std::int64_t&) { return 64; }
};

template <>
struct MessageSize<std::uint64_t> {
  static std::int64_t bits(const std::uint64_t&) { return 64; }
};

// --- composite payloads ----------------------------------------------------

template <typename A, typename B>
struct MessageSize<std::pair<A, B>> {
  static std::int64_t bits(const std::pair<A, B>& p) {
    return message_bits(p.first) + message_bits(p.second);
  }
};

/// Variable-length payload: 32-bit length prefix + the elements.
template <typename T>
struct MessageSize<std::vector<T>> {
  static std::int64_t bits(const std::vector<T>& v) {
    std::int64_t total = 32;
    for (const T& x : v) total += message_bits(x);
    return total;
  }
};

/// Heaviest directed edge in one receiver's inbox, in bits. The inbox must
/// be sorted by sender (the engines' post-merge invariant), so the messages
/// one neighbor sent this round form a contiguous run; the run's bit sum is
/// that edge's load and the maximum over runs is what the CONGEST charge
/// ceil(load / B) is taken over. A max of maxes over all receivers is
/// order-free, so the engines may fold this per-vertex value in any
/// schedule without perturbing determinism.
template <typename Msg>
inline std::int64_t max_edge_bits_in_inbox(
    const std::vector<std::pair<int, Msg>>& sorted_inbox) {
  std::int64_t best = 0;
  std::int64_t run = 0;
  int prev_sender = -1;
  for (const auto& [from, msg] : sorted_inbox) {
    if (from != prev_sender) {
      if (run > best) best = run;
      run = 0;
      prev_sender = from;
    }
    run += message_bits(msg);
  }
  return run > best ? run : best;
}

}  // namespace deltacol
