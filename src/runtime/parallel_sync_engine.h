/// \file
/// Multi-threaded synchronous message-passing engine.
///
/// Same execution model and callback contract as local/sync_engine.h — one
/// synchronous LOCAL round = all nodes send, all messages delivered, all
/// nodes receive, 1 round charged — but each round runs in two parallel
/// barriers on a ThreadPool:
///
///   1. **Parallel send.** Contiguous sender ranges are dispatched as chunks;
///      each chunk stages its messages in a private outbox, in sender order.
///   2. **Deterministic merge.** Chunk outboxes are concatenated in chunk
///      order (= ascending sender order, exactly the order the serial engine
///      fills inboxes in) and then each inbox is sorted by sender with the
///      same comparator the serial engine uses.
///   3. **Parallel receive.** Every node consumes its inbox independently.
///
/// Because the merge is keyed on chunk indices and chunk ranges ascend, the
/// inbox contents handed to receive() are byte-for-byte what SyncEngine
/// produces — colorings, ledgers and stats are bit-identical for any thread
/// count, including pool == nullptr (the inline serial path). The test suite
/// pins this equivalence down (tests/test_runtime.cpp).
///
/// Additional contract on the callbacks (trivially satisfied by per-node
/// LOCAL algorithms): send(v, state) reads only v's state and the graph;
/// receive(v, state, inbox) mutates only v's state.
#pragma once

#include <algorithm>
#include <functional>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "local/round_ledger.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

template <typename State, typename Msg>
class ParallelSyncEngine {
 public:
  using Outbox = std::vector<std::pair<int, Msg>>;
  using SendFn = std::function<Outbox(int, const State&)>;
  using Inbox = std::vector<std::pair<int, Msg>>;
  using RecvFn = std::function<void(int, State&, const Inbox&)>;

  /// `pool` may be nullptr (or single-threaded): rounds then execute on the
  /// calling thread, identically to SyncEngine.
  ParallelSyncEngine(const Graph& g, RoundLedger& ledger, std::string phase,
                     ThreadPool* pool = nullptr)
      : graph_(g),
        ledger_(ledger),
        phase_(std::move(phase)),
        pool_(pool),
        states_(static_cast<std::size_t>(g.num_vertices())) {}

  const Graph& graph() const { return graph_; }

  State& state(int v) { return states_[static_cast<std::size_t>(v)]; }
  const State& state(int v) const { return states_[static_cast<std::size_t>(v)]; }

  /// Executes one synchronous round over the whole graph and charges 1 round.
  void round(const SendFn& send, const RecvFn& receive) {
    const int n = graph_.num_vertices();
    std::vector<Inbox> inboxes(static_cast<std::size_t>(n));

    if (pool_ == nullptr || pool_->num_threads() <= 1) {
      // Serial path: the reference semantics (mirrors SyncEngine::round).
      for (int v = 0; v < n; ++v) {
        deliver(v, send(v, states_[static_cast<std::size_t>(v)]), inboxes);
      }
      for (auto& inbox : inboxes) sort_inbox(inbox);
      for (int v = 0; v < n; ++v) {
        receive(v, states_[static_cast<std::size_t>(v)],
                inboxes[static_cast<std::size_t>(v)]);
      }
      ledger_.charge(1, phase_);
      return;
    }

    // Barrier 1: parallel send into per-chunk staging buffers.
    struct Envelope {
      int to;
      int from;
      Msg msg;
    };
    std::vector<std::vector<Envelope>> staged(
        static_cast<std::size_t>(pool_->num_range_chunks(n)));
    pool_->parallel_ranges(0, n, [&](int chunk, int lo, int hi) {
      auto& buf = staged[static_cast<std::size_t>(chunk)];
      for (int v = lo; v < hi; ++v) {
        for (auto& [to, msg] : send(v, states_[static_cast<std::size_t>(v)])) {
          DC_REQUIRE(graph_.has_edge(v, to),
                     "LOCAL model: messages only travel along edges");
          buf.push_back(Envelope{to, v, std::move(msg)});
        }
      }
    });
    // Deterministic merge: chunk order == ascending sender order, matching
    // the serial fill exactly.
    for (auto& buf : staged) {
      for (auto& e : buf) {
        inboxes[static_cast<std::size_t>(e.to)].emplace_back(e.from,
                                                             std::move(e.msg));
      }
    }
    pool_->parallel_for(0, n, [&](int v) {
      sort_inbox(inboxes[static_cast<std::size_t>(v)]);
    });

    // Barrier 2: parallel receive; each node touches only its own state.
    pool_->parallel_for(0, n, [&](int v) {
      receive(v, states_[static_cast<std::size_t>(v)],
              inboxes[static_cast<std::size_t>(v)]);
    });
    ledger_.charge(1, phase_);
  }

 private:
  static void sort_inbox(Inbox& inbox) {
    std::sort(inbox.begin(), inbox.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  void deliver(int from, Outbox&& out, std::vector<Inbox>& inboxes) {
    for (auto& [to, msg] : out) {
      DC_REQUIRE(graph_.has_edge(from, to),
                 "LOCAL model: messages only travel along edges");
      inboxes[static_cast<std::size_t>(to)].emplace_back(from, std::move(msg));
    }
  }

  const Graph& graph_;
  RoundLedger& ledger_;
  std::string phase_;
  ThreadPool* pool_;
  std::vector<State> states_;
};

}  // namespace deltacol
