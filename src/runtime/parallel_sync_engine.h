/// \file
/// Multi-threaded, shard-ready synchronous message-passing engine.
///
/// Same execution model and callback contract as local/sync_engine.h — one
/// synchronous LOCAL round = all nodes send, all messages delivered, all
/// nodes receive, 1 round charged — with two execution strategies on top of
/// the serial reference:
///
/// **Chunked (no ShardRuntime attached).** Each round runs in two parallel
/// barriers on a ThreadPool:
///
///   1. **Parallel send.** Contiguous sender ranges are dispatched as chunks;
///      each chunk stages its messages in a private outbox, in sender order.
///   2. **Deterministic merge.** Chunk outboxes are concatenated in chunk
///      order (= ascending sender order, exactly the order the serial engine
///      fills inboxes in) and then each inbox is sorted by sender with the
///      same comparator the serial engine uses.
///   3. **Parallel receive.** Every node consumes its inbox independently.
///
/// **Sharded (a ShardRuntime attached).** The round is expressed against
/// the shard layer (graph/partition.h + runtime/mailbox.h): every send goes
/// through the per-(source-shard, destination-shard) mailbox and every
/// barrier is a Transport::run_shards call, so swapping the in-process
/// transport for a distributed one changes no engine code:
///
///   1. **Sharded send.** Each source shard sweeps its owned contiguous
///      range (chunk-staged on the pool, concatenated in chunk order — the
///      same discipline as above) and posts envelopes into its mailbox row.
///   2. **Exchange.** A no-op in process (the run_shards barrier already
///      published the shared-memory mailbox). On a distributed backend
///      (Transport::local_shard() >= 0) this is where the bytes move: the
///      engine serializes the local rank's mailbox row with WireCodec
///      (net/wire_codec.h), all-gathers it through the transport, and
///      installs the remote rows with Mailbox::fill.
///   3. **Sharded merge + receive.** Each destination shard drains its
///      mailbox column in ascending source-shard order, sorts its owned
///      inboxes, and receives. Distributed ranks replay the merge + receive
///      for every shard — the replicated-state discipline that keeps each
///      rank's global state bit-identical while the send sweep is genuinely
///      partitioned across processes.
///
/// **Owner-compute** (ShardRuntime::exchange_policy() == kOwnerRouted over a
/// distributed transport): steps 2–3 change shape. The engine holds state
/// for the LOCAL shard only (states_ sized to GraphView::num_owned(),
/// indexed by owned position), encodes only the off-diagonal slots of its
/// row (Mailbox::encode_owned_row — the diagonal never touches the codec),
/// ships them point-to-point (Transport::exchange_owned), and merges +
/// receives only its own column. Per-rank work drops from O(n) to
/// O(n/S + halo) and the wire carries only cross-shard payload; results
/// stay bit-identical because each shard's merged inbox never depended on
/// any other shard's local state (DESIGN.md §6, "Owner-compute"). Drivers
/// that sweep or read global state must consult owner_local_state() and use
/// the transport's allreduce/gather collectives (mis/luby_sync.cpp is the
/// model). In-process runs under the same policy keep full state but
/// round-trip cross-shard slots through the codec, so the hermetic suites
/// differential both policies without sockets.
///
/// Every staging path presents one sender's messages to one destination in
/// emission order, and the per-inbox merge sorts *stably* by sender, so the
/// inbox contents handed to receive() are byte-for-byte what SyncEngine
/// produces — for contiguous partitions (where shard-major draining already
/// yields globally ascending senders) and for renumbered locality-aware
/// partitions alike (where it does not; DESIGN.md §6). Colorings, ledgers
/// and stats are bit-identical for every (shards, threads, partition)
/// combination, including pool == nullptr and no runtime (the inline serial
/// path). The test suite pins this equivalence down (tests/test_runtime.cpp,
/// tests/test_mailbox.cpp, tests/test_renumber.cpp).
///
/// Additional contract on the callbacks (trivially satisfied by per-node
/// LOCAL algorithms): send(v, state) reads only v's state and the graph;
/// receive(v, state, inbox) mutates only v's state.
///
/// **Fast mode** (ExecutionMode::kFast, runtime/execution_mode.h): inboxes
/// merge on arrival — the chunked strategy stages envelopes bucketed by
/// destination range and runs ONE barrier that delivers, folds CONGEST bits
/// and receives per destination bucket (two barriers per round instead of
/// three, and no stable sender sort); the sharded strategy keeps its
/// transport structure but skips the per-inbox sort and fuses the CONGEST
/// fold into the receive sweep. Inbox ORDER handed to receive() is then
/// arbitrary (staging-bucket order, not ascending sender), so fast mode is
/// only for receive callbacks that are order-insensitive — which every
/// per-node LOCAL algorithm in this tree is (min-folds and full scans).
/// CONGEST charges are unchanged: the per-edge tally and the max fold never
/// depended on merge order. Deterministic mode is untouched.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "local/round_ledger.h"
#include "net/wire_codec.h"
#include "runtime/execution_mode.h"
#include "runtime/mailbox.h"
#include "runtime/message_size.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace deltacol {

template <typename State, typename Msg>
class ParallelSyncEngine {
 public:
  using Outbox = std::vector<std::pair<int, Msg>>;
  using SendFn = std::function<Outbox(int, const State&)>;
  using Inbox = std::vector<std::pair<int, Msg>>;
  using RecvFn = std::function<void(int, State&, const Inbox&)>;

  /// `pool` may be nullptr (or single-threaded): rounds then execute on the
  /// calling thread, identically to SyncEngine. `shards` may be nullptr:
  /// rounds then use the chunked strategy; attaching a runtime (built over
  /// the same graph) routes every round through its mailbox + transport and
  /// records per-round message volume on it.
  ParallelSyncEngine(const Graph& g, RoundLedger& ledger, std::string phase,
                     ThreadPool* pool = nullptr,
                     ShardRuntime* shards = nullptr,
                     ExecutionMode mode = ExecutionMode::kDeterministic)
      : graph_(g),
        ledger_(ledger),
        phase_(std::move(phase)),
        pool_(pool),
        shards_(shards),
        mode_(mode) {
    if (shards_ != nullptr) {
      DC_REQUIRE(shards_->partition().num_vertices() == g.num_vertices(),
                 "shard runtime was built over a different graph");
      mailbox_.emplace(&shards_->partition());
      policy_ = shards_->exchange_policy();
      local_shard_ = shards_->transport().local_shard();
      owner_dist_ = shards_->owner_routed_distributed();
      if (owner_dist_) {
        owned_base_ = shards_->partition().begin(local_shard_);
      }
    }
    // Owner-compute distributed ranks hold state for their OWN shard only —
    // O(n/S) per rank, allocated from the GraphView's owned count — every
    // other shape keeps the full per-vertex array (the replicated
    // discipline; halo values arrive as messages, never as state).
    states_.resize(static_cast<std::size_t>(
        owner_dist_ ? shards_->view(local_shard_).num_owned()
                    : g.num_vertices()));
  }

  const Graph& graph() const { return graph_; }

  /// True when this engine holds owned-only state (the owner-routed policy
  /// over a distributed transport): state(v) is then valid ONLY for
  /// vertices the local shard owns.
  bool owner_local_state() const { return owner_dist_; }

  State& state(int v) { return states_[state_index(v)]; }
  const State& state(int v) const { return states_[state_index(v)]; }

  /// Executes one synchronous round over the whole graph and charges 1 round.
  void round(const SendFn& send, const RecvFn& receive) {
    if (shards_ != nullptr) {
      round_sharded(send, receive);
      return;
    }
    const int n = graph_.num_vertices();
    std::vector<Inbox> inboxes(static_cast<std::size_t>(n));

    const bool congest = ledger_.congest_bits() > 0;

    if (pool_ == nullptr || pool_->num_threads() <= 1) {
      // Serial path: the reference semantics (mirrors SyncEngine::round).
      // Fast mode skips the sender sort — the serial fill is already in
      // ascending sender order, so the sort is pure overhead here.
      for (int v = 0; v < n; ++v) {
        deliver(v, send(v, states_[static_cast<std::size_t>(v)]), inboxes);
      }
      std::int64_t max_edge_bits = 0;
      for (auto& inbox : inboxes) {
        if (mode_ == ExecutionMode::kDeterministic) sort_inbox(inbox);
        if (congest) {
          max_edge_bits =
              std::max(max_edge_bits, max_edge_bits_in_inbox(inbox));
        }
      }
      for (int v = 0; v < n; ++v) {
        receive(v, states_[static_cast<std::size_t>(v)],
                inboxes[static_cast<std::size_t>(v)]);
      }
      ledger_.charge_message_round(max_edge_bits, phase_);
      return;
    }

    if (mode_ == ExecutionMode::kFast) {
      round_fast_chunked(send, receive, inboxes, congest);
      return;
    }

    // Barrier 1: parallel send into per-chunk staging buffers.
    std::vector<std::vector<Envelope>> staged(
        static_cast<std::size_t>(pool_->num_range_chunks(n)));
    pool_->parallel_ranges(0, n, [&](int chunk, int lo, int hi) {
      stage_range(send, lo, hi, staged[static_cast<std::size_t>(chunk)]);
    });
    // Deterministic merge: chunk order == ascending sender order, matching
    // the serial fill exactly.
    for (auto& buf : staged) {
      for (auto& e : buf) {
        inboxes[static_cast<std::size_t>(e.to)].emplace_back(e.from,
                                                             std::move(e.msg));
      }
    }
    // CONGEST accounting alongside the sort: a v-private write per vertex,
    // folded by max below — order-free, so the charge is thread-invariant.
    std::vector<std::int64_t> edge_bits(
        congest ? static_cast<std::size_t>(n) : 0, 0);
    pool_->parallel_for(0, n, [&](int v) {
      sort_inbox(inboxes[static_cast<std::size_t>(v)]);
      if (congest) {
        edge_bits[static_cast<std::size_t>(v)] =
            max_edge_bits_in_inbox(inboxes[static_cast<std::size_t>(v)]);
      }
    });
    std::int64_t max_edge_bits = 0;
    for (std::int64_t b : edge_bits) max_edge_bits = std::max(max_edge_bits, b);

    // Barrier 2: parallel receive; each node touches only its own state.
    pool_->parallel_for(0, n, [&](int v) {
      receive(v, states_[static_cast<std::size_t>(v)],
              inboxes[static_cast<std::size_t>(v)]);
    });
    ledger_.charge_message_round(max_edge_bits, phase_);
  }

 private:
  struct Envelope {
    int to;
    int from;
    Msg msg;
  };

  // Global vertex id -> index into states_. The identity except under
  // owner-compute, where states_ is indexed by owned position:
  // position_of(v) - begin(local) — O(1) for contiguous and renumbered
  // partitions alike (graph/partition.h).
  std::size_t state_index(int v) const {
    if (!owner_dist_) return static_cast<std::size_t>(v);
    const int i = shards_->partition().position_of(v) - owned_base_;
    DC_REQUIRE(i >= 0 && i < static_cast<int>(states_.size()),
               "owner-compute engine: state(v) asked for a vertex this rank "
               "does not own");
    return static_cast<std::size_t>(i);
  }

  // Fast-mode chunked round (see file comment). Barrier 1 stages envelopes
  // bucketed by *destination* range; barrier 2 runs one chunk per
  // destination bucket that delivers, folds CONGEST bits and receives — no
  // stable sender sort, no separate merge/receive barriers. Inbox order is
  // staging-bucket order (arbitrary under perturbation), which is exactly
  // the relaxation fast mode buys; the CONGEST per-edge tally and max fold
  // are order-free, so charges match the deterministic path.
  void round_fast_chunked(const SendFn& send, const RecvFn& receive,
                          std::vector<Inbox>& inboxes, bool congest) {
    const int n = graph_.num_vertices();
    const int send_chunks = std::max(1, pool_->num_range_chunks(n));
    const int dest_chunks = send_chunks;
    // bounds[d] .. bounds[d+1]: destination bucket d, cut with the same
    // lo = n*c/chunks formula parallel_ranges uses. Bucket lookup is a
    // binary search because the inverse formula does not round-trip for
    // non-divisible n.
    std::vector<int> bounds(static_cast<std::size_t>(dest_chunks) + 1);
    for (int d = 0; d <= dest_chunks; ++d) {
      bounds[static_cast<std::size_t>(d)] =
          static_cast<int>(static_cast<std::int64_t>(n) * d / dest_chunks);
    }

    // Barrier 1: parallel send, each chunk staging into dest-bucket-private
    // buffers (chunk-private writes; no two chunks touch the same buffer).
    std::vector<std::vector<std::vector<Envelope>>> staged(
        static_cast<std::size_t>(send_chunks),
        std::vector<std::vector<Envelope>>(
            static_cast<std::size_t>(dest_chunks)));
    pool_->parallel_ranges(0, n, [&](int chunk, int lo, int hi) {
      auto& buckets = staged[static_cast<std::size_t>(chunk)];
      for (int v = lo; v < hi; ++v) {
        for (auto& [to, msg] : send(v, states_[static_cast<std::size_t>(v)])) {
          DC_REQUIRE(graph_.has_edge(v, to),
                     "LOCAL model: messages only travel along edges");
          const int d = static_cast<int>(std::upper_bound(bounds.begin(),
                                                          bounds.end(), to) -
                                         bounds.begin()) -
                        1;
          buckets[static_cast<std::size_t>(d)].push_back(
              Envelope{to, v, std::move(msg)});
        }
      }
    });

    // Barrier 2: one chunk per destination bucket fuses merge + CONGEST
    // fold + receive. Every inbox in [bounds[d], bounds[d+1]) is d-private,
    // so the delivery writes race with nothing.
    std::vector<std::int64_t> bucket_bits(
        congest ? static_cast<std::size_t>(dest_chunks) : 0, 0);
    pool_->parallel_chunks(dest_chunks, [&](int d) {
      for (int sc = 0; sc < send_chunks; ++sc) {
        for (auto& e : staged[static_cast<std::size_t>(sc)]
                             [static_cast<std::size_t>(d)]) {
          inboxes[static_cast<std::size_t>(e.to)].emplace_back(
              e.from, std::move(e.msg));
        }
      }
      std::int64_t local_max = 0;
      for (int v = bounds[static_cast<std::size_t>(d)];
           v < bounds[static_cast<std::size_t>(d) + 1]; ++v) {
        Inbox& inbox = inboxes[static_cast<std::size_t>(v)];
        if (congest) {
          local_max = std::max(local_max, max_edge_bits_in_inbox(inbox));
        }
        receive(v, states_[static_cast<std::size_t>(v)], inbox);
      }
      if (congest) bucket_bits[static_cast<std::size_t>(d)] = local_max;
    });
    std::int64_t max_edge_bits = 0;
    for (std::int64_t b : bucket_bits) {
      max_edge_bits = std::max(max_edge_bits, b);
    }
    ledger_.charge_message_round(max_edge_bits, phase_);
  }

  // Stable by design: every staging path (serial deliver, chunk replay,
  // mailbox slot drain) presents one sender's messages to one destination in
  // emission order, so a *stable* sort by sender yields "ascending sender,
  // ties in emission order" — the serial fill order — no matter how the
  // pre-sort concatenation was arranged. This is what makes renumbered
  // (non-ascending-range) partitions merge identically to contiguous ones
  // (DESIGN.md §6).
  static void sort_inbox(Inbox& inbox) {
    std::stable_sort(
        inbox.begin(), inbox.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  void deliver(int from, Outbox&& out, std::vector<Inbox>& inboxes) {
    for (auto& [to, msg] : out) {
      DC_REQUIRE(graph_.has_edge(from, to),
                 "LOCAL model: messages only travel along edges");
      inboxes[static_cast<std::size_t>(to)].emplace_back(from, std::move(msg));
    }
  }

  // Sends for the contiguous sender range [lo, hi) into `buf`, in sender
  // order (the staging primitive of the chunked strategy).
  void stage_range(const SendFn& send, int lo, int hi,
                   std::vector<Envelope>& buf) {
    for (int v = lo; v < hi; ++v) {
      for (auto& [to, msg] : send(v, states_[static_cast<std::size_t>(v)])) {
        DC_REQUIRE(graph_.has_edge(v, to),
                   "LOCAL model: messages only travel along edges");
        buf.push_back(Envelope{to, v, std::move(msg)});
      }
    }
  }

  // Sends for the owned-index range [ilo, ihi) of a shard view into `buf`,
  // in ascending owned order (== ascending original sender id; the sharded
  // strategy's staging primitive — identical to stage_range over
  // [begin, end) when the partition is contiguous).
  void stage_owned(const SendFn& send, const GraphView& view, int ilo,
                   int ihi, std::vector<Envelope>& buf) {
    for (int i = ilo; i < ihi; ++i) {
      const int v = view.owned_vertex(i);
      for (auto& [to, msg] : send(v, state(v))) {
        DC_REQUIRE(graph_.has_edge(v, to),
                   "LOCAL model: messages only travel along edges");
        buf.push_back(Envelope{to, v, std::move(msg)});
      }
    }
  }

  // The sharded strategy (see file comment). Three phases, two transport
  // barriers; all inter-shard data flows through the mailbox.
  //
  // **Distributed backends** (transport.local_shard() >= 0, e.g. the TCP
  // SocketTransport): run_shards invokes only the local rank's body, so the
  // send sweep — the per-vertex compute — is genuinely partitioned across
  // processes. The staged row is then serialized slot by slot (WireCodec,
  // net/wire_codec.h), all-gathered over the wire, and the remote rows are
  // installed with Mailbox::fill. From that point the round is replicated:
  // every rank drains the complete mailbox in the same shard-major order and
  // applies receive to every vertex, so each rank's global state — and hence
  // every subsequent send, coin flip and termination test — stays
  // bit-identical to the in-process run (DESIGN.md §6, "the socket
  // backend": filling whole slots keyed by (src, dst) cannot perturb the
  // merge order, because the order never depended on *where* a slot's bytes
  // came from).
  void round_sharded(const SendFn& send, const RecvFn& receive) {
    const int n = graph_.num_vertices();
    const int num_shards = shards_->num_shards();
    const bool congest = ledger_.congest_bits() > 0;
    Transport& transport = shards_->transport();
    const int local = local_shard_;
    Mailbox<Msg>& mailbox = *mailbox_;
    mailbox.clear();

    // Barrier 1: each source shard stages its owned vertices (chunked on
    // the pool, nested region) and posts into its mailbox row in ascending
    // owned order — ascending original sender id under every partition,
    // because owned lists ascend by construction (graph/partition.cpp).
    transport.run_shards([&](int s) {
      const GraphView& view = shards_->view(s);
      const int count = view.num_owned();
      const int num_chunks =
          pool_ != nullptr ? pool_->num_range_chunks(count) : 1;
      std::vector<std::vector<Envelope>> staged(
          static_cast<std::size_t>(std::max(1, num_chunks)));
      pooled_ranges(pool_, 0, count, [&](int chunk, int clo, int chi) {
        stage_owned(send, view, clo, chi,
                    staged[static_cast<std::size_t>(chunk)]);
      });
      // Chunk ranges ascend, so replaying chunk-major keeps sender order.
      for (auto& buf : staged) {
        for (auto& e : buf) {
          mailbox.post(s, e.from, e.to, std::move(e.msg));
        }
      }
    });

    // Owner-compute distributed rounds diverge here: point-to-point
    // exchange, rank-local merge + receive (see round_owner_distributed).
    if (owner_dist_) {
      round_owner_distributed(receive, congest, num_shards, transport,
                              mailbox);
      return;
    }

    std::vector<Inbox> inboxes(static_cast<std::size_t>(n));
    // Per-vertex CONGEST loads: each destination shard writes only its owned
    // range (shard-private), the fold below runs after the barrier.
    std::vector<std::int64_t> edge_bits(
        congest ? static_cast<std::size_t>(n) : 0, 0);

    // Distributed exchange: serialize the local row, all-gather the bytes
    // (this is the inter-rank barrier), fill every remote row from the wire.
    // fill() re-tallies counts and bits from the decoded envelopes, so the
    // volume fold below sees the same S*S counters every rank — and the
    // in-process run — sees.
    if (local >= 0) {
      std::vector<WireBuf> row(static_cast<std::size_t>(num_shards));
      for (int d = 0; d < num_shards; ++d) {
        row[static_cast<std::size_t>(d)] =
            encode_slot<Msg>(mailbox.slot(local, d));
      }
      auto rows = transport.all_gather_rows(std::move(row));
      DC_ENSURE(static_cast<int>(rows.size()) == num_shards,
                "all_gather_rows returned the wrong number of rows");
      for (int s = 0; s < num_shards; ++s) {
        if (s == local) continue;
        DC_ENSURE(static_cast<int>(rows[static_cast<std::size_t>(s)].size()) ==
                      num_shards,
                  "all_gather_rows returned a malformed row");
        for (int d = 0; d < num_shards; ++d) {
          mailbox.fill(
              s, d,
              decode_slot<Msg, typename Mailbox<Msg>::Envelope>(
                  rows[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)]));
        }
      }
    }
    transport.exchange();

    // Barrier 2: each destination shard drains its mailbox column in
    // ascending source-shard order (= ascending sender order, because the
    // partition's ranges ascend), then sorts and receives its owned range.
    // Distributed ranks replay this for every shard (replicated merge +
    // receive — see the strategy comment above), in ascending shard order on
    // the calling thread.
    // In-process owner-routed runs have no wire to save bytes on, but honor
    // the policy's codec discipline hermetically: every CROSS-shard slot
    // round-trips through encode/decode during the drain (the diagonal
    // stays codec-free, exactly the owner-compute invariant), so the zoo
    // differential covers both policies without sockets. decode_slot
    // replays post order, so the merge below is untouched.
    const bool codec_roundtrip =
        policy_ == ExchangePolicy::kOwnerRouted && local < 0;
    const auto receive_shard = [&](int d) {
      const GraphView& view = shards_->view(d);
      for (int s = 0; s < num_shards; ++s) {
        auto envelopes = mailbox.drain(s, d);
        if (codec_roundtrip && s != d) {
          envelopes = decode_slot<Msg, typename Mailbox<Msg>::Envelope>(
              encode_slot<Msg>(envelopes));
        }
        for (auto& e : envelopes) {
          inboxes[static_cast<std::size_t>(e.to)].emplace_back(
              e.from, std::move(e.msg));
        }
      }
      if (mode_ == ExecutionMode::kFast) {
        // Fast mode: no sender sort; CONGEST fold fused into the receive
        // sweep (one pooled pass per shard instead of two).
        pooled_for(pool_, 0, view.num_owned(), [&](int i) {
          const int v = view.owned_vertex(i);
          if (congest) {
            edge_bits[static_cast<std::size_t>(v)] =
                max_edge_bits_in_inbox(inboxes[static_cast<std::size_t>(v)]);
          }
          receive(v, states_[static_cast<std::size_t>(v)],
                  inboxes[static_cast<std::size_t>(v)]);
        });
        return;
      }
      pooled_for(pool_, 0, view.num_owned(), [&](int i) {
        const int v = view.owned_vertex(i);
        sort_inbox(inboxes[static_cast<std::size_t>(v)]);
        if (congest) {
          edge_bits[static_cast<std::size_t>(v)] =
              max_edge_bits_in_inbox(inboxes[static_cast<std::size_t>(v)]);
        }
      });
      pooled_for(pool_, 0, view.num_owned(), [&](int i) {
        const int v = view.owned_vertex(i);
        receive(v, states_[static_cast<std::size_t>(v)],
                inboxes[static_cast<std::size_t>(v)]);
      });
    };
    if (local >= 0) {
      for (int d = 0; d < num_shards; ++d) receive_shard(d);
    } else {
      transport.run_shards(receive_shard);
    }

    // Volume + CONGEST folds on the calling thread (the tallies are
    // accumulated at post/fill time, so they survive the drains above). The
    // max fold is order-free, so the charge is (shards, threads)-invariant.
    shards_->record_round(mailbox.slot_counts(), mailbox.slot_bits());
    std::int64_t max_edge_bits = 0;
    for (std::int64_t b : edge_bits) max_edge_bits = std::max(max_edge_bits, b);
    ledger_.charge_message_round(max_edge_bits, phase_);
  }

  // The owner-compute continuation of round_sharded (after Barrier 1 has
  // staged the local rank's row). Why rank-local merge cannot move a byte
  // (DESIGN.md §6, "Owner-compute"): shard d's inbox contents are exactly
  // the envelopes in column (*, d) — slots other ranks addressed to d plus
  // d's own diagonal slot — and the shard-major stable merge orders them
  // using only (source shard, emission position, sender id), never any
  // other shard's local state. So merging ONLY the local column, with the
  // diagonal slot never serialized and the off-diagonal slots arriving
  // point-to-point, reproduces byte-for-byte the inboxes the replicated
  // replay would have produced for this shard — while per-rank merge work
  // drops from O(n) to O(n/S + halo traffic) and the wire carries only the
  // cross-shard payload. The piggybacked tally rows reassemble the full
  // S×S counters, so record_round and the CONGEST max fold (allreduce_max,
  // order-free) charge exactly what every other shape charges.
  void round_owner_distributed(const RecvFn& receive, bool congest,
                               int num_shards, Transport& transport,
                               Mailbox<Msg>& mailbox) {
    const int local = local_shard_;
    const GraphView& view = shards_->view(local);
    const int owned = view.num_owned();

    // Our posted row tallies ride along with the slots, so every rank can
    // rebuild the full matrix without a second collective.
    std::vector<std::int64_t> row_counts(static_cast<std::size_t>(num_shards));
    std::vector<std::int64_t> row_bits(static_cast<std::size_t>(num_shards));
    {
      const auto& counts = mailbox.slot_counts();
      const auto& bits = mailbox.slot_bits();
      for (int d = 0; d < num_shards; ++d) {
        const std::size_t idx = static_cast<std::size_t>(local) *
                                    static_cast<std::size_t>(num_shards) +
                                static_cast<std::size_t>(d);
        row_counts[static_cast<std::size_t>(d)] = counts[idx];
        row_bits[static_cast<std::size_t>(d)] = bits[idx];
      }
    }
    auto result = transport.exchange_owned(mailbox.encode_owned_row(local),
                                           std::move(row_counts),
                                           std::move(row_bits));
    DC_ENSURE(static_cast<int>(result.slots.size()) == num_shards &&
                  static_cast<int>(result.slot_counts.size()) ==
                      num_shards * num_shards &&
                  static_cast<int>(result.slot_bits.size()) ==
                      num_shards * num_shards,
              "exchange_owned returned a malformed result");
    for (int s = 0; s < num_shards; ++s) {
      if (s == local) continue;
      mailbox.fill(s, local,
                   decode_slot<Msg, typename Mailbox<Msg>::Envelope>(
                       result.slots[static_cast<std::size_t>(s)]));
    }
    transport.exchange();

    // Rank-local merge + receive: only column (*, local), only owned
    // inboxes — indexed by owned position, the same index states_ uses.
    std::vector<Inbox> inboxes(static_cast<std::size_t>(owned));
    std::vector<std::int64_t> edge_bits(
        congest ? static_cast<std::size_t>(owned) : 0, 0);
    for (int s = 0; s < num_shards; ++s) {
      for (auto& e : mailbox.drain(s, local)) {
        inboxes[state_index(e.to)].emplace_back(e.from, std::move(e.msg));
      }
    }
    if (mode_ == ExecutionMode::kFast) {
      // Fast mode: no sender sort; CONGEST fold fused into the receive.
      pooled_for(pool_, 0, owned, [&](int i) {
        if (congest) {
          edge_bits[static_cast<std::size_t>(i)] =
              max_edge_bits_in_inbox(inboxes[static_cast<std::size_t>(i)]);
        }
        receive(view.owned_vertex(i), states_[static_cast<std::size_t>(i)],
                inboxes[static_cast<std::size_t>(i)]);
      });
    } else {
      pooled_for(pool_, 0, owned, [&](int i) {
        sort_inbox(inboxes[static_cast<std::size_t>(i)]);
        if (congest) {
          edge_bits[static_cast<std::size_t>(i)] =
              max_edge_bits_in_inbox(inboxes[static_cast<std::size_t>(i)]);
        }
      });
      pooled_for(pool_, 0, owned, [&](int i) {
        receive(view.owned_vertex(i), states_[static_cast<std::size_t>(i)],
                inboxes[static_cast<std::size_t>(i)]);
      });
    }

    shards_->record_round(result.slot_counts, result.slot_bits);
    std::int64_t local_max = 0;
    for (std::int64_t b : edge_bits) local_max = std::max(local_max, b);
    const std::int64_t max_edge_bits =
        congest ? transport.allreduce_max(local_max) : 0;
    ledger_.charge_message_round(max_edge_bits, phase_);
  }

  const Graph& graph_;
  RoundLedger& ledger_;
  std::string phase_;
  ThreadPool* pool_;
  ShardRuntime* shards_;
  ExecutionMode mode_ = ExecutionMode::kDeterministic;
  ExchangePolicy policy_ = ExchangePolicy::kReplicated;
  int local_shard_ = -1;   // transport.local_shard(), cached at construction
  bool owner_dist_ = false;  // owner-routed AND distributed: owned-only state
  int owned_base_ = 0;     // partition().begin(local) under owner-compute
  std::optional<Mailbox<Msg>> mailbox_;
  std::vector<State> states_;
};

}  // namespace deltacol
