#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "util/check.h"

namespace deltacol {

namespace {
// Ranges below this size run inline: dispatch latency would exceed the work.
// Purely a performance threshold — results are chunk-count independent.
constexpr int kMinParallelItems = 256;

// SplitMix64 finalizer: the perturbation hooks need cheap stateless hashes
// that are pure functions of their inputs (so num_range_chunks and
// parallel_ranges always agree on the jittered chunk count).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

// One parallel_chunks call. Chunks are claimed through an atomic cursor (so
// uneven chunks load-balance dynamically), results and exceptions are keyed
// on the chunk index (so nothing observable depends on the claim order).
struct ThreadPool::Region {
  explicit Region(int total_chunks, const std::function<void(int)>& fn)
      : total(total_chunks), chunk_fn(fn), errors(static_cast<std::size_t>(total_chunks)) {}

  const int total;
  const std::function<void(int)>& chunk_fn;  // outlives the region: the
                                             // caller blocks until done
  std::atomic<int> next{0};
  std::atomic<int> completed{0};
  std::vector<std::exception_ptr> errors;

  std::mutex done_mu;
  std::condition_variable done_cv;

  bool exhausted() const { return next.load(std::memory_order_relaxed) >= total; }
  bool finished() const { return completed.load(std::memory_order_acquire) >= total; }
};

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::resolve_num_threads(int requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, requested);
}

void ThreadPool::drain(Region& region) {
  for (;;) {
    const int c = region.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= region.total) return;
    try {
      region.chunk_fn(c);
    } catch (...) {
      region.errors[static_cast<std::size_t>(c)] = std::current_exception();
    }
    if (region.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region.total) {
      std::lock_guard<std::mutex> lock(region.done_mu);
      region.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stop_ || !open_regions_.empty();
      });
      if (stop_ && open_regions_.empty()) return;
      // Retire exhausted regions (their chunks are all claimed; whoever
      // claimed them will finish them), then help the oldest open one.
      while (!open_regions_.empty() && open_regions_.front()->exhausted()) {
        open_regions_.pop_front();
      }
      if (open_regions_.empty()) continue;
      region = open_regions_.front();
    }
    drain(*region);
  }
}

void ThreadPool::parallel_chunks(int num_chunks,
                                 const std::function<void(int)>& chunk_fn) {
  if (num_chunks <= 0) return;
  if (num_threads_ <= 1 || num_chunks == 1) {
    // Serial engine: a plain loop, exceptions propagate from the first
    // failing chunk exactly as the contract promises.
    for (int c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  if (perturb_salt_ != 0) {
    // Stall injection (set_perturb_salt): ~1 in 4 chunks sleeps 50-450 µs
    // before running, keyed purely on (salt, chunk index). The wrapper lives
    // on this frame, which blocks until the region completes below.
    const std::uint64_t salt = perturb_salt_;
    const std::function<void(int)> stalled = [&chunk_fn, salt](int c) {
      const std::uint64_t h =
          mix64(salt ^ (0xc2b2ae3d27d4eb4fULL * (static_cast<std::uint64_t>(c) + 1)));
      if ((h & 3u) == 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(50 + static_cast<long>((h >> 2) % 400)));
      }
      chunk_fn(c);
    };
    run_region(num_chunks, stalled);
    return;
  }
  run_region(num_chunks, chunk_fn);
}

void ThreadPool::run_region(int num_chunks,
                            const std::function<void(int)>& chunk_fn) {
  auto region = std::make_shared<Region>(num_chunks, chunk_fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_regions_.push_back(region);
  }
  cv_.notify_all();
  // The caller drains its own region, so the region completes even when
  // every worker is busy (or when this is itself a nested region running on
  // a worker thread).
  drain(*region);
  if (!region->finished()) {
    std::unique_lock<std::mutex> lock(region->done_mu);
    region->done_cv.wait(lock, [&region] { return region->finished(); });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it =
        std::find(open_regions_.begin(), open_regions_.end(), region);
    if (it != open_regions_.end()) open_regions_.erase(it);
  }
  for (auto& err : region->errors) {
    if (err) std::rethrow_exception(err);
  }
}

int ThreadPool::num_range_chunks(int count, int max_chunks) const {
  if (count <= 0) return 0;
  // A few chunks per executor smooths imbalance without shrinking chunks so
  // far that claim traffic dominates. The chunk → range mapping is a pure
  // function of (count, num_chunks): chunk boundaries never depend on timing.
  if (num_threads_ <= 1 || count < kMinParallelItems) return 1;
  int chunks = std::min(count, num_threads_ * 4);
  if (max_chunks > 0) chunks = std::min(chunks, max_chunks);
  if (perturb_salt_ != 0 && chunks > 1) {
    // Chunk-size randomization: resample from [1, 2 * chunks], clamped to
    // the same caps as above. Purely a function of (count, max_chunks,
    // salt) — callers that pre-size per-chunk buffers with this function
    // see exactly the partition parallel_ranges dispatches.
    const std::uint64_t h =
        mix64(perturb_salt_ ^ (static_cast<std::uint64_t>(count) << 20) ^
              static_cast<std::uint64_t>(max_chunks));
    int jittered = 1 + static_cast<int>(h % (2 * static_cast<std::uint64_t>(chunks)));
    jittered = std::min(jittered, count);
    if (max_chunks > 0) jittered = std::min(jittered, max_chunks);
    chunks = jittered;
  }
  return chunks;
}

void ThreadPool::parallel_ranges(int begin, int end,
                                 const std::function<void(int, int, int)>& fn,
                                 int max_chunks) {
  const int n = end - begin;
  if (n <= 0) return;
  if (num_threads_ <= 1 || n < kMinParallelItems) {
    fn(0, begin, end);
    return;
  }
  const int num_chunks = num_range_chunks(n, max_chunks);
  parallel_chunks(num_chunks, [&](int c) {
    const std::int64_t lo64 =
        begin + static_cast<std::int64_t>(n) * c / num_chunks;
    const std::int64_t hi64 =
        begin + static_cast<std::int64_t>(n) * (c + 1) / num_chunks;
    fn(c, static_cast<int>(lo64), static_cast<int>(hi64));
  });
}

}  // namespace deltacol
