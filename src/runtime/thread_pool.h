/// \file
/// Deterministic chunked thread pool — the bottom layer of the parallel
/// execution runtime (see DESIGN.md "Runtime").
///
/// Design constraints, in priority order:
///
///  1. **Determinism.** Work is always split into *indexed chunks*; which
///     thread runs a chunk is scheduling noise, but everything observable
///     (outputs, merge order, which exception wins) is keyed on the chunk
///     index. Callers that follow this rule get bit-identical results for
///     any thread count, which is the contract the whole library relies on
///     (simulated LOCAL-model runs must not depend on host parallelism).
///  2. **Nesting without deadlock.** A chunk body may itself open a parallel
///     region (components running on workers parallelize their inner
///     per-node sweeps). The caller of every region participates in draining
///     its own chunks, so progress never depends on a free worker existing.
///  3. **Exception transparency — the lowest-chunk exception invariant.**
///     When chunks throw, every chunk of the region still runs to
///     completion (a throwing chunk cannot cancel its siblings — they may
///     already be mutating their index-private slots), each exception is
///     captured in the chunk-indexed error slot, and after the barrier the
///     exception of the LOWEST failing chunk index is rethrown on the
///     calling thread. That is exactly the exception a serial loop over the
///     same chunks would have surfaced, so error behaviour is thread-count
///     invariant too — callers (e.g. delta_color's retry loop) cannot
///     distinguish a parallel failure from a serial one.
///
/// A pool constructed with `num_threads <= 1` spawns no workers and runs
/// every region inline; the library treats that as the serial engine.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace deltacol {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` worker threads (the calling thread is always
  /// the num_threads-th executor). `num_threads <= 1` spawns none.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (workers + the calling thread), >= 1.
  int num_threads() const { return num_threads_; }

  /// Resolves a DeltaColoringOptions-style thread count: 0 means "all
  /// hardware threads", anything else is clamped to >= 1.
  static int resolve_num_threads(int requested);

  /// Schedule perturbation (chaos testing; DeltaColoringOptions::
  /// perturb_salt). A nonzero salt (a) jitters the chunk count
  /// num_range_chunks returns — still a pure function of
  /// (count, max_chunks, salt), so pre-sized per-chunk buffers stay
  /// consistent with the ranges actually dispatched — and (b) injects
  /// sub-millisecond sleeps ahead of pseudo-randomly chosen chunk bodies in
  /// parallel_chunks, scrambling which thread reaches shared state first.
  /// Results of callers honoring the chunk-index discipline are unchanged
  /// (boundaries and timing are never observable); fast-mode code paths see
  /// hostile interleavings. 0 (default) disables both.
  void set_perturb_salt(std::uint64_t salt) { perturb_salt_ = salt; }
  std::uint64_t perturb_salt() const { return perturb_salt_; }

  /// Runs chunk_fn(0) .. chunk_fn(num_chunks - 1), concurrently when the
  /// pool has workers. Blocks until every chunk finished; rethrows the
  /// lowest-index chunk's exception, if any. Safe to call from inside a
  /// chunk (nested regions drain themselves, see file comment).
  void parallel_chunks(int num_chunks,
                       const std::function<void(int)>& chunk_fn);

  /// Runs fn(chunk_index, lo, hi) over a contiguous partition of
  /// [begin, end) into ascending ranges (chunk 0 covers the lowest ids).
  /// Bodies that need O(n) scratch allocate it once per chunk here;
  /// `max_chunks` (default: several per executor for load balance) caps the
  /// partition when that scratch is expensive. Chunk boundaries are never
  /// observable — any cap yields identical results.
  void parallel_ranges(int begin, int end,
                       const std::function<void(int, int, int)>& fn,
                       int max_chunks = 0);

  /// Number of chunks parallel_ranges will use for a range of `count`
  /// elements under the same `max_chunks` cap (callers pre-size per-chunk
  /// buffers with this).
  int num_range_chunks(int count, int max_chunks = 0) const;

  /// Runs body(i) for every i in [begin, end). The body must write only to
  /// i-private state (and read only state no other i writes).
  template <typename Body>
  void parallel_for(int begin, int end, const Body& body) {
    parallel_ranges(begin, end, [&body](int /*chunk*/, int lo, int hi) {
      for (int i = lo; i < hi; ++i) body(i);
    });
  }

 private:
  struct Region;

  void worker_loop();
  // Opens a region for `chunk_fn` and blocks until every chunk completed
  // (the parallel tail of parallel_chunks, after its serial/perturbation
  // dispatch decisions).
  void run_region(int num_chunks, const std::function<void(int)>& chunk_fn);
  // Drains chunks of `region` on the calling thread until none remain.
  static void drain(Region& region);

  int num_threads_ = 1;
  std::uint64_t perturb_salt_ = 0;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Region>> open_regions_;
  bool stop_ = false;
};

/// Nullable-pool dispatch, the idiom every routed algorithm uses: run
/// body(i) over [begin, end) on the pool when one is attached, as a plain
/// serial loop otherwise. Results are identical either way (the parallel
/// path requires the usual i-private-writes discipline).
template <typename Body>
void pooled_for(ThreadPool* pool, int begin, int end, const Body& body) {
  if (pool != nullptr) {
    pool->parallel_for(begin, end, body);
  } else {
    for (int i = begin; i < end; ++i) body(i);
  }
}

/// Range-chunked variant of pooled_for; fn(chunk, lo, hi) with per-chunk
/// scratch. See ThreadPool::parallel_ranges for `max_chunks`.
inline void pooled_ranges(ThreadPool* pool, int begin, int end,
                          const std::function<void(int, int, int)>& fn,
                          int max_chunks = 0) {
  if (pool != nullptr) {
    pool->parallel_ranges(begin, end, fn, max_chunks);
  } else if (end > begin) {
    fn(0, begin, end);
  }
}

}  // namespace deltacol
