// Contract checking macros used throughout the library.
//
// DC_REQUIRE  — precondition on the caller; violation is a logic error.
// DC_ENSURE   — postcondition / internal invariant; violation is a bug in
//               this library.
//
// Both throw (rather than abort) so that tests can assert on contract
// violations and so that long benchmark sweeps surface a clean error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace deltacol {

class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace deltacol

#define DC_REQUIRE(cond, msg)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::deltacol::detail::contract_fail("DC_REQUIRE", #cond, __FILE__,       \
                                        __LINE__, (msg));                    \
  } while (0)

#define DC_ENSURE(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond))                                                             \
      ::deltacol::detail::contract_fail("DC_ENSURE", #cond, __FILE__,        \
                                        __LINE__, (msg));                    \
  } while (0)
