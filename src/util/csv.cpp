#include "util/csv.h"

#include "util/check.h"

namespace deltacol {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  DC_REQUIRE(columns_ > 0, "CSV header must be non-empty");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  DC_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    first = false;
    out_ << v;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  DC_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

}  // namespace deltacol
