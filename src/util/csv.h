// Minimal CSV emission for experiment outputs.
//
// Benchmarks print their series both as human-readable rows (so the paper's
// "tables" can be read straight off the bench output) and, optionally, as CSV
// files for plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace deltacol {

class CsvWriter {
 public:
  // Writes to the given stream; the stream must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

 private:
  std::ostream& out_;
  std::size_t columns_;
};

}  // namespace deltacol
