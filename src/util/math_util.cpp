#include "util/math_util.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace deltacol {

int floor_log2(std::uint64_t x) {
  DC_REQUIRE(x >= 1, "floor_log2 requires x >= 1");
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

int ceil_log2(std::uint64_t x) {
  DC_REQUIRE(x >= 1, "ceil_log2 requires x >= 1");
  const int f = floor_log2(x);
  return (std::uint64_t{1} << f) == x ? f : f + 1;
}

int log_star(double x) {
  int r = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++r;
  }
  return r;
}

double log_base(double b, double x) {
  DC_REQUIRE(b > 1.0, "log_base requires base > 1");
  if (x <= 1.0) return 0.0;
  return std::log(x) / std::log(b);
}

namespace {
bool is_prime(std::uint64_t x) {
  if (x < 2) return false;
  if (x % 2 == 0) return x == 2;
  for (std::uint64_t d = 3; d * d <= x; d += 2) {
    if (x % d == 0) return false;
  }
  return true;
}
}  // namespace

std::uint64_t next_prime(std::uint64_t x) {
  if (x <= 2) return 2;
  while (!is_prime(x)) ++x;
  return x;
}

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 &&
        result > std::numeric_limits<std::uint64_t>::max() / base) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result *= base;
  }
  return result;
}

}  // namespace deltacol
