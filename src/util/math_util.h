// Small integer/number-theory helpers used by the coloring algorithms.
#pragma once

#include <cstdint>

namespace deltacol {

// floor(log2(x)) for x >= 1.
int floor_log2(std::uint64_t x);

// ceil(log2(x)) for x >= 1.
int ceil_log2(std::uint64_t x);

// The iterated logarithm log*(x): the number of times log2 must be applied
// to x before the result drops to <= 1.
int log_star(double x);

// log base b of x, for b > 1 and x >= 1 (returns 0 for x <= 1).
double log_base(double b, double x);

// Smallest prime >= x (x >= 2). Deterministic trial division; only used for
// parameters of size poly(Delta, log n), so speed is a non-issue.
std::uint64_t next_prime(std::uint64_t x);

// Integer power with overflow saturation at UINT64_MAX.
std::uint64_t ipow(std::uint64_t base, unsigned exp);

// ceil(a / b) for positive integers.
inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace deltacol
