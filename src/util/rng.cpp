#include "util/rng.h"

#include <algorithm>

namespace deltacol {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DC_REQUIRE(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  DC_REQUIRE(lo <= hi, "next_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  DC_REQUIRE(0 <= k && k <= n, "sample size must be within [0, n]");
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int j = n - k; j < n; ++j) {
    const int t = static_cast<int>(next_below(static_cast<std::uint64_t>(j) + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace deltacol
