// Deterministic, seedable random number generation.
//
// All randomized algorithms in this library draw from an explicitly passed
// Rng so that every experiment is reproducible from a seed. The generator is
// Xoshiro256** seeded via SplitMix64, which is fast and has no observable
// correlations at the sizes we simulate.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace deltacol {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi);

  // Uniform double in [0, 1).
  double next_double();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  // Derive an independent child generator; used to give each simulated node
  // its own private randomness (LOCAL-model nodes do not share coins).
  Rng split();

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // k distinct values sampled uniformly from [0, n) (k <= n).
  std::vector<int> sample_without_replacement(int n, int k);

 private:
  std::uint64_t s_[4];
};

}  // namespace deltacol
