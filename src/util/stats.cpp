#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace deltacol {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
}

double Summary::mean() const {
  DC_REQUIRE(!samples_.empty(), "mean of empty summary");
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  DC_REQUIRE(!samples_.empty(), "min of empty summary");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  DC_REQUIRE(!samples_.empty(), "max of empty summary");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  DC_REQUIRE(!samples_.empty(), "percentile of empty summary");
  DC_REQUIRE(0.0 <= p && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string Summary::str() const {
  std::ostringstream os;
  if (samples_.empty()) {
    os << "(empty)";
    return os.str();
  }
  os << mean() << " ± " << stddev() << " [" << min() << ", " << max() << "] (n="
     << count() << ")";
  return os.str();
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  DC_REQUIRE(x.size() == y.size(), "fit_linear needs paired samples");
  DC_REQUIRE(x.size() >= 2, "fit_linear needs at least two samples");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace deltacol
