// Streaming summary statistics for experiment harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace deltacol {

// Accumulates samples and reports mean / stddev / min / max / percentiles.
// Percentile queries sort a copy lazily; intended for benchmark-sized sample
// counts, not hot loops.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;  // sample standard deviation (n - 1 denominator)
  double min() const;
  double max() const;
  double percentile(double p) const;  // p in [0, 100]
  double sum() const { return sum_; }

  // "mean ± stddev [min, max] (n)" — for log lines.
  std::string str() const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

// Ordinary least squares fit y = a + b*x over paired samples.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace deltacol
