// Integration tests: every algorithm on the full graph zoo must produce a
// valid Delta-coloring (Theorems 1, 3, 4, 21 + baselines).
#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

struct Workload {
  const char* name;
  Graph graph;
};

std::vector<Workload> graph_zoo() {
  std::vector<Workload> zoo;
  Rng rng(2024);
  zoo.push_back({"petersen", petersen_graph()});
  zoo.push_back({"torus_8x8", grid_graph(8, 8, true)});
  zoo.push_back({"grid_9x9", grid_graph(9, 9, false)});
  zoo.push_back({"hypercube_4", hypercube_graph(4)});
  zoo.push_back({"circulant_40_1_2", circulant_graph(40, {1, 2})});
  zoo.push_back({"random_regular_200_4", random_regular(200, 4, rng)});
  zoo.push_back({"random_regular_150_6", random_regular(150, 6, rng)});
  zoo.push_back({"random_maxdeg_300_5", random_graph_max_degree(300, 5, 1.6, rng)});
  zoo.push_back({"tree_200_4", random_tree(200, 4, rng)});
  zoo.push_back({"gallai_tree_120_4", random_gallai_tree(120, 4, rng)});
  zoo.push_back({"clique_ring_5x4", clique_ring(5, 4)});
  zoo.push_back({"theta_5_6_7", theta_graph(5, 6, 7)});
  zoo.push_back({"kary_tree_3_4", complete_kary_tree(3, 4)});
  zoo.push_back({"star_10", star_graph(10)});
  zoo.push_back({"bipartite_4_7", complete_bipartite(4, 7)});
  return zoo;
}

class AlgorithmZooTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, int>> {};

TEST_P(AlgorithmZooTest, ProducesValidDeltaColoring) {
  const auto [alg, zoo_index] = GetParam();
  auto zoo = graph_zoo();
  const auto& wl = zoo[static_cast<std::size_t>(zoo_index)];
  const Graph& g = wl.graph;
  if (alg == Algorithm::kRandomizedLarge && g.max_degree() < 4) {
    GTEST_SKIP() << "Theorem 3 needs Delta >= 4";
  }
  DeltaColoringOptions opt;
  opt.seed = 42;
  const auto res = delta_color(g, alg, opt);
  EXPECT_EQ(res.delta, g.max_degree());
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, res.delta))
      << wl.name;
  EXPECT_GT(res.ledger.total(), 0) << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, AlgorithmZooTest,
    ::testing::Combine(
        ::testing::Values(Algorithm::kDeterministic,
                          Algorithm::kRandomizedLarge,
                          Algorithm::kRandomizedSmall, Algorithm::kBaselineND,
                          Algorithm::kBaselineGreedyBrooks),
        ::testing::Range(0, 15)));

class AlgorithmSeedSweep
    : public ::testing::TestWithParam<std::tuple<Algorithm, int>> {};

TEST_P(AlgorithmSeedSweep, RandomRegularManySeeds) {
  const auto [alg, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  const Graph g = random_regular(250, 4, rng);
  DeltaColoringOptions opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  const auto res = delta_color(g, alg, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AlgorithmSeedSweep,
    ::testing::Combine(::testing::Values(Algorithm::kRandomizedLarge,
                                         Algorithm::kRandomizedSmall),
                       ::testing::Range(1, 9)));

TEST(Algorithms, DeterministicIsDeterministic) {
  Rng rng(55);
  const Graph g = random_regular(300, 4, rng);
  DeltaColoringOptions opt;
  const auto a = delta_color(g, Algorithm::kDeterministic, opt);
  const auto b = delta_color(g, Algorithm::kDeterministic, opt);
  EXPECT_EQ(a.coloring, b.coloring);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
}

TEST(Algorithms, SeedChangesRandomizedRun) {
  Rng rng(56);
  const Graph g = random_regular(300, 4, rng);
  DeltaColoringOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const auto a = delta_color(g, Algorithm::kRandomizedLarge, o1);
  const auto b = delta_color(g, Algorithm::kRandomizedLarge, o2);
  // Both valid; almost surely different colorings.
  EXPECT_NO_THROW(validate_delta_coloring(g, a.coloring, 4));
  EXPECT_NO_THROW(validate_delta_coloring(g, b.coloring, 4));
}

TEST(Algorithms, DisconnectedGraphs) {
  Rng rng(57);
  Graph g = disjoint_union(petersen_graph(), grid_graph(5, 5, true));
  g = disjoint_union(g, clique_graph(3));
  g = disjoint_union(g, cycle_graph(9));
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, {});
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
}

TEST(Algorithms, RejectsDeltaPlusOneClique) {
  EXPECT_THROW(delta_color(clique_graph(5), Algorithm::kDeterministic, {}),
               ContractViolation);
  // Also when the clique hides among other components.
  const Graph g = disjoint_union(grid_graph(4, 4, true), clique_graph(5));
  EXPECT_THROW(delta_color(g, Algorithm::kDeterministic, {}),
               ContractViolation);
}

TEST(Algorithms, RejectsLowDegreeGraphs) {
  EXPECT_THROW(delta_color(cycle_graph(8), Algorithm::kDeterministic, {}),
               ContractViolation);
  EXPECT_THROW(delta_color(path_graph(5), Algorithm::kRandomizedSmall, {}),
               ContractViolation);
}

TEST(Algorithms, RandomizedLargeRejectsDelta3) {
  EXPECT_THROW(delta_color(petersen_graph(), Algorithm::kRandomizedLarge, {}),
               ContractViolation);
  // The small variant accepts Delta = 3.
  const auto res = delta_color(petersen_graph(), Algorithm::kRandomizedSmall, {});
  EXPECT_NO_THROW(validate_delta_coloring(petersen_graph(), res.coloring, 3));
}

TEST(Algorithms, PaperConstantsMode) {
  Rng rng(60);
  const Graph g = random_regular(400, 4, rng);
  DeltaColoringOptions opt;
  opt.use_paper_constants = true;  // b = 6, p = Delta^-6
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
}

TEST(Algorithms, RandomizedListEngine) {
  Rng rng(61);
  const Graph g = random_regular(300, 5, rng);
  DeltaColoringOptions opt;
  opt.list_engine = ListEngine::kRandomized;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 5));
}

TEST(Algorithms, LedgerHasPhaseBreakdown) {
  Rng rng(62);
  const Graph g = random_regular(300, 4, rng);
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, {});
  EXPECT_GT(res.ledger.phase_total("linial"), 0);
  EXPECT_GT(res.ledger.phase_total("rand/1-dcc-detect"), 0);
  EXPECT_FALSE(res.ledger.report().empty());
}

TEST(Algorithms, NamesAreHuman) {
  EXPECT_NE(algorithm_name(Algorithm::kDeterministic).find("Thm 4"),
            std::string::npos);
  EXPECT_NE(algorithm_name(Algorithm::kBaselineND).find("PS95"),
            std::string::npos);
}

TEST(Algorithms, LargerDeltaGraphs) {
  Rng rng(63);
  const Graph g = random_regular(120, 10, rng);
  for (auto alg : {Algorithm::kDeterministic, Algorithm::kRandomizedLarge}) {
    const auto res = delta_color(g, alg, {});
    EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 10));
  }
}

TEST(Algorithms, GallaiTreeHeavyGraphIsHardButColored) {
  // Gallai trees have no DCC anywhere: the randomized algorithm must rely
  // on boundary/T-node happiness and Section 4.3 entirely.
  Rng rng(64);
  const Graph g = random_gallai_tree(300, 4, rng);
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, {});
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, g.max_degree()));
  EXPECT_EQ(res.stats.num_dccs_selected, 0);
}

}  // namespace
}  // namespace deltacol
