// The distributed Brooks fix (Theorem 5): uncolor one node of a valid
// Delta-coloring, fix it, and check the recoloring radius bound.
#include <gtest/gtest.h>

#include "brooks/distributed_brooks.h"
#include "coloring/brooks_seq.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace deltacol {
namespace {

class BrooksFixTest : public ::testing::TestWithParam<int> {};

TEST_P(BrooksFixTest, FixesRandomUncoloredVertexOnRegularGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = random_regular(400, 4, rng);
  if (!is_connected(g)) GTEST_SKIP();
  const int delta = 4;
  const Coloring base = brooks_coloring(g);
  const int rho = brooks_search_radius(g.num_vertices(), delta);
  for (int rep = 0; rep < 10; ++rep) {
    Coloring c = base;
    const int v = rng.next_int(0, g.num_vertices() - 1);
    c[static_cast<std::size_t>(v)] = kUncolored;
    const auto fix = brooks_fix(g, c, v, delta, rho);
    validate_delta_coloring(g, c, delta);
    EXPECT_FALSE(fix.used_component_recolor);
    EXPECT_LE(fix.radius_used, rho);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrooksFixTest, ::testing::Range(1, 8));

TEST(BrooksFix, DeficientNodeCaseOnGrid) {
  // Open grid: degree < 4 at the border, so a token walk toward the border
  // (or an early free color) always works.
  const Graph g = grid_graph(10, 10, false);
  Coloring c = brooks_coloring(g);
  const int center = 5 * 10 + 5;
  c[center] = kUncolored;
  const auto fix = brooks_fix(g, c, center, 4, brooks_search_radius(100, 4));
  validate_delta_coloring(g, c, 4);
  EXPECT_FALSE(fix.used_component_recolor);
}

TEST(BrooksFix, DccCaseOnTorus) {
  // Torus: 4-regular, no deficient vertices; balls are full of 4-cycles
  // (DCCs), so the DCC path must fire whenever no early free color exists.
  const Graph g = grid_graph(8, 8, true);
  Rng rng(5);
  int dcc_uses = 0;
  const Coloring base = brooks_coloring(g);
  for (int v = 0; v < g.num_vertices(); ++v) {
    Coloring c = base;
    c[static_cast<std::size_t>(v)] = kUncolored;
    const auto fix = brooks_fix(g, c, v, 4, brooks_search_radius(64, 4));
    validate_delta_coloring(g, c, 4);
    dcc_uses += fix.used_dcc ? 1 : 0;
  }
  // In a proper Brooks coloring of a torus many vertices see all 4 colors;
  // at least some fixes must go through the DCC machinery or free colors.
  SUCCEED() << "dcc uses: " << dcc_uses;
}

TEST(BrooksFix, FreeColorFastPathRadiusZero) {
  // A vertex with a repeated color among its neighbors refixes in place.
  const Graph g = star_graph(4);
  Coloring c{kUncolored, 0, 0, 0, 0};
  const auto fix = brooks_fix(g, c, 0, 4, 3);
  EXPECT_EQ(fix.radius_used, 0);
  EXPECT_TRUE(is_proper_complete(g, c));
}

TEST(BrooksFix, EmergencyComponentRecolorWhenRadiusTooSmall) {
  // Radius 1 on a big torus: no DCC or deficient vertex in sight when the
  // ball is DCC-free... on a torus radius 1 balls are stars (no DCC), and
  // all degrees are 4, so the emergency path must fire when no free color
  // exists at the uncolored vertex.
  const Graph g = grid_graph(10, 10, true);
  const Coloring base = brooks_coloring(g);
  for (int v = 0; v < g.num_vertices(); ++v) {
    Coloring c = base;
    c[static_cast<std::size_t>(v)] = kUncolored;
    // Find a vertex whose neighbors use all 4 colors.
    if (first_free_color(g, c, v, 4).has_value()) continue;
    const auto fix = brooks_fix(g, c, v, 4, /*max_radius=*/1);
    validate_delta_coloring(g, c, 4);
    EXPECT_TRUE(fix.used_component_recolor);
    return;
  }
  GTEST_SKIP() << "coloring left free colors everywhere";
}

TEST(BrooksFix, RadiusBoundFormula) {
  EXPECT_GE(brooks_search_radius(1000, 4), 2);
  EXPECT_GE(brooks_search_radius(1000, 3),
            brooks_search_radius(1000, 5));  // smaller base, larger radius
  EXPECT_THROW(brooks_search_radius(10, 2), ContractViolation);
}

TEST(BrooksFix, WorksWithOtherUncoloredVerticesFarAway) {
  Rng rng(9);
  const Graph g = random_regular(500, 4, rng);
  if (!is_connected(g)) GTEST_SKIP();
  Coloring c = brooks_coloring(g);
  // Uncolor two far-apart vertices; fix one — the other stays uncolored and
  // must not break the machinery (partial-coloring tolerance).
  c[0] = kUncolored;
  c[499] = kUncolored;
  brooks_fix(g, c, 0, 4, brooks_search_radius(500, 4));
  EXPECT_EQ(count_uncolored(c), 1);
  EXPECT_TRUE(is_proper_partial(g, c));
}

}  // namespace
}  // namespace deltacol
