// The sequential constructive Brooks' theorem — ground-truth oracle.
#include <gtest/gtest.h>

#include "coloring/brooks_seq.h"
#include "graph/generators.h"
#include "graph/components.h"
#include "graph/ops.h"
#include "util/check.h"

namespace deltacol {
namespace {

TEST(BrooksSeq, Petersen) {
  const Graph g = petersen_graph();
  const Coloring c = brooks_coloring(g);
  EXPECT_TRUE(is_proper_with_palette(g, c, 3));
}

TEST(BrooksSeq, HypercubesAreRegularBiconnected) {
  for (int dim : {3, 4, 5}) {
    const Graph g = hypercube_graph(dim);
    const Coloring c = brooks_coloring(g);
    EXPECT_TRUE(is_proper_with_palette(g, c, dim));
  }
}

TEST(BrooksSeq, Torus) {
  const Graph g = grid_graph(6, 8, true);
  const Coloring c = brooks_coloring(g);
  EXPECT_TRUE(is_proper_with_palette(g, c, 4));
}

TEST(BrooksSeq, GraphWithDeficientVertex) {
  const Graph g = grid_graph(5, 5, false);  // corners have degree 2 < 4
  const Coloring c = brooks_coloring(g);
  EXPECT_TRUE(is_proper_with_palette(g, c, 4));
}

// 3-regular graph with a bridge: two K4-minus-an-edge gadgets, each with an
// apex joined to its two degree-2 vertices, apexes bridged.
Graph cubic_bridge_graph() {
  GraphBuilder b(10);
  auto gadget = [&b](int base, int apex) {
    // K4 minus edge {base, base+1} on {base..base+3}.
    b.add_edge(base, base + 2);
    b.add_edge(base, base + 3);
    b.add_edge(base + 1, base + 2);
    b.add_edge(base + 1, base + 3);
    b.add_edge(base + 2, base + 3);
    b.add_edge(apex, base);
    b.add_edge(apex, base + 1);
  };
  gadget(0, 8);
  gadget(4, 9);
  b.add_edge(8, 9);
  return b.build();
}

TEST(BrooksSeq, RegularWithCutVertexOrBridge) {
  const Graph g = cubic_bridge_graph();
  for (int v = 0; v < g.num_vertices(); ++v) ASSERT_EQ(g.degree(v), 3);
  const Coloring c = brooks_coloring(g);
  EXPECT_TRUE(is_proper_with_palette(g, c, 3));
}

TEST(BrooksSeq, RejectsCliques) {
  EXPECT_THROW(brooks_coloring(clique_graph(5)), ContractViolation);
}

TEST(BrooksSeq, RejectsLowDegree) {
  EXPECT_THROW(brooks_coloring(cycle_graph(5)), ContractViolation);
}

class BrooksSeqRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BrooksSeqRandomTest, RandomRegularGraphs) {
  const auto [n, d, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = random_regular(n, d, rng);
  if (!is_connected(g)) GTEST_SKIP() << "disconnected sample";
  const Coloring c = brooks_coloring(g);
  EXPECT_TRUE(is_proper_with_palette(g, c, d));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BrooksSeqRandomTest,
    ::testing::Combine(::testing::Values(20, 60, 120),
                       ::testing::Values(3, 4, 6),
                       ::testing::Values(1, 2, 3)));

TEST(BrooksSeqComponents, MixedComponents) {
  Graph g = disjoint_union(petersen_graph(), clique_graph(3));
  g = disjoint_union(g, cycle_graph(7));
  g = disjoint_union(g, path_graph(4));
  const Coloring c = brooks_coloring_components(g, 3);
  EXPECT_TRUE(is_proper_with_palette(g, c, 3));
}

TEST(BrooksSeqComponents, RejectsOversizedClique) {
  const Graph g = disjoint_union(petersen_graph(), clique_graph(4));
  EXPECT_THROW(brooks_coloring_components(g, 3), ContractViolation);
}

TEST(BrooksSeqComponents, GallaiTrees) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Graph g = random_gallai_tree(80, 4, rng);
    const Coloring c = brooks_coloring_components(g, g.max_degree());
    EXPECT_TRUE(is_proper_with_palette(g, c, g.max_degree()));
  }
}

}  // namespace
}  // namespace deltacol
