// Coloring vocabulary, greedy, and the exact brute-force list colorer.
#include <gtest/gtest.h>

#include "coloring/brute.h"
#include "coloring/coloring.h"
#include "coloring/greedy.h"
#include "graph/generators.h"
#include "util/check.h"

namespace deltacol {
namespace {

TEST(Coloring, ProperChecks) {
  const Graph g = cycle_graph(4);
  Coloring c{0, 1, 0, 1};
  EXPECT_TRUE(is_proper_complete(g, c));
  EXPECT_TRUE(is_proper_with_palette(g, c, 2));
  c[2] = 1;
  EXPECT_FALSE(is_proper_partial(g, c));
  c[2] = kUncolored;
  EXPECT_TRUE(is_proper_partial(g, c));
  EXPECT_FALSE(is_proper_complete(g, c));
  EXPECT_EQ(count_uncolored(c), 1);
  EXPECT_EQ(num_colors_used(c), 2);
}

TEST(Coloring, ValidatorDiagnostics) {
  const Graph g = path_graph(3);
  EXPECT_THROW(validate_delta_coloring(g, {0, 1, kUncolored}, 2),
               ContractViolation);
  EXPECT_THROW(validate_delta_coloring(g, {0, 1, 5}, 2), ContractViolation);
  EXPECT_THROW(validate_delta_coloring(g, {0, 0, 1}, 2), ContractViolation);
  EXPECT_NO_THROW(validate_delta_coloring(g, {0, 1, 0}, 2));
}

TEST(Coloring, FreeColors) {
  const Graph g = star_graph(3);
  Coloring c{kUncolored, 0, 1, 0};
  const auto fc = free_colors(g, c, 0, 4);
  EXPECT_EQ(fc, (std::vector<Color>{2, 3}));
  EXPECT_EQ(first_free_color(g, c, 0, 4), 2);
  EXPECT_EQ(first_free_color(g, c, 0, 2), std::nullopt);
}

TEST(Coloring, RespectsLists) {
  ListAssignment lists{{0, 2}, {1}};
  EXPECT_TRUE(respects_lists({2, 1}, lists));
  EXPECT_FALSE(respects_lists({1, 1}, lists));
  EXPECT_FALSE(respects_lists({2, kUncolored}, lists));
}

TEST(Greedy, DeltaPlusOneAlwaysWorks) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_regular(60, 5, rng);
    const Coloring c = greedy_coloring(g);
    EXPECT_TRUE(is_proper_with_palette(g, c, 6));
  }
}

TEST(Greedy, RespectsPrecoloring) {
  const Graph g = path_graph(3);
  Coloring c{kUncolored, 1, kUncolored};
  greedy_color_in_order(g, {0, 2}, 2, c);
  EXPECT_EQ(c[0], 0);
  EXPECT_EQ(c[1], 1);
  EXPECT_EQ(c[2], 0);
}

TEST(Greedy, ThrowsWhenPaletteTooSmall) {
  const Graph g = clique_graph(4);
  Coloring c(4, kUncolored);
  EXPECT_THROW(greedy_color_in_order(g, {0, 1, 2, 3}, 3, c),
               ContractViolation);
}

TEST(Greedy, DecreasingBfsOrderEndsAtRoot) {
  const Graph g = path_graph(5);
  const auto order = decreasing_bfs_order(g, 2);
  EXPECT_EQ(order.back(), 2);
  EXPECT_EQ(order.size(), 5u);
  // Distances never increase along the order.
  EXPECT_TRUE(order.front() == 0 || order.front() == 4);
}

TEST(Brute, OddCycleNeedsThreeColors) {
  const Graph g = cycle_graph(5);
  EXPECT_FALSE(is_k_colorable(g, 2));
  EXPECT_TRUE(is_k_colorable(g, 3));
}

TEST(Brute, EvenCycleTwoColorable) {
  EXPECT_TRUE(is_k_colorable(cycle_graph(6), 2));
}

TEST(Brute, CliqueChromaticNumber) {
  EXPECT_FALSE(is_k_colorable(clique_graph(4), 3));
  EXPECT_TRUE(is_k_colorable(clique_graph(4), 4));
}

TEST(Brute, PetersenIsThreeChromatic) {
  EXPECT_FALSE(is_k_colorable(petersen_graph(), 2));
  EXPECT_TRUE(is_k_colorable(petersen_graph(), 3));
}

TEST(Brute, ListInstanceWithPartialFixed) {
  const Graph g = path_graph(3);
  const ListAssignment lists{{0}, {0, 1}, {0}};
  Coloring partial{kUncolored, kUncolored, kUncolored};
  const auto c = brute_force_list_coloring(g, lists, partial);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(respects_lists(*c, lists));
  EXPECT_TRUE(is_proper_complete(g, *c));
}

TEST(Brute, DetectsInfeasibleLists) {
  // Odd cycle, identical 2-color lists: infeasible.
  const Graph g = cycle_graph(5);
  const ListAssignment lists(5, {0, 1});
  EXPECT_FALSE(brute_force_list_coloring(g, lists).has_value());
}

TEST(Brute, EvenCycleTightListsFeasible) {
  const Graph g = cycle_graph(6);
  const ListAssignment lists(6, {0, 1});
  const auto c = brute_force_list_coloring(g, lists);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(is_proper_complete(g, *c));
}

TEST(Brute, BudgetGuardFires) {
  // A hard instance with a tiny budget must throw, not hang.
  Rng rng(33);
  const Graph g = random_regular(30, 5, rng);
  const ListAssignment lists(30, {0, 1, 2});
  EXPECT_THROW(brute_force_list_coloring(g, lists, /*max_nodes=*/3),
               ContractViolation);
}

}  // namespace
}  // namespace deltacol
