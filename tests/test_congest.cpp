// The CONGEST mode's differential contract (api.h congest_bits,
// local/round_ledger.h "CongestLedger mode"):
//
//  * accounting overlay — for every bandwidth cap B, delta_color produces a
//    coloring, ledger STRUCTURE (phase set) and PhaseStats bit-identical to
//    the LOCAL run; at B large enough for every message (the finite stand-in
//    for B = infinity) even the per-phase round counts match LOCAL exactly;
//  * monotonicity — total charged rounds are non-increasing in B (every
//    charge is ceil(load / B) of a B-independent load);
//  * (shards, threads)-invariance — the congest charge folds are order-free
//    maxima, so every (S, T) pair yields identical charged rounds;
//  * the gossip primitives (congest/gossip.h) compute the same values under
//    any B and charge height * ceil(payload / B).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "congest/gossip.h"
#include "core/api.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "local/round_ledger.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "runtime/mailbox.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol {
namespace {

// A finite stand-in for B = infinity: far wider than any single message the
// pipelines send, so the congest code path executes on every round and must
// still recover the LOCAL charge of exactly 1 per message round.
constexpr std::int64_t kHugeB = 1'000'000'000;

void expect_same_ledger(const RoundLedger& a, const RoundLedger& b,
                        const std::string& label) {
  EXPECT_EQ(a.total(), b.total()) << label;
  ASSERT_EQ(a.breakdown().size(), b.breakdown().size()) << label;
  for (std::size_t i = 0; i < a.breakdown().size(); ++i) {
    EXPECT_EQ(a.breakdown()[i].phase, b.breakdown()[i].phase) << label;
    EXPECT_EQ(a.breakdown()[i].rounds, b.breakdown()[i].rounds)
        << label << " phase " << a.breakdown()[i].phase;
  }
}

void expect_same_stats(const PhaseStats& a, const PhaseStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.num_dccs_selected, b.num_dccs_selected) << label;
  EXPECT_EQ(a.base_layer_size, b.base_layer_size) << label;
  EXPECT_EQ(a.num_b_layers, b.num_b_layers) << label;
  EXPECT_EQ(a.num_selected, b.num_selected) << label;
  EXPECT_EQ(a.num_tnodes, b.num_tnodes) << label;
  EXPECT_EQ(a.num_marked, b.num_marked) << label;
  EXPECT_EQ(a.num_c_layers, b.num_c_layers) << label;
  EXPECT_EQ(a.h_vertices, b.h_vertices) << label;
  EXPECT_EQ(a.happy_vertices, b.happy_vertices) << label;
  EXPECT_EQ(a.leftover_vertices, b.leftover_vertices) << label;
  EXPECT_EQ(a.leftover_components, b.leftover_components) << label;
  EXPECT_EQ(a.max_leftover_component, b.max_leftover_component) << label;
  EXPECT_EQ(a.anchors_empty_fallbacks, b.anchors_empty_fallbacks) << label;
  EXPECT_EQ(a.brooks_fixes, b.brooks_fixes) << label;
  EXPECT_EQ(a.repairs, b.repairs) << label;
  EXPECT_EQ(a.retries_used, b.retries_used) << label;
}

struct Workload {
  const char* name;
  Graph g;
};

std::vector<Workload> generator_zoo() {
  Rng rng(71);
  std::vector<Workload> zoo;
  zoo.push_back({"regular-500-6", random_regular(500, 6, rng)});
  zoo.push_back({"gallai-400-4", random_gallai_tree(400, 4, rng)});
  zoo.push_back({"sparse-400-6", random_graph_max_degree(400, 6, 1.8, rng)});
  zoo.push_back(
      {"3-components",
       disjoint_union(disjoint_union(random_regular(200, 5, rng),
                                     random_regular(90, 4, rng)),
                      random_graph_max_degree(150, 6, 1.8, rng))});
  zoo.push_back({"triangle-cactus", triangle_cactus(1500)});
  return zoo;
}

const Algorithm kAllAlgorithms[] = {
    Algorithm::kDeterministic,       Algorithm::kRandomizedLarge,
    Algorithm::kRandomizedSmall,     Algorithm::kBaselineND,
    Algorithm::kBaselineGreedyBrooks,
};

// --- the RoundLedger's congest arithmetic ----------------------------------

TEST(CongestLedger, MessageRoundCostMath) {
  RoundLedger local;
  EXPECT_EQ(local.congest_bits(), 0);
  EXPECT_EQ(local.message_round_cost(0), 1);
  EXPECT_EQ(local.message_round_cost(1'000'000), 1);

  RoundLedger congest;
  congest.set_congest_bits(64);
  EXPECT_EQ(congest.congest_bits(), 64);
  EXPECT_EQ(congest.message_round_cost(0), 1);   // the barrier still happened
  EXPECT_EQ(congest.message_round_cost(1), 1);
  EXPECT_EQ(congest.message_round_cost(64), 1);  // exact fit
  EXPECT_EQ(congest.message_round_cost(65), 2);  // one bit over
  EXPECT_EQ(congest.message_round_cost(128), 2);
  EXPECT_EQ(congest.message_round_cost(129), 3);

  // Negative caps normalize to LOCAL.
  congest.set_congest_bits(-5);
  EXPECT_EQ(congest.congest_bits(), 0);
  EXPECT_EQ(congest.message_round_cost(1'000'000), 1);
}

TEST(CongestLedger, ChargeMessageRoundMultiplier) {
  RoundLedger ledger;
  ledger.set_congest_bits(16);
  ledger.charge_message_round(65, "a", 3);  // ceil(65/16) = 5, times 3
  EXPECT_EQ(ledger.phase_total("a"), 15);
  EXPECT_EQ(ledger.total(), 15);
}

TEST(CongestLedger, ModeIsConfigurationNotACharge) {
  RoundLedger a;
  a.set_congest_bits(32);
  a.charge(7, "x");
  a.reset();  // drops charges, keeps the mode
  EXPECT_EQ(a.total(), 0);
  EXPECT_EQ(a.congest_bits(), 32);

  const RoundLedger copy = a;  // copied by copy operations
  EXPECT_EQ(copy.congest_bits(), 32);

  RoundLedger parent;  // but never propagated by merge()
  parent.merge(a);
  EXPECT_EQ(parent.congest_bits(), 0);
}

// --- full-pipeline differential: B = infinity recovers LOCAL exactly -------

TEST(CongestDifferential, HugeBIsBitIdenticalToLocalAcrossZoo) {
  for (const auto& w : generator_zoo()) {
    for (Algorithm alg : kAllAlgorithms) {
      DeltaColoringOptions local_opt;
      local_opt.seed = 2026;
      const DeltaColoringResult local = delta_color(w.g, alg, local_opt);
      validate_delta_coloring(w.g, local.coloring, local.delta);

      DeltaColoringOptions congest_opt = local_opt;
      congest_opt.congest_bits = kHugeB;
      const DeltaColoringResult congest = delta_color(w.g, alg, congest_opt);
      const std::string label =
          std::string(w.name) + " / " + algorithm_name(alg);
      EXPECT_EQ(congest.coloring, local.coloring) << label;
      EXPECT_EQ(congest.delta, local.delta) << label;
      expect_same_ledger(congest.ledger, local.ledger, label);
      expect_same_stats(congest.stats, local.stats, label);
    }
  }
}

// --- monotone round inflation: rounds never increase with more bandwidth ---

TEST(CongestDifferential, RoundsMonotoneNonIncreasingInB) {
  const std::int64_t caps[] = {16, 64, 256, kHugeB};
  for (const auto& w : generator_zoo()) {
    for (Algorithm alg : kAllAlgorithms) {
      std::int64_t prev_rounds = -1;
      Coloring first_coloring;
      for (std::int64_t B : caps) {
        DeltaColoringOptions opt;
        opt.seed = 7;
        opt.congest_bits = B;
        const DeltaColoringResult res = delta_color(w.g, alg, opt);
        const std::string label = std::string(w.name) + " / " +
                                  algorithm_name(alg) + " / B=" +
                                  std::to_string(B);
        validate_delta_coloring(w.g, res.coloring, res.delta);
        if (first_coloring.empty()) {
          first_coloring = res.coloring;
        } else {
          // Execution is B-independent: only the charges may differ.
          EXPECT_EQ(res.coloring, first_coloring) << label;
        }
        if (prev_rounds >= 0) {
          EXPECT_LE(res.ledger.total(), prev_rounds)
              << label << ": more bandwidth must never cost more rounds";
        }
        prev_rounds = res.ledger.total();
      }
    }
  }
}

TEST(CongestDifferential, TightCapActuallyInflatesRounds) {
  // Not just monotone: a 16-bit cap must genuinely charge more than LOCAL
  // (the 64-bit priority exchanges of the MIS machinery need ceil(64/16) = 4
  // sub-rounds each). Guards against the overlay silently charging 1 always.
  Rng rng(5);
  const Graph g = random_regular(400, 6, rng);
  DeltaColoringOptions local_opt;
  local_opt.seed = 11;
  DeltaColoringOptions tight_opt = local_opt;
  tight_opt.congest_bits = 16;
  for (Algorithm alg :
       {Algorithm::kRandomizedLarge, Algorithm::kRandomizedSmall}) {
    const auto local = delta_color(g, alg, local_opt);
    const auto tight = delta_color(g, alg, tight_opt);
    EXPECT_EQ(tight.coloring, local.coloring) << algorithm_name(alg);
    EXPECT_GT(tight.ledger.total(), local.ledger.total())
        << algorithm_name(alg);
  }
}

// --- (shards, threads)-invariance of congest charges -----------------------

TEST(CongestDifferential, ChargesInvariantAcrossShardsTimesThreadsGolden) {
  Rng rng(13);
  const Graph g = random_regular(300, 5, rng);
  for (std::int64_t B : {std::int64_t{16}, std::int64_t{64}, kHugeB}) {
    DeltaColoringOptions base;
    base.seed = 77;
    base.congest_bits = B;
    base.num_threads = 1;
    base.num_shards = 1;
    const DeltaColoringResult oracle =
        delta_color(g, Algorithm::kRandomizedSmall, base);
    for (int num_shards : {1, 2, 8}) {
      for (int threads : {1, 2, 8}) {
        if (num_shards == 1 && threads == 1) continue;
        DeltaColoringOptions opt = base;
        opt.num_shards = num_shards;
        opt.num_threads = threads;
        const DeltaColoringResult res =
            delta_color(g, Algorithm::kRandomizedSmall, opt);
        const std::string label = "B=" + std::to_string(B) + " S=" +
                                  std::to_string(num_shards) + " T=" +
                                  std::to_string(threads);
        EXPECT_EQ(res.coloring, oracle.coloring) << label;
        expect_same_ledger(res.ledger, oracle.ledger, label);
        expect_same_stats(res.stats, oracle.stats, label);
      }
    }
  }
}

// --- engine-level differential on the literal message-passing MIS ----------

TEST(CongestEngine, LubyMessagePassingChargesMatchAcrossEnginesAndB) {
  Rng gen(31);
  // Regular (min degree > 0): every executed round moves at least one
  // message, so the per-round factorization below is exact.
  const Graph g = random_regular(200, 6, gen);
  for (std::int64_t B : {std::int64_t{0}, std::int64_t{16}, std::int64_t{64},
                         kHugeB}) {
    // Serial reference.
    Rng rng(99);
    RoundLedger serial_ledger;
    serial_ledger.set_congest_bits(B);
    const auto serial_mis =
        luby_mis_message_passing(g, rng, serial_ledger, "mis");
    EXPECT_TRUE(is_mis(g, serial_mis));
    // Every executed round carries at most one 65-bit message per directed
    // edge, so the total factors exactly: rounds * ceil(65 / B).
    const std::int64_t per_round =
        serial_ledger.message_round_cost(kLubyMessageBits);
    EXPECT_EQ(serial_ledger.total() % per_round, 0) << "B=" << B;

    for (int num_shards : {1, 2, 8}) {
      for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
        ShardRuntime shards(g, num_shards, pool_ptr);
        Rng rng2(99);
        RoundLedger ledger;
        ledger.set_congest_bits(B);
        const auto mis = luby_mis_message_passing(g, rng2, ledger, "mis",
                                                  pool_ptr, &shards);
        EXPECT_EQ(mis, serial_mis)
            << "B=" << B << " S=" << num_shards << " T=" << threads;
        EXPECT_EQ(ledger.total(), serial_ledger.total())
            << "B=" << B << " S=" << num_shards << " T=" << threads;
      }
    }
  }
}

TEST(CongestEngine, LubyHugeBMatchesLocalAndTightBInflates) {
  Rng gen(41);
  const Graph g = random_regular(150, 4, gen);
  auto run = [&](std::int64_t B) {
    Rng rng(7);
    RoundLedger ledger;
    ledger.set_congest_bits(B);
    luby_mis_message_passing(g, rng, ledger, "mis");
    return ledger.total();
  };
  const std::int64_t local = run(0);
  EXPECT_EQ(run(kHugeB), local);
  // ceil(65/16) = 5: every executed round is charged fivefold.
  EXPECT_EQ(run(16), local * 5);
  // ceil(65/64) = 2: doubled.
  EXPECT_EQ(run(64), local * 2);
}

// --- gossip primitives -----------------------------------------------------

TEST(Gossip, TreeStructureOnAPath) {
  // 0-1-2-3-4: rooted at 0, the BFS tree IS the path.
  const Graph g =
      Graph::from_edges(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const GossipTree tree = build_gossip_tree(g, 0);
  EXPECT_EQ(tree.root, 0);
  EXPECT_EQ(tree.height, 4);
  EXPECT_EQ(tree.num_nodes, 5);
  EXPECT_EQ(tree.parent, (std::vector<int>{-1, 0, 1, 2, 3}));
  EXPECT_EQ(tree.depth, (std::vector<int>{0, 1, 2, 3, 4}));
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(tree.children[static_cast<std::size_t>(v)],
              std::vector<int>{v + 1});
  }
  EXPECT_TRUE(tree.children[4].empty());
}

TEST(Gossip, TreeIsThreadCountInvariant) {
  Rng rng(51);
  const Graph g = random_graph_max_degree(600, 8, 2.5, rng);
  const GossipTree serial = build_gossip_tree(g, 3);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    const GossipTree pooled = build_gossip_tree(g, 3, &pool);
    EXPECT_EQ(pooled.parent, serial.parent) << threads;
    EXPECT_EQ(pooled.depth, serial.depth) << threads;
    EXPECT_EQ(pooled.height, serial.height) << threads;
  }
}

TEST(Gossip, TreeCoversOnlyTheRootComponent) {
  Rng rng(53);
  const Graph g =
      disjoint_union(random_regular(40, 4, rng), random_regular(30, 4, rng));
  const GossipTree tree = build_gossip_tree(g, 0);
  EXPECT_EQ(tree.num_nodes, 40);
  for (int v = 0; v < 40; ++v) EXPECT_TRUE(tree.reached(v));
  for (int v = 40; v < 70; ++v) {
    EXPECT_FALSE(tree.reached(v));
    EXPECT_EQ(tree.parent[static_cast<std::size_t>(v)], -1);
  }
}

TEST(Gossip, BroadcastDeliversAndChargesByLevel) {
  // Star rooted at 0: height 1.
  const Graph g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}});
  const GossipTree tree = build_gossip_tree(g, 0);
  ASSERT_EQ(tree.height, 1);

  RoundLedger local;
  const auto values = gossip_broadcast(tree, 42, 128, local, "bcast");
  EXPECT_EQ(values, (std::vector<std::int64_t>{42, 42, 42, 42}));
  EXPECT_EQ(local.total(), 1);  // height rounds in LOCAL

  RoundLedger congest;
  congest.set_congest_bits(32);
  const auto values2 = gossip_broadcast(tree, 42, 128, congest, "bcast");
  EXPECT_EQ(values2, values);           // same values under any B
  EXPECT_EQ(congest.total(), 4);        // height * ceil(128/32)
}

TEST(Gossip, ConvergecastAggregatesSumMinMax) {
  // 0-1, 0-2, 2-3, 2-4: height 2.
  const Graph g = Graph::from_edges(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {2, 3}, {2, 4}});
  const GossipTree tree = build_gossip_tree(g, 0);
  ASSERT_EQ(tree.height, 2);
  const std::vector<std::int64_t> values = {10, 2, 30, 4, 5};

  RoundLedger ledger;
  const auto sums =
      gossip_convergecast(tree, values, GossipOp::kSum, ledger, "cc");
  EXPECT_EQ(sums[0], 51);       // whole component at the root
  EXPECT_EQ(sums[2], 39);       // subtree {2, 3, 4}
  EXPECT_EQ(sums[1], 2);        // leaf
  EXPECT_EQ(ledger.total(), 2); // height rounds in LOCAL

  RoundLedger minl, maxl;
  EXPECT_EQ(gossip_convergecast(tree, values, GossipOp::kMin, minl, "cc")[0],
            2);
  EXPECT_EQ(gossip_convergecast(tree, values, GossipOp::kMax, maxl, "cc")[0],
            30);

  RoundLedger congest;
  congest.set_congest_bits(16);
  const auto sums2 =
      gossip_convergecast(tree, values, GossipOp::kSum, congest, "cc");
  EXPECT_EQ(sums2, sums);         // accounting overlay only
  EXPECT_EQ(congest.total(), 8);  // height * ceil(64/16)
}

TEST(Gossip, RoundTripCountsComponentSize) {
  // The canonical use: convergecast a sum of ones (count the component),
  // broadcast the result back. Values and charges are deterministic.
  Rng rng(61);
  const Graph g = random_regular(200, 4, rng);
  const GossipTree tree = build_gossip_tree(g, 17);
  const std::vector<std::int64_t> ones(200, 1);
  RoundLedger ledger;
  ledger.set_congest_bits(64);
  const auto counts =
      gossip_convergecast(tree, ones, GossipOp::kSum, ledger, "count");
  EXPECT_EQ(counts[static_cast<std::size_t>(tree.root)], 200);
  const auto echoed = gossip_broadcast(
      tree, counts[static_cast<std::size_t>(tree.root)], 64, ledger, "count");
  for (int v = 0; v < 200; ++v) {
    EXPECT_EQ(echoed[static_cast<std::size_t>(v)], 200);
  }
  // 64-bit payloads fit a 64-bit cap: 2 * height rounds total.
  EXPECT_EQ(ledger.total(), 2 * tree.height);
}

}  // namespace
}  // namespace deltacol
