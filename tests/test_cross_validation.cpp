// Cross-validation property tests: every polynomial-time construction in
// the library is checked against an independent exact oracle on randomized
// small instances.
//
//  * degree_choosable_coloring vs brute-force list coloring (feasibility
//    must agree; produced colorings must verify);
//  * Theorem 8 both directions: Gallai tree <=> not degree-choosable, via
//    randomized tight-list probing;
//  * dcc detection vs girth (high girth certifies DCC-free balls);
//  * delta_color output vs sequential Brooks (both must exist and verify).
#include <gtest/gtest.h>

#include "coloring/brooks_seq.h"
#include "coloring/brute.h"
#include "coloring/degree_choosable.h"
#include "core/api.h"
#include "dcc/dcc.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/structure.h"
#include "util/rng.h"

namespace deltacol {
namespace {

// Random connected graph with >= some cycles, small enough to brute force.
Graph small_random_graph(Rng& rng) {
  return random_graph_max_degree(rng.next_int(6, 14), 4, 1.4, rng);
}

ListAssignment random_tight_lists(const Graph& g, int palette, Rng& rng) {
  ListAssignment lists(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    std::vector<Color> pool;
    for (Color x = 0; x < palette; ++x) pool.push_back(x);
    rng.shuffle(pool);
    const int want = std::min(palette, g.degree(v));
    for (int i = 0; i < want; ++i) {
      lists[static_cast<std::size_t>(v)].push_back(pool[static_cast<std::size_t>(i)]);
    }
    std::sort(lists[static_cast<std::size_t>(v)].begin(),
              lists[static_cast<std::size_t>(v)].end());
  }
  return lists;
}

class DegreeChoosableVsBruteTest : public ::testing::TestWithParam<int> {};

TEST_P(DegreeChoosableVsBruteTest, FeasibilityAgreesWithExactSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 13);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g = small_random_graph(rng);
    if (!is_connected(g)) continue;
    const auto lists = random_tight_lists(g, 5, rng);
    const auto constructive = degree_choosable_coloring(g, lists);
    const auto exact = brute_force_list_coloring(g, lists);
    ASSERT_EQ(constructive.has_value(), exact.has_value())
        << "feasibility disagreement, trial " << trial;
    if (constructive) {
      EXPECT_TRUE(is_proper_complete(g, *constructive));
      EXPECT_TRUE(respects_lists(*constructive, lists));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeChoosableVsBruteTest,
                         ::testing::Range(1, 9));

TEST(Theorem8, CliqueTreesRefuseTheErtWitnessLists) {
  // Theorem 8, only-if direction, on trees of cliques: give each clique
  // block B of size s a private palette S_B of s-1 colors and set
  // L(v) = union of S_B over blocks containing v. Then |L(v)| = deg(v) and
  // the instance is infeasible: in a leaf block the s-1 non-cut vertices
  // exhaust S_B, forcing the cut vertex out of S_B, and induction peels the
  // block tree.
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    // Build a random tree of cliques.
    std::vector<Edge> edges;
    std::vector<std::vector<int>> blocks;
    int next_vertex = 1;
    std::vector<int> attach_points{0};
    const int num_blocks = rng.next_int(2, 5);
    for (int b = 0; b < num_blocks; ++b) {
      const int host = attach_points[static_cast<std::size_t>(
          rng.next_below(attach_points.size()))];
      const int size = rng.next_int(3, 4);
      std::vector<int> members{host};
      for (int i = 1; i < size; ++i) {
        members.push_back(next_vertex++);
        attach_points.push_back(members.back());
      }
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          edges.emplace_back(members[i], members[j]);
        }
      }
      blocks.push_back(members);
    }
    const Graph g = Graph::from_edges(next_vertex, edges);
    ASSERT_TRUE(is_gallai_tree(g));
    ListAssignment lists(static_cast<std::size_t>(next_vertex));
    int next_color = 0;
    for (const auto& members : blocks) {
      const int demand = static_cast<int>(members.size()) - 1;
      for (int v : members) {
        for (int x = 0; x < demand; ++x) {
          lists[static_cast<std::size_t>(v)].push_back(next_color + x);
        }
      }
      next_color += demand;
    }
    for (int v = 0; v < next_vertex; ++v) {
      auto& l = lists[static_cast<std::size_t>(v)];
      std::sort(l.begin(), l.end());
      ASSERT_EQ(static_cast<int>(l.size()), g.degree(v));
    }
    EXPECT_FALSE(brute_force_list_coloring(g, lists).has_value())
        << "trial " << trial;
  }
}

TEST(Theorem8, NonGallaiAlwaysDegreeColorableFromProbes) {
  // If-direction probe: graphs with a DCC accept every deg-sized list
  // assignment we try.
  Rng rng(6);
  int probed = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Graph g = small_random_graph(rng);
    if (!is_connected(g) || is_gallai_tree(g)) continue;
    const auto lists = random_tight_lists(g, 5, rng);
    bool tight = true;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (static_cast<int>(lists[static_cast<std::size_t>(v)].size()) <
          g.degree(v)) {
        tight = false;  // palette was too small for this degree
      }
    }
    if (!tight) continue;
    EXPECT_TRUE(brute_force_list_coloring(g, lists).has_value())
        << "trial " << trial;
    ++probed;
  }
  EXPECT_GT(probed, 5);
}

TEST(DccVsGirth, HighGirthMeansDccFreeBalls) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_regular(200, 3, rng);
    const int gi = girth(g);
    if (gi < 0) continue;
    const int safe_r = (gi - 2) / 2;  // balls of this radius are trees
    if (safe_r < 1) continue;
    for (int v = 0; v < g.num_vertices(); v += 17) {
      EXPECT_FALSE(ball_contains_dcc(g, v, safe_r))
          << "girth " << gi << " vertex " << v;
    }
  }
}

class AlgorithmsVsBrooksSeq : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmsVsBrooksSeq, BothProduceValidColorings) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  const Graph g = random_regular(150, 4, rng);
  if (!is_connected(g)) GTEST_SKIP();
  const Coloring seq = brooks_coloring(g);
  EXPECT_TRUE(is_proper_with_palette(g, seq, 4));
  DeltaColoringOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const auto dist = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_TRUE(is_proper_with_palette(g, dist.coloring, 4));
  // Same chromatic budget from two unrelated constructions.
  EXPECT_LE(num_colors_used(dist.coloring), 4);
  EXPECT_LE(num_colors_used(seq), 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmsVsBrooksSeq, ::testing::Range(1, 7));

TEST(CrossValidation, FastModeAgreesWithDeterministicOnValidityMetrics) {
  // Every pipeline in both execution modes (runtime/execution_mode.h) on one
  // parallel+sharded shape: the deterministic run is the oracle, and the
  // fast run — which drops replay/merge ordering — must agree on every
  // validity metric: proper + complete, the same Delta, at most Delta
  // colors, and a round total within the deterministic bound.
  Rng rng(11);
  const Graph g = random_regular(300, 5, rng);
  for (Algorithm alg : {Algorithm::kDeterministic, Algorithm::kRandomizedLarge,
                        Algorithm::kRandomizedSmall, Algorithm::kBaselineND,
                        Algorithm::kBaselineGreedyBrooks}) {
    DeltaColoringOptions det_opt;
    det_opt.seed = 13;
    det_opt.num_threads = 8;
    det_opt.num_shards = 2;
    const auto det = delta_color(g, alg, det_opt);
    ASSERT_NO_THROW(validate_delta_coloring(g, det.coloring, det.delta))
        << algorithm_name(alg);

    DeltaColoringOptions fast_opt = det_opt;
    fast_opt.mode = ExecutionMode::kFast;
    const auto fast = delta_color(g, alg, fast_opt);
    ASSERT_NO_THROW(validate_delta_coloring(g, fast.coloring, fast.delta))
        << algorithm_name(alg);
    EXPECT_EQ(fast.delta, det.delta) << algorithm_name(alg);
    EXPECT_EQ(count_uncolored(fast.coloring), 0) << algorithm_name(alg);
    EXPECT_LE(num_colors_used(fast.coloring), det.delta) << algorithm_name(alg);
    EXPECT_LE(fast.ledger.total(), det.ledger.total()) << algorithm_name(alg);
  }
}

TEST(SameSeedSameResult, RandomizedRunsAreReproducible) {
  Rng rng(9);
  const Graph g = random_regular(300, 4, rng);
  for (Algorithm alg : {Algorithm::kRandomizedLarge,
                        Algorithm::kRandomizedSmall,
                        Algorithm::kBaselineND,
                        Algorithm::kBaselineGreedyBrooks}) {
    DeltaColoringOptions opt;
    opt.seed = 77;
    const auto a = delta_color(g, alg, opt);
    const auto b = delta_color(g, alg, opt);
    EXPECT_EQ(a.coloring, b.coloring) << algorithm_name(alg);
    EXPECT_EQ(a.ledger.total(), b.ledger.total()) << algorithm_name(alg);
  }
}

}  // namespace
}  // namespace deltacol
