// Degree-choosable component machinery (Definitions 6-9, DESIGN.md §4).
#include <gtest/gtest.h>

#include <set>

#include "dcc/dcc.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/structure.h"
#include "graph/traversal.h"
#include "local/round_ledger.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Dcc, IsDccShapes) {
  EXPECT_TRUE(is_dcc(cycle_graph(6)));           // even cycle
  EXPECT_FALSE(is_dcc(cycle_graph(7)));          // odd cycle
  EXPECT_FALSE(is_dcc(clique_graph(5)));         // clique
  EXPECT_TRUE(is_dcc(theta_graph(1, 2, 3)));     // theta
  EXPECT_TRUE(is_dcc(complete_bipartite(2, 3))); // K_{2,3}
  EXPECT_FALSE(is_dcc(path_graph(4)));           // not 2-connected
  EXPECT_FALSE(is_dcc(star_graph(4)));
  EXPECT_TRUE(is_dcc(hypercube_graph(3)));
  EXPECT_TRUE(is_dcc(petersen_graph()));
  EXPECT_TRUE(is_dcc(clique_ring(3, 4)));
  // Triangle with pendant: not 2-connected.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  EXPECT_FALSE(is_dcc(b.build()));
}

TEST(Dcc, DccBlocksAgreeWithGallaiTest) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_graph_max_degree(30, 4, 1.4, rng);
    EXPECT_EQ(dcc_blocks(g).empty(), is_gallai_tree(g)) << "trial " << trial;
  }
}

TEST(Dcc, BallContainsDcc) {
  // In a big even cycle, radius must reach halfway to see the cycle.
  const Graph g = cycle_graph(12);
  EXPECT_FALSE(ball_contains_dcc(g, 0, 5));
  EXPECT_TRUE(ball_contains_dcc(g, 0, 6));
  // Trees never contain DCCs.
  Rng rng(2);
  const Graph t = random_tree(100, 4, rng);
  for (int v = 0; v < 100; v += 7) EXPECT_FALSE(ball_contains_dcc(t, v, 5));
  // Gallai trees never contain DCCs at any radius.
  const Graph gt = random_gallai_tree(80, 4, rng);
  for (int v = 0; v < gt.num_vertices(); v += 9) {
    EXPECT_FALSE(ball_contains_dcc(gt, v, 4));
  }
}

TEST(Dcc, DetectInvariants) {
  Rng rng(77);
  const Graph g = random_regular(300, 4, rng);
  RoundLedger ledger;
  const auto det = detect_dccs(g, 2, ledger, "dcc");
  EXPECT_EQ(ledger.total(), 3);  // r + 1
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(det.has_dcc[v], ball_contains_dcc(g, v, 2)) << "vertex " << v;
    EXPECT_EQ(det.has_dcc[v], det.selected[v] != -1);
  }
  std::set<std::vector<int>> unique(det.dccs.begin(), det.dccs.end());
  EXPECT_EQ(unique.size(), det.dccs.size());
  for (const auto& d : det.dccs) {
    const auto sub = induced_subgraph(g, d);
    EXPECT_TRUE(is_dcc(sub.graph));
    EXPECT_LE(graph_radius(sub.graph), det.max_dcc_radius);
  }
}

TEST(Dcc, SelectionIsDeterministic) {
  Rng rng(78);
  const Graph g = random_regular(200, 4, rng);
  RoundLedger l1, l2;
  const auto a = detect_dccs(g, 2, l1, "dcc");
  const auto b = detect_dccs(g, 2, l2, "dcc");
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.dccs, b.dccs);
}

TEST(Dcc, VirtualGraphEdges) {
  // Two DCC vertex sets sharing a vertex => edge; far apart => none.
  const Graph g = path_graph(10);  // host only provides adjacency
  const std::vector<std::vector<int>> dccs{{0, 1, 2}, {2, 3}, {7, 8}};
  const Graph vg = build_dcc_virtual_graph(g, dccs);
  EXPECT_EQ(vg.num_vertices(), 3);
  EXPECT_TRUE(vg.has_edge(0, 1));   // share vertex 2
  EXPECT_FALSE(vg.has_edge(0, 2));  // distance > 1
  EXPECT_FALSE(vg.has_edge(1, 2));  // 3-7 not adjacent
  // Adjacent-but-disjoint sets are connected too.
  const std::vector<std::vector<int>> dccs2{{0, 1}, {2, 3}};
  const Graph vg2 = build_dcc_virtual_graph(g, dccs2);
  EXPECT_TRUE(vg2.has_edge(0, 1));  // edge 1-2 of the path joins them
}

TEST(Dcc, TorusBallsSeeFourCycles) {
  const Graph g = grid_graph(8, 8, true);
  RoundLedger ledger;
  const auto det = detect_dccs(g, 2, ledger, "dcc");
  // Every torus vertex lies on a 4-cycle: all balls contain DCCs.
  for (int v = 0; v < g.num_vertices(); ++v) EXPECT_TRUE(det.has_dcc[v]);
}

}  // namespace
}  // namespace deltacol
