// Network decomposition (random-shift substitution for [PS92]/[AGLP89]).
#include <gtest/gtest.h>

#include <cmath>

#include "decomp/network_decomposition.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace deltacol {
namespace {

class DecompTest : public ::testing::TestWithParam<int> {};

TEST_P(DecompTest, ValidOnRandomGraphs) {
  Rng gen(static_cast<std::uint64_t>(GetParam()));
  const Graph g = random_graph_max_degree(500, 5, 1.7, gen);
  RoundLedger ledger;
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto nd = random_shift_decomposition(g, 0.25, rng, ledger, "nd");
  EXPECT_TRUE(is_valid_decomposition(g, nd));
  EXPECT_GT(nd.num_clusters(), 0);
  EXPECT_GT(nd.num_colors, 0);
  EXPECT_GT(ledger.total(), 0);
  // Weak diameter O(log n / beta): generous constant.
  EXPECT_LE(nd.max_diameter,
            static_cast<int>(16.0 * std::log(500.0) / 0.25));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompTest, ::testing::Range(1, 6));

TEST(Decomp, ClustersArePartition) {
  Rng gen(3);
  const Graph g = grid_graph(15, 15, true);
  RoundLedger ledger;
  Rng rng(4);
  const auto nd = random_shift_decomposition(g, 0.3, rng, ledger, "nd");
  const auto sets = nd.cluster_vertex_sets();
  std::size_t total = 0;
  for (const auto& s : sets) total += s.size();
  EXPECT_EQ(total, static_cast<std::size_t>(g.num_vertices()));
}

TEST(Decomp, LargerBetaSmallerClusters) {
  Rng gen(5);
  const Graph g = random_graph_max_degree(800, 4, 1.5, gen);
  RoundLedger l1, l2;
  Rng r1(6), r2(6);
  const auto fine = random_shift_decomposition(g, 0.8, r1, l1, "nd");
  const auto coarse = random_shift_decomposition(g, 0.1, r2, l2, "nd");
  EXPECT_GT(fine.num_clusters(), coarse.num_clusters());
}

TEST(Decomp, ClusterGraph) {
  // Path split into two clusters must yield one cluster edge.
  const Graph g = path_graph(4);
  const std::vector<int> cluster{0, 0, 1, 1};
  const Graph cg = build_cluster_graph(g, cluster, 2);
  EXPECT_EQ(cg.num_vertices(), 2);
  EXPECT_EQ(cg.num_edges(), 1);
}

TEST(Decomp, ValidatorRejectsBadColoring) {
  const Graph g = path_graph(4);
  NetworkDecomposition nd;
  nd.cluster = {0, 0, 1, 1};
  nd.cluster_color = {0, 0};  // adjacent clusters, same color
  nd.num_colors = 1;
  EXPECT_FALSE(is_valid_decomposition(g, nd));
  nd.cluster_color = {0, 1};
  nd.num_colors = 2;
  EXPECT_TRUE(is_valid_decomposition(g, nd));
}

}  // namespace
}  // namespace deltacol
