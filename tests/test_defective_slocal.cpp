// Defective coloring substrate and the SLOCAL variant (Remark 17).
#include <gtest/gtest.h>

#include <cmath>

#include "coloring/defective.h"
#include "coloring/linial.h"
#include "core/slocal.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace deltacol {
namespace {

class DefectiveTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DefectiveTest, ReachesFloorDeltaOverK) {
  const auto [d, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(d * 100 + k));
  const Graph g = random_regular(300, d, rng);
  RoundLedger ledger;
  const auto sched = delta_plus_one_schedule(g, ledger);
  const Coloring c =
      defective_coloring(g, k, sched.coloring, sched.num_colors, ledger, "t");
  EXPECT_LE(coloring_defect(g, c), d / k);
  for (Color x : c) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, k);
  }
  EXPECT_GT(ledger.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DefectiveTest,
    ::testing::Combine(::testing::Values(4, 6, 9),
                       ::testing::Values(1, 2, 3)));

TEST(Defective, KEqualDeltaPlusOneIsProper) {
  Rng rng(9);
  const Graph g = random_regular(200, 4, rng);
  RoundLedger ledger;
  const auto sched = delta_plus_one_schedule(g, ledger);
  const Coloring c = defective_coloring(g, 5, sched.coloring,
                                        sched.num_colors, ledger, "t");
  EXPECT_EQ(coloring_defect(g, c), 0);  // floor(4/5) = 0: proper
  EXPECT_TRUE(is_proper_with_palette(g, c, 5));
}

TEST(Defective, DefectMeasure) {
  const Graph g = path_graph(3);
  EXPECT_EQ(coloring_defect(g, {0, 0, 0}), 2);
  EXPECT_EQ(coloring_defect(g, {0, 0, 1}), 1);
  EXPECT_EQ(coloring_defect(g, {0, 1, 0}), 0);
  EXPECT_EQ(coloring_defect(g, {0, kUncolored, 0}), 0);
}

class SlocalTest : public ::testing::TestWithParam<int> {};

TEST_P(SlocalTest, ColorsAndStaysLocal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = random_regular(500, 4, rng);
  const auto res = slocal_delta_coloring(g);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
  // Remark 17: locality O(log_{Delta-1} n) — generous constant of 3.
  const double bound =
      3.0 * std::log(500.0) / std::log(3.0) + 4.0;
  EXPECT_LE(res.max_locality, static_cast<int>(bound));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlocalTest, ::testing::Range(1, 7));

TEST(Slocal, WorksOnStructuredGraphs) {
  for (const Graph& g : {petersen_graph(), grid_graph(8, 8, true),
                         hypercube_graph(4), clique_ring(4, 4)}) {
    const auto res = slocal_delta_coloring(g);
    EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, g.max_degree()));
  }
}

TEST(Slocal, GallaiTrees) {
  Rng rng(3);
  const Graph g = random_gallai_tree(200, 4, rng);
  const auto res = slocal_delta_coloring(g);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, g.max_degree()));
}

TEST(Slocal, RejectsLowDegree) {
  EXPECT_THROW(slocal_delta_coloring(cycle_graph(6)), ContractViolation);
}

}  // namespace
}  // namespace deltacol
