// Theorem 8 machinery: constructive coloring of degree-choosable graphs.
#include <gtest/gtest.h>

#include "coloring/degree_choosable.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace deltacol {
namespace {

ListAssignment tight_lists(const Graph& g, int palette) {
  ListAssignment lists(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (Color x = 0; x < std::min(palette, g.degree(v)); ++x) {
      lists[static_cast<std::size_t>(v)].push_back(x);
    }
  }
  return lists;
}

TEST(DegreeChoosable, EvenCycleTightIdenticalLists) {
  const Graph g = cycle_graph(8);
  const ListAssignment lists(8, {0, 1});
  const auto c = degree_choosable_coloring(g, lists);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(is_proper_complete(g, *c));
  EXPECT_TRUE(respects_lists(*c, lists));
}

TEST(DegreeChoosable, OddCycleTightIdenticalListsInfeasible) {
  const Graph g = cycle_graph(7);
  const ListAssignment lists(7, {0, 1});
  EXPECT_FALSE(degree_choosable_coloring(g, lists).has_value());
}

TEST(DegreeChoosable, ThetaGraphDegLists) {
  const Graph g = theta_graph(2, 2, 3);
  const auto lists = tight_lists(g, 3);
  const auto c = degree_choosable_coloring(g, lists);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(respects_lists(*c, lists));
  EXPECT_TRUE(is_proper_complete(g, *c));
}

TEST(DegreeChoosable, CliqueRingDegLists) {
  const Graph g = clique_ring(4, 4);
  const auto lists = tight_lists(g, g.max_degree());
  const auto c = degree_choosable_coloring(g, lists);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(is_proper_complete(g, *c));
  EXPECT_TRUE(respects_lists(*c, lists));
}

TEST(DegreeChoosable, SlackVertexPath) {
  // A path with deg-sized lists at internal vertices and slack at one end.
  const Graph g = path_graph(5);
  ListAssignment lists{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}};
  const auto c = degree_choosable_coloring(g, lists);
  ASSERT_TRUE(c.has_value());  // endpoints have slack: |L| = 2 > deg = 1
  EXPECT_TRUE(is_proper_complete(g, *c));
}

TEST(DegreeChoosable, HypercubeTightLists) {
  const Graph g = hypercube_graph(3);
  const auto lists = tight_lists(g, 3);
  const auto c = degree_choosable_coloring(g, lists);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(respects_lists(*c, lists));
  EXPECT_TRUE(is_proper_complete(g, *c));
}

TEST(DegreeChoosable, PetersenWithMixedTightLists) {
  const Graph g = petersen_graph();
  // Lists of size deg = 3, but with shifted palettes per vertex.
  ListAssignment lists(10);
  for (int v = 0; v < 10; ++v) {
    for (int x = 0; x < 3; ++x) lists[v].push_back((v % 2) + x);
  }
  const auto c = degree_choosable_coloring(g, lists);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(respects_lists(*c, lists));
  EXPECT_TRUE(is_proper_complete(g, *c));
}

TEST(DegreeChoosable, K4TightIdenticalListsInfeasible) {
  // Cliques are Gallai trees: deg-sized identical lists are infeasible.
  const Graph g = clique_graph(4);
  const ListAssignment lists(4, {0, 1, 2});
  EXPECT_FALSE(degree_choosable_coloring(g, lists).has_value());
}

TEST(DegreeChoosable, DisjointTightListsOnOddCycleFeasible) {
  // Odd cycle with NON-identical lists is degree-colorable.
  const Graph g = cycle_graph(5);
  ListAssignment lists{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {1, 2}};
  const auto c = degree_choosable_coloring(g, lists);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(respects_lists(*c, lists));
  EXPECT_TRUE(is_proper_complete(g, *c));
}

}  // namespace
}  // namespace deltacol
