// Empirical validation of the structural lemmas of Section 2 — the paper's
// core analytic claims, checked on concrete graphs:
//   Lemma 10: in DCC-free balls, BFS trees are unique (each node has exactly
//             one edge to the previous level).
//   Lemma 13: DCC-free neighborhoods decompose into disjoint cliques.
//   Lemma 15: DCC-free Delta-regular r-balls have >= (Delta-1)^{r/2}
//             vertices at distance r.
//   Theorem 5 / Lemma 16: every ball of radius 2 log_{Delta-1} n contains a
//             DCC or a deficient vertex.
#include <gtest/gtest.h>

#include <cmath>

#include "dcc/dcc.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/structure.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace deltacol {
namespace {

// Vertices whose r-ball is DCC-free and fully Delta-regular.
std::vector<int> regular_dcc_free_centers(const Graph& g, int r, int delta) {
  std::vector<int> out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (ball_contains_dcc(g, v, r)) continue;
    bool regular = true;
    for (int u : ball(g, v, r)) {
      if (g.degree(u) != delta) {
        regular = false;
        break;
      }
    }
    if (regular) out.push_back(v);
  }
  return out;
}

TEST(Lemma10, UniqueBfsTreesInDccFreeBalls) {
  Rng rng(11);
  const Graph g = random_regular(3000, 4, rng);
  const int r = 3;
  int checked = 0;
  for (int v : regular_dcc_free_centers(g, r, 4)) {
    const auto layers = bfs_layers(g, v, r);
    for (int t = 1; t <= r; ++t) {
      for (int u : layers[static_cast<std::size_t>(t)]) {
        int up_edges = 0;
        const auto dist = bfs_distances(g, v, r);
        for (int w : g.neighbors(u)) {
          if (dist[w] == t - 1) ++up_edges;
        }
        EXPECT_EQ(up_edges, 1) << "vertex " << u << " at level " << t;
      }
    }
    if (++checked >= 20) break;
  }
  EXPECT_GT(checked, 0) << "no DCC-free centers found; enlarge the graph";
}

TEST(Lemma13, NeighborhoodsDecomposeIntoCliques) {
  // In a graph with no DCC of radius 1, each N(v) splits into cliques.
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_gallai_tree(150, 5, rng);
    for (int v = 0; v < g.num_vertices(); v += 5) {
      if (ball_contains_dcc(g, v, 1)) continue;
      const auto nb = g.neighbors(v);
      const auto sub =
          induced_subgraph(g, std::vector<int>(nb.begin(), nb.end()));
      for (const auto& comp : connected_components(sub.graph).vertex_sets()) {
        std::vector<int> comp_local(comp.begin(), comp.end());
        EXPECT_TRUE(induces_clique(sub.graph, comp_local))
            << "vertex " << v;
      }
    }
  }
}

TEST(Lemma15, ExpansionInDccFreeRegularBalls) {
  Rng rng(13);
  const Graph g = random_regular(8000, 4, rng);
  const int delta = 4;
  for (int r : {2, 4}) {
    int checked = 0;
    for (int v : regular_dcc_free_centers(g, r, delta)) {
      const auto layers = bfs_layers(g, v, r);
      const double bound = std::pow(delta - 1, r / 2.0);
      EXPECT_GE(static_cast<double>(layers[static_cast<std::size_t>(r)].size()),
                bound)
          << "center " << v << " r=" << r;
      if (++checked >= 25) break;
    }
    EXPECT_GT(checked, 0) << "r=" << r;
  }
}

TEST(Lemma16, BigBallsContainDccOrDeficientVertex) {
  // Theorem 5's engine: radius 2 log_{Delta-1} n always suffices.
  Rng rng(14);
  for (auto make : {+[](Rng& r) { return random_regular(600, 4, r); },
                    +[](Rng& r) { return random_graph_max_degree(600, 4, 1.5, r); },
                    +[](Rng& r) { return random_gallai_tree(600, 4, r); }}) {
    const Graph g = make(rng);
    const int delta = g.max_degree();
    const int R = static_cast<int>(std::ceil(
                      2.0 * std::log(static_cast<double>(g.num_vertices())) /
                      std::log(static_cast<double>(delta - 1)))) +
                  1;
    for (int v = 0; v < g.num_vertices(); v += 37) {
      bool ok = ball_contains_dcc(g, v, R);
      if (!ok) {
        for (int u : ball(g, v, R)) {
          if (g.degree(u) < delta) {
            ok = true;
            break;
          }
        }
      }
      EXPECT_TRUE(ok) << "vertex " << v;
    }
  }
}

TEST(Lemma12Spirit, MarkingPreservesExpansionOrder) {
  // After removing sparse marks (backoff 6), DCC-free regular balls still
  // expand: level r of the BFS tree restricted to unmarked vertices keeps
  // at least (Delta-2)^{r/2} vertices.
  Rng rng(15);
  const Graph g = random_regular(8000, 5, rng);
  const int delta = 5, r = 2;  // 5-regular balls of radius 4 almost always
                               // contain short even cycles; radius 2 keeps a
                               // healthy population of DCC-free centers
  // Simulate the marking process globally with paper constants.
  const double p = std::pow(static_cast<double>(delta), -6.0);
  std::vector<int> selected;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (rng.next_bool(p)) selected.push_back(v);
  }
  std::vector<bool> marked(static_cast<std::size_t>(g.num_vertices()), false);
  for (int v : selected) {
    // Backoff 6.
    bool lonely = true;
    const auto d = bfs_distances(g, v, 6);
    for (int u : selected) {
      if (u != v && d[u] != kUnreachable) lonely = false;
    }
    if (!lonely) continue;
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size() && lonely; ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (!g.has_edge(nb[i], nb[j])) {
          marked[static_cast<std::size_t>(nb[i])] = true;
          marked[static_cast<std::size_t>(nb[j])] = true;
          lonely = false;
          break;
        }
      }
    }
  }
  int checked = 0;
  for (int v : regular_dcc_free_centers(g, r, delta)) {
    if (marked[static_cast<std::size_t>(v)]) continue;
    const auto reach = ball_filtered(
        g, v, r, [&](int u) { return !marked[static_cast<std::size_t>(u)]; });
    const auto dist = bfs_distances(g, v, r);
    int at_r = 0;
    for (int u : reach) {
      if (dist[u] == r) ++at_r;  // conservative: distance in full graph
    }
    EXPECT_GE(static_cast<double>(at_r), std::pow(delta - 2, r / 2.0))
        << "center " << v;
    if (++checked >= 15) break;
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace deltacol
