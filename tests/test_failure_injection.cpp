// Failure injection: force the algorithms down their fallback paths and
// check both that the fallbacks complete correctly and that strict mode
// surfaces violations instead of papering over them.
#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(FailureInjection, TooSmallBackoffIsRejected) {
  Rng rng(1);
  const Graph g = random_regular(100, 4, rng);
  DeltaColoringOptions opt;
  opt.backoff = 2;  // marks of distinct T-nodes could become adjacent
  opt.max_retries = 0;
  EXPECT_THROW(delta_color(g, Algorithm::kRandomizedLarge, opt),
               ContractViolation);
}

TEST(FailureInjection, ZeroSelectionStillCompletes) {
  // No T-nodes at all: Section 4.3 has to swallow everything that is not
  // boundary-happy. Exercises the anchors-empty analysis.
  Rng rng(2);
  const Graph g = random_regular(300, 4, rng);
  DeltaColoringOptions opt;
  opt.selection_prob = 0.0;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
}

TEST(FailureInjection, SaturatingSelectionStillCompletes) {
  // p = 1: everyone selects, (almost) everyone backs off.
  Rng rng(3);
  const Graph g = random_regular(300, 4, rng);
  DeltaColoringOptions opt;
  opt.selection_prob = 1.0;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
}

TEST(FailureInjection, TinyDccRadius) {
  // r = 1 sees almost no DCCs: the shattering phases must carry the run.
  Rng rng(4);
  const Graph g = random_regular(400, 4, rng);
  DeltaColoringOptions opt;
  opt.dcc_radius = 1;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
}

TEST(FailureInjection, StrictModeOnBenignInstancePasses) {
  // On a torus with r = 2 everything is removed via DCC layers; the strict
  // paper path needs no fallback.
  const Graph g = grid_graph(10, 10, true);
  DeltaColoringOptions opt;
  opt.strict = true;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
  EXPECT_EQ(res.stats.repairs, 0);
  EXPECT_EQ(res.stats.anchors_empty_fallbacks, 0);
}

TEST(FailureInjection, RetriesRecoverFromBadSeeds) {
  // Even with retries disabled, runs succeed on these instances; with
  // retries enabled the result must be identical in validity.
  Rng rng(5);
  const Graph g = random_regular(200, 4, rng);
  DeltaColoringOptions opt;
  opt.max_retries = 3;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    opt.seed = seed;
    const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
    EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
  }
}

TEST(FailureInjection, RepairPathCountsItsWork) {
  // Force heavy leftover by zero selection on a tree (no DCC, H = G); the
  // leaves make everything boundary-happy eventually, but deep interior
  // nodes may still reach Section 4.3 / repairs. The run must account any
  // repair rounds in the ledger.
  Rng rng(6);
  const Graph g = random_tree(1500, 4, rng);
  DeltaColoringOptions opt;
  opt.selection_prob = 0.0;
  const auto res = delta_color(g, Algorithm::kRandomizedSmall, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, g.max_degree()));
  if (res.stats.repairs > 0) {
    EXPECT_GT(res.ledger.phase_total("repair"), 0);
  }
}

TEST(FailureInjection, GallaiTreeWithPaperConstants) {
  // Adversarial: no DCCs anywhere + asymptotic constants that make T-nodes
  // essentially impossible at this size. Correctness must not depend on the
  // w.h.p. events firing.
  Rng rng(7);
  const Graph g = random_gallai_tree(250, 4, rng);
  DeltaColoringOptions opt;
  opt.use_paper_constants = true;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, g.max_degree()));
}

}  // namespace
}  // namespace deltacol
