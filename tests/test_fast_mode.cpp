// ExecutionMode::kFast cross-validation harness (runtime/execution_mode.h).
//
// Fast mode drops the replay/merge ordering the deterministic runtime pays
// for — atomic frontier claiming, merge-on-arrival inboxes, first-come work
// claiming, plain range-chunked sweeps — so its contract shrinks from
// "bit-identical for every shape" to "a valid Delta-coloring". This suite is
// that contract: every algorithm over the generator zoo, across the
// (shards, threads) grid and both charging models, validated against the
// serial deterministic oracle on the properties fast mode still promises:
//
//   * the coloring is a proper, complete Delta-coloring (validate throws),
//   * it uses at most Delta colors (same palette bound as deterministic),
//   * the round ledger stays within the deterministic reference total,
//   * CONGEST(B) charging only inflates rounds relative to LOCAL.
//
// The perturbation layer then makes the relaxed orderings actually vary:
// perturb_salt (api.h) randomizes chunk counts and injects thread stalls,
// and a PerturbingTransport runs shards in reverse order with staggered
// delays — hostile interleavings under which validity (and, for the
// deterministic mode, bit-identity) must survive.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "runtime/execution_mode.h"
#include "runtime/mailbox.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol {
namespace {

const Algorithm kAllAlgorithms[] = {
    Algorithm::kDeterministic,       Algorithm::kRandomizedLarge,
    Algorithm::kRandomizedSmall,     Algorithm::kBaselineND,
    Algorithm::kBaselineGreedyBrooks,
};

struct Workload {
  const char* name;
  Graph g;
};

std::vector<Workload> generator_zoo() {
  Rng rng(71);
  std::vector<Workload> zoo;
  zoo.push_back({"regular-500-6", random_regular(500, 6, rng)});
  zoo.push_back({"gallai-400-4", random_gallai_tree(400, 4, rng)});
  zoo.push_back({"sparse-400-6", random_graph_max_degree(400, 6, 1.8, rng)});
  zoo.push_back(
      {"3-components",
       disjoint_union(disjoint_union(random_regular(200, 5, rng),
                                     random_regular(90, 4, rng)),
                      random_graph_max_degree(150, 6, 1.8, rng))});
  zoo.push_back({"triangle-cactus", triangle_cactus(1500)});
  return zoo;
}

// The validity contract: proper + complete (validate throws otherwise), at
// most Delta colors, and a ledger no worse than the deterministic reference.
void expect_valid_fast_result(const Graph& g, const DeltaColoringResult& fast,
                              const DeltaColoringResult& det,
                              const std::string& label) {
  ASSERT_NO_THROW(validate_delta_coloring(g, fast.coloring, fast.delta))
      << label;
  EXPECT_EQ(fast.delta, det.delta) << label;
  EXPECT_LE(num_colors_used(fast.coloring), fast.delta) << label;
  EXPECT_GT(fast.ledger.total(), 0) << label;
  EXPECT_LE(fast.ledger.total(), det.ledger.total()) << label;
}

TEST(ExecutionModeApi, ParseAndName) {
  ExecutionMode m = ExecutionMode::kFast;
  EXPECT_TRUE(parse_execution_mode("deterministic", &m));
  EXPECT_EQ(m, ExecutionMode::kDeterministic);
  EXPECT_TRUE(parse_execution_mode("det", &m));
  EXPECT_EQ(m, ExecutionMode::kDeterministic);
  EXPECT_TRUE(parse_execution_mode("fast", &m));
  EXPECT_EQ(m, ExecutionMode::kFast);
  EXPECT_FALSE(parse_execution_mode("chaotic", &m));
  EXPECT_EQ(m, ExecutionMode::kFast);  // unchanged on failure
  EXPECT_STREQ(execution_mode_name(ExecutionMode::kDeterministic),
               "deterministic");
  EXPECT_STREQ(execution_mode_name(ExecutionMode::kFast), "fast");
}

// The headline harness: every algorithm × the zoo × the (S, T) grid under
// LOCAL charging, plus the (S, T) diagonal under CONGEST(64). The serial
// deterministic run is the oracle for the palette and round bounds.
TEST(FastMode, ZooCrossValidationGrid) {
  const auto zoo = generator_zoo();
  for (const auto& w : zoo) {
    for (Algorithm alg : kAllAlgorithms) {
      if (alg == Algorithm::kRandomizedLarge && w.g.max_degree() < 4) {
        continue;  // Theorem 3 requires Delta >= 4
      }
      DeltaColoringOptions det_opt;
      det_opt.seed = 2024;
      det_opt.num_threads = 1;
      det_opt.num_shards = 1;
      const DeltaColoringResult det_local = delta_color(w.g, alg, det_opt);

      DeltaColoringOptions det64_opt = det_opt;
      det64_opt.congest_bits = 64;
      const DeltaColoringResult det_congest = delta_color(w.g, alg, det64_opt);

      for (int num_shards : {1, 2, 8}) {
        for (int threads : {1, 2, 8}) {
          DeltaColoringOptions opt = det_opt;
          opt.mode = ExecutionMode::kFast;
          opt.num_shards = num_shards;
          opt.num_threads = threads;
          const std::string label = std::string(w.name) + " / " +
                                    algorithm_name(alg) + " / S=" +
                                    std::to_string(num_shards) + " T=" +
                                    std::to_string(threads);
          const DeltaColoringResult fast = delta_color(w.g, alg, opt);
          expect_valid_fast_result(w.g, fast, det_local, label);

          // CONGEST consistency on the grid diagonal: charging under a
          // bandwidth cap is accounting-only (still valid) and can only
          // inflate the round total relative to LOCAL.
          if (num_shards == threads) {
            DeltaColoringOptions copt = opt;
            copt.congest_bits = 64;
            const DeltaColoringResult fast64 = delta_color(w.g, alg, copt);
            expect_valid_fast_result(w.g, fast64, det_congest,
                                     label + " B=64");
            EXPECT_GE(fast64.ledger.total(), fast.ledger.total())
                << label << " B=64 vs LOCAL";
          }
        }
      }
    }
  }
}

// --- perturbation layer ----------------------------------------------------

// perturb_salt randomizes chunk counts and injects stalls (thread_pool.cpp).
// Fast mode must stay valid under every salt; deterministic mode must stay
// BIT-IDENTICAL — the perturbation hooks are pure functions of (salt, shape)
// that move wall-clock only, never observables.
TEST(FastMode, PerturbationSaltSweep) {
  Rng grng(83);
  const Graph g = random_regular(600, 5, grng);
  for (Algorithm alg :
       {Algorithm::kDeterministic, Algorithm::kRandomizedSmall}) {
    DeltaColoringOptions base;
    base.seed = 7;
    base.num_threads = 8;
    base.num_shards = 4;
    const DeltaColoringResult det_ref = delta_color(g, alg, base);
    validate_delta_coloring(g, det_ref.coloring, det_ref.delta);

    for (std::uint64_t salt : {1ull, 2ull, 0x9e3779b97f4a7c15ull}) {
      DeltaColoringOptions det_opt = base;
      det_opt.perturb_salt = salt;
      const DeltaColoringResult det = delta_color(g, alg, det_opt);
      EXPECT_EQ(det.coloring, det_ref.coloring)
          << algorithm_name(alg) << " det salt=" << salt;
      EXPECT_EQ(det.ledger.total(), det_ref.ledger.total())
          << algorithm_name(alg) << " det salt=" << salt;

      DeltaColoringOptions fast_opt = det_opt;
      fast_opt.mode = ExecutionMode::kFast;
      const DeltaColoringResult fast = delta_color(g, alg, fast_opt);
      expect_valid_fast_result(
          g, fast, det_ref,
          std::string(algorithm_name(alg)) + " fast salt=" +
              std::to_string(salt));
    }
  }
}

// A scheduling-hostile Transport: shards run serially in REVERSE order, each
// behind a staggered stall, so envelopes always arrive in the order the
// deterministic merge exists to correct. Fast mode consumes them unsorted —
// the receive callbacks must genuinely be order-free folds.
class PerturbingTransport final : public Transport {
 public:
  explicit PerturbingTransport(int num_shards) : num_shards_(num_shards) {}
  int num_shards() const override { return num_shards_; }
  void run_shards(const std::function<void(int)>& body) override {
    for (int s = num_shards_ - 1; s >= 0; --s) {
      std::this_thread::sleep_for(std::chrono::microseconds(20 * (s + 1)));
      body(s);
    }
  }
  void exchange() override { ++exchanges_; }
  int exchanges() const { return exchanges_; }

 private:
  int num_shards_;
  int exchanges_ = 0;
};

TEST(FastMode, PerturbingTransportLubyIsStillAnMis) {
  Rng grng(31);
  const Graph g = random_regular(400, 4, grng);

  // Serial deterministic oracle (no pool, no shards).
  Rng ref_rng(99);
  RoundLedger ref_ledger;
  const auto ref_mis =
      luby_mis_message_passing(g, ref_rng, ref_ledger, "mis");
  ASSERT_TRUE(is_mis(g, ref_mis));

  for (int threads : {1, 8}) {
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
    auto transport = std::make_unique<PerturbingTransport>(5);
    PerturbingTransport* raw = transport.get();
    ShardRuntime shards(g, 5, pool_ptr, std::move(transport));
    Rng rng(99);
    RoundLedger ledger;
    const auto mis =
        luby_mis_message_passing(g, rng, ledger, "mis", pool_ptr, &shards,
                                 ExecutionMode::kFast);
    EXPECT_TRUE(is_mis(g, mis)) << threads << " threads";
    // Priorities come from a serial shared stream and both receive folds are
    // order-free, so even fast mode keeps the iteration structure — and with
    // it the round charges — of the serial reference.
    EXPECT_EQ(ledger.total(), ref_ledger.total()) << threads << " threads";
    EXPECT_EQ(raw->exchanges(), static_cast<int>(shards.rounds_recorded()))
        << threads << " threads";
    EXPECT_GT(shards.total_messages(), 0) << threads << " threads";
  }
}

// Full-pipeline chaos: reversed-delivery transports only exist below the
// engine, but salt-driven stalls + jittered chunks + the fast engines'
// merge-on-arrival rounds compose across the whole delta_color stack. Run
// the hardest multi-component workload a few salted times and check the
// validity contract each time.
TEST(FastMode, SaltedFastRunsOnMultiComponentWorkload) {
  const Graph g = triangle_cactus(3000);
  DeltaColoringOptions det_opt;
  det_opt.seed = 9;
  det_opt.small_variant_radius_cap = 2;
  det_opt.num_threads = 1;
  det_opt.num_shards = 1;
  const DeltaColoringResult det =
      delta_color(g, Algorithm::kRandomizedSmall, det_opt);
  ASSERT_GE(det.stats.leftover_components, 1)
      << "workload no longer exercises the Phase-(6) fan-out";

  for (std::uint64_t salt : {0ull, 5ull, 11ull}) {
    DeltaColoringOptions opt = det_opt;
    opt.mode = ExecutionMode::kFast;
    opt.num_threads = 8;
    opt.num_shards = 8;
    opt.perturb_salt = salt;
    const DeltaColoringResult fast =
        delta_color(g, Algorithm::kRandomizedSmall, opt);
    expect_valid_fast_result(g, fast, det,
                             "triangle-cactus salt=" + std::to_string(salt));
  }
}

}  // namespace
}  // namespace deltacol
