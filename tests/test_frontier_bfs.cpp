// The frontier BFS engine's contract (graph/frontier_bfs.h):
//
//  * golden equivalence — distances, visit levels, ball contents and
//    nearest-source labels match the seed's queue-based reference
//    implementations (reproduced below) on the generator zoo;
//  * epoch reuse — one BfsScratch serves thousands of queries, across
//    graphs of different sizes, without a stale-visitation bug;
//  * thread-count invariance — the pooled chunk-deterministic expansion
//    produces bit-identical visit orders, levels and labels for
//    num_threads ∈ {1, 2, 8}, and the routed helpers (build_layers,
//    graph_radius, power_graph, random_shift_decomposition) inherit that.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "core/layering.h"
#include "decomp/network_decomposition.h"
#include "graph/frontier_bfs.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/traversal.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol {
namespace {

// --- queue-based reference implementations (the seed's semantics) ---------

std::vector<int> ref_bfs_distances(const Graph& g, int source, int max_dist) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    if (max_dist >= 0 && dist[static_cast<std::size_t>(u)] >= max_dist) continue;
    for (int w : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] == -1) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

struct RefMultiSource {
  std::vector<int> dist;
  std::vector<int> source;
};

RefMultiSource ref_multi_source(const Graph& g, std::vector<int> seeds,
                                int max_dist) {
  RefMultiSource out;
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  out.dist.assign(n, -1);
  out.source.assign(n, -1);
  std::sort(seeds.begin(), seeds.end());
  std::queue<int> q;
  for (int s : seeds) {
    if (out.dist[static_cast<std::size_t>(s)] == 0) continue;
    out.dist[static_cast<std::size_t>(s)] = 0;
    out.source[static_cast<std::size_t>(s)] = s;
    q.push(s);
  }
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    if (max_dist >= 0 && out.dist[static_cast<std::size_t>(u)] >= max_dist) continue;
    for (int w : g.neighbors(u)) {
      if (out.dist[static_cast<std::size_t>(w)] == -1) {
        out.dist[static_cast<std::size_t>(w)] =
            out.dist[static_cast<std::size_t>(u)] + 1;
        out.source[static_cast<std::size_t>(w)] =
            out.source[static_cast<std::size_t>(u)];
        q.push(w);
      } else if (out.dist[static_cast<std::size_t>(w)] ==
                     out.dist[static_cast<std::size_t>(u)] + 1 &&
                 out.source[static_cast<std::size_t>(u)] <
                     out.source[static_cast<std::size_t>(w)]) {
        out.source[static_cast<std::size_t>(w)] =
            out.source[static_cast<std::size_t>(u)];
      }
    }
  }
  return out;
}

// Engine distances as a dense vector, for comparison against the reference.
void expect_matches_reference(const Graph& g, const BfsScratch& scratch,
                              const std::vector<int>& ref_dist,
                              const std::string& label) {
  std::size_t reached = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (ref_dist[static_cast<std::size_t>(v)] == -1) {
      EXPECT_FALSE(scratch.visited(v)) << label << " vertex " << v;
    } else {
      ASSERT_TRUE(scratch.visited(v)) << label << " vertex " << v;
      EXPECT_EQ(scratch.dist(v), ref_dist[static_cast<std::size_t>(v)])
          << label << " vertex " << v;
      ++reached;
    }
  }
  EXPECT_EQ(scratch.order().size(), reached) << label;
  // Levels partition the visit order by distance.
  std::size_t total = 0;
  for (int l = 0; l < scratch.num_levels(); ++l) {
    const auto lv = scratch.level(l);
    EXPECT_FALSE(lv.empty()) << label << " level " << l;
    total += lv.size();
    for (int v : lv) {
      EXPECT_EQ(ref_dist[static_cast<std::size_t>(v)], l)
          << label << " level " << l << " vertex " << v;
    }
  }
  EXPECT_EQ(total, reached) << label;
}

struct ZooEntry {
  const char* name;
  Graph graph;
};

std::vector<ZooEntry> generator_zoo() {
  Rng rng(2026);
  std::vector<ZooEntry> zoo;
  zoo.push_back({"path-60", path_graph(60)});
  zoo.push_back({"cycle-33", cycle_graph(33)});
  zoo.push_back({"grid-9x7", grid_graph(9, 7, false)});
  zoo.push_back({"torus-6x6", grid_graph(6, 6, true)});
  zoo.push_back({"hypercube-6", hypercube_graph(6)});
  zoo.push_back({"clique-9", clique_graph(9)});
  zoo.push_back({"kary-3-4", complete_kary_tree(3, 4)});
  zoo.push_back({"petersen", petersen_graph()});
  zoo.push_back({"regular-300-6", random_regular(300, 6, rng)});
  zoo.push_back({"maxdeg-250-5", random_graph_max_degree(250, 5, 1.4, rng)});
  zoo.push_back({"tree-200-4", random_tree(200, 4, rng)});
  zoo.push_back({"gallai-180-4", random_gallai_tree(180, 4, rng)});
  zoo.push_back({"disconnected",
                 disjoint_union(random_regular(80, 4, rng), path_graph(40))});
  return zoo;
}

TEST(FrontierBfs, GoldenSingleSourceOnZoo) {
  BfsScratch scratch;
  FrontierBfs engine;
  for (const auto& [name, g] : generator_zoo()) {
    for (int max_dist : {-1, 0, 1, 2, 3, 7}) {
      for (int v : {0, g.num_vertices() / 2, g.num_vertices() - 1}) {
        engine.run(g, scratch, v, max_dist);
        expect_matches_reference(
            g, scratch, ref_bfs_distances(g, v, max_dist),
            std::string(name) + "/src=" + std::to_string(v) + "/r=" +
                std::to_string(max_dist));
      }
    }
  }
}

TEST(FrontierBfs, GoldenMultiSourceLabeledOnZoo) {
  BfsScratch scratch;
  Rng rng(7);
  for (const auto& [name, g] : generator_zoo()) {
    const int n = g.num_vertices();
    std::vector<int> seeds;
    for (int v = 0; v < n; ++v) {
      if (rng.next_bool(0.08)) seeds.push_back(v);
    }
    if (seeds.empty()) seeds.push_back(n - 1);
    // Duplicates and unsorted order must not matter.
    seeds.push_back(seeds.front());
    std::reverse(seeds.begin(), seeds.end());
    for (int max_dist : {-1, 2}) {
      const auto ref = ref_multi_source(g, seeds, max_dist);
      FrontierBfs engine;
      engine.run_multi_labeled(g, scratch, seeds, max_dist);
      expect_matches_reference(g, scratch, ref.dist, name);
      for (int v = 0; v < n; ++v) {
        if (ref.dist[static_cast<std::size_t>(v)] != -1) {
          EXPECT_EQ(scratch.source_of(v),
                    ref.source[static_cast<std::size_t>(v)])
              << name << " vertex " << v;
        }
      }
    }
  }
}

TEST(FrontierBfs, ClassicApiStillMatchesReference) {
  // The rewritten traversal.h entry points agree with the references.
  for (const auto& [name, g] : generator_zoo()) {
    const int v = g.num_vertices() / 3;
    EXPECT_EQ(bfs_distances(g, v), ref_bfs_distances(g, v, -1)) << name;
    EXPECT_EQ(bfs_distances(g, v, 2), ref_bfs_distances(g, v, 2)) << name;
    const auto b = ball(g, v, 2);
    EXPECT_TRUE(std::is_sorted(b.begin(), b.end())) << name;
    const auto dist = ref_bfs_distances(g, v, 2);
    std::vector<int> expected;
    for (int u = 0; u < g.num_vertices(); ++u) {
      if (dist[static_cast<std::size_t>(u)] != -1) expected.push_back(u);
    }
    EXPECT_EQ(b, expected) << name;
    const auto layers = bfs_layers(g, v, 3);
    ASSERT_EQ(layers.size(), 4u) << name;
    const auto dist3 = ref_bfs_distances(g, v, 3);
    std::size_t layered = 0;
    for (std::size_t t = 0; t < layers.size(); ++t) {
      layered += layers[t].size();
      EXPECT_TRUE(std::is_sorted(layers[t].begin(), layers[t].end())) << name;
      for (int u : layers[t]) {
        EXPECT_EQ(dist3[static_cast<std::size_t>(u)], static_cast<int>(t))
            << name;
      }
    }
    std::size_t reachable3 = 0;
    for (int d : dist3) {
      if (d != -1) ++reachable3;
    }
    EXPECT_EQ(layered, reachable3) << name;
  }
}

TEST(FrontierBfs, FilteredTemplateMatchesFunctionWrapper) {
  Rng rng(11);
  const Graph g = random_regular(400, 6, rng);
  BfsScratch scratch;
  FrontierBfs engine;
  auto mask = [](int v) { return v % 3 != 0; };
  for (int v : {1, 2, 100, 399}) {
    engine.run_filtered(g, scratch, v, 4, mask);
    const std::vector<int> direct(scratch.order().begin(),
                                  scratch.order().end());
    const auto wrapped = ball_filtered(g, v, 4, mask);
    EXPECT_EQ(direct, wrapped);
    EXPECT_EQ(direct.front(), v);  // source always included, even if masked
    for (std::size_t i = 1; i < direct.size(); ++i) {
      EXPECT_TRUE(mask(direct[i]));
    }
  }
}

TEST(FrontierBfs, EpochReuseAcrossThousandsOfQueries) {
  Rng rng(13);
  const Graph big = random_regular(600, 5, rng);
  const Graph small = random_tree(37, 3, rng);
  const Graph grid = grid_graph(8, 8, false);
  BfsScratch scratch;
  FrontierBfs engine;
  for (int q = 0; q < 4000; ++q) {
    // Alternate graphs of different sizes through the same scratch; verify
    // against the reference on a deterministic subsample.
    const Graph& g = (q % 3 == 0) ? small : (q % 3 == 1) ? grid : big;
    const int v = q % g.num_vertices();
    const int r = q % 5;
    engine.run(g, scratch, v, r);
    if (q % 37 == 0) {
      expect_matches_reference(g, scratch, ref_bfs_distances(g, v, r),
                               "query " + std::to_string(q));
    } else {
      // Cheap invariant on every query: the source is level 0.
      ASSERT_GE(scratch.num_levels(), 1);
      ASSERT_EQ(scratch.level(0).size(), 1u);
      EXPECT_EQ(scratch.level(0)[0], v);
    }
  }
}

TEST(FrontierBfs, ThreadCountInvariance) {
  // Frontiers above the parallel threshold: a 6-regular graph from a single
  // source reaches thousands of frontier vertices per level; a multi-source
  // run starts there. Visit order — not just the distance map — must be
  // bit-identical for every thread count.
  Rng rng(17);
  const Graph g = random_regular(20000, 6, rng);
  std::vector<int> seeds;
  for (int v = 0; v < g.num_vertices(); v += 13) seeds.push_back(v);

  BfsScratch serial_scratch;
  FrontierBfs serial;
  serial.run(g, serial_scratch, 0);
  const std::vector<int> serial_order(serial_scratch.order().begin(),
                                      serial_scratch.order().end());
  serial.run_multi_labeled(g, serial_scratch, seeds, 4);
  const std::vector<int> serial_ms_order(serial_scratch.order().begin(),
                                         serial_scratch.order().end());
  std::vector<int> serial_labels;
  for (int v : serial_ms_order) {
    serial_labels.push_back(serial_scratch.source_of(v));
  }

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    BfsScratch scratch;
    FrontierBfs engine(&pool);
    engine.run(g, scratch, 0);
    const std::vector<int> order(scratch.order().begin(),
                                 scratch.order().end());
    EXPECT_EQ(order, serial_order) << threads << " threads";

    engine.run_multi_labeled(g, scratch, seeds, 4);
    const std::vector<int> ms_order(scratch.order().begin(),
                                    scratch.order().end());
    EXPECT_EQ(ms_order, serial_ms_order) << threads << " threads";
    std::vector<int> labels;
    for (int v : ms_order) labels.push_back(scratch.source_of(v));
    EXPECT_EQ(labels, serial_labels) << threads << " threads";
  }
}

TEST(FrontierBfs, RoutedHelpersAreThreadCountInvariant) {
  Rng rng(19);
  const Graph g = random_regular(3000, 5, rng);
  std::vector<int> base;
  for (int v = 0; v < g.num_vertices(); v += 7) base.push_back(v);
  std::vector<bool> allowed(static_cast<std::size_t>(g.num_vertices()), true);
  for (int v = 0; v < g.num_vertices(); v += 11) {
    allowed[static_cast<std::size_t>(v)] = false;
  }
  std::vector<int> masked_base;
  for (int v : base) {
    if (allowed[static_cast<std::size_t>(v)]) masked_base.push_back(v);
  }

  const Layering serial_layers = build_layers(g, base, -1);
  const Layering serial_restricted =
      build_layers_restricted(g, masked_base, 6, allowed);
  const Graph serial_power = power_graph(g, 2);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    const Layering l = build_layers(g, base, -1, &pool);
    EXPECT_EQ(l.layer, serial_layers.layer) << threads;
    EXPECT_EQ(l.num_layers, serial_layers.num_layers) << threads;
    EXPECT_EQ(l.members, serial_layers.members) << threads;
    const Layering lr =
        build_layers_restricted(g, masked_base, 6, allowed, &pool);
    EXPECT_EQ(lr.layer, serial_restricted.layer) << threads;
    EXPECT_EQ(lr.members, serial_restricted.members) << threads;
    EXPECT_EQ(power_graph(g, 2, &pool).edge_list(), serial_power.edge_list())
        << threads;
  }
}

TEST(FrontierBfs, GraphRadiusPooledMatchesSerial) {
  Rng rng(23);
  for (const auto& [name, g] : {ZooEntry{"cycle-40", cycle_graph(40)},
                                ZooEntry{"grid-10x4", grid_graph(10, 4, false)},
                                ZooEntry{"regular", random_regular(500, 4, rng)}}) {
    const int serial = graph_radius(g);
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      EXPECT_EQ(graph_radius(g, &pool), serial) << name;
    }
  }
  EXPECT_EQ(graph_radius(path_graph(7)), 3);
  EXPECT_EQ(graph_radius(cycle_graph(8)), 4);
  EXPECT_EQ(graph_radius(clique_graph(5)), 1);
}

TEST(FrontierBfs, DecompositionPooledMatchesSerial) {
  Rng rng(29);
  const Graph g = random_regular(800, 5, rng);
  RoundLedger l1, l2;
  Rng r1(99), r2(99);
  const auto serial = random_shift_decomposition(g, 0.25, r1, l1, "nd");
  ThreadPool pool(8);
  const auto pooled =
      random_shift_decomposition(g, 0.25, r2, l2, "nd", &pool);
  EXPECT_EQ(pooled.cluster, serial.cluster);
  EXPECT_EQ(pooled.cluster_color, serial.cluster_color);
  EXPECT_EQ(pooled.max_diameter, serial.max_diameter);
  EXPECT_EQ(l1.total(), l2.total());
}

TEST(FrontierBfs, EmptySourcesAndIsolatedVertices) {
  const Graph g = Graph::from_edges(5, std::vector<Edge>{{0, 1}});
  BfsScratch scratch;
  FrontierBfs engine;
  engine.run_multi(g, scratch, std::vector<int>{});
  EXPECT_EQ(scratch.num_levels(), 0);
  EXPECT_TRUE(scratch.order().empty());
  engine.run(g, scratch, 4);  // isolated vertex
  EXPECT_EQ(scratch.num_levels(), 1);
  ASSERT_EQ(scratch.order().size(), 1u);
  EXPECT_EQ(scratch.order()[0], 4);
  EXPECT_EQ(scratch.dist(4), 0);
}

}  // namespace
}  // namespace deltacol
