// Randomized end-to-end fuzzing: random graph family x random algorithm x
// random options. The single invariant that must survive everything:
// delta_color returns a proper Delta-coloring (or throws ContractViolation
// for inputs it documents as rejected).
#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/structure.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

Graph random_workload(Rng& rng) {
  switch (rng.next_int(0, 6)) {
    case 0: {
      int n = rng.next_int(20, 300);
      int d = rng.next_int(3, 6);
      if ((n * d) % 2 == 1) ++n;
      return random_regular(n, d, rng);
    }
    case 1:
      return random_graph_max_degree(rng.next_int(20, 300),
                                     rng.next_int(3, 7), 1.5, rng);
    case 2:
      return random_tree(rng.next_int(20, 300), rng.next_int(3, 5), rng);
    case 3:
      return random_gallai_tree(rng.next_int(20, 150), rng.next_int(3, 5), rng);
    case 4:
      return grid_graph(rng.next_int(3, 12), rng.next_int(3, 12),
                        rng.next_bool(0.5));
    case 5: {
      // Disconnected mixtures.
      Graph g = random_tree(rng.next_int(10, 60), 4, rng);
      g = disjoint_union(g, grid_graph(4, rng.next_int(3, 8), true));
      if (rng.next_bool(0.5)) g = disjoint_union(g, clique_graph(3));
      return g;
    }
    default:
      return clique_ring(rng.next_int(2, 6), rng.next_int(3, 5));
  }
}

DeltaColoringOptions random_options(Rng& rng) {
  DeltaColoringOptions opt;
  opt.seed = rng.next_u64();
  opt.dcc_radius = rng.next_int(1, 3);
  opt.small_variant_radius_cap = rng.next_int(2, 5);
  opt.backoff = rng.next_bool(0.3) ? rng.next_int(3, 7) : -1;
  if (rng.next_bool(0.3)) {
    opt.selection_prob = rng.next_double() * 0.2;
  }
  opt.use_paper_constants = rng.next_bool(0.2);
  opt.list_engine = rng.next_bool(0.5) ? ListEngine::kDeterministic
                                       : ListEngine::kRandomized;
  return opt;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, EveryRunYieldsValidColoringOrDocumentedRejection) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 17);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = random_workload(rng);
    const int delta = g.max_degree();
    Algorithm alg = static_cast<Algorithm>(rng.next_int(0, 4));
    const DeltaColoringOptions opt = random_options(rng);
    const bool must_reject =
        delta < 3 || (alg == Algorithm::kRandomizedLarge && delta < 4);
    if (must_reject) {
      EXPECT_THROW(delta_color(g, alg, opt), ContractViolation);
      continue;
    }
    // (Delta+1)-clique components are rejected by contract.
    bool has_big_clique = false;
    for (const auto& comp : connected_components(g).vertex_sets()) {
      const auto sub = induced_subgraph(g, comp);
      if (is_clique(sub.graph) && sub.graph.num_vertices() == delta + 1) {
        has_big_clique = true;
      }
    }
    if (has_big_clique) {
      EXPECT_THROW(delta_color(g, alg, opt), ContractViolation);
      continue;
    }
    const auto res = delta_color(g, alg, opt);
    EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, delta))
        << algorithm_name(alg) << " trial " << trial;
    EXPECT_GE(res.ledger.total(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace deltacol
