// Randomized end-to-end fuzzing: random graph family x random algorithm x
// random options (including random CONGEST caps and runtime shapes). The
// invariant that must survive everything: delta_color returns a proper
// Delta-coloring (or throws ContractViolation for inputs it documents as
// rejected) — and the shard runtime's byte counters stay consistent with
// the messages actually posted.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/api.h"
#include "graph/partition.h"
#include "graph/structure.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "net/wire_codec.h"
#include "runtime/mailbox.h"
#include "runtime/message_size.h"
#include "runtime/parallel_sync_engine.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

Graph random_workload(Rng& rng) {
  switch (rng.next_int(0, 6)) {
    case 0: {
      int n = rng.next_int(20, 300);
      int d = rng.next_int(3, 6);
      if ((n * d) % 2 == 1) ++n;
      return random_regular(n, d, rng);
    }
    case 1:
      return random_graph_max_degree(rng.next_int(20, 300),
                                     rng.next_int(3, 7), 1.5, rng);
    case 2:
      return random_tree(rng.next_int(20, 300), rng.next_int(3, 5), rng);
    case 3:
      return random_gallai_tree(rng.next_int(20, 150), rng.next_int(3, 5), rng);
    case 4:
      return grid_graph(rng.next_int(3, 12), rng.next_int(3, 12),
                        rng.next_bool(0.5));
    case 5: {
      // Disconnected mixtures.
      Graph g = random_tree(rng.next_int(10, 60), 4, rng);
      g = disjoint_union(g, grid_graph(4, rng.next_int(3, 8), true));
      if (rng.next_bool(0.5)) g = disjoint_union(g, clique_graph(3));
      return g;
    }
    default:
      return clique_ring(rng.next_int(2, 6), rng.next_int(3, 5));
  }
}

DeltaColoringOptions random_options(Rng& rng) {
  DeltaColoringOptions opt;
  opt.seed = rng.next_u64();
  opt.dcc_radius = rng.next_int(1, 3);
  opt.small_variant_radius_cap = rng.next_int(2, 5);
  opt.backoff = rng.next_bool(0.3) ? rng.next_int(3, 7) : -1;
  if (rng.next_bool(0.3)) {
    opt.selection_prob = rng.next_double() * 0.2;
  }
  opt.use_paper_constants = rng.next_bool(0.2);
  opt.list_engine = rng.next_bool(0.5) ? ListEngine::kDeterministic
                                       : ListEngine::kRandomized;
  // Random runtime shapes and CONGEST caps: both are observability /
  // placement knobs that must never change what delta_color computes.
  const int shapes[] = {1, 2, 8};
  opt.num_threads = shapes[rng.next_int(0, 2)];
  opt.num_shards = shapes[rng.next_int(0, 2)];
  if (rng.next_bool(0.5)) {
    opt.congest_bits = rng.next_int(1, 512);  // tight, uneven caps
  }
  // Half the runs take the relaxed-order engines; the validity invariant
  // below is exactly fast mode's whole contract. A random perturb_salt on
  // top makes the relaxed interleavings actually vary run to run.
  if (rng.next_bool(0.5)) {
    opt.mode = ExecutionMode::kFast;
    if (rng.next_bool(0.5)) opt.perturb_salt = rng.next_u64();
  }
  return opt;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, EveryRunYieldsValidColoringOrDocumentedRejection) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 17);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = random_workload(rng);
    const int delta = g.max_degree();
    Algorithm alg = static_cast<Algorithm>(rng.next_int(0, 4));
    const DeltaColoringOptions opt = random_options(rng);
    const bool must_reject =
        delta < 3 || (alg == Algorithm::kRandomizedLarge && delta < 4);
    if (must_reject) {
      EXPECT_THROW(delta_color(g, alg, opt), ContractViolation);
      continue;
    }
    // (Delta+1)-clique components are rejected by contract.
    bool has_big_clique = false;
    for (const auto& comp : connected_components(g).vertex_sets()) {
      const auto sub = induced_subgraph(g, comp);
      if (is_clique(sub.graph) && sub.graph.num_vertices() == delta + 1) {
        has_big_clique = true;
      }
    }
    if (has_big_clique) {
      EXPECT_THROW(delta_color(g, alg, opt), ContractViolation);
      continue;
    }
    const auto res = delta_color(g, alg, opt);
    EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, delta))
        << algorithm_name(alg) << " trial " << trial;
    EXPECT_GE(res.ledger.total(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 13));

// Same-seed stress: 8 back-to-back runs of one (graph, algorithm, options)
// triple. Deterministic mode must produce 8 bit-identical results even with
// schedule perturbation on (the salt moves wall-clock only); fast mode must
// produce 8 *valid* results — each run may take different interleavings,
// and none of them may leak an improper or incomplete coloring.
TEST(FuzzStress, EightSameSeedRunsPerMode) {
  Rng rng(0x57E55);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = random_workload(rng);
    if (g.max_degree() < 3) continue;
    bool has_big_clique = false;
    for (const auto& comp : connected_components(g).vertex_sets()) {
      const auto sub = induced_subgraph(g, comp);
      if (is_clique(sub.graph) &&
          sub.graph.num_vertices() == g.max_degree() + 1) {
        has_big_clique = true;
      }
    }
    if (has_big_clique) continue;
    const Algorithm alg =
        g.max_degree() >= 4 ? Algorithm::kRandomizedLarge
                            : Algorithm::kRandomizedSmall;
    DeltaColoringOptions opt;
    opt.seed = rng.next_u64();
    opt.num_threads = 8;
    opt.num_shards = 2;
    opt.perturb_salt = rng.next_u64();

    const auto det_ref = delta_color(g, alg, opt);
    for (int run = 0; run < 8; ++run) {
      const auto det = delta_color(g, alg, opt);
      EXPECT_EQ(det.coloring, det_ref.coloring)
          << "det trial " << trial << " run " << run;
      EXPECT_EQ(det.ledger.total(), det_ref.ledger.total())
          << "det trial " << trial << " run " << run;
    }

    DeltaColoringOptions fast_opt = opt;
    fast_opt.mode = ExecutionMode::kFast;
    for (int run = 0; run < 8; ++run) {
      const auto fast = delta_color(g, alg, fast_opt);
      EXPECT_NO_THROW(
          validate_delta_coloring(g, fast.coloring, g.max_degree()))
          << "fast trial " << trial << " run " << run;
      EXPECT_LE(fast.ledger.total(), det_ref.ledger.total())
          << "fast trial " << trial << " run " << run;
    }
  }
}

// CONGEST byte-counter consistency under fuzz: for random graphs, shard
// counts and thread counts, the ShardRuntime's wire-bit counters must equal
// MessageSize times the envelope counts, split per slot exactly as the
// GraphViews count internal/cross edges — and the charged rounds must be
// the engine's message_round_cost of the actual heaviest edge load.
TEST_P(FuzzTest, ByteCountersConsistentWithPostedMessages) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 3);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = random_workload(rng);
    const int shapes[] = {1, 2, 8};
    const int num_shards = shapes[rng.next_int(0, 2)];
    const int threads = shapes[rng.next_int(0, 2)];
    const std::int64_t B = rng.next_bool(0.5) ? rng.next_int(1, 128) : 0;
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
    ShardRuntime shards(g, num_shards, pool_ptr);

    // One flood round: every node sends its id (32 bits) to every neighbor,
    // so every directed edge carries exactly one 32-bit message.
    RoundLedger ledger;
    ledger.set_congest_bits(B);
    ParallelSyncEngine<int, std::uint32_t> engine(g, ledger, "flood",
                                                  pool_ptr, &shards);
    engine.round(
        [&g](int v, const int&) {
          std::vector<std::pair<int, std::uint32_t>> out;
          for (int u : g.neighbors(v)) {
            out.push_back({u, static_cast<std::uint32_t>(v)});
          }
          return out;
        },
        [](int, int&, const std::vector<std::pair<int, std::uint32_t>>&) {});

    const std::string label = "trial " + std::to_string(trial) + " S=" +
                              std::to_string(num_shards) + " T=" +
                              std::to_string(threads) + " B=" +
                              std::to_string(B);
    EXPECT_EQ(shards.total_messages(), 2 * g.num_edges()) << label;
    EXPECT_EQ(shards.total_bits(), 32 * shards.total_messages()) << label;
    for (int s = 0; s < shards.num_shards(); ++s) {
      const GraphView& view = shards.view(s);
      EXPECT_EQ(shards.slot_bits(s, s), 32 * 2 * view.internal_edges())
          << label;
      for (int d = 0; d < shards.num_shards(); ++d) {
        if (d == s) continue;
        EXPECT_EQ(shards.slot_bits(s, d), 32 * view.cross_edges(d)) << label;
      }
    }
    EXPECT_EQ(shards.cross_shard_bits(), 32 * shards.cross_shard_messages())
        << label;
    // Heaviest edge load is exactly one 32-bit message (all workloads have
    // at least one edge), so the round charge is pinned.
    ASSERT_GE(g.num_edges(), 1) << label;
    EXPECT_EQ(ledger.total(), ledger.message_round_cost(32)) << label;

    // The Luby MIS through the same runtime: every envelope is one 65-bit
    // message, so the byte counters factor exactly — and the result must
    // still be a valid MIS under any (S, T, B).
    shards.reset_counters();
    Rng luby_rng(rng.next_u64());
    RoundLedger luby_ledger;
    luby_ledger.set_congest_bits(B);
    const auto mis = luby_mis_message_passing(g, luby_rng, luby_ledger, "mis",
                                              pool_ptr, &shards);
    EXPECT_TRUE(is_mis(g, mis)) << label;
    EXPECT_EQ(shards.total_bits(),
              kLubyMessageBits * shards.total_messages())
        << label;
    EXPECT_EQ(shards.cross_shard_bits(),
              kLubyMessageBits * shards.cross_shard_messages())
        << label;
  }
}

}  // namespace

// --- wire-codec fuzz -------------------------------------------------------
//
// The WireCodec family (net/wire_codec.h) must stay the byte-level twin of
// MessageSize: for every registered type, encoded length == the sum of
// ceil(field_bits / 8) over its fields, and decode(encode(x)) == x. A
// custom struct registering BOTH traits side by side (the luby_sync.cpp
// pattern) is fuzzed too.

namespace wire_fuzz {

struct FuzzMsg {
  bool flag = false;
  std::uint32_t a = 0;
  std::int64_t b = 0;
  std::vector<std::uint32_t> tail;
  bool operator==(const FuzzMsg&) const = default;
};

}  // namespace wire_fuzz

template <>
struct MessageSize<wire_fuzz::FuzzMsg> {
  static std::int64_t bits(const wire_fuzz::FuzzMsg& m) {
    return 1 + 32 + 64 + message_bits(m.tail);
  }
};

template <>
struct WireCodec<wire_fuzz::FuzzMsg> {
  static void encode(const wire_fuzz::FuzzMsg& m, WireWriter& w) {
    WireCodec<bool>::encode(m.flag, w);
    WireCodec<std::uint32_t>::encode(m.a, w);
    WireCodec<std::int64_t>::encode(m.b, w);
    WireCodec<std::vector<std::uint32_t>>::encode(m.tail, w);
  }
  static wire_fuzz::FuzzMsg decode(WireReader& r) {
    wire_fuzz::FuzzMsg m;
    m.flag = WireCodec<bool>::decode(r);
    m.a = WireCodec<std::uint32_t>::decode(r);
    m.b = WireCodec<std::int64_t>::decode(r);
    m.tail = WireCodec<std::vector<std::uint32_t>>::decode(r);
    return m;
  }
};

namespace {

// Expected on-wire bytes, per-field ceil(bits / 8) — the mirror of the
// codec registry, computed independently of both traits.
template <typename T>
struct WireBytes;
template <>
struct WireBytes<bool> {
  static std::int64_t of(const bool&) { return 1; }
};
template <>
struct WireBytes<std::uint32_t> {
  static std::int64_t of(const std::uint32_t&) { return 4; }
};
template <>
struct WireBytes<std::int32_t> {
  static std::int64_t of(const std::int32_t&) { return 4; }
};
template <>
struct WireBytes<std::uint64_t> {
  static std::int64_t of(const std::uint64_t&) { return 8; }
};
template <>
struct WireBytes<std::int64_t> {
  static std::int64_t of(const std::int64_t&) { return 8; }
};
template <typename A, typename B>
struct WireBytes<std::pair<A, B>> {
  static std::int64_t of(const std::pair<A, B>& p) {
    return WireBytes<A>::of(p.first) + WireBytes<B>::of(p.second);
  }
};
template <typename T>
struct WireBytes<std::vector<T>> {
  static std::int64_t of(const std::vector<T>& v) {
    std::int64_t total = 4;
    for (const T& x : v) total += WireBytes<T>::of(x);
    return total;
  }
};
template <>
struct WireBytes<wire_fuzz::FuzzMsg> {
  static std::int64_t of(const wire_fuzz::FuzzMsg& m) {
    return 1 + 4 + 8 + WireBytes<decltype(m.tail)>::of(m.tail);
  }
};

// One round trip: encode, check the per-field length law (and, when the
// type has no sub-byte fields, the exact bits/8 relation to MessageSize),
// decode, compare payloads, and require the reader to be fully consumed.
template <typename T>
void check_round_trip(const T& value, std::int64_t sub_byte_fields) {
  WireWriter w;
  WireCodec<T>::encode(value, w);
  const WireBuf bytes = w.take();
  ASSERT_EQ(static_cast<std::int64_t>(bytes.size()), WireBytes<T>::of(value));
  // Each bool field rounds 1 bit up to 1 byte (+7 bits); everything else is
  // byte-aligned, so bytes == (bits + 7 * #bools) / 8 exactly.
  ASSERT_EQ(static_cast<std::int64_t>(bytes.size()) * 8,
            message_bits(value) + 7 * sub_byte_fields);
  WireReader r(bytes);
  const T back = WireCodec<T>::decode(r);
  ASSERT_TRUE(r.done());
  ASSERT_EQ(back, value);
}

wire_fuzz::FuzzMsg random_fuzz_msg(Rng& rng) {
  wire_fuzz::FuzzMsg m;
  m.flag = rng.next_bool(0.5);
  m.a = static_cast<std::uint32_t>(rng.next_u64());
  m.b = static_cast<std::int64_t>(rng.next_u64());
  const int len = rng.next_int(0, 8);
  for (int i = 0; i < len; ++i) {
    m.tail.push_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  return m;
}

TEST(WireCodecFuzz, EveryRegisteredTypeRoundTripsAtPerFieldRounding) {
  Rng rng(0xC0DEC);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::uint64_t raw = rng.next_u64();
    check_round_trip(raw % 2 == 0, 1);                             // bool
    check_round_trip(static_cast<std::uint32_t>(raw), 0);          // u32
    check_round_trip(static_cast<std::int32_t>(raw), 0);           // i32
    check_round_trip(raw, 0);                                      // u64
    check_round_trip(static_cast<std::int64_t>(raw), 0);           // i64
    check_round_trip(std::pair<std::uint32_t, std::uint64_t>{
                         static_cast<std::uint32_t>(raw >> 32), raw},
                     0);
    check_round_trip(std::pair<bool, std::uint64_t>{raw % 2 == 1, raw},
                     1);  // the Luby message shape
    std::vector<std::uint32_t> flat;
    for (int i = rng.next_int(0, 12); i > 0; --i) {
      flat.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    }
    check_round_trip(flat, 0);
    std::vector<std::vector<std::uint32_t>> nested;
    for (int i = rng.next_int(0, 4); i > 0; --i) {
      nested.push_back(flat);
      nested.back().resize(static_cast<std::size_t>(
          rng.next_int(0, static_cast<int>(flat.size()))));
    }
    check_round_trip(nested, 0);
    // The halo-reply shape (net/rank_loader.cpp): vector<pair<u32, ids>>.
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> reply;
    for (int i = rng.next_int(0, 4); i > 0; --i) {
      reply.emplace_back(static_cast<std::uint32_t>(rng.next_u64()), flat);
    }
    check_round_trip(reply, 0);
    // A custom two-trait struct, like every engine message type.
    const wire_fuzz::FuzzMsg msg = random_fuzz_msg(rng);
    check_round_trip(msg, 1);
  }
}

TEST(WireCodecFuzz, TruncatedOrDirtyPayloadsNeverDecodeCleanly) {
  Rng rng(0xBADBEEF);
  for (int iter = 0; iter < 500; ++iter) {
    const wire_fuzz::FuzzMsg msg = random_fuzz_msg(rng);
    WireWriter w;
    WireCodec<wire_fuzz::FuzzMsg>::encode(msg, w);
    const WireBuf bytes = w.take();
    // Any strict prefix either throws or leaves the reader short (the
    // caller-visible "not done" signal decode_slot turns into WireError).
    const std::size_t cut =
        static_cast<std::size_t>(rng.next_int(0, static_cast<int>(bytes.size()) - 1));
    WireBuf torn(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      WireReader r(torn);
      (void)WireCodec<wire_fuzz::FuzzMsg>::decode(r);
      ADD_FAILURE() << "decode of a " << cut << "/" << bytes.size()
                    << "-byte prefix did not throw";
    } catch (const WireError&) {
    }
    // A bool byte outside {0,1} is rejected, not coerced.
    WireBuf dirty = bytes;
    dirty[0] = static_cast<std::uint8_t>(rng.next_int(2, 255));
    WireReader r(dirty);
    EXPECT_THROW((void)WireCodec<wire_fuzz::FuzzMsg>::decode(r), WireError);
  }
}

TEST(WireCodecFuzz, MailboxSlotsSurviveSerializationExactly) {
  Rng rng(0x51075);
  using Env = Mailbox<wire_fuzz::FuzzMsg>::Envelope;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<Env> slot;
    for (int i = rng.next_int(0, 10); i > 0; --i) {
      slot.push_back(Env{rng.next_int(0, 1000), rng.next_int(0, 1000),
                         random_fuzz_msg(rng)});
    }
    const WireBuf bytes = encode_slot<wire_fuzz::FuzzMsg>(slot);
    // Slot length law: count prefix + per-envelope addressing + payloads.
    std::int64_t expect = kWireSlotPrefixBytes;
    for (const Env& e : slot) {
      expect += kWireEnvelopeOverheadBytes +
                WireBytes<wire_fuzz::FuzzMsg>::of(e.msg);
    }
    ASSERT_EQ(static_cast<std::int64_t>(bytes.size()), expect);
    const auto back = decode_slot<wire_fuzz::FuzzMsg, Env>(bytes);
    ASSERT_EQ(back.size(), slot.size());
    for (std::size_t i = 0; i < slot.size(); ++i) {
      EXPECT_EQ(back[i].to, slot[i].to);
      EXPECT_EQ(back[i].from, slot[i].from);
      EXPECT_EQ(back[i].msg, slot[i].msg);
    }
    // Mutations are rejected loudly: trailing garbage, truncation, and a
    // count that promises more envelopes than the bytes can carry.
    WireBuf longer = bytes;
    longer.push_back(0);
    EXPECT_THROW((decode_slot<wire_fuzz::FuzzMsg, Env>(longer)), WireError);
    if (!slot.empty()) {
      WireBuf shorter = bytes;
      shorter.pop_back();
      EXPECT_THROW((decode_slot<wire_fuzz::FuzzMsg, Env>(shorter)), WireError);
    }
    WireBuf inflated = bytes;
    inflated[0] = 0xff;
    inflated[1] = 0xff;
    EXPECT_THROW((decode_slot<wire_fuzz::FuzzMsg, Env>(inflated)), WireError);
  }
}

}  // namespace
}  // namespace deltacol
