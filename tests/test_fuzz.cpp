// Randomized end-to-end fuzzing: random graph family x random algorithm x
// random options (including random CONGEST caps and runtime shapes). The
// invariant that must survive everything: delta_color returns a proper
// Delta-coloring (or throws ContractViolation for inputs it documents as
// rejected) — and the shard runtime's byte counters stay consistent with
// the messages actually posted.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/api.h"
#include "graph/partition.h"
#include "graph/structure.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "runtime/mailbox.h"
#include "runtime/parallel_sync_engine.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

Graph random_workload(Rng& rng) {
  switch (rng.next_int(0, 6)) {
    case 0: {
      int n = rng.next_int(20, 300);
      int d = rng.next_int(3, 6);
      if ((n * d) % 2 == 1) ++n;
      return random_regular(n, d, rng);
    }
    case 1:
      return random_graph_max_degree(rng.next_int(20, 300),
                                     rng.next_int(3, 7), 1.5, rng);
    case 2:
      return random_tree(rng.next_int(20, 300), rng.next_int(3, 5), rng);
    case 3:
      return random_gallai_tree(rng.next_int(20, 150), rng.next_int(3, 5), rng);
    case 4:
      return grid_graph(rng.next_int(3, 12), rng.next_int(3, 12),
                        rng.next_bool(0.5));
    case 5: {
      // Disconnected mixtures.
      Graph g = random_tree(rng.next_int(10, 60), 4, rng);
      g = disjoint_union(g, grid_graph(4, rng.next_int(3, 8), true));
      if (rng.next_bool(0.5)) g = disjoint_union(g, clique_graph(3));
      return g;
    }
    default:
      return clique_ring(rng.next_int(2, 6), rng.next_int(3, 5));
  }
}

DeltaColoringOptions random_options(Rng& rng) {
  DeltaColoringOptions opt;
  opt.seed = rng.next_u64();
  opt.dcc_radius = rng.next_int(1, 3);
  opt.small_variant_radius_cap = rng.next_int(2, 5);
  opt.backoff = rng.next_bool(0.3) ? rng.next_int(3, 7) : -1;
  if (rng.next_bool(0.3)) {
    opt.selection_prob = rng.next_double() * 0.2;
  }
  opt.use_paper_constants = rng.next_bool(0.2);
  opt.list_engine = rng.next_bool(0.5) ? ListEngine::kDeterministic
                                       : ListEngine::kRandomized;
  // Random runtime shapes and CONGEST caps: both are observability /
  // placement knobs that must never change what delta_color computes.
  const int shapes[] = {1, 2, 8};
  opt.num_threads = shapes[rng.next_int(0, 2)];
  opt.num_shards = shapes[rng.next_int(0, 2)];
  if (rng.next_bool(0.5)) {
    opt.congest_bits = rng.next_int(1, 512);  // tight, uneven caps
  }
  return opt;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, EveryRunYieldsValidColoringOrDocumentedRejection) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 17);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = random_workload(rng);
    const int delta = g.max_degree();
    Algorithm alg = static_cast<Algorithm>(rng.next_int(0, 4));
    const DeltaColoringOptions opt = random_options(rng);
    const bool must_reject =
        delta < 3 || (alg == Algorithm::kRandomizedLarge && delta < 4);
    if (must_reject) {
      EXPECT_THROW(delta_color(g, alg, opt), ContractViolation);
      continue;
    }
    // (Delta+1)-clique components are rejected by contract.
    bool has_big_clique = false;
    for (const auto& comp : connected_components(g).vertex_sets()) {
      const auto sub = induced_subgraph(g, comp);
      if (is_clique(sub.graph) && sub.graph.num_vertices() == delta + 1) {
        has_big_clique = true;
      }
    }
    if (has_big_clique) {
      EXPECT_THROW(delta_color(g, alg, opt), ContractViolation);
      continue;
    }
    const auto res = delta_color(g, alg, opt);
    EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, delta))
        << algorithm_name(alg) << " trial " << trial;
    EXPECT_GE(res.ledger.total(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 13));

// CONGEST byte-counter consistency under fuzz: for random graphs, shard
// counts and thread counts, the ShardRuntime's wire-bit counters must equal
// MessageSize times the envelope counts, split per slot exactly as the
// GraphViews count internal/cross edges — and the charged rounds must be
// the engine's message_round_cost of the actual heaviest edge load.
TEST_P(FuzzTest, ByteCountersConsistentWithPostedMessages) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 3);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = random_workload(rng);
    const int shapes[] = {1, 2, 8};
    const int num_shards = shapes[rng.next_int(0, 2)];
    const int threads = shapes[rng.next_int(0, 2)];
    const std::int64_t B = rng.next_bool(0.5) ? rng.next_int(1, 128) : 0;
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
    ShardRuntime shards(g, num_shards, pool_ptr);

    // One flood round: every node sends its id (32 bits) to every neighbor,
    // so every directed edge carries exactly one 32-bit message.
    RoundLedger ledger;
    ledger.set_congest_bits(B);
    ParallelSyncEngine<int, std::uint32_t> engine(g, ledger, "flood",
                                                  pool_ptr, &shards);
    engine.round(
        [&g](int v, const int&) {
          std::vector<std::pair<int, std::uint32_t>> out;
          for (int u : g.neighbors(v)) {
            out.push_back({u, static_cast<std::uint32_t>(v)});
          }
          return out;
        },
        [](int, int&, const std::vector<std::pair<int, std::uint32_t>>&) {});

    const std::string label = "trial " + std::to_string(trial) + " S=" +
                              std::to_string(num_shards) + " T=" +
                              std::to_string(threads) + " B=" +
                              std::to_string(B);
    EXPECT_EQ(shards.total_messages(), 2 * g.num_edges()) << label;
    EXPECT_EQ(shards.total_bits(), 32 * shards.total_messages()) << label;
    for (int s = 0; s < shards.num_shards(); ++s) {
      const GraphView& view = shards.view(s);
      EXPECT_EQ(shards.slot_bits(s, s), 32 * 2 * view.internal_edges())
          << label;
      for (int d = 0; d < shards.num_shards(); ++d) {
        if (d == s) continue;
        EXPECT_EQ(shards.slot_bits(s, d), 32 * view.cross_edges(d)) << label;
      }
    }
    EXPECT_EQ(shards.cross_shard_bits(), 32 * shards.cross_shard_messages())
        << label;
    // Heaviest edge load is exactly one 32-bit message (all workloads have
    // at least one edge), so the round charge is pinned.
    ASSERT_GE(g.num_edges(), 1) << label;
    EXPECT_EQ(ledger.total(), ledger.message_round_cost(32)) << label;

    // The Luby MIS through the same runtime: every envelope is one 65-bit
    // message, so the byte counters factor exactly — and the result must
    // still be a valid MIS under any (S, T, B).
    shards.reset_counters();
    Rng luby_rng(rng.next_u64());
    RoundLedger luby_ledger;
    luby_ledger.set_congest_bits(B);
    const auto mis = luby_mis_message_passing(g, luby_rng, luby_ledger, "mis",
                                              pool_ptr, &shards);
    EXPECT_TRUE(is_mis(g, mis)) << label;
    EXPECT_EQ(shards.total_bits(),
              kLubyMessageBits * shards.total_messages())
        << label;
    EXPECT_EQ(shards.cross_shard_bits(),
              kLubyMessageBits * shards.cross_shard_messages())
        << label;
  }
}

}  // namespace
}  // namespace deltacol
