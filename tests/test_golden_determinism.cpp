// Golden regression for the deterministic mode: the fingerprints below were
// captured from the tree BEFORE ExecutionMode::kFast landed, so this suite
// is the proof that adding the relaxed-order engines left kDeterministic
// byte-for-byte untouched — not just shape-invariant (which
// test_parallel_determinism already pins) but identical to the historical
// results. If a change legitimately alters deterministic output (a new
// phase, a different charge), regenerate the table with the generator in
// tests/README.md and say so in the commit; an unexplained mismatch is a
// determinism regression.
//
// The fingerprint folds every observable of a DeltaColoringResult — the
// coloring bytes, Delta, the ledger total and per-phase breakdown, and all
// PhaseStats counters — through FNV-1a, and is checked over the full
// (shards, threads) ∈ {1, 2, 8}² grid: every shape must land on the one
// frozen hash.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "util/rng.h"

namespace deltacol {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t result_fingerprint(const DeltaColoringResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (Color c : r.coloring) h = fnv1a(h, static_cast<std::uint64_t>(c));
  h = fnv1a(h, static_cast<std::uint64_t>(r.delta));
  h = fnv1a(h, static_cast<std::uint64_t>(r.ledger.total()));
  for (const auto& e : r.ledger.breakdown()) {
    for (char ch : e.phase) h = fnv1a(h, static_cast<std::uint64_t>(ch));
    h = fnv1a(h, static_cast<std::uint64_t>(e.rounds));
  }
  const PhaseStats& s = r.stats;
  for (int x : {s.num_dccs_selected, s.base_layer_size, s.num_b_layers,
                s.num_selected, s.num_tnodes, s.num_marked, s.num_c_layers,
                s.h_vertices, s.happy_vertices, s.leftover_vertices,
                s.leftover_components, s.max_leftover_component,
                s.anchors_empty_fallbacks, s.brooks_fixes, s.repairs,
                s.retries_used}) {
    h = fnv1a(h, static_cast<std::uint64_t>(x));
  }
  return h;
}

struct Golden {
  const char* graph;
  const char* alg;
  std::uint64_t hash;
};

// Captured pre-fast-mode, seed 2024, serial run (threads = 1, shards = 1).
constexpr Golden kGoldens[] = {
    {"regular-500-6", "det", 0x9dc681a19a5fb1d4ULL},
    {"regular-500-6", "small", 0x4ae385a1b0f38fb2ULL},
    {"regular-500-6", "naive", 0x6f55bab76486c993ULL},
    {"gallai-400-4", "det", 0x86012e5a3757d392ULL},
    {"gallai-400-4", "small", 0x0767e5054e9cd0fcULL},
    {"gallai-400-4", "naive", 0x1ff9825bc0e4a23cULL},
    {"sparse-400-6", "det", 0x6eda4901743b8e72ULL},
    {"sparse-400-6", "small", 0xebd47ab2aa0c5aa5ULL},
    {"sparse-400-6", "naive", 0x89f3445d9c3a8241ULL},
    {"3-components", "det", 0xc2048990d5fb952eULL},
    {"3-components", "small", 0x5981a6bb976bfd8fULL},
    {"3-components", "naive", 0x2c3d2e81a25cf2f0ULL},
    {"triangle-cactus", "det", 0xbcf2c1db7d613405ULL},
    {"triangle-cactus", "small", 0x3aedd525c48be4d6ULL},
    {"triangle-cactus", "naive", 0xc4e498016540fa74ULL},
};

Algorithm alg_from_tag(const std::string& tag) {
  if (tag == "det") return Algorithm::kDeterministic;
  if (tag == "small") return Algorithm::kRandomizedSmall;
  return Algorithm::kBaselineGreedyBrooks;
}

TEST(GoldenDeterminism, EveryShapeLandsOnThePrePrFingerprint) {
  // The zoo of tests/test_parallel_determinism.cpp, reproduced exactly
  // (same seed, same construction order — the generators consume one
  // shared stream).
  Rng rng(71);
  struct Workload {
    const char* name;
    Graph g;
  };
  const Workload zoo[] = {
      {"regular-500-6", random_regular(500, 6, rng)},
      {"gallai-400-4", random_gallai_tree(400, 4, rng)},
      {"sparse-400-6", random_graph_max_degree(400, 6, 1.8, rng)},
      {"3-components",
       disjoint_union(disjoint_union(random_regular(200, 5, rng),
                                     random_regular(90, 4, rng)),
                      random_graph_max_degree(150, 6, 1.8, rng))},
      {"triangle-cactus", triangle_cactus(1500)},
  };
  for (const Golden& golden : kGoldens) {
    const Graph* g = nullptr;
    for (const auto& w : zoo) {
      if (std::string(w.name) == golden.graph) g = &w.g;
    }
    ASSERT_NE(g, nullptr) << golden.graph;
    const Algorithm alg = alg_from_tag(golden.alg);
    for (int num_shards : {1, 2, 8}) {
      for (int threads : {1, 2, 8}) {
        DeltaColoringOptions opt;
        opt.seed = 2024;
        opt.num_threads = threads;
        opt.num_shards = num_shards;
        const DeltaColoringResult res = delta_color(*g, alg, opt);
        EXPECT_EQ(result_fingerprint(res), golden.hash)
            << golden.graph << " / " << golden.alg << " / S="
            << num_shards << " T=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace deltacol
