// Unit and property tests for the Graph container and the generator zoo.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/components.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/structure.h"
#include "util/check.h"

namespace deltacol {
namespace {

TEST(Graph, FromEdgesDedupesAndSorts) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {1, 2}, {0, 1}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  const auto nb = g.neighbors(1);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  EXPECT_THROW(Graph::from_edges(2, std::vector<Edge>{{0, 0}}),
               ContractViolation);
  EXPECT_THROW(Graph::from_edges(2, std::vector<Edge>{{0, 2}}),
               ContractViolation);
}

TEST(Graph, EdgeListRoundTrips) {
  Rng rng(3);
  const Graph g = random_regular(30, 4, rng);
  const Graph h = Graph::from_edges(30, g.edge_list());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (int v = 0; v < 30; ++v) EXPECT_EQ(h.degree(v), g.degree(v));
}

TEST(Graph, MinMaxDegree) {
  const Graph g = star_graph(5);
  EXPECT_EQ(g.max_degree(), 5);
  EXPECT_EQ(g.min_degree(), 1);
}

TEST(GraphBuilder, Build) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_TRUE(b.has_edge(1, 0));
  EXPECT_FALSE(b.has_edge(0, 2));
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Generators, PathCycleClique) {
  EXPECT_TRUE(is_path(path_graph(5)));
  EXPECT_TRUE(is_cycle(cycle_graph(6)));
  EXPECT_TRUE(is_odd_cycle(cycle_graph(7)));
  EXPECT_FALSE(is_odd_cycle(cycle_graph(8)));
  EXPECT_TRUE(is_clique(clique_graph(4)));
  EXPECT_EQ(clique_graph(5).num_edges(), 10);
}

TEST(Generators, CompleteBipartiteAndStar) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(star_graph(7).num_edges(), 7);
}

TEST(Generators, GridAndTorus) {
  const Graph grid = grid_graph(4, 5, false);
  EXPECT_EQ(grid.num_vertices(), 20);
  EXPECT_EQ(grid.num_edges(), 4 * 4 + 3 * 5);  // horizontal + vertical
  EXPECT_EQ(grid.max_degree(), 4);
  const Graph torus = grid_graph(4, 5, true);
  for (int v = 0; v < torus.num_vertices(); ++v) EXPECT_EQ(torus.degree(v), 4);
  EXPECT_TRUE(is_connected(torus));
}

TEST(Generators, Hypercube) {
  const Graph g = hypercube_graph(4);
  EXPECT_EQ(g.num_vertices(), 16);
  for (int v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Circulant) {
  const Graph g = circulant_graph(10, {1, 2});
  for (int v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Petersen) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.num_vertices(), 10);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_nice(g));
}

TEST(Generators, KaryTree) {
  const Graph g = complete_kary_tree(3, 3);
  EXPECT_EQ(g.num_vertices(), 1 + 3 + 9 + 27);
  EXPECT_EQ(g.max_degree(), 4);  // internal: 3 children + parent
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), g.num_vertices() - 1);
}

TEST(Generators, ThetaGraphIsDccShape) {
  const Graph g = theta_graph(2, 3, 4);
  EXPECT_EQ(g.num_vertices(), 2 + 2 + 3 + 4);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_gallai_tree(g));
}

TEST(Generators, CliqueRing) {
  const Graph g = clique_ring(4, 4);
  EXPECT_EQ(g.num_vertices(), 4 * 3);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_gallai_tree(g));  // a big even structure of cliques
}

TEST(Generators, TriangleCactus) {
  const Graph g = triangle_cactus(100);
  EXPECT_GE(g.num_vertices(), 100);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_gallai_tree(g));
  EXPECT_EQ(g.max_degree(), 4);
  // Interior vertices have degree 4, fringe degree 2; no other degrees.
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(g.degree(v) == 2 || g.degree(v) == 4) << v;
  }
  EXPECT_EQ(g.num_edges() % 3, 0);  // a disjoint union of triangle blocks
}

class RandomRegularTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RandomRegularTest, ExactlyRegularAndSimple) {
  const auto [n, d] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + d));
  const Graph g = random_regular(n, d, rng);
  EXPECT_EQ(g.num_vertices(), n);
  for (int v = 0; v < n; ++v) ASSERT_EQ(g.degree(v), d) << "vertex " << v;
  EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(n) * d / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomRegularTest,
    ::testing::Values(std::pair{10, 3}, std::pair{50, 4}, std::pair{100, 5},
                      std::pair{64, 6}, std::pair{200, 3}, std::pair{40, 8},
                      std::pair{500, 4}));

TEST(Generators, RandomRegularInfeasible) {
  Rng rng(1);
  EXPECT_THROW(random_regular(5, 3, rng), ContractViolation);  // odd n*d
  EXPECT_THROW(random_regular(4, 4, rng), ContractViolation);  // d >= n
  EXPECT_TRUE(regular_graph_feasible(6, 3));
  EXPECT_FALSE(regular_graph_feasible(5, 3));
}

TEST(Generators, RandomTreeRespectsCap) {
  Rng rng(5);
  const Graph g = random_tree(200, 4, rng);
  EXPECT_EQ(g.num_edges(), 199);
  EXPECT_LE(g.max_degree(), 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomGraphMaxDegree) {
  Rng rng(6);
  const Graph g = random_graph_max_degree(300, 6, 1.8, rng);
  EXPECT_LE(g.max_degree(), 6);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.num_edges(), 299);
}

class GallaiTreeGenTest : public ::testing::TestWithParam<int> {};

TEST_P(GallaiTreeGenTest, GeneratedGraphIsGallaiTree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = random_gallai_tree(60, 5, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(g.max_degree(), 5);
  EXPECT_TRUE(is_gallai_tree(g));
  EXPECT_GE(g.num_vertices(), 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GallaiTreeGenTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace deltacol
