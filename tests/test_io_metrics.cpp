// Graph serialization, workload metrics, and the shard runtime's cumulative
// volume counters (envelopes + wire bits) across reuse.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "local/round_ledger.h"
#include "mis/luby_sync.h"
#include "runtime/mailbox.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Io, EdgeListRoundTrip) {
  Rng rng(5);
  const Graph g = random_graph_max_degree(80, 5, 1.6, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.edge_list(), g.edge_list());
}

TEST(Io, ReadSkipsComments) {
  std::istringstream in("# a comment\n3 2\n0 1\n# another\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Io, ReadRejectsBadInput) {
  std::istringstream missing_header("0 1\n");
  EXPECT_THROW(read_edge_list(missing_header), ContractViolation);
  std::istringstream wrong_count("3 5\n0 1\n");
  EXPECT_THROW(read_edge_list(wrong_count), ContractViolation);
}

TEST(Io, DotContainsVerticesAndColors) {
  const Graph g = path_graph(3);
  std::ostringstream os;
  write_dot(os, g, Coloring{0, 1, 0});
  const std::string dot = os.str();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("graph G"), std::string::npos);
}

TEST(Io, FileRoundTrip) {
  const Graph g = petersen_graph();
  const std::string path = "/tmp/deltacol_io_test.edges";
  save_edge_list(path, g);
  const Graph h = load_edge_list(path);
  EXPECT_EQ(h.edge_list(), g.edge_list());
  EXPECT_THROW(load_edge_list("/nonexistent/dir/x.edges"), ContractViolation);
}

TEST(Metrics, GirthKnownValues) {
  EXPECT_EQ(girth(cycle_graph(7)), 7);
  EXPECT_EQ(girth(cycle_graph(4)), 4);
  EXPECT_EQ(girth(clique_graph(4)), 3);
  EXPECT_EQ(girth(petersen_graph()), 5);
  EXPECT_EQ(girth(hypercube_graph(3)), 4);
  EXPECT_EQ(girth(complete_bipartite(2, 3)), 4);
  Rng rng(1);
  EXPECT_EQ(girth(random_tree(50, 3, rng)), -1);
}

TEST(Metrics, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(clique_graph(5)).degeneracy, 4);
  EXPECT_EQ(degeneracy(cycle_graph(9)).degeneracy, 2);
  Rng rng(2);
  EXPECT_EQ(degeneracy(random_tree(100, 4, rng)).degeneracy, 1);
  EXPECT_EQ(degeneracy(grid_graph(5, 5, false)).degeneracy, 2);
  // The peeling order is a permutation.
  const auto res = degeneracy(petersen_graph());
  EXPECT_EQ(res.degeneracy, 3);
  std::vector<int> sorted = res.order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Metrics, Triangles) {
  EXPECT_EQ(count_triangles(clique_graph(4)), 4);
  EXPECT_EQ(count_triangles(clique_graph(5)), 10);
  EXPECT_EQ(count_triangles(cycle_graph(3)), 1);
  EXPECT_EQ(count_triangles(cycle_graph(6)), 0);
  EXPECT_EQ(count_triangles(petersen_graph()), 0);
}

TEST(Metrics, ClusteringCoefficient) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(clique_graph(5)), 1.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(cycle_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(path_graph(4)), 0.0);
}

TEST(Metrics, DegreeHistogram) {
  const auto h = degree_histogram(star_graph(4));
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[1], 4);
  EXPECT_EQ(h[4], 1);
}

TEST(Metrics, GirthCertifiesDccFreeBalls) {
  // If girth(g) > 2r + 1 every r-ball is a tree, hence DCC-free: girth is
  // an independent oracle for the DCC machinery.
  const Graph g = petersen_graph();  // girth 5 => 1-balls and 2-balls(edges)
  EXPECT_GT(girth(g), 2 * 1 + 1);
}

TEST(RuntimeMetrics, ByteCountersAccumulateAcrossRounds) {
  // record_round folds per-slot envelope counts AND wire bits cumulatively:
  // two identical rounds double every counter.
  Rng rng(11);
  const Graph g = random_regular(60, 4, rng);
  ShardRuntime shards(g, 2, nullptr);
  const std::size_t slots = 2 * 2;
  std::vector<std::int64_t> counts(slots, 3);
  std::vector<std::int64_t> bits(slots, 96);  // 3 x 32-bit messages
  shards.record_round(counts, bits);
  EXPECT_EQ(shards.rounds_recorded(), 1);
  EXPECT_EQ(shards.total_messages(), 12);
  EXPECT_EQ(shards.total_bits(), 4 * 96);
  shards.record_round(counts, bits);
  EXPECT_EQ(shards.rounds_recorded(), 2);
  EXPECT_EQ(shards.total_messages(), 24);
  EXPECT_EQ(shards.total_bits(), 2 * 4 * 96);
  EXPECT_EQ(shards.slot_messages(0, 1), 6);
  EXPECT_EQ(shards.slot_bits(0, 1), 192);
  EXPECT_EQ(shards.cross_shard_messages(), 12);
  EXPECT_EQ(shards.cross_shard_bits(), 2 * 192);
}

TEST(RuntimeMetrics, ResetCountersEnablesPerWorkloadAccounting) {
  // One ShardRuntime (whose partition/view construction is O(n + m)) reused
  // across independent workloads: reset_counters() zeroes messages, bits
  // and rounds, and a re-run reproduces the first run's counters exactly —
  // the counters are pure functions of the executed workload.
  Rng gen(21);
  const Graph g = random_regular(100, 4, gen);
  ShardRuntime shards(g, 4, nullptr);

  auto run_luby = [&](std::uint64_t seed) {
    Rng rng(seed);
    RoundLedger ledger;
    luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &shards);
  };
  run_luby(1);
  const std::int64_t msgs1 = shards.total_messages();
  const std::int64_t bits1 = shards.total_bits();
  const std::int64_t rounds1 = shards.rounds_recorded();
  ASSERT_GT(msgs1, 0);
  EXPECT_EQ(bits1, kLubyMessageBits * msgs1);

  // Without a reset the counters keep accumulating (cumulative contract).
  run_luby(1);
  EXPECT_EQ(shards.total_messages(), 2 * msgs1);
  EXPECT_EQ(shards.total_bits(), 2 * bits1);
  EXPECT_EQ(shards.rounds_recorded(), 2 * rounds1);

  // reset_counters(): back to zero, and the next workload accounts cleanly.
  shards.reset_counters();
  EXPECT_EQ(shards.total_messages(), 0);
  EXPECT_EQ(shards.total_bits(), 0);
  EXPECT_EQ(shards.rounds_recorded(), 0);
  EXPECT_EQ(shards.cross_shard_messages(), 0);
  EXPECT_EQ(shards.cross_shard_bits(), 0);
  run_luby(1);
  EXPECT_EQ(shards.total_messages(), msgs1);
  EXPECT_EQ(shards.total_bits(), bits1);
  EXPECT_EQ(shards.rounds_recorded(), rounds1);
}

}  // namespace
}  // namespace deltacol
