// Graph serialization and workload metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Io, EdgeListRoundTrip) {
  Rng rng(5);
  const Graph g = random_graph_max_degree(80, 5, 1.6, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.edge_list(), g.edge_list());
}

TEST(Io, ReadSkipsComments) {
  std::istringstream in("# a comment\n3 2\n0 1\n# another\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Io, ReadRejectsBadInput) {
  std::istringstream missing_header("0 1\n");
  EXPECT_THROW(read_edge_list(missing_header), ContractViolation);
  std::istringstream wrong_count("3 5\n0 1\n");
  EXPECT_THROW(read_edge_list(wrong_count), ContractViolation);
}

TEST(Io, DotContainsVerticesAndColors) {
  const Graph g = path_graph(3);
  std::ostringstream os;
  write_dot(os, g, Coloring{0, 1, 0});
  const std::string dot = os.str();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("graph G"), std::string::npos);
}

TEST(Io, FileRoundTrip) {
  const Graph g = petersen_graph();
  const std::string path = "/tmp/deltacol_io_test.edges";
  save_edge_list(path, g);
  const Graph h = load_edge_list(path);
  EXPECT_EQ(h.edge_list(), g.edge_list());
  EXPECT_THROW(load_edge_list("/nonexistent/dir/x.edges"), ContractViolation);
}

TEST(Metrics, GirthKnownValues) {
  EXPECT_EQ(girth(cycle_graph(7)), 7);
  EXPECT_EQ(girth(cycle_graph(4)), 4);
  EXPECT_EQ(girth(clique_graph(4)), 3);
  EXPECT_EQ(girth(petersen_graph()), 5);
  EXPECT_EQ(girth(hypercube_graph(3)), 4);
  EXPECT_EQ(girth(complete_bipartite(2, 3)), 4);
  Rng rng(1);
  EXPECT_EQ(girth(random_tree(50, 3, rng)), -1);
}

TEST(Metrics, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(clique_graph(5)).degeneracy, 4);
  EXPECT_EQ(degeneracy(cycle_graph(9)).degeneracy, 2);
  Rng rng(2);
  EXPECT_EQ(degeneracy(random_tree(100, 4, rng)).degeneracy, 1);
  EXPECT_EQ(degeneracy(grid_graph(5, 5, false)).degeneracy, 2);
  // The peeling order is a permutation.
  const auto res = degeneracy(petersen_graph());
  EXPECT_EQ(res.degeneracy, 3);
  std::vector<int> sorted = res.order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Metrics, Triangles) {
  EXPECT_EQ(count_triangles(clique_graph(4)), 4);
  EXPECT_EQ(count_triangles(clique_graph(5)), 10);
  EXPECT_EQ(count_triangles(cycle_graph(3)), 1);
  EXPECT_EQ(count_triangles(cycle_graph(6)), 0);
  EXPECT_EQ(count_triangles(petersen_graph()), 0);
}

TEST(Metrics, ClusteringCoefficient) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(clique_graph(5)), 1.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(cycle_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(path_graph(4)), 0.0);
}

TEST(Metrics, DegreeHistogram) {
  const auto h = degree_histogram(star_graph(4));
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[1], 4);
  EXPECT_EQ(h[4], 1);
}

TEST(Metrics, GirthCertifiesDccFreeBalls) {
  // If girth(g) > 2r + 1 every r-ball is a tree, hence DCC-free: girth is
  // an independent oracle for the DCC machinery.
  const Graph g = petersen_graph();  // girth 5 => 1-balls and 2-balls(edges)
  EXPECT_GT(girth(g), 2 * 1 + 1);
}

}  // namespace
}  // namespace deltacol
