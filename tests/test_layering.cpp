// The layering driver shared by every algorithm (paper Section 3).
#include <gtest/gtest.h>

#include "coloring/linial.h"
#include "core/layering.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Layering, LayersAreDistances) {
  const Graph g = grid_graph(7, 7, false);
  const Layering l = build_layers(g, {24}, -1);  // center
  const auto d = bfs_distances(g, 24);
  for (int v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(l.layer[v], d[v]);
  EXPECT_EQ(l.num_layers, 7);  // distances 0..6
  std::size_t total = 0;
  for (const auto& m : l.members) total += m.size();
  EXPECT_EQ(total, 49u);
}

TEST(Layering, DepthCapLeavesRemainder) {
  const Graph g = path_graph(10);
  const Layering l = build_layers(g, {0}, 3);
  EXPECT_EQ(l.num_layers, 4);
  EXPECT_EQ(l.layer[3], 3);
  EXPECT_EQ(l.layer[4], kNoLayer);
}

TEST(Layering, RestrictedBfsBlocksDisallowed) {
  const Graph g = path_graph(7);
  std::vector<bool> allowed(7, true);
  allowed[4] = false;
  const Layering l = build_layers_restricted(g, {2}, -1, allowed);
  EXPECT_EQ(l.layer[3], 1);
  EXPECT_EQ(l.layer[4], kNoLayer);
  EXPECT_EQ(l.layer[5], kNoLayer);  // cut off behind 4
  EXPECT_EQ(l.layer[0], 2);
}

TEST(Layering, MultipleBaseVertices) {
  const Graph g = path_graph(9);
  const Layering l = build_layers(g, {0, 8}, -1);
  EXPECT_EQ(l.layer[4], 4);
  EXPECT_EQ(l.layer[6], 2);
  EXPECT_EQ(l.members[0].size(), 2u);
}

class LayerColoringTest : public ::testing::TestWithParam<int> {};

TEST_P(LayerColoringTest, ReverseColoringLeavesOnlyBaseUncolored) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = random_regular(300, 4, rng);
  RoundLedger tmp;
  const auto lin = linial_coloring(g, tmp);
  // Base = a couple of scattered vertices.
  const std::vector<int> base{0, 100, 200};
  const Layering l = build_layers(g, base, -1);
  Coloring c(300, kUncolored);
  RoundLedger ledger;
  Rng rng2(17);
  color_layers_in_reverse(g, l, 4, lin.coloring, lin.num_colors,
                          ListEngine::kDeterministic, &rng2, c, ledger, "t");
  // Everything except (at most) the base is colored, properly.
  EXPECT_TRUE(is_proper_partial(g, c));
  for (int v = 0; v < 300; ++v) {
    if (l.layer[v] >= 1) {
      EXPECT_NE(c[v], kUncolored) << v;
    }
  }
  for (int v : base) EXPECT_EQ(c[v], kUncolored);
  EXPECT_GT(ledger.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayerColoringTest, ::testing::Values(1, 2, 3));

TEST(LayerColoring, RandomizedEngineToo) {
  Rng rng(4);
  const Graph g = random_regular(200, 4, rng);
  RoundLedger tmp;
  const auto lin = linial_coloring(g, tmp);
  const Layering l = build_layers(g, {0}, -1);
  Coloring c(200, kUncolored);
  RoundLedger ledger;
  Rng rng2(5);
  color_layers_in_reverse(g, l, 4, lin.coloring, lin.num_colors,
                          ListEngine::kRandomized, &rng2, c, ledger, "t");
  EXPECT_TRUE(is_proper_partial(g, c));
  EXPECT_EQ(count_uncolored(c), 1);  // just the base vertex
}

TEST(LayerColoring, VertexSetInstanceSkipsColored) {
  const Graph g = cycle_graph(6);
  RoundLedger tmp;
  const auto lin = linial_coloring(g, tmp);
  Coloring c(6, kUncolored);
  c[0] = 0;
  RoundLedger ledger;
  color_vertex_set_as_list_instance(g, {0, 1, 2, 3, 4, 5}, 3, lin.coloring,
                                    lin.num_colors, ListEngine::kDeterministic,
                                    nullptr, c, ledger, "t");
  EXPECT_EQ(c[0], 0);
  EXPECT_TRUE(is_proper_complete(g, c));
}

}  // namespace
}  // namespace deltacol
