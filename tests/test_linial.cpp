// Linial's O(Delta^2) coloring: correctness, palette size, round count.
#include <gtest/gtest.h>

#include "coloring/linial.h"
#include "graph/generators.h"
#include "local/round_ledger.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace deltacol {
namespace {

class LinialTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LinialTest, ProperSmallPaletteFewRounds) {
  const auto [n, d] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n + d));
  const Graph g = random_regular(n, d, rng);
  RoundLedger ledger;
  const LinialResult res = linial_coloring(g, ledger);
  EXPECT_TRUE(is_proper_with_palette(g, res.coloring, res.num_colors));
  // Fixpoint palette is (next_prime(~2 Delta))^2 = O(Delta^2).
  EXPECT_LE(res.num_colors, 25 * (d + 1) * (d + 1));
  // O(log* n) rounds: generous absolute cap.
  EXPECT_LE(res.rounds, 8);
  EXPECT_EQ(ledger.total(), res.rounds);
  EXPECT_EQ(ledger.phase_total("linial"), res.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinialTest,
    ::testing::Combine(::testing::Values(32, 256, 2048),
                       ::testing::Values(3, 4, 8)));

TEST(Linial, WorksOnPathAndCycle) {
  for (const Graph& g : {path_graph(100), cycle_graph(101)}) {
    RoundLedger ledger;
    const LinialResult res = linial_coloring(g, ledger);
    EXPECT_TRUE(is_proper_with_palette(g, res.coloring, res.num_colors));
    EXPECT_LE(res.num_colors, 49);  // O(Delta^2) with Delta = 2
  }
}

TEST(Linial, LargeDegreeSmallGraph) {
  const Graph g = complete_bipartite(10, 10);
  RoundLedger ledger;
  const LinialResult res = linial_coloring(g, ledger);
  EXPECT_TRUE(is_proper_with_palette(g, res.coloring, res.num_colors));
}

TEST(Linial, DeterministicAcrossRuns) {
  Rng rng(5);
  const Graph g = random_regular(128, 4, rng);
  RoundLedger l1, l2;
  const auto a = linial_coloring(g, l1);
  const auto b = linial_coloring(g, l2);
  EXPECT_EQ(a.coloring, b.coloring);
  EXPECT_EQ(a.num_colors, b.num_colors);
}

TEST(ColorReduction, ReducesToDeltaPlusOne) {
  Rng rng(77);
  const Graph g = random_regular(512, 4, rng);
  RoundLedger ledger;
  const auto lin = linial_coloring(g, ledger);
  const auto red =
      reduce_to_delta_plus_one(g, lin.coloring, lin.num_colors, ledger);
  EXPECT_EQ(red.num_colors, 5);
  EXPECT_TRUE(is_proper_with_palette(g, red.coloring, 5));
  // One round per eliminated class.
  EXPECT_EQ(ledger.phase_total("color-reduction"), lin.num_colors - 5);
}

TEST(ColorReduction, NoopWhenAlreadySmall) {
  const Graph g = cycle_graph(6);
  const Coloring c{0, 1, 0, 1, 0, 1};
  RoundLedger ledger;
  const auto red = reduce_to_delta_plus_one(g, c, 2, ledger);
  EXPECT_EQ(red.coloring, c);
  EXPECT_EQ(ledger.total(), 0);
}

TEST(ColorReduction, RejectsImproperInput) {
  const Graph g = path_graph(3);
  RoundLedger ledger;
  EXPECT_THROW(reduce_to_delta_plus_one(g, {0, 0, 1}, 2, ledger),
               ContractViolation);
}

TEST(ColorReduction, ScheduleHelperEndToEnd) {
  Rng rng(78);
  const Graph g = random_regular(1024, 6, rng);
  RoundLedger ledger;
  const auto sched = delta_plus_one_schedule(g, ledger);
  EXPECT_EQ(sched.num_colors, 7);
  EXPECT_TRUE(is_proper_with_palette(g, sched.coloring, 7));
  EXPECT_EQ(ledger.total(), sched.rounds);
}

TEST(Linial, RoundsGrowSlowlyWithN) {
  // log*-type growth: going from 2^6 to 2^16 vertices should add at most a
  // couple of rounds.
  Rng rng(9);
  const Graph small = random_regular(64, 4, rng);
  const Graph big = random_regular(65536, 4, rng);
  RoundLedger ls, lb;
  const auto rs = linial_coloring(small, ls);
  const auto rb = linial_coloring(big, lb);
  EXPECT_LE(rb.rounds, rs.rounds + 3);
}

}  // namespace
}  // namespace deltacol
