// Distributed (deg+1)-list coloring: deterministic class-sweep engine and
// randomized trial engine (Theorems 18/19 stand-ins).
#include <gtest/gtest.h>

#include "coloring/linial.h"
#include "coloring/list_coloring.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace deltacol {
namespace {

ListAssignment deg_plus_one_lists(const Graph& g, int palette, int offset) {
  ListAssignment lists(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int i = 0; i <= g.degree(v); ++i) {
      lists[static_cast<std::size_t>(v)].push_back((offset * v + i) % palette);
    }
    auto& l = lists[static_cast<std::size_t>(v)];
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
    // Guarantee deg+1 distinct entries.
    for (int x = 0; static_cast<int>(l.size()) <= g.degree(v); ++x) {
      if (!std::binary_search(l.begin(), l.end(), x)) {
        l.insert(std::lower_bound(l.begin(), l.end(), x), x);
      }
    }
  }
  return lists;
}

struct Instance {
  Graph g;
  ListAssignment lists;
  Coloring schedule;
  int schedule_colors = 0;
};

Instance make_instance(int n, int d, std::uint64_t seed, int palette_stretch) {
  Rng rng(seed);
  Instance inst;
  inst.g = random_regular(n, d, rng);
  inst.lists = deg_plus_one_lists(inst.g, d + 1 + palette_stretch, 3);
  RoundLedger tmp;
  const auto lin = linial_coloring(inst.g, tmp);
  inst.schedule = lin.coloring;
  inst.schedule_colors = lin.num_colors;
  return inst;
}

class ListColoringTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ListColoringTest, DeterministicEngine) {
  const auto [n, d, seed] = GetParam();
  auto inst = make_instance(n, d, static_cast<std::uint64_t>(seed), 2);
  Coloring c(static_cast<std::size_t>(n), kUncolored);
  RoundLedger ledger;
  det_list_coloring(inst.g, inst.lists, inst.schedule, inst.schedule_colors, c,
                    ledger, "test");
  EXPECT_TRUE(is_proper_complete(inst.g, c));
  EXPECT_TRUE(respects_lists(c, inst.lists));
  EXPECT_EQ(ledger.total(), inst.schedule_colors);
}

TEST_P(ListColoringTest, RandomizedEngine) {
  const auto [n, d, seed] = GetParam();
  auto inst = make_instance(n, d, static_cast<std::uint64_t>(seed), 2);
  Coloring c(static_cast<std::size_t>(n), kUncolored);
  RoundLedger ledger;
  Rng rng(static_cast<std::uint64_t>(seed) + 99);
  rand_list_coloring(inst.g, inst.lists, inst.schedule, inst.schedule_colors,
                     rng, c, ledger, "test");
  EXPECT_TRUE(is_proper_complete(inst.g, c));
  EXPECT_TRUE(respects_lists(c, inst.lists));
  EXPECT_GT(ledger.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListColoringTest,
    ::testing::Combine(::testing::Values(24, 96, 300),
                       ::testing::Values(3, 4, 6),
                       ::testing::Values(1, 2)));

TEST(ListColoring, RespectsPrecoloredVertices) {
  const Graph g = cycle_graph(6);
  const ListAssignment lists(6, {0, 1, 2});
  RoundLedger tmp;
  const auto lin = linial_coloring(g, tmp);
  Coloring c(6, kUncolored);
  c[0] = 2;
  RoundLedger ledger;
  det_list_coloring(g, lists, lin.coloring, lin.num_colors, c, ledger, "t");
  EXPECT_EQ(c[0], 2);
  EXPECT_TRUE(is_proper_complete(g, c));
}

TEST(ListColoring, PreconditionChecker) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(lists_have_deg_plus_one(g, ListAssignment(4, {0, 1, 2})));
  EXPECT_FALSE(lists_have_deg_plus_one(g, ListAssignment(4, {0, 1})));
  EXPECT_FALSE(lists_have_deg_plus_one(g, ListAssignment(3, {0, 1, 2})));
}

TEST(ListColoring, DetThrowsOnUnderfullLists) {
  // deg-sized identical lists on an odd cycle cannot be completed greedily.
  const Graph g = cycle_graph(5);
  const ListAssignment lists(5, {0, 1});
  RoundLedger tmp;
  const auto lin = linial_coloring(g, tmp);
  Coloring c(5, kUncolored);
  RoundLedger ledger;
  EXPECT_THROW(det_list_coloring(g, lists, lin.coloring, lin.num_colors, c,
                                 ledger, "t"),
               ContractViolation);
}

TEST(ListColoring, RandomizedMatchesLogNRoundBudget) {
  auto inst = make_instance(4096, 4, 31, 1);
  Coloring c(4096, kUncolored);
  RoundLedger ledger;
  Rng rng(7);
  rand_list_coloring(inst.g, inst.lists, inst.schedule, inst.schedule_colors,
                     rng, c, ledger, "t");
  EXPECT_TRUE(is_proper_complete(inst.g, c));
  // 4 log2 n + 16 is the internal cap before deterministic fallback; on
  // deg+1 instances the trial engine should finish well under it.
  EXPECT_LE(ledger.total(), 4 * 12 + 16);
}

}  // namespace
}  // namespace deltacol
