// The LOCAL-model simulator: round ledger, synchronous engine, gather oracle.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "local/neighborhood.h"
#include "local/round_ledger.h"
#include "local/sync_engine.h"
#include "util/check.h"

namespace deltacol {
namespace {

TEST(RoundLedger, ChargesAndAggregates) {
  RoundLedger l;
  l.charge(3, "a");
  l.charge(2, "b");
  l.charge(4, "a");
  EXPECT_EQ(l.total(), 9);
  EXPECT_EQ(l.phase_total("a"), 7);
  EXPECT_EQ(l.phase_total("b"), 2);
  EXPECT_EQ(l.phase_total("missing"), 0);
  EXPECT_EQ(l.breakdown().size(), 2u);
  EXPECT_THROW(l.charge(-1, "x"), ContractViolation);
}

TEST(RoundLedger, MergeAndReset) {
  RoundLedger a, b;
  a.charge(1, "x");
  b.charge(2, "x");
  b.charge(3, "y");
  a.merge(b);
  EXPECT_EQ(a.total(), 6);
  EXPECT_EQ(a.phase_total("x"), 3);
  a.reset();
  EXPECT_EQ(a.total(), 0);
  EXPECT_TRUE(a.breakdown().empty());
}

TEST(RoundLedger, ReportMentionsPhases) {
  RoundLedger l;
  l.charge(5, "phase-one");
  const auto rep = l.report();
  EXPECT_NE(rep.find("phase-one"), std::string::npos);
  EXPECT_NE(rep.find("5"), std::string::npos);
}

// A flood-fill over the SyncEngine must compute BFS distances in exactly
// eccentricity(source) rounds — the definitional LOCAL-model behavior.
TEST(SyncEngine, FloodFillMatchesBfs) {
  const Graph g = grid_graph(5, 6, false);
  struct State {
    int dist = -1;
  };
  const int rounds = eccentricity(g, 0);
  RoundLedger ledger2;
  SyncEngine<State, int> eng2(g, ledger2, "flood");
  eng2.state(0).dist = 0;
  for (int t = 0; t < rounds; ++t) {
    eng2.round(
        [&g, &eng2](int v, const State& s) {
          SyncEngine<State, int>::Outbox out;
          if (s.dist >= 0) {
            for (int u : g.neighbors(v)) out.emplace_back(u, s.dist + 1);
          }
          return out;
        },
        [](int, State& s, const SyncEngine<State, int>::Inbox& inbox) {
          for (const auto& [from, d] : inbox) {
            if (s.dist < 0 || d < s.dist) s.dist = d;
          }
        });
  }
  const auto want = bfs_distances(g, 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(eng2.state(v).dist, want[v]) << "vertex " << v;
  }
  EXPECT_EQ(ledger2.total(), rounds);
}

TEST(SyncEngine, RejectsNonNeighborMessages) {
  const Graph g = path_graph(4);
  RoundLedger ledger;
  SyncEngine<int, int> eng(g, ledger, "bad");
  EXPECT_THROW(
      eng.round(
          [](int v, const int&) {
            SyncEngine<int, int>::Outbox out;
            if (v == 0) out.emplace_back(3, 42);  // 3 is not a neighbor of 0
            return out;
          },
          [](int, int&, const SyncEngine<int, int>::Inbox&) {}),
      ContractViolation);
}

TEST(NeighborhoodOracle, ChargesGatherRadius) {
  const Graph g = cycle_graph(12);
  RoundLedger ledger;
  NeighborhoodOracle oracle(g, ledger);
  oracle.begin_gather(3, "gather");
  EXPECT_EQ(ledger.total(), 3);
  const auto sub = oracle.ball_subgraph(0, 3);
  EXPECT_EQ(sub.graph.num_vertices(), 7);  // 0, +-1, +-2, +-3
  // Radius above the gathered bound is a contract violation.
  EXPECT_THROW(oracle.ball_subgraph(0, 4), ContractViolation);
}

}  // namespace
}  // namespace deltacol
