// The shard execution layer (runtime/mailbox.h): Transport semantics,
// mailbox routing + shard-major merge order, the sharded
// ParallelSyncEngine path (bit-identical to the serial engine for every
// shards x threads combination, even under a scheduling-perverse custom
// Transport), message-volume accounting against GraphView cross-edge
// counts, and the shard-placed ComponentScheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "graph/generators.h"
#include "graph/partition.h"
#include "local/round_ledger.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "runtime/component_scheduler.h"
#include "runtime/mailbox.h"
#include "runtime/parallel_sync_engine.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(InProcessTransport, RunsEveryShardExactlyOnce) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    InProcessTransport transport(7, threads > 1 ? &pool : nullptr);
    EXPECT_EQ(transport.num_shards(), 7);
    std::vector<int> hits(7, 0);
    transport.run_shards([&](int s) { ++hits[static_cast<std::size_t>(s)]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(Mailbox, RoutesByDestinationOwnerAndKeepsPostOrder) {
  const VertexPartition part = VertexPartition::contiguous(10, 3);
  // Shards: [0,3), [3,6), [6,10).
  Mailbox<int> mb(&part);
  mb.post(0, /*from=*/1, /*to=*/4, 100);  // -> slot (0, 1)
  mb.post(0, /*from=*/1, /*to=*/9, 101);  // -> slot (0, 2)
  mb.post(0, /*from=*/2, /*to=*/4, 102);  // -> slot (0, 1), after the first
  mb.post(2, /*from=*/7, /*to=*/0, 103);  // -> slot (2, 0)
  ASSERT_EQ(mb.slot(0, 1).size(), 2u);
  EXPECT_EQ(mb.slot(0, 1)[0].from, 1);
  EXPECT_EQ(mb.slot(0, 1)[0].msg, 100);
  EXPECT_EQ(mb.slot(0, 1)[1].from, 2);
  EXPECT_EQ(mb.slot(0, 1)[1].msg, 102);
  ASSERT_EQ(mb.slot(0, 2).size(), 1u);
  EXPECT_EQ(mb.slot(0, 2)[0].to, 9);
  ASSERT_EQ(mb.slot(2, 0).size(), 1u);
  EXPECT_EQ(mb.slot(2, 0)[0].msg, 103);
  EXPECT_TRUE(mb.slot(1, 1).empty());
  const auto counts = mb.slot_counts();
  ASSERT_EQ(counts.size(), 9u);
  EXPECT_EQ(counts[0 * 3 + 1], 2);
  EXPECT_EQ(counts[2 * 3 + 0], 1);
  mb.clear();
  EXPECT_TRUE(mb.slot(0, 1).empty());
}

// One dense flood round through the sharded engine: every node sends its id
// to every neighbor. Pins (a) inbox contents = sorted neighbor list,
// (b) per-slot volume = GraphView cross/internal edge counts.
TEST(ShardedEngine, FloodRoundDeliversExactlyTheAdjacency) {
  Rng rng(7);
  const Graph g = random_graph_max_degree(120, 6, 1.8, rng);
  const int n = g.num_vertices();
  for (int num_shards : {1, 2, 4}) {
    ThreadPool pool(4);
    ShardRuntime shards(g, num_shards, &pool);
    RoundLedger ledger;
    struct State {
      std::vector<int> heard;
    };
    ParallelSyncEngine<State, int> engine(g, ledger, "flood", &pool, &shards);
    engine.round(
        [&g](int v, const State&) {
          std::vector<std::pair<int, int>> out;
          for (int u : g.neighbors(v)) out.push_back({u, v});
          return out;
        },
        [](int, State& s, const std::vector<std::pair<int, int>>& inbox) {
          for (const auto& [from, msg] : inbox) {
            EXPECT_EQ(from, msg);
            s.heard.push_back(from);
          }
        });
    for (int v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      const auto& heard = engine.state(v).heard;
      ASSERT_EQ(heard.size(), nbrs.size()) << "node " << v;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_EQ(heard[i], nbrs[i]) << "node " << v;
      }
    }
    EXPECT_EQ(ledger.total(), 1);
    // Volume accounting: one round, 2m envelopes, split per slot exactly as
    // the views count internal/cross edges.
    EXPECT_EQ(shards.rounds_recorded(), 1);
    EXPECT_EQ(shards.total_messages(), 2 * g.num_edges());
    std::int64_t cross = 0;
    for (int s = 0; s < shards.num_shards(); ++s) {
      const GraphView& view = shards.view(s);
      EXPECT_EQ(shards.slot_messages(s, s), 2 * view.internal_edges());
      for (int d = 0; d < shards.num_shards(); ++d) {
        if (d == s) continue;
        EXPECT_EQ(shards.slot_messages(s, d), view.cross_edges(d))
            << s << " -> " << d;
        cross += shards.slot_messages(s, d);
      }
    }
    EXPECT_EQ(shards.cross_shard_messages(), cross);
    if (num_shards == 1) {
      EXPECT_EQ(cross, 0);
    }
  }
}

std::pair<std::vector<bool>, std::int64_t> serial_luby(const Graph& g) {
  Rng rng(99);
  RoundLedger ledger;
  auto mis = luby_mis_message_passing(g, rng, ledger, "mis");
  return {mis, ledger.total()};
}

TEST(ShardedEngine, LubyBitIdenticalForEveryShardsTimesThreads) {
  Rng grng(123);
  const Graph g = random_regular(400, 6, grng);
  const auto [serial_mis, serial_rounds] = serial_luby(g);
  EXPECT_TRUE(is_mis(g, serial_mis));
  for (int num_shards : {1, 2, 3, 8}) {
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
      ShardRuntime shards(g, num_shards, pool_ptr);
      Rng rng(99);
      RoundLedger ledger;
      const auto mis =
          luby_mis_message_passing(g, rng, ledger, "mis", pool_ptr, &shards);
      EXPECT_EQ(mis, serial_mis)
          << num_shards << " shards, " << threads << " threads";
      EXPECT_EQ(ledger.total(), serial_rounds)
          << num_shards << " shards, " << threads << " threads";
      EXPECT_GT(shards.rounds_recorded(), 0);
    }
  }
}

// A scheduling-perverse Transport: shards run in REVERSE order, serially.
// Results must not move — the merge is keyed on (shard id, chunk index,
// sender id), never on execution order.
class ReverseTransport final : public Transport {
 public:
  explicit ReverseTransport(int num_shards) : num_shards_(num_shards) {}
  int num_shards() const override { return num_shards_; }
  void run_shards(const std::function<void(int)>& body) override {
    for (int s = num_shards_ - 1; s >= 0; --s) body(s);
  }
  void exchange() override { ++exchanges_; }
  int exchanges() const { return exchanges_; }

 private:
  int num_shards_;
  int exchanges_ = 0;
};

TEST(ShardedEngine, ReverseShardOrderTransportIsObservationallyEquivalent) {
  Rng grng(31);
  const Graph g = random_regular(300, 4, grng);
  const auto [serial_mis, serial_rounds] = serial_luby(g);
  auto transport = std::make_unique<ReverseTransport>(5);
  ReverseTransport* raw = transport.get();
  ShardRuntime shards(g, 5, nullptr, std::move(transport));
  Rng rng(99);
  RoundLedger ledger;
  const auto mis =
      luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &shards);
  EXPECT_EQ(mis, serial_mis);
  EXPECT_EQ(ledger.total(), serial_rounds);
  // One exchange per round went through the custom backend.
  EXPECT_EQ(raw->exchanges(), static_cast<int>(shards.rounds_recorded()));
}

TEST(ComponentScheduler, PlacedRunExecutesEveryJobOnItsShard) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
    const ComponentScheduler sched(pool_ptr);
    InProcessTransport transport(3, pool_ptr);
    const std::vector<int> placement = {2, 0, 1, 0, 2, 2, 1};
    std::vector<int> ran(placement.size(), 0);
    sched.run_placed(placement, transport,
                     [&](int i) { ++ran[static_cast<std::size_t>(i)]; });
    for (int r : ran) EXPECT_EQ(r, 1);
  }
}

TEST(ComponentScheduler, PlacedRunRethrowsTheLowestIndexException) {
  ThreadPool pool(4);
  const ComponentScheduler sched(&pool);
  InProcessTransport transport(4, &pool);
  // Jobs 2 (shard 3) and 5 (shard 0) throw; every job still runs and the
  // serial-order winner is job 2 regardless of shard scheduling.
  const std::vector<int> placement = {0, 1, 3, 2, 1, 0};
  std::vector<int> ran(placement.size(), 0);
  try {
    sched.run_placed(placement, transport, [&](int i) {
      ++ran[static_cast<std::size_t>(i)];
      if (i == 2 || i == 5) {
        throw std::runtime_error("job " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 2");
  }
  for (int r : ran) EXPECT_EQ(r, 1);
}

TEST(ComponentScheduler, PlacedMaxTotalMatchesUnplaced) {
  ThreadPool pool(4);
  const ComponentScheduler sched(&pool);
  InProcessTransport transport(3, &pool);
  const std::vector<int> placement = {1, 1, 0, 2, 0};
  const auto job = [](int i, RoundLedger& ledger) {
    ledger.charge(10 * i + 1, "child");
  };
  const std::int64_t placed =
      sched.run_max_total_placed(placement, transport, job);
  const std::int64_t unplaced =
      sched.run_max_total(static_cast<int>(placement.size()), job);
  EXPECT_EQ(placed, unplaced);
  EXPECT_EQ(placed, 41);
}

// --- the explicit drain/fill surface a serializing transport drives --------

TEST(Mailbox, FillDeliversWholeSlotAndTalliesCounters) {
  const VertexPartition part = VertexPartition::contiguous(10, 2);
  Mailbox<int> mb(&part);
  using Env = Mailbox<int>::Envelope;
  mb.fill(0, 1, {Env{7, 1, 100}, Env{8, 2, 101}});
  ASSERT_EQ(mb.slot(0, 1).size(), 2u);
  EXPECT_EQ(mb.slot(0, 1)[0].from, 1);
  EXPECT_EQ(mb.slot(0, 1)[1].msg, 101);
  // fill() feeds the same accounting post() does: counts and wire bits.
  const auto& counts = mb.slot_counts();
  EXPECT_EQ(counts[0 * 2 + 1], 2);
  EXPECT_EQ(mb.slot_bits()[0 * 2 + 1], 2 * 32);
}

TEST(Mailbox, DoubleFillOfOneSlotThrows) {
  const VertexPartition part = VertexPartition::contiguous(10, 2);
  Mailbox<int> mb(&part);
  using Env = Mailbox<int>::Envelope;
  mb.fill(1, 0, {Env{0, 9, 5}});
  EXPECT_THROW(mb.fill(1, 0, {Env{1, 9, 6}}), ContractViolation);
  // clear() rearms the guard — the next round may fill again.
  mb.clear();
  EXPECT_NO_THROW(mb.fill(1, 0, {Env{0, 9, 7}}));
}

TEST(Mailbox, FillOverLocallyPostedEnvelopesThrows) {
  const VertexPartition part = VertexPartition::contiguous(10, 2);
  Mailbox<int> mb(&part);
  using Env = Mailbox<int>::Envelope;
  mb.post(0, /*from=*/1, /*to=*/7, 42);  // slot (0, 1) now has local content
  EXPECT_THROW(mb.fill(0, 1, {Env{7, 1, 42}}), ContractViolation);
}

TEST(Mailbox, DrainEmptiesTheSlotButAccountingSurvives) {
  const VertexPartition part = VertexPartition::contiguous(10, 2);
  Mailbox<int> mb(&part);
  mb.post(0, /*from=*/1, /*to=*/7, 42);
  mb.post(0, /*from=*/2, /*to=*/8, 43);
  auto drained = mb.drain(0, 1);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].msg, 42);
  EXPECT_TRUE(mb.slot(0, 1).empty());
  EXPECT_TRUE(mb.drain(0, 1).empty());  // second drain: nothing left
  // record_round-style accounting still sees both envelopes.
  EXPECT_EQ(mb.slot_counts()[0 * 2 + 1], 2);
  EXPECT_EQ(mb.slot_bits()[0 * 2 + 1], 2 * 32);
  mb.clear();
  EXPECT_EQ(mb.slot_counts()[0 * 2 + 1], 0);
}

// --- the owner-routed encode surface (ExchangePolicy::kOwnerRouted) --------

TEST(Mailbox, EncodeOwnedRowLeavesLocalSlotUntouched) {
  const VertexPartition part = VertexPartition::contiguous(10, 2);
  Mailbox<int> mb(&part);
  mb.post(0, /*from=*/1, /*to=*/2, 40);  // slot (0, 0): stays local
  mb.post(0, /*from=*/1, /*to=*/7, 41);  // slot (0, 1): crosses
  mb.post(0, /*from=*/3, /*to=*/8, 42);  // slot (0, 1), after the first
  auto row = mb.encode_owned_row(0);
  ASSERT_EQ(row.size(), 2u);
  // The local slot is never encoded — rank-local envelopes skip the codec
  // entirely — and its envelopes are still sitting in the mailbox.
  EXPECT_TRUE(row[0].empty());
  ASSERT_EQ(mb.slot(0, 0).size(), 1u);
  EXPECT_EQ(mb.slot(0, 0)[0].msg, 40);
  // The cross slot round-trips bit-exactly, post order preserved.
  const auto decoded = decode_slot<int, Mailbox<int>::Envelope>(row[1]);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].from, 1);
  EXPECT_EQ(decoded[0].to, 7);
  EXPECT_EQ(decoded[0].msg, 41);
  EXPECT_EQ(decoded[1].from, 3);
  EXPECT_EQ(decoded[1].msg, 42);
}

TEST(Mailbox, DoubleOwnedExchangeThrows) {
  const VertexPartition part = VertexPartition::contiguous(10, 2);
  Mailbox<int> mb(&part);
  mb.post(0, /*from=*/1, /*to=*/7, 1);
  EXPECT_NO_THROW(mb.encode_owned_row(0));
  // A second owner-routed exchange in the same round means two collectives
  // raced one mailbox — fail loudly.
  EXPECT_THROW(mb.encode_owned_row(0), ContractViolation);
  // clear() re-arms the guard for the next round.
  mb.clear();
  EXPECT_NO_THROW(mb.encode_owned_row(0));
}

// The owner policy on the in-process backend: full state is kept (no ranks
// to distribute across), but every cross-shard slot round-trips through the
// wire codec during drain — the hermetic coverage of the owner-routed wire
// discipline. Results must be bit-identical to the serial golden for every
// (shards, threads, B) shape.
TEST(ShardedEngine, LubyOwnerPolicyBitIdenticalInProcess) {
  Rng grng(123);
  const Graph g = random_regular(400, 6, grng);
  const auto [serial_mis, serial_rounds] = serial_luby(g);
  for (std::int64_t bits : {std::int64_t{0}, std::int64_t{64}}) {
    // Per-B golden: the serial run under the same CONGEST cap.
    std::int64_t golden_rounds;
    {
      Rng rng(99);
      RoundLedger ledger;
      if (bits > 0) ledger.set_congest_bits(bits);
      const auto mis = luby_mis_message_passing(g, rng, ledger, "mis");
      EXPECT_EQ(mis, serial_mis);
      golden_rounds = ledger.total();
    }
    if (bits == 0) {
      EXPECT_EQ(golden_rounds, serial_rounds);
    }
    for (int num_shards : {1, 2, 8}) {
      for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
        ShardRuntime shards(g, num_shards, pool_ptr);
        shards.set_exchange_policy(ExchangePolicy::kOwnerRouted);
        Rng rng(99);
        RoundLedger ledger;
        if (bits > 0) ledger.set_congest_bits(bits);
        const auto mis =
            luby_mis_message_passing(g, rng, ledger, "mis", pool_ptr, &shards);
        EXPECT_EQ(mis, serial_mis) << num_shards << " shards, " << threads
                                   << " threads, B=" << bits;
        EXPECT_EQ(ledger.total(), golden_rounds)
            << num_shards << " shards, " << threads << " threads, B=" << bits;
      }
    }
  }
}

}  // namespace
}  // namespace deltacol
