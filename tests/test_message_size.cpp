// Pins every registered MessageSize specialization against a hand-computed
// table (runtime/message_size.h sizing convention: payload bits only, fixed
// widths as declared, 1-bit flags, 32-bit length prefix on vectors). These
// constants ARE the CONGEST cost model — a silent change here would shift
// every charged round count and every byte counter, so the table is explicit
// numbers, never re-derived from the code under test.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "mis/luby_sync.h"
#include "runtime/mailbox.h"
#include "runtime/message_size.h"

namespace deltacol {
namespace {

TEST(MessageSize, ScalarTable) {
  EXPECT_EQ(message_bits(true), 1);
  EXPECT_EQ(message_bits(false), 1);
  EXPECT_EQ(message_bits(std::int32_t{0}), 32);
  EXPECT_EQ(message_bits(std::int32_t{-1}), 32);
  EXPECT_EQ(message_bits(std::uint32_t{0xffffffffu}), 32);
  EXPECT_EQ(message_bits(std::int64_t{0}), 64);
  EXPECT_EQ(message_bits(std::uint64_t{0}), 64);
}

TEST(MessageSize, PairSumsItsFields) {
  EXPECT_EQ(message_bits(std::pair<bool, std::uint64_t>{true, 7}), 65);
  EXPECT_EQ(message_bits(std::pair<std::int32_t, std::int32_t>{1, 2}), 64);
  EXPECT_EQ(
      message_bits(std::pair<std::int64_t, std::pair<bool, bool>>{3, {0, 1}}),
      66);
}

TEST(MessageSize, VectorChargesPrefixPlusElements) {
  EXPECT_EQ(message_bits(std::vector<std::int32_t>{}), 32);  // prefix only
  EXPECT_EQ(message_bits(std::vector<std::int32_t>{1, 2, 3}), 32 + 3 * 32);
  EXPECT_EQ(message_bits(std::vector<bool>{true, false}), 32 + 2);
  // Nested: outer prefix + per-element (inner prefix + payload).
  EXPECT_EQ(message_bits(std::vector<std::vector<std::int64_t>>{{1}, {}}),
            32 + (32 + 64) + 32);
}

TEST(MessageSize, LubyMessageIsSixtyFiveBits) {
  // The literal message-passing MIS sends {1-bit join flag, 64-bit
  // priority}; the constant is exported so tests and benches can factor
  // charged totals without re-deriving the wire format.
  EXPECT_EQ(kLubyMessageBits, 65);
}

TEST(MessageSize, MaxEdgeBitsInInboxTakesHeaviestSenderRun) {
  // Sorted-by-sender inbox: per-sender runs are contiguous, a run's bit sum
  // is that directed edge's load, and the max over runs is the value the
  // CONGEST charge divides by B.
  using Inbox = std::vector<std::pair<int, std::uint64_t>>;
  EXPECT_EQ(max_edge_bits_in_inbox(Inbox{}), 0);
  EXPECT_EQ(max_edge_bits_in_inbox(Inbox{{3, 1}}), 64);
  // Sender 1 sent one message (64 bits), sender 4 sent three (192 bits).
  EXPECT_EQ(max_edge_bits_in_inbox(Inbox{{1, 9}, {4, 1}, {4, 2}, {4, 3}}),
            192);
  // The heaviest run may be first: order of runs must not matter.
  EXPECT_EQ(max_edge_bits_in_inbox(Inbox{{0, 1}, {0, 2}, {7, 5}}), 128);
}

TEST(MessageSize, MailboxTalliesBitsAtPostTime) {
  // Mailbox<Msg> accumulates MessageSize bits per (src, dst) slot as
  // envelopes are posted; clear() zeroes the tallies with the slots.
  const VertexPartition part = VertexPartition::contiguous(10, 2);
  Mailbox<std::uint64_t> mailbox(&part);
  mailbox.post(0, 1, 2, 11);  // within shard 0: slot (0, 0)
  mailbox.post(0, 1, 7, 22);  // crosses to shard 1: slot (0, 1)
  mailbox.post(1, 8, 9, 33);  // within shard 1: slot (1, 1)
  mailbox.post(1, 8, 9, 44);
  const auto& bits = mailbox.slot_bits();
  ASSERT_EQ(bits.size(), 4u);
  EXPECT_EQ(bits[0], 64);       // (0, 0)
  EXPECT_EQ(bits[1], 64);       // (0, 1)
  EXPECT_EQ(bits[2], 0);        // (1, 0)
  EXPECT_EQ(bits[3], 2 * 64);   // (1, 1)
  mailbox.clear();
  for (std::int64_t b : mailbox.slot_bits()) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace deltacol
