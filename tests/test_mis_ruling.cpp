// MIS algorithms and (alpha, beta) ruling sets (Lemma 20 stand-ins).
#include <gtest/gtest.h>

#include "coloring/linial.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "mis/packing.h"
#include "mis/ruling_set.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol {
namespace {

class MisTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MisTest, LubyProducesMis) {
  const auto [n, d, seed] = GetParam();
  Rng gen(static_cast<std::uint64_t>(seed) * 13 + 1);
  const Graph g = random_regular(n, d, gen);
  RoundLedger ledger;
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto mis = luby_mis(g, rng, ledger, "mis");
  EXPECT_TRUE(is_mis(g, mis));
  EXPECT_GT(ledger.total(), 0);
}

TEST_P(MisTest, ColoringSweepProducesMis) {
  const auto [n, d, seed] = GetParam();
  Rng gen(static_cast<std::uint64_t>(seed) * 17 + 5);
  const Graph g = random_regular(n, d, gen);
  RoundLedger tmp, ledger;
  const auto lin = linial_coloring(g, tmp);
  const auto mis =
      mis_from_coloring(g, lin.coloring, lin.num_colors, ledger, "mis");
  EXPECT_TRUE(is_mis(g, mis));
  EXPECT_EQ(ledger.total(), lin.num_colors);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisTest,
    ::testing::Combine(::testing::Values(30, 120, 500),
                       ::testing::Values(3, 5),
                       ::testing::Values(1, 2)));

class LubySyncTest : public ::testing::TestWithParam<int> {};

TEST_P(LubySyncTest, MessagePassingEngineProducesMis) {
  Rng gen(static_cast<std::uint64_t>(GetParam()) * 71 + 3);
  const Graph g = random_regular(150, 4, gen);
  RoundLedger ledger;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto mis = luby_mis_message_passing(g, rng, ledger, "sync-mis");
  EXPECT_TRUE(is_mis(g, mis));
  // Two rounds per iteration, O(log n) iterations w.h.p.
  EXPECT_GT(ledger.total(), 0);
  EXPECT_EQ(ledger.total() % 2, 0);
  EXPECT_LE(ledger.total(), 2 * 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubySyncTest, ::testing::Range(1, 6));

TEST(LubySync, AgreesWithArrayEngineOnStructure) {
  // Both engines must satisfy the identical MIS contract on the same graph
  // (the sets themselves may differ — different randomness schedules).
  const Graph g = grid_graph(10, 10, true);
  RoundLedger l1, l2;
  Rng r1(5), r2(5);
  const auto a = luby_mis(g, r1, l1, "mis");
  const auto b = luby_mis_message_passing(g, r2, l2, "mis");
  EXPECT_TRUE(is_mis(g, a));
  EXPECT_TRUE(is_mis(g, b));
}

TEST(Mis, EdgeCases) {
  // Empty adjacency: everything joins.
  const Graph g = Graph::from_edges(4, std::vector<Edge>{});
  RoundLedger ledger;
  Rng rng(1);
  const auto mis = luby_mis(g, rng, ledger, "mis");
  EXPECT_TRUE(is_mis(g, mis));
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(mis[v]);

  // Clique: exactly one joins.
  const Graph k = clique_graph(6);
  Rng rng2(2);
  RoundLedger l2;
  const auto km = luby_mis(k, rng2, l2, "mis");
  EXPECT_TRUE(is_mis(k, km));
  EXPECT_EQ(std::count(km.begin(), km.end(), true), 1);
}

TEST(Mis, VerifierRejectsBadSets) {
  const Graph g = path_graph(4);
  EXPECT_FALSE(is_mis(g, {true, true, false, false}));   // not independent
  EXPECT_FALSE(is_mis(g, {true, false, false, false}));  // not maximal
  EXPECT_TRUE(is_mis(g, {true, false, true, false}));
  EXPECT_TRUE(is_mis(g, {false, true, false, true}));
}

class RulingSetTest
    : public ::testing::TestWithParam<std::tuple<int, RulingSetEngine>> {};

TEST_P(RulingSetTest, ContractHolds) {
  const auto [alpha, engine] = GetParam();
  Rng gen(99);
  const Graph g = random_graph_max_degree(400, 5, 1.6, gen);
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  RoundLedger ledger;
  Rng rng(123);
  const auto m = ruling_set(g, all, alpha, engine, &rng, ledger, "rs");
  EXPECT_FALSE(m.empty());
  const int beta =
      (alpha - 1) *
      ruling_set_cover_radius(g.num_vertices(), engine);
  EXPECT_TRUE(is_ruling_set(g, all, m, alpha, std::max(1, beta)));
  EXPECT_GT(ledger.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RulingSetTest,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(RulingSetEngine::kDeterministic,
                                         RulingSetEngine::kRandomized)));

TEST(RulingSet, AglpBitwiseCrossValidation) {
  // The literal AGLP bitwise algorithm (on the materialized power graph)
  // must satisfy its (alpha, (alpha-1) * ceil(log2 n)) contract; the default
  // deterministic engine charges this algorithm's price.
  Rng gen(101);
  const Graph g = random_graph_max_degree(150, 4, 1.5, gen);
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  for (int alpha : {2, 3}) {
    RoundLedger l_aglp, l_def;
    const auto m_aglp =
        ruling_set(g, all, alpha, RulingSetEngine::kDeterministicAglpBitwise,
                   nullptr, l_aglp, "rs");
    const auto m_def = ruling_set(g, all, alpha,
                                  RulingSetEngine::kDeterministic, nullptr,
                                  l_def, "rs");
    const int beta_aglp =
        (alpha - 1) * ruling_set_cover_radius(
                          g.num_vertices(),
                          RulingSetEngine::kDeterministicAglpBitwise);
    EXPECT_TRUE(is_ruling_set(g, all, m_aglp, alpha, beta_aglp));
    EXPECT_TRUE(is_ruling_set(g, all, m_def, alpha, std::max(1, alpha - 1)));
    // Identical round charging model.
    EXPECT_EQ(l_aglp.total(), l_def.total());
  }
}

TEST(RulingSet, SubsetVariant) {
  Rng gen(7);
  const Graph g = grid_graph(12, 12, true);
  std::vector<int> subset;
  for (int v = 0; v < g.num_vertices(); v += 3) subset.push_back(v);
  RoundLedger ledger;
  Rng rng(8);
  const auto m = ruling_set(g, subset, 4, RulingSetEngine::kRandomized, &rng,
                            ledger, "rs");
  EXPECT_TRUE(is_ruling_set(g, subset, m, 4, 3));
  // Ruling set members come from the subset.
  for (int v : m) EXPECT_EQ(v % 3, 0);
}

TEST(RulingSet, AlphaOneReturnsSubset) {
  const Graph g = path_graph(5);
  RoundLedger ledger;
  const auto m = ruling_set(g, {1, 3}, 1, RulingSetEngine::kDeterministic,
                            nullptr, ledger, "rs");
  EXPECT_EQ(m, (std::vector<int>{1, 3}));
}

TEST(RulingSet, EmptySubset) {
  const Graph g = path_graph(5);
  RoundLedger ledger;
  EXPECT_TRUE(ruling_set(g, {}, 3, RulingSetEngine::kDeterministic, nullptr,
                         ledger, "rs")
                  .empty());
}

TEST(RulingSet, DeterministicIsDeterministic) {
  Rng gen(11);
  const Graph g = random_graph_max_degree(200, 4, 1.5, gen);
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  RoundLedger l1, l2;
  const auto a = ruling_set(g, all, 3, RulingSetEngine::kDeterministic,
                            nullptr, l1, "rs");
  const auto b = ruling_set(g, all, 3, RulingSetEngine::kDeterministic,
                            nullptr, l2, "rs");
  EXPECT_EQ(a, b);
  EXPECT_EQ(l1.total(), l2.total());
}

// The batch-parallel packing engine (mis/packing.h) must be bit-identical
// to the serial greedy for every thread count — the golden test the
// ruling-set engine's correctness argument leans on (DESIGN.md §6).
TEST(Packing, GoldenEquivalenceOverGeneratorZoo) {
  Rng gen(3);
  std::vector<std::pair<const char*, Graph>> zoo;
  zoo.emplace_back("regular", random_regular(400, 5, gen));
  zoo.emplace_back("sparse", random_graph_max_degree(300, 6, 1.7, gen));
  zoo.emplace_back("torus", grid_graph(18, 18, true));
  zoo.emplace_back("gallai", random_gallai_tree(300, 4, gen));
  zoo.emplace_back("cactus", triangle_cactus(250));
  zoo.emplace_back("clique-ring", clique_ring(12, 4));
  zoo.emplace_back("hypercube", hypercube_graph(7));
  zoo.emplace_back("tree", random_tree(300, 5, gen));

  ThreadPool pool2(2), pool8(8);
  for (const auto& [name, g] : zoo) {
    std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
    for (int v = 0; v < g.num_vertices(); ++v) {
      all[static_cast<std::size_t>(v)] = v;
    }
    std::vector<int> strided;
    for (int v = 0; v < g.num_vertices(); v += 3) strided.push_back(v);
    for (const auto& subset : {all, strided}) {
      for (int alpha : {2, 3, 5}) {
        const auto ref = greedy_alpha_packing_reference(g, subset, alpha);
        const std::string label = std::string(name) + " alpha=" +
                                  std::to_string(alpha) + " |S|=" +
                                  std::to_string(subset.size());
        EXPECT_EQ(greedy_alpha_packing(g, subset, alpha, nullptr), ref)
            << label << " serial";
        EXPECT_EQ(greedy_alpha_packing(g, subset, alpha, &pool2), ref)
            << label << " 2 threads";
        EXPECT_EQ(greedy_alpha_packing(g, subset, alpha, &pool8), ref)
            << label << " 8 threads";
      }
    }
  }
}

TEST(Packing, EdgeCases) {
  const Graph p = path_graph(6);
  EXPECT_TRUE(greedy_alpha_packing(p, {}, 3).empty());
  // alpha = 1: every distinct subset member qualifies, returned sorted.
  EXPECT_EQ(greedy_alpha_packing(p, {4, 0, 2}, 1),
            (std::vector<int>{0, 2, 4}));
  // Duplicate subset entries collapse to one pick — for every alpha
  // (repeats are at distance 0, which would break the packing contract).
  EXPECT_EQ(greedy_alpha_packing(p, {2, 2, 2}, 2), (std::vector<int>{2}));
  EXPECT_EQ(greedy_alpha_packing(p, {2, 2}, 1), (std::vector<int>{2}));
  EXPECT_EQ(greedy_alpha_packing_reference(p, {2, 2}, 1),
            (std::vector<int>{2}));
  // Path, alpha = 3: greedy from id 0 picks every third vertex.
  std::vector<int> all{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(greedy_alpha_packing(p, all, 3), (std::vector<int>{0, 3}));
  EXPECT_EQ(greedy_alpha_packing_reference(p, all, 3),
            (std::vector<int>{0, 3}));
}

// The default deterministic ruling-set engine now runs on the packing
// engine: its output (and charge) must be thread-count invariant.
TEST(RulingSet, DeterministicEngineThreadCountInvariant) {
  Rng gen(21);
  const Graph g = random_graph_max_degree(400, 5, 1.6, gen);
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    all[static_cast<std::size_t>(v)] = v;
  }
  for (int alpha : {2, 4}) {
    RoundLedger l_serial;
    const auto serial = ruling_set(g, all, alpha,
                                   RulingSetEngine::kDeterministic, nullptr,
                                   l_serial, "rs");
    EXPECT_TRUE(is_ruling_set(g, all, serial, alpha, alpha - 1));
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      RoundLedger l_pool;
      const auto pooled = ruling_set(g, all, alpha,
                                     RulingSetEngine::kDeterministic, nullptr,
                                     l_pool, "rs", &pool);
      EXPECT_EQ(pooled, serial) << threads << " threads, alpha " << alpha;
      EXPECT_EQ(l_pool.total(), l_serial.total());
    }
  }
}

TEST(RulingSet, PowerGraphChargesMultiplier) {
  // One aux round over distance alpha-1 must charge alpha-1 base rounds.
  const Graph g = cycle_graph(40);
  std::vector<int> all(40);
  for (int v = 0; v < 40; ++v) all[static_cast<std::size_t>(v)] = v;
  RoundLedger l2, l5;
  Rng r1(3), r2(3);
  ruling_set(g, all, 2, RulingSetEngine::kRandomized, &r1, l2, "rs");
  ruling_set(g, all, 5, RulingSetEngine::kRandomized, &r2, l5, "rs");
  EXPECT_GT(l5.total(), l2.total());
}

}  // namespace
}  // namespace deltacol
