// Induced subgraphs, vertex removal, power graphs, disjoint unions.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Ops, InducedSubgraphMapsBothWays) {
  const Graph g = cycle_graph(6);
  const auto sub = induced_subgraph(g, std::vector<int>{1, 2, 3, 5});
  EXPECT_EQ(sub.graph.num_vertices(), 4);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 1-2, 2-3 survive; 5 is isolated
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sub.from_parent[sub.to_parent[i]], i);
  }
  EXPECT_EQ(sub.from_parent[0], -1);
}

TEST(Ops, InducedSubgraphDedupes) {
  const Graph g = path_graph(4);
  const auto sub = induced_subgraph(g, std::vector<int>{2, 2, 1});
  EXPECT_EQ(sub.graph.num_vertices(), 2);
  EXPECT_EQ(sub.graph.num_edges(), 1);
}

TEST(Ops, RemoveVertices) {
  const Graph g = clique_graph(5);
  const auto rest = remove_vertices(g, std::vector<int>{0, 3});
  EXPECT_EQ(rest.graph.num_vertices(), 3);
  EXPECT_EQ(rest.graph.num_edges(), 3);  // K3 remains
}

TEST(Ops, PowerGraphMatchesBfsDistances) {
  Rng rng(12);
  const Graph g = random_graph_max_degree(40, 4, 1.4, rng);
  for (int k : {1, 2, 3}) {
    const Graph p = power_graph(g, k);
    for (int v = 0; v < g.num_vertices(); ++v) {
      const auto d = bfs_distances(g, v);
      for (int u = 0; u < g.num_vertices(); ++u) {
        if (u == v) continue;
        const bool expect = d[u] != kUnreachable && d[u] <= k;
        EXPECT_EQ(p.has_edge(v, u), expect)
            << "k=" << k << " pair (" << v << "," << u << ")";
      }
    }
  }
}

TEST(Ops, PowerGraphOfPathIsBandGraph) {
  const Graph p2 = power_graph(path_graph(6), 2);
  EXPECT_TRUE(p2.has_edge(0, 2));
  EXPECT_FALSE(p2.has_edge(0, 3));
  EXPECT_EQ(p2.num_edges(), 5 + 4);
}

TEST(Ops, DisjointUnionShiftsIds) {
  const Graph g = disjoint_union(path_graph(3), cycle_graph(3));
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 2 + 3);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

}  // namespace
}  // namespace deltacol
