// The parallel runtime's central guarantee (DESIGN.md "Runtime"):
// delta_color at num_threads ∈ {1, 2, 8} — and, since the shard layer,
// num_shards ∈ {1, 2, 8} — produces, for every Algorithm and a fixed seed,
// bit-identical colorings, identical RoundLedger totals and per-phase
// breakdowns, and identical PhaseStats to the serial path (num_threads = 1,
// num_shards = 1 takes the runtime's inline serial branches everywhere).
//
// The DELTACOL_SHARDS environment variable (CI: the --shards 2 leg) shifts
// the BASELINE shard count of every non-shard-specific test here, so the
// whole thread matrix re-runs against a sharded baseline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "util/rng.h"

namespace deltacol {
namespace {

// Baseline shard count: 1 unless the harness (CI shard leg) overrides it.
int env_default_shards() {
  const char* s = std::getenv("DELTACOL_SHARDS");
  if (s == nullptr) return 1;
  const int v = std::atoi(s);
  return v > 1 ? v : 1;
}

void expect_same_ledger(const RoundLedger& a, const RoundLedger& b,
                        const std::string& label) {
  EXPECT_EQ(a.total(), b.total()) << label;
  ASSERT_EQ(a.breakdown().size(), b.breakdown().size()) << label;
  for (std::size_t i = 0; i < a.breakdown().size(); ++i) {
    EXPECT_EQ(a.breakdown()[i].phase, b.breakdown()[i].phase) << label;
    EXPECT_EQ(a.breakdown()[i].rounds, b.breakdown()[i].rounds)
        << label << " phase " << a.breakdown()[i].phase;
  }
}

void expect_same_stats(const PhaseStats& a, const PhaseStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.num_dccs_selected, b.num_dccs_selected) << label;
  EXPECT_EQ(a.base_layer_size, b.base_layer_size) << label;
  EXPECT_EQ(a.num_b_layers, b.num_b_layers) << label;
  EXPECT_EQ(a.num_selected, b.num_selected) << label;
  EXPECT_EQ(a.num_tnodes, b.num_tnodes) << label;
  EXPECT_EQ(a.num_marked, b.num_marked) << label;
  EXPECT_EQ(a.num_c_layers, b.num_c_layers) << label;
  EXPECT_EQ(a.h_vertices, b.h_vertices) << label;
  EXPECT_EQ(a.happy_vertices, b.happy_vertices) << label;
  EXPECT_EQ(a.leftover_vertices, b.leftover_vertices) << label;
  EXPECT_EQ(a.leftover_components, b.leftover_components) << label;
  EXPECT_EQ(a.max_leftover_component, b.max_leftover_component) << label;
  EXPECT_EQ(a.anchors_empty_fallbacks, b.anchors_empty_fallbacks) << label;
  EXPECT_EQ(a.brooks_fixes, b.brooks_fixes) << label;
  EXPECT_EQ(a.repairs, b.repairs) << label;
  EXPECT_EQ(a.retries_used, b.retries_used) << label;
}

const Algorithm kAllAlgorithms[] = {
    Algorithm::kDeterministic,       Algorithm::kRandomizedLarge,
    Algorithm::kRandomizedSmall,     Algorithm::kBaselineND,
    Algorithm::kBaselineGreedyBrooks,
};

void check_graph(const Graph& g, std::uint64_t seed, const char* graph_name) {
  for (Algorithm alg : kAllAlgorithms) {
    DeltaColoringOptions serial_opt;
    serial_opt.seed = seed;
    serial_opt.num_threads = 1;
    serial_opt.num_shards = env_default_shards();
    const DeltaColoringResult serial = delta_color(g, alg, serial_opt);
    validate_delta_coloring(g, serial.coloring, serial.delta);

    for (int threads : {2, 8}) {
      DeltaColoringOptions opt = serial_opt;
      opt.num_threads = threads;
      const DeltaColoringResult res = delta_color(g, alg, opt);
      const std::string label = std::string(graph_name) + " / " +
                                algorithm_name(alg) + " / " +
                                std::to_string(threads) + " threads";
      EXPECT_EQ(res.coloring, serial.coloring) << label;
      EXPECT_EQ(res.delta, serial.delta) << label;
      expect_same_ledger(res.ledger, serial.ledger, label);
      expect_same_stats(res.stats, serial.stats, label);
    }
  }
}

TEST(ParallelDeterminism, AllAlgorithmsOnRegularGraph) {
  Rng rng(17);
  check_graph(random_regular(900, 6, rng), 42, "regular-900-6");
}

TEST(ParallelDeterminism, AllAlgorithmsOnConstantDegree) {
  Rng rng(23);
  // Delta = 4 satisfies every algorithm's precondition (incl. Thm 3's
  // Delta >= 4) while exercising the small-Delta machinery.
  check_graph(random_regular(700, 4, rng), 7, "regular-700-4");
}

TEST(ParallelDeterminism, MultiComponentGraphSchedulesDeterministically) {
  // Several components of different sizes: the ComponentScheduler fans them
  // out; colorings, max-charging and stats folds must stay index-ordered.
  Rng rng(31);
  const Graph a = random_regular(400, 5, rng);
  const Graph b = random_regular(150, 4, rng);
  const Graph c = random_graph_max_degree(250, 6, 1.8, rng);
  check_graph(disjoint_union(disjoint_union(a, b), c), 1234, "3-components");
}

TEST(ParallelDeterminism, GallaiTreeHardCase) {
  // DCC-free everywhere: exercises the leftover/small-component path of the
  // randomized pipeline and the Brooks machinery of the deterministic one.
  Rng rng(47);
  check_graph(random_gallai_tree(500, 4, rng), 99, "gallai-500");
}

TEST(ParallelDeterminism, RandomizedListEngineSharesOneRngStream) {
  // The randomized list engine consumes the shared Rng in active-vertex
  // order; the parallel restructuring must preserve that stream exactly.
  Rng rng(53);
  const Graph g = random_regular(600, 6, rng);
  for (Algorithm alg : {Algorithm::kRandomizedLarge, Algorithm::kDeterministic}) {
    DeltaColoringOptions o1;
    o1.seed = 5;
    o1.list_engine = ListEngine::kRandomized;
    o1.num_threads = 1;
    o1.num_shards = env_default_shards();
    DeltaColoringOptions o8 = o1;
    o8.num_threads = 8;
    const auto r1 = delta_color(g, alg, o1);
    const auto r8 = delta_color(g, alg, o8);
    EXPECT_EQ(r1.coloring, r8.coloring) << algorithm_name(alg);
    expect_same_ledger(r1.ledger, r8.ledger, algorithm_name(alg));
    expect_same_stats(r1.stats, r8.stats, algorithm_name(alg));
  }
}

TEST(ParallelDeterminism, LeftoverComponentSchedulerIsDeterministic) {
  // A deep Gallai-tree interior with a small happiness radius leaves
  // SEVERAL leftover components inside one nice component, so Phase (6)'s
  // inner ComponentScheduler fan-out — not just the outer per-component one
  // — is what runs here. Pre-split RNG streams, index-private ledgers/stats
  // and the max-total charge must make every observable thread-invariant.
  const Graph g = triangle_cactus(5000);
  DeltaColoringOptions serial_opt;
  serial_opt.seed = 9;
  serial_opt.small_variant_radius_cap = 2;
  serial_opt.num_threads = 1;
  serial_opt.num_shards = env_default_shards();
  const DeltaColoringResult serial =
      delta_color(g, Algorithm::kRandomizedSmall, serial_opt);
  validate_delta_coloring(g, serial.coloring, serial.delta);
  ASSERT_GE(serial.stats.leftover_components, 2)
      << "workload no longer exercises the Phase-(6) fan-out";

  for (int threads : {2, 8}) {
    DeltaColoringOptions opt = serial_opt;
    opt.num_threads = threads;
    const DeltaColoringResult res =
        delta_color(g, Algorithm::kRandomizedSmall, opt);
    const std::string label =
        "leftover-scheduler / " + std::to_string(threads) + " threads";
    EXPECT_EQ(res.coloring, serial.coloring) << label;
    expect_same_ledger(res.ledger, serial.ledger, label);
    expect_same_stats(res.stats, serial.stats, label);
  }
}

TEST(ParallelDeterminism, AutoThreadCountAlsoMatches) {
  Rng rng(61);
  const Graph g = random_regular(300, 4, rng);
  DeltaColoringOptions o1;
  o1.seed = 3;
  o1.num_threads = 1;
  o1.num_shards = env_default_shards();
  DeltaColoringOptions oauto = o1;
  oauto.num_threads = 0;  // all hardware threads
  const auto r1 = delta_color(g, Algorithm::kRandomizedSmall, o1);
  const auto rauto = delta_color(g, Algorithm::kRandomizedSmall, oauto);
  EXPECT_EQ(r1.coloring, rauto.coloring);
  expect_same_ledger(r1.ledger, rauto.ledger, "auto threads");
}

// The shard layer's golden contract over the generator zoo: colorings (and
// every other observable) are bit-for-bit identical across shard counts
// {1, 2, 8} × thread counts {1, 2, 8} — the serial unsharded run is the
// oracle. Shards only move placement (component homes, shard-major sweeps,
// mailbox-merged rounds), never data (DESIGN.md §6 "shard-major merge").
TEST(ShardDeterminism, GeneratorZooShardsTimesThreadsGolden) {
  Rng rng(71);
  struct Workload {
    const char* name;
    Graph g;
  };
  const Workload zoo[] = {
      {"regular-500-6", random_regular(500, 6, rng)},
      {"gallai-400-4", random_gallai_tree(400, 4, rng)},
      {"sparse-400-6", random_graph_max_degree(400, 6, 1.8, rng)},
      {"3-components",
       disjoint_union(disjoint_union(random_regular(200, 5, rng),
                                     random_regular(90, 4, rng)),
                      random_graph_max_degree(150, 6, 1.8, rng))},
      {"triangle-cactus", triangle_cactus(1500)},
  };
  const Algorithm algs[] = {Algorithm::kDeterministic,
                            Algorithm::kRandomizedSmall,
                            Algorithm::kBaselineGreedyBrooks};
  for (const auto& w : zoo) {
    for (Algorithm alg : algs) {
      DeltaColoringOptions base;
      base.seed = 2024;
      base.num_threads = 1;
      base.num_shards = 1;
      const DeltaColoringResult oracle = delta_color(w.g, alg, base);
      validate_delta_coloring(w.g, oracle.coloring, oracle.delta);
      for (int num_shards : {1, 2, 8}) {
        for (int threads : {1, 2, 8}) {
          if (num_shards == 1 && threads == 1) continue;  // the oracle
          DeltaColoringOptions opt = base;
          opt.num_shards = num_shards;
          opt.num_threads = threads;
          const DeltaColoringResult res = delta_color(w.g, alg, opt);
          const std::string label = std::string(w.name) + " / " +
                                    algorithm_name(alg) + " / S=" +
                                    std::to_string(num_shards) + " T=" +
                                    std::to_string(threads);
          EXPECT_EQ(res.coloring, oracle.coloring) << label;
          expect_same_ledger(res.ledger, oracle.ledger, label);
          expect_same_stats(res.stats, oracle.stats, label);
        }
      }
    }
  }
}

}  // namespace
}  // namespace deltacol
