// The shard data layer (graph/partition.h): the contiguous deterministic
// VertexPartition (boundary cases: more shards than vertices/components,
// singleton and empty shards, the O(1) shard_of closed form) and GraphView
// halo tables / cross-edge counts pinned against the global adjacency.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/partition.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(VertexPartition, ContiguousAscendingBalanced) {
  const VertexPartition p = VertexPartition::contiguous(10, 3);
  EXPECT_EQ(p.num_shards(), 3);
  EXPECT_EQ(p.begin(0), 0);
  EXPECT_EQ(p.end(2), 10);
  int covered = 0;
  int min_size = 10, max_size = 0;
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(p.begin(s), covered) << "ranges must be contiguous";
    covered = p.end(s);
    min_size = std::min(min_size, p.size(s));
    max_size = std::max(max_size, p.size(s));
  }
  EXPECT_EQ(covered, 10);
  EXPECT_LE(max_size - min_size, 1) << "sizes may differ by at most one";
}

TEST(VertexPartition, ShardOfClosedFormMatchesRangeScan) {
  // The O(1) owner formula must agree with the ranges for every (n, S),
  // including S > n (empty shards) and S == n (singleton shards).
  for (int n = 1; n <= 40; ++n) {
    for (int num_shards = 1; num_shards <= 45; ++num_shards) {
      const VertexPartition p = VertexPartition::contiguous(n, num_shards);
      for (int v = 0; v < n; ++v) {
        const int s = p.shard_of(v);
        ASSERT_TRUE(p.begin(s) <= v && v < p.end(s))
            << "n=" << n << " S=" << num_shards << " v=" << v;
      }
    }
  }
}

TEST(VertexPartition, MoreShardsThanVerticesYieldsEmptyShards) {
  const VertexPartition p = VertexPartition::contiguous(3, 10);
  int nonempty = 0;
  int covered = 0;
  for (int s = 0; s < 10; ++s) {
    EXPECT_GE(p.size(s), 0);
    EXPECT_LE(p.size(s), 1);
    if (p.size(s) > 0) ++nonempty;
    covered += p.size(s);
  }
  EXPECT_EQ(nonempty, 3);
  EXPECT_EQ(covered, 3);
}

TEST(VertexPartition, ResolveNumShards) {
  EXPECT_EQ(VertexPartition::resolve_num_shards(-2), 1);
  EXPECT_EQ(VertexPartition::resolve_num_shards(0), 1);
  EXPECT_EQ(VertexPartition::resolve_num_shards(1), 1);
  EXPECT_EQ(VertexPartition::resolve_num_shards(7), 7);
}

// Brute-force halo of one shard straight from the global adjacency.
std::vector<int> reference_halo(const Graph& g, int lo, int hi) {
  std::set<int> halo;
  for (int v = lo; v < hi; ++v) {
    for (int u : g.neighbors(v)) {
      if (u < lo || u >= hi) halo.insert(u);
    }
  }
  return {halo.begin(), halo.end()};
}

TEST(GraphView, HaloMatchesGlobalAdjacency) {
  Rng rng(11);
  const Graph g = random_graph_max_degree(300, 7, 2.0, rng);
  for (int num_shards : {1, 2, 3, 8}) {
    const VertexPartition p =
        VertexPartition::contiguous(g.num_vertices(), num_shards);
    const auto views = build_graph_views(g, p);
    ASSERT_EQ(static_cast<int>(views.size()), num_shards);
    for (int s = 0; s < num_shards; ++s) {
      const GraphView& view = views[static_cast<std::size_t>(s)];
      const auto expect = reference_halo(g, p.begin(s), p.end(s));
      const auto halo = view.halo();
      ASSERT_EQ(halo.size(), expect.size()) << "shard " << s;
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(halo[i], expect[i]) << "shard " << s << " entry " << i;
      }
      for (int u : expect) EXPECT_TRUE(view.in_halo(u));
      // Owned vertices are never in their own halo.
      for (int v = view.owned_begin(); v < view.owned_end(); ++v) {
        EXPECT_FALSE(view.in_halo(v));
      }
    }
  }
}

TEST(GraphView, EdgeCountsPartitionTheGlobalEdgeSet) {
  Rng rng(13);
  const Graph g = random_regular(240, 6, rng);
  for (int num_shards : {1, 2, 5, 8}) {
    const VertexPartition p =
        VertexPartition::contiguous(g.num_vertices(), num_shards);
    const auto views = build_graph_views(g, p);
    std::int64_t internal = 0;
    std::int64_t cross_directed = 0;
    for (const auto& view : views) {
      internal += view.internal_edges();
      cross_directed += view.total_cross_edges();
      // Per-destination counts sum to the total.
      std::int64_t per_dst = 0;
      for (int d = 0; d < num_shards; ++d) per_dst += view.cross_edges(d);
      EXPECT_EQ(per_dst, view.total_cross_edges());
      // A shard never counts itself as a cross destination.
      EXPECT_EQ(view.cross_edges(view.shard()), 0);
    }
    // Every undirected edge is either internal to exactly one shard or
    // contributes one directed cross edge at each endpoint's shard.
    EXPECT_EQ(2 * internal + cross_directed, 2 * g.num_edges())
        << num_shards << " shards";
    if (num_shards == 1) {
      EXPECT_EQ(cross_directed, 0);
      EXPECT_EQ(internal, g.num_edges());
    }
  }
}

TEST(GraphView, CrossEdgeDestinationsMatchBruteForce) {
  Rng rng(17);
  const Graph g = random_graph_max_degree(150, 5, 1.7, rng);
  const int num_shards = 4;
  const VertexPartition p =
      VertexPartition::contiguous(g.num_vertices(), num_shards);
  const auto views = build_graph_views(g, p);
  for (int s = 0; s < num_shards; ++s) {
    std::vector<std::int64_t> expect(static_cast<std::size_t>(num_shards), 0);
    for (int v = p.begin(s); v < p.end(s); ++v) {
      for (int u : g.neighbors(v)) {
        const int d = p.shard_of(u);
        if (d != s) ++expect[static_cast<std::size_t>(d)];
      }
    }
    for (int d = 0; d < num_shards; ++d) {
      EXPECT_EQ(views[static_cast<std::size_t>(s)].cross_edges(d),
                expect[static_cast<std::size_t>(d)])
          << "shard " << s << " -> " << d;
    }
  }
}

TEST(GraphView, EmptyShardsHaveEmptyViews) {
  // More shards than vertices (and than components): empty shards must
  // build fine with empty halos and zero counts.
  Rng rng(19);
  const Graph g = random_regular(6, 3, rng);
  const VertexPartition p = VertexPartition::contiguous(g.num_vertices(), 9);
  const auto views = build_graph_views(g, p);
  int empty = 0;
  for (const auto& view : views) {
    if (view.num_owned() == 0) {
      ++empty;
      EXPECT_TRUE(view.halo().empty());
      EXPECT_EQ(view.internal_edges(), 0);
      EXPECT_EQ(view.total_cross_edges(), 0);
    }
  }
  EXPECT_EQ(empty, 3);
}

TEST(GraphView, MoreShardsThanComponents) {
  // Two components, eight shards: the partition is id-based, so shards cut
  // straight through components; halos still reconstruct exactly.
  Rng rng(23);
  const Graph a = random_regular(40, 4, rng);
  const Graph b = random_regular(30, 3, rng);
  const Graph g = disjoint_union(a, b);
  const VertexPartition p = VertexPartition::contiguous(g.num_vertices(), 8);
  const auto views = build_graph_views(g, p);
  for (const auto& view : views) {
    const auto expect =
        reference_halo(g, view.owned_begin(), view.owned_end());
    ASSERT_EQ(view.halo().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(view.halo()[i], expect[i]);
    }
  }
}

}  // namespace
}  // namespace deltacol
