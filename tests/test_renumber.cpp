// Locality-aware partitioning (graph/renumber.h + PartitionStrategy):
// permutation validity, pool-invariance, relabeled-graph isomorphism, the
// golden placement-only contract (delta_color and Luby bit-identical between
// the contiguous and cluster strategies for every (S, T, B) tried), the
// cross_edge_fraction metric, renumbered streaming slices, and a hermetic
// 2-rank socketpair differential under the cluster partition.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "graph/renumber.h"
#include "local/round_ledger.h"
#include "mis/luby_sync.h"
#include "net/rank_loader.h"
#include "net/socket_transport.h"
#include "runtime/mailbox.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol {
namespace {

// --- socketpair harness (mirrors tests/test_socket_transport.cpp) ----------

std::pair<std::unique_ptr<SocketTransport>, std::unique_ptr<SocketTransport>>
loopback_pair() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    ADD_FAILURE() << "socketpair failed";
    return {nullptr, nullptr};
  }
  auto t0 = std::make_unique<SocketTransport>(0, 2, std::vector<int>{-1, sv[0]});
  auto t1 = std::make_unique<SocketTransport>(1, 2, std::vector<int>{sv[1], -1});
  return {std::move(t0), std::move(t1)};
}

template <typename Body>
void run_ranks(int world, Body body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

// --- the renumbering itself -------------------------------------------------

void expect_bijection(const Renumbering& r, int n, const std::string& tag) {
  ASSERT_EQ(r.num_vertices(), n) << tag;
  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (int v = 0; v < n; ++v) {
    const int p = r.position_of(v);
    ASSERT_GE(p, 0) << tag;
    ASSERT_LT(p, n) << tag;
    EXPECT_FALSE(hit[static_cast<std::size_t>(p)]) << tag;
    hit[static_cast<std::size_t>(p)] = true;
    EXPECT_EQ(r.original_of(p), v) << tag;
  }
}

TEST(Renumber, ClusterRenumberingIsAPermutation) {
  for (const auto& w : generator_zoo()) {
    const Renumbering r = cluster_renumbering(w.graph);
    expect_bijection(r, w.graph.num_vertices(), w.name);
    EXPECT_GE(r.num_clusters, 1) << w.name;
  }
}

TEST(Renumber, PoolInvariant) {
  // The FrontierBfs contract makes the permutation a pure function of the
  // graph — the pool only accelerates the expansion.
  ThreadPool pool(4);
  for (const auto& w : generator_zoo()) {
    const Renumbering serial = cluster_renumbering(w.graph, 0, nullptr);
    const Renumbering pooled = cluster_renumbering(w.graph, 0, &pool);
    EXPECT_EQ(*serial.to_new, *pooled.to_new) << w.name;
    EXPECT_EQ(*serial.to_old, *pooled.to_old) << w.name;
    EXPECT_EQ(serial.num_clusters, pooled.num_clusters) << w.name;
  }
}

TEST(Renumber, IdentityRenumbering) {
  const Renumbering id = identity_renumbering(5);
  expect_bijection(id, 5, "identity");
  for (int v = 0; v < 5; ++v) EXPECT_EQ(id.position_of(v), v);
}

TEST(Renumber, RelabeledGraphIsIsomorphic) {
  for (const auto& w : generator_zoo()) {
    const Graph& g = w.graph;
    const Renumbering r = cluster_renumbering(g);
    const Graph h = relabeled_graph(g, r);
    ASSERT_EQ(h.num_vertices(), g.num_vertices()) << w.name;
    ASSERT_EQ(h.num_edges(), g.num_edges()) << w.name;
    for (int p = 0; p < h.num_vertices(); ++p) {
      const int v = r.original_of(p);
      ASSERT_EQ(h.degree(p), g.degree(v)) << w.name;
      for (int q : h.neighbors(p)) {
        EXPECT_TRUE(g.has_edge(v, r.original_of(q))) << w.name;
      }
    }
  }
}

// --- the partition built on top ---------------------------------------------

TEST(Renumber, ClusterPartitionOwnsEveryVertexOnce) {
  for (const auto& w : generator_zoo()) {
    const Graph& g = w.graph;
    for (int S : {2, 3, 8}) {
      const VertexPartition part =
          make_partition(g, S, PartitionStrategy::kCluster);
      ASSERT_EQ(part.num_shards(), S) << w.name;
      ASSERT_EQ(part.num_vertices(), g.num_vertices()) << w.name;
      EXPECT_FALSE(part.is_contiguous()) << w.name;
      std::vector<int> owner_count(static_cast<std::size_t>(g.num_vertices()));
      for (int s = 0; s < S; ++s) {
        EXPECT_EQ(part.size(s), part.end(s) - part.begin(s)) << w.name;
        int prev = -1;
        for (int i = 0; i < part.size(s); ++i) {
          const int v = part.owned_vertex(s, i);
          // The keystone of the stable-merge argument: owned lists ascend
          // by ORIGINAL id, so shard-local sweeps visit vertices in the
          // serial relative order.
          EXPECT_GT(v, prev) << w.name;
          prev = v;
          EXPECT_EQ(part.shard_of(v), s) << w.name;
          ++owner_count[static_cast<std::size_t>(v)];
          // vertex_at/position_of agree with the layout range.
          const int p = part.position_of(v);
          EXPECT_GE(p, part.begin(s)) << w.name;
          EXPECT_LT(p, part.end(s)) << w.name;
          EXPECT_EQ(part.vertex_at(p), v) << w.name;
        }
      }
      for (int v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(owner_count[static_cast<std::size_t>(v)], 1) << w.name;
      }
    }
    // S == 1 always degenerates to the contiguous partition (no renumbering
    // cost on the serial path).
    EXPECT_TRUE(
        make_partition(g, 1, PartitionStrategy::kCluster).is_contiguous())
        << w.name;
  }
}

TEST(Renumber, CrossEdgeFraction) {
  // Path 0-1-...-99 at S=2 contiguous: exactly the 49-50 edge crosses.
  const Graph path = path_graph(100);
  EXPECT_DOUBLE_EQ(
      cross_edge_fraction(path, VertexPartition::contiguous(100, 2)),
      1.0 / 99.0);
  EXPECT_DOUBLE_EQ(
      cross_edge_fraction(path, VertexPartition::contiguous(100, 1)), 0.0);
  // On every zoo workload the metric is a fraction, and the cluster layout
  // never does worse than contiguous on already-local ids by more than the
  // trivial bound of 1.
  for (const auto& w : generator_zoo()) {
    for (int S : {2, 8}) {
      const double c = cross_edge_fraction(
          w.graph, VertexPartition::contiguous(w.graph.num_vertices(), S));
      const double k = cross_edge_fraction(
          w.graph, make_partition(w.graph, S, PartitionStrategy::kCluster));
      EXPECT_GE(c, 0.0) << w.name;
      EXPECT_LE(c, 1.0) << w.name;
      EXPECT_GE(k, 0.0) << w.name;
      EXPECT_LE(k, 1.0) << w.name;
    }
  }
}

// --- the golden placement-only contract -------------------------------------

TEST(Renumber, DeltaColorClusterMatchesContiguous) {
  for (const auto& w : generator_zoo()) {
    for (int S : {1, 2, 8}) {
      for (int T : {1, 8}) {
        DeltaColoringOptions opt;
        opt.seed = 7;
        opt.num_threads = T;
        opt.num_shards = S;
        opt.partition = PartitionStrategy::kContiguous;
        const DeltaColoringResult a =
            delta_color(w.graph, Algorithm::kRandomizedSmall, opt);
        opt.partition = PartitionStrategy::kCluster;
        const DeltaColoringResult b =
            delta_color(w.graph, Algorithm::kRandomizedSmall, opt);
        EXPECT_EQ(a.coloring, b.coloring)
            << w.name << " S=" << S << " T=" << T;
        EXPECT_EQ(a.ledger.total(), b.ledger.total())
            << w.name << " S=" << S << " T=" << T;
      }
    }
  }
}

TEST(Renumber, DeltaColorClusterMatchesContiguousUnderCongest) {
  for (const auto& w : generator_zoo()) {
    DeltaColoringOptions opt;
    opt.seed = 7;
    opt.num_shards = 2;
    opt.congest_bits = 64;
    opt.partition = PartitionStrategy::kContiguous;
    const DeltaColoringResult a =
        delta_color(w.graph, Algorithm::kRandomizedSmall, opt);
    opt.partition = PartitionStrategy::kCluster;
    const DeltaColoringResult b =
        delta_color(w.graph, Algorithm::kRandomizedSmall, opt);
    EXPECT_EQ(a.coloring, b.coloring) << w.name;
    EXPECT_EQ(a.ledger.total(), b.ledger.total()) << w.name;
  }
}

TEST(Renumber, LubyClusterRuntimeBitIdentical) {
  for (const auto& w : generator_zoo()) {
    const Graph& g = w.graph;
    std::vector<bool> oracle;
    {
      Rng rng(99);
      RoundLedger ledger;
      oracle = luby_mis_message_passing(g, rng, ledger, "mis");
    }
    for (int S : {2, 8}) {
      ShardRuntime contig(g, S, nullptr);
      ShardRuntime cluster(
          g, make_partition(g, S, PartitionStrategy::kCluster), nullptr);
      std::vector<bool> mc, mk;
      {
        Rng rng(99);
        RoundLedger ledger;
        mc = luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &contig);
      }
      {
        Rng rng(99);
        RoundLedger ledger;
        mk = luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &cluster);
      }
      EXPECT_EQ(mc, oracle) << w.name << " S=" << S;
      EXPECT_EQ(mk, oracle) << w.name << " S=" << S;
      // The same envelopes flow — only their slot routing changes — and
      // cross-shard traffic never grows under the locality layout... the
      // invariant part is exact, the improvement is workload-dependent, so
      // only the invariants are asserted.
      EXPECT_EQ(contig.total_messages(), cluster.total_messages()) << w.name;
      EXPECT_EQ(contig.total_bits(), cluster.total_bits()) << w.name;
      EXPECT_EQ(contig.rounds_recorded(), cluster.rounds_recorded()) << w.name;
      EXPECT_LE(cluster.cross_shard_messages(), cluster.total_messages())
          << w.name;
    }
  }
}

// --- distributed legs --------------------------------------------------------

TEST(Renumber, SocketpairClusterDifferential) {
  for (const auto& w : generator_zoo()) {
    const Graph& g = w.graph;
    const VertexPartition part =
        make_partition(g, 2, PartitionStrategy::kCluster);
    // In-process golden at S=2 under the SAME partition.
    std::vector<bool> golden;
    std::int64_t golden_bits = 0, golden_cross = 0;
    {
      ShardRuntime rt(g, part, nullptr);
      Rng rng(99);
      RoundLedger ledger;
      golden = luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &rt);
      golden_bits = rt.total_bits();
      golden_cross = rt.cross_shard_bits();
    }
    auto [t0, t1] = loopback_pair();
    std::vector<ShardRuntime*> rts(2);
    ShardRuntime r0(g, part, nullptr, std::move(t0));
    ShardRuntime r1(g, part, nullptr, std::move(t1));
    rts[0] = &r0;
    rts[1] = &r1;
    run_ranks(2, [&](int r) {
      ShardRuntime& rt = *rts[static_cast<std::size_t>(r)];
      Rng rng(99);
      RoundLedger ledger;
      const auto mis =
          luby_mis_message_passing(g, rng, ledger, "mis", nullptr, &rt);
      if (mis != golden) {
        throw std::runtime_error("socket rank diverged on " + w.name);
      }
      if (rt.total_bits() != golden_bits ||
          rt.cross_shard_bits() != golden_cross) {
        throw std::runtime_error("byte accounting diverged on " + w.name);
      }
    });
  }
}

TEST(Renumber, StreamedRenumberedSliceMatchesSliceOf) {
  const std::string path = ::testing::TempDir() + "deltacol_renum_zoo.el";
  for (const auto& w : generator_zoo()) {
    save_edge_list(path, w.graph);
    const VertexPartition part =
        make_partition(w.graph, 3, PartitionStrategy::kCluster);
    for (int r = 0; r < 3; ++r) {
      const CsrSlice streamed = load_edge_list_slice(path, part, r);
      const CsrSlice direct = slice_of(w.graph, part, r);
      EXPECT_EQ(streamed.n_global, direct.n_global) << w.name;
      EXPECT_EQ(streamed.lo, direct.lo) << w.name;
      EXPECT_EQ(streamed.hi, direct.hi) << w.name;
      EXPECT_EQ(streamed.offsets, direct.offsets) << w.name;
      EXPECT_EQ(streamed.targets, direct.targets) << w.name;
      // The slice-derived halo (layout ids) matches the GraphView ghost
      // table for the same renumbered partition.
      const GraphView view(w.graph, part, r);
      const std::vector<int> halo = halo_of(streamed);
      EXPECT_EQ(static_cast<int>(halo.size()),
                static_cast<int>(view.halo().size()))
          << w.name;
    }
  }
}

}  // namespace
}  // namespace deltacol
