// Round-accounting invariants of the public API: components run in
// parallel (charged at the max, not the sum), phase breakdowns are
// reproducible, and every algorithm's ledger contains the phases its
// design promises.
#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(RoundAccounting, ParallelComponentsChargeMaxNotSum) {
  Rng rng(3);
  const Graph a = random_regular(400, 4, rng);
  const Graph b = random_regular(400, 4, rng);
  const Graph both = disjoint_union(a, b);
  DeltaColoringOptions opt;
  opt.seed = 11;
  const auto ra = delta_color(a, Algorithm::kRandomizedLarge, opt);
  const auto rb = delta_color(b, Algorithm::kRandomizedLarge, opt);
  const auto rboth = delta_color(both, Algorithm::kRandomizedLarge, opt);
  // Two equal-size components in parallel cost at most one component's
  // rounds plus scheduling slack — far below the serial sum.
  EXPECT_LT(rboth.ledger.total(), ra.ledger.total() + rb.ledger.total());
  // And at least a constant fraction of a single run (same pipeline).
  EXPECT_GT(rboth.ledger.total(), ra.ledger.total() / 2);
}

TEST(RoundAccounting, BreakdownIsReproducible) {
  Rng rng(5);
  const Graph g = random_regular(300, 4, rng);
  DeltaColoringOptions opt;
  opt.seed = 21;
  const auto a = delta_color(g, Algorithm::kRandomizedSmall, opt);
  const auto b = delta_color(g, Algorithm::kRandomizedSmall, opt);
  ASSERT_EQ(a.ledger.breakdown().size(), b.ledger.breakdown().size());
  for (std::size_t i = 0; i < a.ledger.breakdown().size(); ++i) {
    EXPECT_EQ(a.ledger.breakdown()[i].phase, b.ledger.breakdown()[i].phase);
    EXPECT_EQ(a.ledger.breakdown()[i].rounds, b.ledger.breakdown()[i].rounds);
  }
}

TEST(RoundAccounting, ExpectedPhasesPresent) {
  Rng rng(7);
  const Graph g = random_regular(500, 4, rng);
  {
    const auto res = delta_color(g, Algorithm::kDeterministic, {});
    EXPECT_GT(res.ledger.phase_total("linial"), 0);
    EXPECT_GT(res.ledger.phase_total("color-reduction"), 0);
    EXPECT_GT(res.ledger.phase_total("det/ruling-set"), 0);
    EXPECT_GT(res.ledger.phase_total("det/layer-coloring"), 0);
    EXPECT_GT(res.ledger.phase_total("det/base-layer"), 0);
  }
  {
    const auto res = delta_color(g, Algorithm::kRandomizedLarge, {});
    EXPECT_GT(res.ledger.phase_total("rand/1-dcc-detect"), 0);
    EXPECT_GT(res.ledger.phase_total("rand/4-marking"), 0);
    EXPECT_GT(res.ledger.phase_total("rand/5-c-layers"), 0);
  }
  {
    const auto res = delta_color(g, Algorithm::kBaselineND, {});
    EXPECT_GT(res.ledger.phase_total("ps/decomposition"), 0);
    EXPECT_GT(res.ledger.phase_total("ps/layer-coloring"), 0);
  }
}

TEST(RoundAccounting, RandomizedScheduleCheaperThanReductionAtHighDelta) {
  Rng rng(9);
  const Graph g = random_regular(256, 12, rng);
  DeltaColoringOptions det_opt, rand_opt;
  det_opt.list_engine = ListEngine::kDeterministic;
  rand_opt.list_engine = ListEngine::kRandomized;
  const auto det = delta_color(g, Algorithm::kRandomizedLarge, det_opt);
  const auto rnd = delta_color(g, Algorithm::kRandomizedLarge, rand_opt);
  // Delta = 12: the O(Delta^2) schedule reduction dominates the
  // deterministic pipeline; the trial-coloring schedule avoids it.
  EXPECT_GT(det.ledger.phase_total("color-reduction"), 100);
  EXPECT_EQ(rnd.ledger.phase_total("color-reduction"), 0);
  EXPECT_LT(rnd.ledger.total(), det.ledger.total());
}

TEST(RoundAccounting, TrivialComponentsAreCheap) {
  // Cycles-only graph: every component is trivial, so the whole run is the
  // shared schedule plus one parallel (deg+1)-list instance.
  Graph g = cycle_graph(8);
  for (int i = 0; i < 5; ++i) g = disjoint_union(g, cycle_graph(9));
  g = disjoint_union(g, star_graph(3));  // lifts Delta to 3
  const auto res = delta_color(g, Algorithm::kRandomizedSmall, {});
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 3));
  // The merged ledger reports the max component (possibly the star's small
  // pipeline); either way the whole run stays tiny.
  EXPECT_LT(res.ledger.total(), 300);
}

}  // namespace
}  // namespace deltacol
