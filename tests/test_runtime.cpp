// The parallel execution runtime (src/runtime/): ThreadPool semantics
// (chunked execution, nesting, exception propagation, empty regions) and
// bit-for-bit equivalence of ParallelSyncEngine with the serial SyncEngine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/generators.h"
#include "local/round_ledger.h"
#include "local/sync_engine.h"
#include "mis/luby_sync.h"
#include "mis/mis.h"
#include "runtime/component_scheduler.h"
#include "runtime/mailbox.h"
#include "runtime/parallel_sync_engine.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const int n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, [&](int i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPool, EmptyAndSingletonRegionsDoNotDeadlock) {
  ThreadPool pool(4);
  pool.parallel_for(0, 0, [](int) { FAIL() << "body ran on empty range"; });
  pool.parallel_for(5, 3, [](int) { FAIL() << "body ran on inverted range"; });
  pool.parallel_chunks(0, [](int) { FAIL() << "chunk ran on empty region"; });
  int ran = 0;
  pool.parallel_chunks(1, [&](int) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, RangesPartitionContiguouslyAndAscending) {
  ThreadPool pool(3);
  std::vector<std::pair<int, int>> ranges(
      static_cast<std::size_t>(pool.num_range_chunks(1000)));
  pool.parallel_ranges(0, 1000, [&](int chunk, int lo, int hi) {
    ranges[static_cast<std::size_t>(chunk)] = {lo, hi};
  });
  int expect_lo = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LE(lo, hi);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 1000);
}

TEST(ThreadPool, ExceptionsPropagateFromTheLowestFailingChunk) {
  ThreadPool pool(4);
  try {
    pool.parallel_chunks(64, [](int c) {
      if (c % 7 == 3) throw std::runtime_error("chunk " + std::to_string(c));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Chunks 3, 10, 17, ... all throw; the serial-order winner is chunk 3.
    EXPECT_STREQ(e.what(), "chunk 3");
  }
}

// Nested tests go through parallel_chunks, NOT parallel_for: small
// parallel_for ranges fall under the kMinParallelItems inline cutoff and
// would never reach the multi-threaded Region machinery these tests pin.
TEST(ThreadPool, NestedRegionsCompleteWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_chunks(16, [&](int) {
    pool.parallel_chunks(16, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16 * 16);
}

TEST(ThreadPool, NestedExceptionSurfacesThroughOuterRegion) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_chunks(8,
                                    [&](int i) {
                                      pool.parallel_chunks(8, [&](int j) {
                                        if (i == 2 && j == 5) {
                                          throw std::logic_error("inner");
                                        }
                                      });
                                    }),
               std::logic_error);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(ThreadPool::resolve_num_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(-3), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(5), 5);
  EXPECT_GE(ThreadPool::resolve_num_threads(0), 1);  // hardware count
}

// The engine-level determinism pin: the same per-node algorithm driven by
// the serial SyncEngine and by ParallelSyncEngine at several thread counts
// must produce identical results, message orders included (the inboxes are
// sorted the same way, so every receive sees identical input).
TEST(ParallelSyncEngine, BitIdenticalToSerialEngineOnLuby) {
  Rng grng(123);
  const Graph g = random_regular(600, 6, grng);

  // Reference: the serial engine (local/sync_engine.h), via the message-
  // passing Luby that predates the runtime.
  const auto run_serial = [&]() {
    Rng rng(99);
    RoundLedger ledger;
    auto mis = luby_mis_message_passing(g, rng, ledger, "mis");
    return std::make_pair(mis, ledger.total());
  };
  const auto [serial_mis, serial_rounds] = run_serial();
  EXPECT_TRUE(is_mis(g, serial_mis));

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    Rng rng(99);
    RoundLedger ledger;
    const auto mis = luby_mis_message_passing(g, rng, ledger, "mis", &pool);
    EXPECT_EQ(mis, serial_mis) << threads << " threads";
    EXPECT_EQ(ledger.total(), serial_rounds) << threads << " threads";
  }

  // The sharded engine path must also reproduce the serial reference; the
  // shard count comes from DELTACOL_SHARDS when the harness (CI --shards
  // leg) sets it, default 2.
  const char* env = std::getenv("DELTACOL_SHARDS");
  const int env_shards = env != nullptr && std::atoi(env) > 1 ? std::atoi(env) : 2;
  for (int threads : {1, 8}) {
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
    ShardRuntime shards(g, env_shards, pool_ptr);
    Rng rng(99);
    RoundLedger ledger;
    const auto mis =
        luby_mis_message_passing(g, rng, ledger, "mis", pool_ptr, &shards);
    EXPECT_EQ(mis, serial_mis) << env_shards << " shards, " << threads
                               << " threads";
    EXPECT_EQ(ledger.total(), serial_rounds)
        << env_shards << " shards, " << threads << " threads";
  }
}

// Cross-check against the historical serial engine type directly: the
// library keeps SyncEngine as the executable reference semantics.
TEST(ParallelSyncEngine, MatchesSyncEngineRoundForRound) {
  Rng grng(5);
  const Graph g = random_regular(200, 4, grng);
  const int n = g.num_vertices();

  struct State {
    int sum = 0;
  };
  using Msg = int;
  // Every node repeatedly sends its id+round to all neighbors and sums what
  // it hears; after k rounds the states must agree exactly.
  RoundLedger ledger_a;
  SyncEngine<State, Msg> serial(g, ledger_a, "p");
  ThreadPool pool(8);
  RoundLedger ledger_b;
  ParallelSyncEngine<State, Msg> parallel(g, ledger_b, "p", &pool);

  for (int round = 0; round < 5; ++round) {
    const auto send = [&](int v, const State&) {
      std::vector<std::pair<int, Msg>> out;
      for (int u : g.neighbors(v)) out.push_back({u, v * 31 + round});
      return out;
    };
    const auto recv = [](int, State& s,
                         const std::vector<std::pair<int, Msg>>& inbox) {
      for (const auto& [from, m] : inbox) s.sum = s.sum * 13 + from + m;
    };
    serial.round(send, recv);
    parallel.round(send, recv);
  }
  for (int v = 0; v < n; ++v) {
    ASSERT_EQ(serial.state(v).sum, parallel.state(v).sum) << "node " << v;
  }
  EXPECT_EQ(ledger_a.total(), ledger_b.total());
}

TEST(ComponentScheduler, RunsEveryJobOnceAndChargesMax) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    const ComponentScheduler sched(threads > 1 ? &pool : nullptr);
    std::vector<int> ran(9, 0);
    std::vector<RoundLedger> ledgers(9);
    sched.run(9, [&](int i) {
      ran[static_cast<std::size_t>(i)] += 1;
      ledgers[static_cast<std::size_t>(i)].charge(i * 3, "phase-a");
      ledgers[static_cast<std::size_t>(i)].charge(i, "phase-b");
    });
    for (int r : ran) EXPECT_EQ(r, 1);
    RoundLedger parent;
    parent.charge(7, "shared");
    charge_max_component(parent, ledgers);
    // Max child is index 8: 24 + 8 = 32 on top of the shared 7.
    EXPECT_EQ(parent.total(), 7 + 32);
    EXPECT_EQ(parent.phase_total("phase-a"), 24);
    EXPECT_EQ(parent.phase_total("phase-b"), 8);
  }
}

TEST(ComponentScheduler, AllZeroChildrenMergeNothing) {
  std::vector<RoundLedger> ledgers(4);
  ledgers[1].charge(0, "noise");  // a 0-round phase must not leak through
  RoundLedger parent;
  charge_max_component(parent, ledgers);
  EXPECT_EQ(parent.total(), 0);
  EXPECT_TRUE(parent.breakdown().empty());
}

TEST(RoundLedger, ConcurrentChargingIsSafeAndSumsExactly) {
  ThreadPool pool(8);
  RoundLedger ledger;
  pool.parallel_for(0, 2000, [&](int i) {
    ledger.charge(1, i % 2 == 0 ? "even" : "odd");
  });
  EXPECT_EQ(ledger.total(), 2000);
  EXPECT_EQ(ledger.phase_total("even"), 1000);
  EXPECT_EQ(ledger.phase_total("odd"), 1000);
}

}  // namespace
}  // namespace deltacol
