// Shattering behaviour (paper Section 4.2): statistics of the marking
// process and the leftover components, under controlled seeds.
#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Shattering, NoSelectionMeansEverythingIsLeftoverOrBoundary) {
  // With selection probability 0 there are no T-nodes; on a DCC-free graph
  // with no boundary (Gallai tree has leaves -> boundary exists; use a
  // Delta-regular DCC-ball-free graph instead) the algorithm must fall back
  // to Section 4.3 for whatever the C-layers do not absorb.
  Rng rng(1);
  const Graph g = random_regular(500, 4, rng);
  DeltaColoringOptions opt;
  opt.selection_prob = 0.0;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
  EXPECT_EQ(res.stats.num_tnodes, 0);
  EXPECT_EQ(res.stats.num_marked, 0);
}

TEST(Shattering, HighSelectionCreatesTNodesOnTrees) {
  // Trees have no DCCs at all, so B-layers are empty and H = G: the marking
  // process is the only source of progress besides the leaf boundary.
  Rng rng(2);
  const Graph g = random_tree(2000, 4, rng);
  DeltaColoringOptions opt;
  opt.selection_prob = 0.02;
  opt.backoff = 3;
  const auto res = delta_color(g, Algorithm::kRandomizedSmall, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, g.max_degree()));
  EXPECT_EQ(res.stats.num_dccs_selected, 0);
}

TEST(Shattering, MarkedVerticesKeepColorZeroProper) {
  Rng rng(3);
  const Graph g = random_regular(800, 5, rng);
  DeltaColoringOptions opt;
  opt.selection_prob = 0.002;
  opt.backoff = 4;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 5));
  // Marks may survive into the final coloring as color 0; validity above is
  // the real assertion. Stats are self-consistent:
  EXPECT_GE(res.stats.num_marked, 0);
  EXPECT_LE(res.stats.num_tnodes, res.stats.num_selected);
}

TEST(Shattering, StatsAccounting) {
  Rng rng(4);
  const Graph g = random_regular(600, 4, rng);
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, {});
  const auto& s = res.stats;
  EXPECT_GE(s.leftover_components, 0);
  EXPECT_GE(s.leftover_vertices, s.max_leftover_component == 0 ? 0 : 1);
  EXPECT_LE(s.max_leftover_component, std::max(0, s.leftover_vertices));
  EXPECT_GE(s.base_layer_size, 0);
}

TEST(Shattering, BiggerRadiusRemovesMoreViaDccs) {
  // On a torus every vertex sits on a 4-cycle; with r >= 2 all vertices are
  // DCC-flagged, so nothing is left for the shattering phases.
  const Graph g = grid_graph(12, 12, true);
  DeltaColoringOptions opt;
  opt.dcc_radius = 2;
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, opt);
  EXPECT_NO_THROW(validate_delta_coloring(g, res.coloring, 4));
  EXPECT_EQ(res.stats.leftover_vertices, 0);
  EXPECT_GT(res.stats.num_dccs_selected, 0);
}

TEST(Shattering, RetryCounterStaysZeroOnHealthyRuns) {
  Rng rng(5);
  const Graph g = random_regular(400, 4, rng);
  const auto res = delta_color(g, Algorithm::kRandomizedLarge, {});
  EXPECT_EQ(res.stats.retries_used, 0);
}

}  // namespace
}  // namespace deltacol
