// The distributed socket backend (net/): framing over real fds including
// torn-frame / short-read / oversize injection, NetConfig rendezvous
// parsing, the SocketTransport all-gather primitive, per-rank slice loading
// + halo exchange over the wire, and the headline differential: Luby's MIS
// on the message-passing engine over a 2-rank socket cluster is
// bit-identical — colorings, ledgers, and byte counters — to the
// InProcessTransport at S=2, for every zoo workload under LOCAL and
// CONGEST(64).
//
// The two ranks live in one process: each owns a SocketTransport built over
// pre-connected socketpair fds and runs on its own thread, so the suite is
// hermetic (no ports, no processes). The multi-process rendezvous path is
// covered by scripts/run_local_cluster.sh and the tcp-2rank CI leg.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "local/round_ledger.h"
#include "mis/luby_sync.h"
#include "net/frame.h"
#include "net/rank_loader.h"
#include "net/socket_transport.h"
#include "net/wire_codec.h"
#include "runtime/mailbox.h"
#include "util/check.h"
#include "util/rng.h"

namespace deltacol {
namespace {

// --- harness ---------------------------------------------------------------

struct FdPair {
  int a = -1;
  int b = -1;
  FdPair() {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      ADD_FAILURE() << "socketpair failed";
      return;
    }
    a = sv[0];
    b = sv[1];
  }
  // Transports take ownership; only close what was never handed off.
  void close_remaining() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
    a = b = -1;
  }
};

// Two pre-connected rank transports (world = 2) over a socketpair.
std::pair<std::unique_ptr<SocketTransport>, std::unique_ptr<SocketTransport>>
loopback_pair() {
  FdPair fds;
  auto t0 = std::make_unique<SocketTransport>(0, 2, std::vector<int>{-1, fds.a});
  auto t1 = std::make_unique<SocketTransport>(1, 2, std::vector<int>{fds.b, -1});
  fds.a = fds.b = -1;
  return {std::move(t0), std::move(t1)};
}

// Runs rank bodies concurrently (each body gets its rank id) and rethrows
// the first failure on the test thread.
template <typename Body>
void run_ranks(int world, Body body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

// --- framing over real fds -------------------------------------------------

TEST(Frame, RoundTripsOverSocketpair) {
  FdPair fds;
  const WireBuf msg = {1, 2, 3, 250, 251};
  write_frame(fds.a, msg);
  write_frame(fds.a, {});  // empty frames are legal
  EXPECT_EQ(read_frame(fds.b), msg);
  EXPECT_EQ(read_frame(fds.b), WireBuf{});
  fds.close_remaining();
}

TEST(Frame, CleanEofAtBoundaryIsNotAnError) {
  FdPair fds;
  write_frame(fds.a, {9, 9});
  ::close(fds.a);
  fds.a = -1;
  WireBuf out;
  EXPECT_TRUE(try_read_frame(fds.b, out));
  EXPECT_EQ(out, (WireBuf{9, 9}));
  EXPECT_FALSE(try_read_frame(fds.b, out));  // EOF exactly between frames
  EXPECT_THROW(read_frame(fds.b), WireError);
  fds.close_remaining();
}

TEST(Frame, TornPrefixThrows) {
  FdPair fds;
  const std::uint8_t half_prefix[2] = {4, 0};  // 2 of the 4 length bytes
  ASSERT_EQ(::send(fds.a, half_prefix, 2, 0), 2);
  ::close(fds.a);
  fds.a = -1;
  WireBuf out;
  EXPECT_THROW(try_read_frame(fds.b, out), WireError);
  fds.close_remaining();
}

TEST(Frame, ShortReadInsidePayloadThrows) {
  FdPair fds;
  // Prefix promises 10 payload bytes; deliver 3 and hang up.
  const std::uint8_t bytes[] = {10, 0, 0, 0, 7, 7, 7};
  ASSERT_EQ(::send(fds.a, bytes, sizeof(bytes), 0),
            static_cast<ssize_t>(sizeof(bytes)));
  ::close(fds.a);
  fds.a = -1;
  EXPECT_THROW(read_frame(fds.b), WireError);
  fds.close_remaining();
}

TEST(Frame, OversizedLengthPrefixThrows) {
  FdPair fds;
  const std::uint8_t bytes[] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB frame
  ASSERT_EQ(::send(fds.a, bytes, 4, 0), 4);
  EXPECT_THROW(read_frame(fds.b), WireError);
  fds.close_remaining();
}

// A torn exchange frame surfaces as WireError from the transport itself.
TEST(SocketTransport, PeerHangupMidExchangeThrows) {
  FdPair fds;
  auto t0 = std::make_unique<SocketTransport>(0, 2, std::vector<int>{-1, fds.a});
  const int raw = fds.b;
  fds.a = -1;
  std::thread saboteur([&] {
    // Send a torn frame: a length prefix promising 100 bytes, then 3 bytes
    // and a hangup. Rank 0's own (tiny) outbound frame fits in the kernel
    // buffer, so its writer completes without anyone draining.
    const std::uint8_t bytes[] = {100, 0, 0, 0, 1, 2, 3};
    (void)::send(raw, bytes, sizeof(bytes), 0);
    ::close(raw);
  });
  std::vector<WireBuf> row(2);
  EXPECT_THROW(t0->all_gather_rows(std::move(row)), WireError);
  saboteur.join();
  fds.b = -1;
  fds.close_remaining();
}

// --- NetConfig -------------------------------------------------------------

TEST(NetConfig, ParsesEndpointLists) {
  const auto eps = NetConfig::parse_endpoints("127.0.0.1:4000,example.com:81");
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].first, "127.0.0.1");
  EXPECT_EQ(eps[0].second, 4000);
  EXPECT_EQ(eps[1].first, "example.com");
  EXPECT_EQ(eps[1].second, 81);
  EXPECT_THROW(NetConfig::parse_endpoints("nohost"), ContractViolation);
  EXPECT_THROW(NetConfig::parse_endpoints("host:"), ContractViolation);
  EXPECT_THROW(NetConfig::parse_endpoints(":80"), ContractViolation);
  EXPECT_THROW(NetConfig::parse_endpoints("host:notaport"), ContractViolation);
  EXPECT_THROW(NetConfig::parse_endpoints("host:99999"), ContractViolation);
}

TEST(NetConfig, LocalhostEndpointsAndValidation) {
  const auto eps = NetConfig::localhost_endpoints(3, 5000);
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[2], (std::pair<std::string, int>{"127.0.0.1", 5002}));
  NetConfig cfg;
  cfg.rank = 1;
  cfg.world = 3;
  cfg.endpoints = eps;
  EXPECT_NO_THROW(cfg.validate());
  cfg.rank = 3;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.rank = 1;
  cfg.endpoints.pop_back();
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(NetConfig, FromEnvRoundTrip) {
  ASSERT_EQ(::setenv("DELTACOL_RANK", "1", 1), 0);
  ASSERT_EQ(::setenv("DELTACOL_WORLD", "2", 1), 0);
  ASSERT_EQ(::setenv("DELTACOL_ENDPOINTS", "127.0.0.1:7000,127.0.0.1:7001", 1),
            0);
  auto cfg = NetConfig::from_env();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->rank, 1);
  EXPECT_EQ(cfg->world, 2);
  ASSERT_EQ(cfg->endpoints.size(), 2u);
  EXPECT_EQ(cfg->endpoints[1].second, 7001);

  // Port-base shorthand.
  ASSERT_EQ(::unsetenv("DELTACOL_ENDPOINTS"), 0);
  ASSERT_EQ(::setenv("DELTACOL_PORT_BASE", "6100", 1), 0);
  cfg = NetConfig::from_env();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->endpoints[0], (std::pair<std::string, int>{"127.0.0.1", 6100}));

  // Half-set environment is an error, absent environment is nullopt.
  ASSERT_EQ(::unsetenv("DELTACOL_WORLD"), 0);
  EXPECT_THROW(NetConfig::from_env(), ContractViolation);
  ASSERT_EQ(::unsetenv("DELTACOL_RANK"), 0);
  ASSERT_EQ(::unsetenv("DELTACOL_PORT_BASE"), 0);
  EXPECT_FALSE(NetConfig::from_env().has_value());
}

// --- the all-gather primitive ----------------------------------------------

TEST(SocketTransport, AllGatherRowsExchangesEverySlot) {
  auto [t0, t1] = loopback_pair();
  EXPECT_EQ(t0->local_shard(), 0);
  EXPECT_EQ(t1->local_shard(), 1);
  // run_shards on a socket transport is the local rank's body only.
  std::vector<int> hits;
  t1->run_shards([&](int s) { hits.push_back(s); });
  EXPECT_EQ(hits, std::vector<int>{1});

  std::vector<std::vector<std::vector<std::uint8_t>>> got0, got1;
  run_ranks(2, [&](int r) {
    std::vector<WireBuf> row(2);
    row[0] = {std::uint8_t(10 * r + 0)};
    row[1] = {std::uint8_t(10 * r + 1), std::uint8_t(10 * r + 2)};
    auto rows = (r == 0 ? *t0 : *t1).all_gather_rows(std::move(row));
    (r == 0 ? got0 : got1) = std::move(rows);
  });
  // Both ranks see the identical full matrix rows[s][d].
  ASSERT_EQ(got0.size(), 2u);
  EXPECT_EQ(got0, got1);
  EXPECT_EQ(got0[0][0], (WireBuf{0}));
  EXPECT_EQ(got0[0][1], (WireBuf{1, 2}));
  EXPECT_EQ(got0[1][0], (WireBuf{10}));
  EXPECT_EQ(got0[1][1], (WireBuf{11, 12}));
  // Wire accounting: each rank sent one frame and received one.
  EXPECT_EQ(t0->frames_sent(), 1);
  EXPECT_GT(t0->wire_bytes_sent(), 0);
  EXPECT_EQ(t0->wire_bytes_sent(), t1->wire_bytes_received());
  EXPECT_EQ(t1->wire_bytes_sent(), t0->wire_bytes_received());

  // Barriers are empty all-gathers; a second round proves the seq advances.
  run_ranks(2, [&](int r) { (r == 0 ? *t0 : *t1).barrier(); });
  EXPECT_EQ(t0->frames_sent(), 2);
}

// --- per-rank loading + halo exchange --------------------------------------

TEST(RankLoader, StreamedSliceMatchesInMemorySlice) {
  const std::string path = ::testing::TempDir() + "deltacol_slice_zoo.el";
  for (const auto& w : generator_zoo()) {
    save_edge_list(path, w.graph);
    const VertexPartition part =
        VertexPartition::contiguous(w.graph.num_vertices(), 2);
    for (int r = 0; r < 2; ++r) {
      const CsrSlice streamed = load_edge_list_slice(path, 2, r);
      const CsrSlice direct = slice_of(w.graph, part, r);
      EXPECT_EQ(streamed.n_global, direct.n_global) << w.name;
      EXPECT_EQ(streamed.lo, direct.lo) << w.name;
      EXPECT_EQ(streamed.hi, direct.hi) << w.name;
      EXPECT_EQ(streamed.offsets, direct.offsets) << w.name;
      EXPECT_EQ(streamed.targets, direct.targets) << w.name;
      // And the slice-derived halo is exactly the GraphView ghost table.
      const GraphView view(w.graph, part, r);
      const std::vector<int> halo = halo_of(streamed);
      EXPECT_TRUE(std::equal(halo.begin(), halo.end(), view.halo().begin(),
                             view.halo().end()))
          << w.name;
    }
  }
}

TEST(RankLoader, HaloAdjacencyArrivesIntactOverTheWire) {
  for (const auto& w : generator_zoo()) {
    auto [t0, t1] = loopback_pair();
    const VertexPartition part =
        VertexPartition::contiguous(w.graph.num_vertices(), 2);
    run_ranks(2, [&](int r) {
      const CsrSlice mine = slice_of(w.graph, part, r);
      const auto fetched =
          exchange_halo_adjacency(r == 0 ? *t0 : *t1, mine);
      const std::vector<int> halo = halo_of(mine);
      if (fetched.size() != halo.size()) {
        throw std::runtime_error("halo size mismatch on " + w.name);
      }
      for (std::size_t i = 0; i < fetched.size(); ++i) {
        const auto expect = w.graph.neighbors(fetched[i].vertex);
        if (fetched[i].vertex != halo[i] ||
            !std::equal(expect.begin(), expect.end(),
                        fetched[i].neighbors.begin(),
                        fetched[i].neighbors.end())) {
          throw std::runtime_error("halo adjacency mismatch on " + w.name);
        }
      }
    });
  }
}

// --- the owner-routed primitive --------------------------------------------

// Restores (unsets) an environment variable on scope exit, so a test that
// fails mid-way cannot leak its timeout into later tests.
struct EnvGuard {
  std::string name;
  EnvGuard(const std::string& n, const std::string& value) : name(n) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name.c_str()); }
};

TEST(SocketTransport, ExchangeOwnedMovesOnlyOffDiagonalSlots) {
  auto [t0, t1] = loopback_pair();
  std::vector<Transport::OwnedExchange> got(2);
  run_ranks(2, [&](int r) {
    // Rank r addresses one slot to the other rank; the local slot is empty
    // (the contract: it never crosses the wire).
    std::vector<WireBuf> to_peers(2);
    to_peers[1 - r] = {std::uint8_t(100 + r), std::uint8_t(200 + r)};
    std::vector<std::int64_t> counts = {10 * r + 1, 10 * r + 2};
    std::vector<std::int64_t> bits = {100 * r + 1, 100 * r + 2};
    got[static_cast<std::size_t>(r)] =
        (r == 0 ? *t0 : *t1)
            .exchange_owned(std::move(to_peers), std::move(counts),
                            std::move(bits));
  });
  for (int r = 0; r < 2; ++r) {
    const auto& ex = got[static_cast<std::size_t>(r)];
    ASSERT_EQ(ex.slots.size(), 2u);
    // The local slot stays empty; the peer's slot carries its payload.
    EXPECT_TRUE(ex.slots[static_cast<std::size_t>(r)].empty());
    const int peer = 1 - r;
    EXPECT_EQ(ex.slots[static_cast<std::size_t>(peer)],
              (WireBuf{std::uint8_t(100 + peer), std::uint8_t(200 + peer)}));
    // The piggybacked tally rows reassemble the full S x S matrices
    // identically on both ranks.
    EXPECT_EQ(ex.slot_counts, (std::vector<std::int64_t>{1, 2, 11, 12}));
    EXPECT_EQ(ex.slot_bits, (std::vector<std::int64_t>{1, 2, 101, 102}));
  }
  // cross_payload_bytes is MEASURED here: exactly the 2 slot bytes each rank
  // framed to its one peer.
  EXPECT_EQ(t0->cross_payload_bytes(), 2);
  EXPECT_EQ(t1->cross_payload_bytes(), 2);

  // A non-empty local slot is a contract violation, caught before any I/O.
  std::vector<WireBuf> bad(2);
  bad[0] = {1};
  EXPECT_THROW(t0->exchange_owned(std::move(bad), {0, 0}, {0, 0}),
               ContractViolation);
}

// --- multi-machine hardening (DELTACOL_NET_TIMEOUT_MS) ---------------------

TEST(SocketTransport, RendezvousTimesOutWhenAPeerNeverDials) {
  EnvGuard guard("DELTACOL_NET_TIMEOUT_MS", "300");
  // Rank 0 of a 2-rank cluster: it listens and waits for rank 1's dial,
  // which never comes. Without the timeout this would hang forever.
  bool ran = false;
  for (int attempt = 0; attempt < 5 && !ran; ++attempt) {
    const int port_base =
        23000 + static_cast<int>((::getpid() * 7 + attempt * 131) % 30000);
    NetConfig cfg;
    cfg.rank = 0;
    cfg.world = 2;
    cfg.endpoints = NetConfig::localhost_endpoints(2, port_base);
    try {
      SocketTransport t(cfg);
      FAIL() << "rendezvous succeeded with no peer?";
    } catch (const WireError& e) {
      const std::string what = e.what();
      if (what.find("bind") != std::string::npos) continue;  // port taken
      ran = true;
      EXPECT_NE(what.find("timed out"), std::string::npos) << what;
      EXPECT_NE(what.find("to dial"), std::string::npos) << what;
    }
  }
  if (!ran) GTEST_SKIP() << "no free port found for the listener";
}

TEST(SocketTransport, ConnectBudgetBoundedByEnvTimeout) {
  EnvGuard guard("DELTACOL_NET_TIMEOUT_MS", "300");
  // Rank 1 dials rank 0's endpoint, where nothing listens: the env budget
  // replaces the 20 s default, so this fails in ~300 ms.
  bool ran = false;
  for (int attempt = 0; attempt < 5 && !ran; ++attempt) {
    const int port_base =
        23000 + static_cast<int>((::getpid() * 13 + attempt * 173) % 30000);
    NetConfig cfg;
    cfg.rank = 1;
    cfg.world = 2;
    cfg.endpoints = NetConfig::localhost_endpoints(2, port_base);
    try {
      SocketTransport t(cfg);
      FAIL() << "connect succeeded with no listener?";
    } catch (const WireError& e) {
      const std::string what = e.what();
      if (what.find("bind") != std::string::npos) continue;  // port taken
      ran = true;
      EXPECT_NE(what.find("could not connect"), std::string::npos) << what;
    }
  }
  if (!ran) GTEST_SKIP() << "no free port found for the listener";
}

TEST(SocketTransport, SilentPeerMidExchangeNamesTheRank) {
  // The timeout is read at construction: set it before building the pair.
  EnvGuard guard("DELTACOL_NET_TIMEOUT_MS", "300");
  auto [t0, t1] = loopback_pair();
  // Rank 0's tiny frame fits in the kernel buffer, so its send completes;
  // rank 1 never writes, so the read times out and names the silent peer.
  std::vector<WireBuf> row(2);
  try {
    t0->all_gather_rows(std::move(row));
    FAIL() << "exchange completed against a silent peer?";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
  }
}

// --- the headline differential ---------------------------------------------

struct LubyRun {
  std::vector<bool> mis;
  std::int64_t ledger_total = 0;
  std::int64_t total_bits = 0;
  std::int64_t cross_bits = 0;
  std::int64_t total_messages = 0;
  std::int64_t rounds_recorded = 0;
};

LubyRun run_luby(const Graph& g, ShardRuntime& runtime,
                 std::int64_t congest_bits) {
  Rng rng(7);
  RoundLedger ledger;
  if (congest_bits > 0) ledger.set_congest_bits(congest_bits);
  LubyRun out;
  out.mis = luby_mis_message_passing(g, rng, ledger, "luby", nullptr, &runtime);
  out.ledger_total = ledger.total();
  out.total_bits = runtime.total_bits();
  out.cross_bits = runtime.cross_shard_bits();
  out.total_messages = runtime.total_messages();
  out.rounds_recorded = runtime.rounds_recorded();
  return out;
}

TEST(SocketTransport, LubyBitIdenticalToInProcessAcrossTheZoo) {
  for (const auto& w : generator_zoo()) {
    for (std::int64_t bits : {std::int64_t{0}, std::int64_t{64}}) {
      // Golden: the in-process sharded run at S=2.
      ShardRuntime golden_rt(w.graph, 2, nullptr);
      const LubyRun golden = run_luby(w.graph, golden_rt, bits);

      // Distributed: two ranks, each with its own ShardRuntime over its
      // half of the socketpair, running concurrently.
      auto [t0, t1] = loopback_pair();
      std::vector<LubyRun> per_rank(2);
      std::vector<std::unique_ptr<ShardRuntime>> rts(2);
      rts[0] = std::make_unique<ShardRuntime>(w.graph, 2, nullptr,
                                              std::move(t0));
      rts[1] = std::make_unique<ShardRuntime>(w.graph, 2, nullptr,
                                              std::move(t1));
      run_ranks(2, [&](int r) {
        per_rank[static_cast<std::size_t>(r)] =
            run_luby(w.graph, *rts[static_cast<std::size_t>(r)], bits);
      });

      for (int r = 0; r < 2; ++r) {
        const LubyRun& got = per_rank[static_cast<std::size_t>(r)];
        EXPECT_EQ(got.mis, golden.mis) << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.ledger_total, golden.ledger_total)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.total_bits, golden.total_bits)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.cross_bits, golden.cross_bits)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.total_messages, golden.total_messages)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.rounds_recorded, golden.rounds_recorded)
            << w.name << " B=" << bits << " rank " << r;
      }
      // Per-slot counters too: the merge saw exactly the same envelopes.
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          EXPECT_EQ(rts[0]->slot_messages(a, b), golden_rt.slot_messages(a, b));
          EXPECT_EQ(rts[1]->slot_bits(a, b), golden_rt.slot_bits(a, b));
        }
      }
    }
  }
}

// Owner-routed differential: two real ranks under ExchangePolicy::kOwnerRouted
// — rank-local merge over owned-only state, point-to-point cross slots, the
// end-of-run gather — versus the in-process replicated golden at S=2. Every
// observable (MIS, ledger, bit/message counters, the full per-slot matrices)
// must be bit-identical, and the owner runs' MEASURED cross payload must
// equal the replicated runs' PREDICTED one (the same counter, realized).
TEST(SocketTransport, LubyOwnerRoutedBitIdenticalAcrossTheZoo) {
  for (const auto& w : generator_zoo()) {
    for (std::int64_t bits : {std::int64_t{0}, std::int64_t{64}}) {
      // Golden: the in-process sharded run at S=2 (replicated discipline).
      ShardRuntime golden_rt(w.graph, 2, nullptr);
      const LubyRun golden = run_luby(w.graph, golden_rt, bits);

      // Replicated socket run: captures the cross-payload *prediction*.
      std::vector<std::int64_t> predicted(2), replicated_wire(2);
      {
        auto [t0, t1] = loopback_pair();
        SocketTransport* traw[2] = {t0.get(), t1.get()};
        std::vector<std::unique_ptr<ShardRuntime>> rts(2);
        rts[0] = std::make_unique<ShardRuntime>(w.graph, 2, nullptr,
                                                std::move(t0));
        rts[1] = std::make_unique<ShardRuntime>(w.graph, 2, nullptr,
                                                std::move(t1));
        run_ranks(2, [&](int r) {
          run_luby(w.graph, *rts[static_cast<std::size_t>(r)], bits);
        });
        for (int r = 0; r < 2; ++r) {
          predicted[r] = traw[r]->cross_payload_bytes();
          replicated_wire[r] = traw[r]->wire_bytes_sent();
        }
      }

      // Owner-routed socket run.
      auto [t0, t1] = loopback_pair();
      SocketTransport* traw[2] = {t0.get(), t1.get()};
      std::vector<LubyRun> per_rank(2);
      std::vector<std::unique_ptr<ShardRuntime>> rts(2);
      rts[0] = std::make_unique<ShardRuntime>(w.graph, 2, nullptr,
                                              std::move(t0));
      rts[1] = std::make_unique<ShardRuntime>(w.graph, 2, nullptr,
                                              std::move(t1));
      for (auto& rt : rts) rt->set_exchange_policy(ExchangePolicy::kOwnerRouted);
      run_ranks(2, [&](int r) {
        per_rank[static_cast<std::size_t>(r)] =
            run_luby(w.graph, *rts[static_cast<std::size_t>(r)], bits);
      });

      for (int r = 0; r < 2; ++r) {
        const LubyRun& got = per_rank[static_cast<std::size_t>(r)];
        EXPECT_EQ(got.mis, golden.mis) << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.ledger_total, golden.ledger_total)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.total_bits, golden.total_bits)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.cross_bits, golden.cross_bits)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.total_messages, golden.total_messages)
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_EQ(got.rounds_recorded, golden.rounds_recorded)
            << w.name << " B=" << bits << " rank " << r;
        // Prediction (replicated) == realization (owner), per rank. Owner
        // routing must also never put MORE on the wire than the all-gather
        // (the zoo graphs all have non-trivial local slots, so the owned
        // frame's tally header never outweighs the dropped local slot).
        EXPECT_EQ(traw[r]->cross_payload_bytes(), predicted[r])
            << w.name << " B=" << bits << " rank " << r;
        EXPECT_LE(traw[r]->wire_bytes_sent(), replicated_wire[r])
            << w.name << " B=" << bits << " rank " << r;
      }
      // The reassembled per-slot matrices match the golden's exactly.
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          EXPECT_EQ(rts[0]->slot_messages(a, b), golden_rt.slot_messages(a, b))
              << w.name << " B=" << bits;
          EXPECT_EQ(rts[1]->slot_bits(a, b), golden_rt.slot_bits(a, b))
              << w.name << " B=" << bits;
        }
      }
    }
  }
}

}  // namespace
}  // namespace deltacol
