// Predicates of Section 2: cliques, cycles, paths, nice graphs, Gallai trees.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/structure.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Structure, CliquePredicate) {
  EXPECT_TRUE(is_clique(clique_graph(1)));
  EXPECT_TRUE(is_clique(clique_graph(2)));
  EXPECT_TRUE(is_clique(clique_graph(6)));
  EXPECT_FALSE(is_clique(cycle_graph(4)));
  EXPECT_TRUE(is_clique(cycle_graph(3)));  // triangle is K3
  EXPECT_FALSE(is_clique(path_graph(3)));
}

TEST(Structure, CyclePredicates) {
  EXPECT_TRUE(is_cycle(cycle_graph(5)));
  EXPECT_TRUE(is_odd_cycle(cycle_graph(5)));
  EXPECT_FALSE(is_odd_cycle(cycle_graph(6)));
  EXPECT_FALSE(is_cycle(path_graph(5)));
  EXPECT_FALSE(is_cycle(clique_graph(4)));
  // Two disjoint cycles: every degree 2 but disconnected.
  EXPECT_FALSE(is_cycle(disjoint_union(cycle_graph(3), cycle_graph(4))));
}

TEST(Structure, PathPredicate) {
  EXPECT_TRUE(is_path(path_graph(1)));
  EXPECT_TRUE(is_path(path_graph(5)));
  EXPECT_FALSE(is_path(cycle_graph(5)));
  EXPECT_FALSE(is_path(star_graph(3)));
  EXPECT_FALSE(is_path(disjoint_union(path_graph(2), path_graph(2))));
}

TEST(Structure, NiceGraphs) {
  EXPECT_FALSE(is_nice(path_graph(4)));
  EXPECT_FALSE(is_nice(cycle_graph(7)));
  EXPECT_FALSE(is_nice(clique_graph(4)));
  EXPECT_TRUE(is_nice(petersen_graph()));
  EXPECT_TRUE(is_nice(star_graph(3)));
  EXPECT_TRUE(is_nice(grid_graph(3, 3, false)));
  EXPECT_TRUE(is_nice(complete_bipartite(2, 3)));
}

TEST(Structure, GallaiTreeExamples) {
  // Trees, cliques and odd cycles are Gallai trees.
  EXPECT_TRUE(is_gallai_tree(path_graph(6)));
  EXPECT_TRUE(is_gallai_tree(star_graph(5)));
  EXPECT_TRUE(is_gallai_tree(clique_graph(5)));
  EXPECT_TRUE(is_gallai_tree(cycle_graph(7)));
  Rng rng(4);
  EXPECT_TRUE(is_gallai_tree(random_tree(100, 4, rng)));

  // Even cycles, thetas, complete bipartite graphs, grids are not.
  EXPECT_FALSE(is_gallai_tree(cycle_graph(6)));
  EXPECT_FALSE(is_gallai_tree(theta_graph(1, 1, 1)));  // K_{2,3}
  EXPECT_FALSE(is_gallai_tree(complete_bipartite(2, 2)));
  EXPECT_FALSE(is_gallai_tree(grid_graph(2, 3, false)));
  EXPECT_FALSE(is_gallai_tree(petersen_graph()));
  EXPECT_FALSE(is_gallai_tree(hypercube_graph(3)));
}

TEST(Structure, GallaiTreeComposite) {
  // Triangle sharing a vertex with a 5-cycle: both blocks odd => Gallai.
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);  // triangle 0-1-2
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.add_edge(6, 2);  // 5-cycle 2-3-4-5-6
  EXPECT_TRUE(is_gallai_tree(b.build()));

  // Same but with a 4-cycle: not Gallai.
  GraphBuilder b2(6);
  b2.add_edge(0, 1);
  b2.add_edge(1, 2);
  b2.add_edge(0, 2);
  b2.add_edge(2, 3);
  b2.add_edge(3, 4);
  b2.add_edge(4, 5);
  b2.add_edge(5, 2);  // 4-cycle 2-3-4-5
  EXPECT_FALSE(is_gallai_tree(b2.build()));
}

TEST(Structure, InducesClique) {
  const Graph g = clique_ring(3, 4);
  // First clique: shared vertex (id n-1=8) plus fresh 0,1,2.
  EXPECT_TRUE(induces_clique(g, std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(induces_clique(g, std::vector<int>{8, 0, 1, 2}));
  EXPECT_FALSE(induces_clique(g, std::vector<int>{0, 1, 3}));
}

}  // namespace
}  // namespace deltacol
