// Tests for BFS utilities and connectivity / biconnectivity.
//
// Block decomposition is cross-validated against a brute-force definition:
// u, v are in a common block iff the edge set has a cycle through them /
// removing any single other vertex keeps them connected.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/components.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/structure.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace deltacol {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(6);
  const auto d = bfs_distances(g, 0);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, MaxDistTruncates) {
  const Graph g = path_graph(10);
  const auto d = bfs_distances(g, 0, 3);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[4], kUnreachable);
}

TEST(Bfs, DisconnectedUnreachable) {
  const Graph g = disjoint_union(path_graph(3), path_graph(3));
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[5], kUnreachable);
}

TEST(Bfs, MultiSourceNearest) {
  const Graph g = path_graph(10);
  const auto ms = multi_source_bfs(g, {0, 9});
  EXPECT_EQ(ms.dist[4], 4);
  EXPECT_EQ(ms.source[4], 0);
  EXPECT_EQ(ms.dist[6], 3);
  EXPECT_EQ(ms.source[6], 9);
}

TEST(Bfs, MultiSourceTieBreaksTowardSmallerId) {
  const Graph g = path_graph(5);
  const auto ms = multi_source_bfs(g, {0, 4});
  EXPECT_EQ(ms.dist[2], 2);
  EXPECT_EQ(ms.source[2], 0);  // tie: prefer source 0
}

TEST(Bfs, BallContents) {
  const Graph g = grid_graph(5, 5, false);
  const auto b = ball(g, 12, 1);  // center of the grid
  EXPECT_EQ(b.size(), 5u);        // center + 4 neighbors
  const auto b2 = ball(g, 12, 2);
  EXPECT_EQ(b2.size(), 13u);
}

TEST(Bfs, BallFilteredRespectsMask) {
  const Graph g = path_graph(7);
  const auto b = ball_filtered(g, 3, 10, [](int v) { return v != 5; });
  std::set<int> s(b.begin(), b.end());
  EXPECT_TRUE(s.count(4));
  EXPECT_FALSE(s.count(5));
  EXPECT_FALSE(s.count(6));  // blocked behind 5
  EXPECT_TRUE(s.count(0));
}

TEST(Bfs, LayersPartitionBall) {
  const Graph g = hypercube_graph(4);
  const auto layers = bfs_layers(g, 0, 4);
  std::size_t total = 0;
  for (std::size_t t = 0; t < layers.size(); ++t) {
    total += layers[t].size();
    for (int v : layers[t]) {
      EXPECT_EQ(bfs_distances(g, 0)[v], static_cast<int>(t));
    }
  }
  EXPECT_EQ(total, 16u);
  EXPECT_EQ(layers[2].size(), 6u);  // C(4,2)
}

TEST(Bfs, EccentricityAndRadius) {
  EXPECT_EQ(eccentricity(path_graph(7), 0), 6);
  EXPECT_EQ(eccentricity(path_graph(7), 3), 3);
  EXPECT_EQ(graph_radius(path_graph(7)), 3);
  EXPECT_EQ(graph_radius(cycle_graph(8)), 4);
  EXPECT_EQ(graph_radius(clique_graph(5)), 1);
}

TEST(Components, CountsComponents) {
  Graph g = disjoint_union(cycle_graph(4), path_graph(3));
  g = disjoint_union(g, clique_graph(2));
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 3);
  const auto sets = cc.vertex_sets();
  EXPECT_EQ(sets[0].size(), 4u);
  EXPECT_EQ(sets[1].size(), 3u);
  EXPECT_EQ(sets[2].size(), 2u);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(cycle_graph(5)));
}

// Brute-force articulation test: v is articulation iff removing it
// increases the number of components restricted to its component.
std::vector<bool> brute_articulations(const Graph& g) {
  std::vector<bool> out(static_cast<std::size_t>(g.num_vertices()), false);
  const int base = connected_components(g).count;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto rest = remove_vertices(g, std::vector<int>{v});
    const int isolated = g.degree(v) == 0 ? 1 : 0;
    // Removing an isolated vertex removes a component; otherwise the count
    // must grow for v to be an articulation point.
    out[static_cast<std::size_t>(v)] =
        connected_components(rest.graph).count > base - isolated;
  }
  return out;
}

class BlockDecompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockDecompositionTest, MatchesBruteForceArticulations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 1);
  const Graph g = random_graph_max_degree(40, 4, 1.3, rng);
  const auto bd = block_decomposition(g);
  const auto brute = brute_articulations(g);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(bd.is_articulation[v], brute[v]) << "vertex " << v;
  }
  // Every edge appears in exactly one block.
  std::multiset<Edge> edge_cover;
  for (const auto& blk : bd.blocks) {
    const auto sub = induced_subgraph(g, blk);
    for (const auto& [a, b] : sub.graph.edge_list()) {
      edge_cover.insert({sub.to_parent[a], sub.to_parent[b]});
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(edge_cover.size()), g.num_edges());
  for (const auto& e : g.edge_list()) EXPECT_EQ(edge_cover.count(e), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockDecompositionTest, ::testing::Range(0, 12));

TEST(BlockDecomposition, KnownShapes) {
  // A triangle with a pendant edge: blocks {0,1,2} and {2,3}.
  Graph g = Graph::from_edges(
      4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto bd = block_decomposition(g);
  EXPECT_EQ(bd.blocks.size(), 2u);
  EXPECT_TRUE(bd.is_articulation[2]);
  EXPECT_FALSE(bd.is_articulation[0]);

  // A clique is one block, no articulation points.
  const auto bd2 = block_decomposition(clique_graph(5));
  EXPECT_EQ(bd2.blocks.size(), 1u);
  EXPECT_EQ(bd2.blocks.front().size(), 5u);

  // A path of length k has k bridge blocks.
  const auto bd3 = block_decomposition(path_graph(6));
  EXPECT_EQ(bd3.blocks.size(), 5u);
  for (const auto& b : bd3.blocks) EXPECT_EQ(b.size(), 2u);
}

TEST(BlockDecomposition, DeepPathNoStackOverflow) {
  const Graph g = path_graph(200000);
  const auto bd = block_decomposition(g);
  EXPECT_EQ(bd.blocks.size(), 199999u);
}

}  // namespace
}  // namespace deltacol
