// Unit tests for src/util: rng, math helpers, statistics, csv.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/stats.h"

namespace deltacol {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.next_below(10);
    ASSERT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.next_int(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    lo |= x == -3;
    hi |= x == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(5);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c1.next_u64() == c2.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(19);
  const auto s = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (int x : s) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 20);
  }
}

TEST(Rng, ContractViolations) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
  EXPECT_THROW(rng.next_int(3, 2), ContractViolation);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ContractViolation);
}

TEST(MathUtil, Logs) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(MathUtil, LogStar) {
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  EXPECT_LE(log_star(1e30), 6);
}

TEST(MathUtil, LogBase) {
  EXPECT_DOUBLE_EQ(log_base(2.0, 8.0), 3.0);
  EXPECT_DOUBLE_EQ(log_base(3.0, 1.0), 0.0);
  EXPECT_NEAR(log_base(3.0, 81.0), 4.0, 1e-12);
}

TEST(MathUtil, NextPrime) {
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(97), 97u);
  EXPECT_EQ(next_prime(100), 101u);
}

TEST(MathUtil, IPowSaturates) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(10, 0), 1u);
  EXPECT_EQ(ipow(2, 64), std::numeric_limits<std::uint64_t>::max());
}

TEST(Stats, SummaryBasics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.5);
}

TEST(Stats, EmptySummaryThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row({1.0, 2.5});
  w.row(std::vector<std::string>{"x", "y"});
  EXPECT_EQ(os.str(), "a,b\n1,2.5\nx,y\n");
}

TEST(Csv, RowWidthMismatchThrows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), ContractViolation);
}

}  // namespace
}  // namespace deltacol
